/**
 * @file
 * Table II — "Slicing statistics of pixel-based approach for all
 * instructions and important threads."
 *
 * For each of the paper's four benchmarks this runs the full pipeline
 * (site simulation → forward pass → pixel-criteria backward pass) and
 * prints the pixel-slice percentage and instruction totals for All /
 * Main / Compositor / Rasterizer threads, side by side with the paper's
 * numbers. Load-only benchmarks are analyzed up to the load-complete
 * point, matching the paper's trace boundaries.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader("table2_slice_stats: Table II reproduction");

    TextTable table;
    table.setHeader({"Benchmark", "Thread", "Pixels slice", "Total instr",
                     "Paper slice", "Paper total"});

    double our_all_sum = 0.0;
    const auto &paper = bench::paperTable2();

    const auto specs = workloads::paperBenchmarks();
    for (size_t b = 0; b < specs.size(); ++b) {
        const auto profiled = bench::profileSite(specs[b]);
        const size_t window = bench::analysisEnd(profiled.run);
        const auto stats = analysis::computeThreadStats(
            profiled.records(), profiled.slice.inSlice,
            profiled.run.threadNames(), window);

        const auto &ref = paper[b];
        our_all_sum += stats.all.slicePercent();

        table.addRow({specs[b].name, "All",
                      format("%.0f%%", stats.all.slicePercent()),
                      humanMillions(stats.all.totalInstructions),
                      format("%.0f%%", ref.all),
                      ref.totalInstructions});

        auto addThread = [&](const char *label, size_t tid,
                             double paper_slice) {
            if (tid >= stats.perThread.size())
                return;
            const auto &t = stats.perThread[tid];
            table.addRow({"", label, format("%.0f%%", t.slicePercent()),
                          humanMillions(t.totalInstructions),
                          paper_slice < 0 ? "-"
                                          : format("%.0f%%", paper_slice),
                          ""});
        };
        addThread("Main", 0, ref.main);
        addThread("Compositor", 1, ref.compositor);
        addThread("Rasterizer 1", 2, ref.raster1);
        addThread("Rasterizer 2", 3, ref.raster2);
        if (specs[b].browser.rasterThreads >= 3)
            addThread("Rasterizer 3", 4, ref.raster3);
        table.addSeparator();
    }

    table.render(std::cout);

    std::printf("\nAverage pixel slice across the four benchmarks: "
                "%.1f%%  (paper: 45%%)\n",
                our_all_sum / 4.0);
    std::printf("Shape checks (paper's qualitative findings):\n");
    std::printf("  - main-thread slice is the highest and site-specific\n");
    std::printf("  - compositor slice is low and nearly constant across "
                "sites\n");
    std::printf("  - the emulated-mobile rasterizers have by far the "
                "lowest slice\n");
    return 0;
}
