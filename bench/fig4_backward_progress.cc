/**
 * @file
 * Figure 4 — "Changes of slicing percentage over the backward pass."
 *
 * For each benchmark, prints two panels (all threads, main thread only):
 * the cumulative slice percentage as the backward pass advances from the
 * end of the trace (x = 0: page loaded / session done) toward its
 * beginning (URL entered). Expected shapes, per the paper: the
 * all-threads series is nearly flat at coarse scale; the main-thread
 * series swings more; Bing's main-thread panel shows jumps at the user
 * interactions and a rise near the far end where the load lives.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "support/strings.hh"

using namespace webslice;

namespace {

void
printPanel(const char *title,
           const std::vector<analysis::ProgressPoint> &series)
{
    std::printf("  %s\n", title);
    std::printf("  %14s  %6s  %s\n", "analyzed", "slice%", "");
    // Thin the series to ~24 printed rows.
    const size_t step = std::max<size_t>(1, series.size() / 24);
    for (size_t i = 0; i < series.size(); i += step) {
        const auto &point = series[i];
        std::string bar(static_cast<size_t>(point.slicePercent / 2.0),
                        '*');
        std::printf("  %14s  %5.1f%%  %s\n",
                    withCommas(point.analyzed).c_str(),
                    point.slicePercent, bar.c_str());
    }
    if (!series.empty()) {
        const auto &last = series.back();
        std::printf("  %14s  %5.1f%%  (full window)\n\n",
                    withCommas(last.analyzed).c_str(),
                    last.slicePercent);
    }
}

} // namespace

int
main()
{
    bench::printHeader(
        "fig4_backward_progress: Figure 4 reproduction (slice% over the "
        "backward pass)");

    for (const auto &spec : workloads::paperBenchmarks()) {
        const auto profiled = bench::profileSite(spec);
        const size_t window = bench::analysisEnd(profiled.run);

        // Restrict the series to the analysis window.
        const std::span<const trace::Record> records(
            profiled.records().data(), window);
        const std::span<const uint8_t> verdicts(
            profiled.slice.inSlice.data(), window);

        std::printf("--- %s ---\n", spec.name.c_str());
        printPanel("(all threads)",
                   analysis::computeBackwardProgress(records, verdicts,
                                                     120));
        printPanel("(main thread)",
                   analysis::computeBackwardProgress(
                       records, verdicts, 120,
                       profiled.run.tab->threads().main));
    }

    std::printf("Reading the panels: x advances backwards through the "
                "trace (top row = end of\nsession, bottom row = URL "
                "entered), matching the paper's x-axis.\n");
    return 0;
}
