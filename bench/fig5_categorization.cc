/**
 * @file
 * Figure 5 — "Categorization of potentially unnecessary computations and
 * their distribution through analysis of instructions that do not belong
 * to the pixel-based slice."
 *
 * For each benchmark: slice with pixel criteria, take the non-slice
 * instructions, look up each one's enclosing function, and bucket by the
 * function's namespace (the paper's methodology). Expected shape:
 * JavaScript is the largest category; Debugging and IPC follow; Bing's
 * JavaScript share (load+browse) is smaller than the load-only sites';
 * only part of the non-slice instructions can be categorized (the paper
 * covers 74/59/53/61 percent).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "fig5_categorization: Figure 5 reproduction (categories of "
        "non-slice instructions)");

    const auto categorizer = analysis::Categorizer::chromiumDefault();
    const auto &order = analysis::Categorizer::reportOrder();
    const double paper_coverage[] = {74, 59, 53, 61};

    TextTable table;
    std::vector<std::string> header = {"Benchmark"};
    for (const auto &category : order)
        header.push_back(category);
    header.push_back("coverage");
    header.push_back("paper cov.");
    table.setHeader(header);

    const auto specs = workloads::paperBenchmarks();
    double js_share_bing = 0, js_share_load_min = 100;
    for (size_t b = 0; b < specs.size(); ++b) {
        const auto profiled = bench::profileSite(specs[b]);
        const size_t window = bench::analysisEnd(profiled.run);
        const auto dist = analysis::categorizeUnnecessary(
            profiled.records(), profiled.slice.inSlice, profiled.cfgs,
            profiled.run.machine->symtab(), categorizer, window);

        std::vector<std::string> row = {specs[b].name};
        for (const auto &category : order)
            row.push_back(format("%.1f%%", dist.sharePercent(category)));
        row.push_back(format("%.0f%%", dist.coveragePercent()));
        row.push_back(format("%.0f%%", paper_coverage[b]));
        table.addRow(row);

        const double js = dist.sharePercent("JavaScript");
        if (b == 3) {
            js_share_bing = js;
        } else {
            js_share_load_min = std::min(js_share_load_min, js);
        }
    }

    table.render(std::cout);

    std::printf("\nShape checks (paper's findings):\n");
    std::printf("  - JavaScript is the largest category in every "
                "benchmark\n");
    std::printf("  - Bing's JavaScript share (%.1f%%) is below the "
                "load-only sites' (>= %.1f%%):\n"
                "    loading is the JS-intensive phase, so deferring JS "
                "processing is the\n    headline opportunity\n",
                js_share_bing, js_share_load_min);
    std::printf("  - a noticeable Multi-threading share and a growing "
                "Other (event scheduling)\n    share under browsing "
                "motivate the paper's scheduling critique\n");
    return 0;
}
