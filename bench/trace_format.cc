/**
 * @file
 * Trace-format bench: the v1 (flat) vs v2 (columnar compressed)
 * storage/decode trade, measured end to end on a recorded benchmark.
 *
 *   trace_format [--site bing|amazon|amazon-mobile|maps] [--reps N]
 *                [--out BENCH_trace.json] [--quick]
 *
 * For one recorded session the bench reports, per format:
 *  - on-disk bytes and the v1:v2 compression ratio (CI asserts >= 4x);
 *  - write (encode) wall time;
 *  - cold full-file decode wall time (loadTrace);
 *  - cold and warm single-record seek latency (loadTraceRange through
 *    the block-decode cache);
 *  - backward-slice wall time from the file (computeSliceFromFile),
 *    with the slice asserted bit-identical across formats.
 *
 * Results land in BENCH_trace.json (webslice-metrics-v1 schema) for
 * CI's trend tracking.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "trace/columnar.hh"
#include "trace/trace_file.hh"

using namespace webslice;

namespace {

struct FormatSample
{
    std::string path;
    uint64_t bytes = 0;
    double writeSeconds = 0.0;
    double coldLoadSeconds = 0.0;
    double coldSeekSeconds = 0.0;
    double warmSeekSeconds = 0.0;
    double sliceSeconds = 0.0;
};

/** Best-of-reps timing for one thunk. */
template <typename Fn>
double
bestOf(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        const double t0 = bench::nowSeconds();
        fn();
        const double elapsed = bench::nowSeconds() - t0;
        if (i == 0 || elapsed < best)
            best = elapsed;
    }
    return best;
}

std::string
fieldsJson(const FormatSample &s)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"bytes\": %llu, "
                  "\"write_seconds\": %.6f, "
                  "\"cold_load_seconds\": %.6f, "
                  "\"cold_seek_seconds\": %.6f, "
                  "\"warm_seek_seconds\": %.6f, "
                  "\"slice_seconds\": %.6f}",
                  static_cast<unsigned long long>(s.bytes),
                  s.writeSeconds, s.coldLoadSeconds, s.coldSeekSeconds,
                  s.warmSeekSeconds, s.sliceSeconds);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string site = "amazon-mobile";
    std::string out_path = "BENCH_trace.json";
    int reps = 3;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--site") && a + 1 < argc) {
            site = argv[++a];
        } else if (!std::strcmp(argv[a], "--reps") && a + 1 < argc) {
            reps = std::atoi(argv[++a]);
        } else if (!std::strcmp(argv[a], "--out") && a + 1 < argc) {
            out_path = argv[++a];
        } else if (!std::strcmp(argv[a], "--quick")) {
            site = "amazon-mobile";
            reps = 2;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--site name] [--reps N] "
                         "[--out path] [--quick]\n",
                         argv[0]);
            return 1;
        }
    }
    if (reps < 1)
        reps = 1;

    workloads::SiteSpec spec;
    if (site == "bing") {
        spec = workloads::bingSpec();
    } else if (site == "amazon") {
        spec = workloads::amazonDesktopSpec();
    } else if (site == "amazon-mobile") {
        spec = workloads::amazonMobileSpec();
    } else if (site == "maps") {
        spec = workloads::googleMapsSpec();
    } else {
        std::fprintf(stderr, "unknown site '%s'\n", site.c_str());
        return 1;
    }

    bench::printHeader("trace_format: flat (v1) vs columnar (v2) "
                       "storage and decode");

    std::printf("running %s ...\n", spec.name.c_str());
    const bench::ProfiledRun profiled = bench::profileSite(spec);
    const auto &records = profiled.records();
    const uint64_t count = records.size();
    std::printf("%s records recorded\n", withCommas(count).c_str());

    const std::string dir = "/tmp/";
    FormatSample v1{dir + "bench_trace_v1.trc"};
    FormatSample v2{dir + "bench_trace_v2.trc"};

    // ---- write -----------------------------------------------------------
    v1.writeSeconds = bestOf(reps, [&] {
        trace::saveTrace(v1.path, records, trace::TraceFormat::V1);
    });
    v2.writeSeconds = bestOf(reps, [&] {
        trace::saveTrace(v2.path, records, trace::TraceFormat::V2);
    });
    const auto digest_v1 = digestFile(v1.path);
    const auto digest_v2 = digestFile(v2.path);
    v1.bytes = digest_v1.bytes;
    v2.bytes = digest_v2.bytes;

    // ---- cold full decode ------------------------------------------------
    for (FormatSample *s : {&v1, &v2}) {
        s->coldLoadSeconds = bestOf(reps, [&] {
            trace::TraceDecodeCache::global().clear();
            const auto loaded = trace::loadTrace(s->path);
            fatal_if(loaded.size() != count, "short load from ",
                     s->path);
        });
    }

    // ---- seek latency ----------------------------------------------------
    // One record from the middle of the file: v1 seeks natively, v2
    // decodes (cold) or reuses (warm) the containing block.
    const uint64_t mid = count / 2;
    for (FormatSample *s : {&v1, &v2}) {
        s->coldSeekSeconds = bestOf(reps, [&] {
            trace::TraceDecodeCache::global().clear();
            (void)trace::loadTraceRange(s->path, mid, 1);
        });
        trace::TraceDecodeCache::global().clear();
        (void)trace::loadTraceRange(s->path, mid, 1); // prime
        s->warmSeekSeconds = bestOf(reps, [&] {
            (void)trace::loadTraceRange(s->path, mid, 1);
        });
    }

    // ---- slice from file -------------------------------------------------
    slicer::SlicerOptions options = bench::windowedOptions(profiled.run);
    options.backwardJobs = 4;
    std::vector<slicer::SliceResult> slices;
    for (FormatSample *s : {&v1, &v2}) {
        slicer::SliceResult result;
        s->sliceSeconds = bestOf(reps, [&] {
            trace::TraceDecodeCache::global().clear();
            result = slicer::computeSliceFromFile(
                s->path, profiled.cfgs, profiled.deps,
                profiled.run.machine->pixelCriteria(), options);
        });
        slices.push_back(std::move(result));
    }
    const bool identical = slices[0].inSlice == slices[1].inSlice;
    fatal_if(!identical,
             "v1 and v2 slices diverged — the formats are not "
             "equivalent");

    const double ratio =
        v2.bytes ? static_cast<double>(v1.bytes) /
                       static_cast<double>(v2.bytes)
                 : 0.0;

    TextTable table;
    table.setHeader({"Metric", "v1 (flat)", "v2 (columnar)"});
    table.addRow({"on-disk bytes", withCommas(v1.bytes),
                  withCommas(v2.bytes)});
    table.addRow({"write s", format("%.3f", v1.writeSeconds),
                  format("%.3f", v2.writeSeconds)});
    table.addRow({"cold full decode s",
                  format("%.3f", v1.coldLoadSeconds),
                  format("%.3f", v2.coldLoadSeconds)});
    table.addRow({"cold seek ms",
                  format("%.3f", v1.coldSeekSeconds * 1e3),
                  format("%.3f", v2.coldSeekSeconds * 1e3)});
    table.addRow({"warm seek ms",
                  format("%.3f", v1.warmSeekSeconds * 1e3),
                  format("%.3f", v2.warmSeekSeconds * 1e3)});
    table.addRow({"slice from file s",
                  format("%.3f", v1.sliceSeconds),
                  format("%.3f", v2.sliceSeconds)});
    table.render(std::cout);
    std::printf("\ncompression ratio %.2fx; slices bit-identical\n",
                ratio);

    const std::vector<std::pair<std::string, std::string>> extras = {
        {"site", "\"" + jsonEscape(site) + "\""},
        {"records", format("%llu",
                           static_cast<unsigned long long>(count))},
        {"reps", format("%d", reps)},
        {"v1", fieldsJson(v1)},
        {"v2", fieldsJson(v2)},
        {"compression_ratio", format("%.3f", ratio)},
        {"slices_identical", identical ? "true" : "false"},
    };
    writeMetricsReport(out_path, MetricRegistry::global(),
                       "trace_format", extras);
    std::printf("wrote %s\n", out_path.c_str());

    std::remove(v1.path.c_str());
    std::remove(v2.path.c_str());
    return 0;
}
