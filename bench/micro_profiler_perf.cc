/**
 * @file
 * Profiler micro-benchmarks (google-benchmark): throughput of the pieces
 * the paper's toolchain stresses — trace generation, CFG reconstruction,
 * postdominators + control deps, live-set operations, and the end-to-end
 * backward pass. Not a paper table; this is the engineering baseline for
 * anyone extending the profiler.
 */

#include <unordered_map>

#include <benchmark/benchmark.h>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "slicer/slicer.hh"
#include "support/flat_map.hh"
#include "support/sparse_byte_set.hh"
#include "support/thread_pool.hh"

using namespace webslice;

namespace {

/** Build a synthetic trace: loops of ALU/load/store with a live tail. */
struct SyntheticTrace
{
    sim::Machine machine;
    trace::ThreadId tid;

    explicit SyntheticTrace(int iterations)
        : tid(machine.addThread("main"))
    {
        const auto fn = machine.registerFunction("synthetic::kernel");
        const uint64_t buffer = machine.alloc(4096, "buf");
        machine.post(tid, [&, fn, buffer](sim::Ctx &ctx) {
            sim::TracedScope scope(ctx, fn);
            sim::Value acc = ctx.imm(1);
            sim::Value i = ctx.imm(0);
            sim::Value n = ctx.imm(static_cast<uint64_t>(iterations));
            while (true) {
                sim::Value more = ctx.ltu(i, n);
                if (!ctx.branchIf(more))
                    break;
                acc = ctx.add(acc, i);
                sim::Value addr = ctx.andi(acc, 4095 & ~7ull);
                ctx.store(buffer + (addr.get() & ~7ull), 8, acc);
                sim::Value back = ctx.load(buffer, 8);
                acc = ctx.bxor(acc, back);
                i = ctx.addi(i, 1);
            }
            ctx.store(buffer, 8, acc);
            const trace::MemRange ranges[] = {{buffer, 4096}};
            ctx.marker(ranges);
        });
        machine.run();
    }
};

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        SyntheticTrace trace(static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(trace.machine.records().size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

void
BM_CfgBuild(benchmark::State &state)
{
    SyntheticTrace trace(static_cast<int>(state.range(0)));
    const int jobs = static_cast<int>(state.range(1));
    for (auto _ : state) {
        auto cfgs = graph::buildCfgs(trace.machine.records(),
                                     trace.machine.symtab(), jobs);
        benchmark::DoNotOptimize(cfgs.byFunc.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            trace.machine.records().size());
}
BENCHMARK(BM_CfgBuild)
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4});

void
BM_ControlDeps(benchmark::State &state)
{
    SyntheticTrace trace(static_cast<int>(state.range(0)));
    const auto cfgs = graph::buildCfgs(trace.machine.records(),
                                       trace.machine.symtab());
    const int jobs = static_cast<int>(state.range(1));
    for (auto _ : state) {
        auto deps = graph::buildControlDeps(cfgs, jobs);
        benchmark::DoNotOptimize(deps.pairCount());
    }
}
BENCHMARK(BM_ControlDeps)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4});

void
BM_BackwardSlice(benchmark::State &state)
{
    SyntheticTrace trace(static_cast<int>(state.range(0)));
    const auto cfgs = graph::buildCfgs(trace.machine.records(),
                                       trace.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    for (auto _ : state) {
        auto slice = slicer::computeSlice(
            trace.machine.records(), cfgs, deps,
            trace.machine.pixelCriteria());
        benchmark::DoNotOptimize(slice.sliceInstructions);
    }
    state.SetItemsProcessed(state.iterations() *
                            trace.machine.records().size());
}
BENCHMARK(BM_BackwardSlice)->Arg(1000)->Arg(10000)->Arg(100000);

/** The seed's std::unordered_* live sets, kept as the measured baseline. */
void
BM_BackwardSliceLegacy(benchmark::State &state)
{
    SyntheticTrace trace(static_cast<int>(state.range(0)));
    const auto cfgs = graph::buildCfgs(trace.machine.records(),
                                       trace.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    slicer::SlicerOptions options;
    options.legacyLiveSets = true;
    for (auto _ : state) {
        auto slice = slicer::computeSlice(
            trace.machine.records(), cfgs, deps,
            trace.machine.pixelCriteria(), options);
        benchmark::DoNotOptimize(slice.sliceInstructions);
    }
    state.SetItemsProcessed(state.iterations() *
                            trace.machine.records().size());
}
BENCHMARK(BM_BackwardSliceLegacy)->Arg(10000)->Arg(100000);

void
BM_SparseByteSetInsertErase(benchmark::State &state)
{
    SparseByteSet set;
    uint64_t addr = 0;
    for (auto _ : state) {
        set.insert(addr, 64);
        benchmark::DoNotOptimize(set.testAndErase(addr, 64));
        addr = (addr + 4096) & 0xFFFFFF;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SparseByteSetInsertErase);

void
BM_SparseByteSetIntersects(benchmark::State &state)
{
    SparseByteSet set;
    for (uint64_t a = 0; a < 1 << 20; a += 128)
        set.insert(a, 32);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.intersects(addr, 16));
        addr = (addr + 64) & ((1 << 20) - 1);
    }
}
BENCHMARK(BM_SparseByteSetIntersects);

// The same live-set workloads on the seed's std::unordered_map chunk
// storage, so the flat-hash gain is visible in one report.
void
BM_LegacySparseByteSetInsertErase(benchmark::State &state)
{
    LegacySparseByteSet set;
    uint64_t addr = 0;
    for (auto _ : state) {
        set.insert(addr, 64);
        benchmark::DoNotOptimize(set.testAndErase(addr, 64));
        addr = (addr + 4096) & 0xFFFFFF;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_LegacySparseByteSetInsertErase);

void
BM_LegacySparseByteSetIntersects(benchmark::State &state)
{
    LegacySparseByteSet set;
    for (uint64_t a = 0; a < 1 << 20; a += 128)
        set.insert(a, 32);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.intersects(addr, 16));
        addr = (addr + 64) & ((1 << 20) - 1);
    }
}
BENCHMARK(BM_LegacySparseByteSetIntersects);

// FlatMap64 vs std::unordered_map on the chunk-map access pattern: a
// churning working set of 64-bit keys with heavy lookup traffic.
void
BM_FlatMap64InsertFindErase(benchmark::State &state)
{
    FlatMap64 map;
    uint64_t key = 0;
    for (auto _ : state) {
        map.findOrInsert(key) = key;
        benchmark::DoNotOptimize(map.find(key ^ 1));
        benchmark::DoNotOptimize(map.find(key));
        map.erase(key);
        key = (key * 2654435761u + 1) & 0xFFFFF;
    }
}
BENCHMARK(BM_FlatMap64InsertFindErase);

void
BM_StdUnorderedMapInsertFindErase(benchmark::State &state)
{
    std::unordered_map<uint64_t, uint64_t> map;
    uint64_t key = 0;
    for (auto _ : state) {
        map[key] = key;
        benchmark::DoNotOptimize(map.find(key ^ 1) != map.end());
        benchmark::DoNotOptimize(map.find(key) != map.end());
        map.erase(key);
        key = (key * 2654435761u + 1) & 0xFFFFF;
    }
}
BENCHMARK(BM_StdUnorderedMapInsertFindErase);

/** Fixed cost of dispatching a parallelFor across the worker pool. */
void
BM_ThreadPoolParallelFor(benchmark::State &state)
{
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    std::vector<uint64_t> sums(1024, 0);
    for (auto _ : state) {
        pool.parallelFor(0, sums.size(),
                         [&](size_t i) { sums[i] += i; });
        benchmark::DoNotOptimize(sums.data());
    }
    state.SetItemsProcessed(state.iterations() * sums.size());
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(3);

} // namespace

BENCHMARK_MAIN();
