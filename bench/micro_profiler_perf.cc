/**
 * @file
 * Profiler micro-benchmarks (google-benchmark): throughput of the pieces
 * the paper's toolchain stresses — trace generation, CFG reconstruction,
 * postdominators + control deps, live-set operations, and the end-to-end
 * backward pass. Not a paper table; this is the engineering baseline for
 * anyone extending the profiler.
 */

#include <benchmark/benchmark.h>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "slicer/slicer.hh"
#include "support/sparse_byte_set.hh"

using namespace webslice;

namespace {

/** Build a synthetic trace: loops of ALU/load/store with a live tail. */
struct SyntheticTrace
{
    sim::Machine machine;
    trace::ThreadId tid;

    explicit SyntheticTrace(int iterations)
        : tid(machine.addThread("main"))
    {
        const auto fn = machine.registerFunction("synthetic::kernel");
        const uint64_t buffer = machine.alloc(4096, "buf");
        machine.post(tid, [&, fn, buffer](sim::Ctx &ctx) {
            sim::TracedScope scope(ctx, fn);
            sim::Value acc = ctx.imm(1);
            sim::Value i = ctx.imm(0);
            sim::Value n = ctx.imm(static_cast<uint64_t>(iterations));
            while (true) {
                sim::Value more = ctx.ltu(i, n);
                if (!ctx.branchIf(more))
                    break;
                acc = ctx.add(acc, i);
                sim::Value addr = ctx.andi(acc, 4095 & ~7ull);
                ctx.store(buffer + (addr.get() & ~7ull), 8, acc);
                sim::Value back = ctx.load(buffer, 8);
                acc = ctx.bxor(acc, back);
                i = ctx.addi(i, 1);
            }
            ctx.store(buffer, 8, acc);
            const trace::MemRange ranges[] = {{buffer, 4096}};
            ctx.marker(ranges);
        });
        machine.run();
    }
};

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        SyntheticTrace trace(static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(trace.machine.records().size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

void
BM_CfgBuild(benchmark::State &state)
{
    SyntheticTrace trace(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto cfgs = graph::buildCfgs(trace.machine.records(),
                                     trace.machine.symtab());
        benchmark::DoNotOptimize(cfgs.byFunc.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            trace.machine.records().size());
}
BENCHMARK(BM_CfgBuild)->Arg(1000)->Arg(10000);

void
BM_ControlDeps(benchmark::State &state)
{
    SyntheticTrace trace(static_cast<int>(state.range(0)));
    const auto cfgs = graph::buildCfgs(trace.machine.records(),
                                       trace.machine.symtab());
    for (auto _ : state) {
        auto deps = graph::buildControlDeps(cfgs);
        benchmark::DoNotOptimize(deps.pairCount());
    }
}
BENCHMARK(BM_ControlDeps)->Arg(10000);

void
BM_BackwardSlice(benchmark::State &state)
{
    SyntheticTrace trace(static_cast<int>(state.range(0)));
    const auto cfgs = graph::buildCfgs(trace.machine.records(),
                                       trace.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    for (auto _ : state) {
        auto slice = slicer::computeSlice(
            trace.machine.records(), cfgs, deps,
            trace.machine.pixelCriteria());
        benchmark::DoNotOptimize(slice.sliceInstructions);
    }
    state.SetItemsProcessed(state.iterations() *
                            trace.machine.records().size());
}
BENCHMARK(BM_BackwardSlice)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_SparseByteSetInsertErase(benchmark::State &state)
{
    SparseByteSet set;
    uint64_t addr = 0;
    for (auto _ : state) {
        set.insert(addr, 64);
        benchmark::DoNotOptimize(set.testAndErase(addr, 64));
        addr = (addr + 4096) & 0xFFFFFF;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SparseByteSetInsertErase);

void
BM_SparseByteSetIntersects(benchmark::State &state)
{
    SparseByteSet set;
    for (uint64_t a = 0; a < 1 << 20; a += 128)
        set.insert(a, 32);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.intersects(addr, 16));
        addr = (addr + 64) & ((1 << 20) - 1);
    }
}
BENCHMARK(BM_SparseByteSetIntersects);

} // namespace

BENCHMARK_MAIN();
