/**
 * @file
 * Diagnostic bench: per-benchmark run statistics.
 *
 * Not a paper table — this prints the raw volumes (instructions per
 * thread, resources, layers, tiles, frames, JS/CSS coverage, profiler
 * pass timings) that back every other bench, so regressions in the
 * substrate are visible at a glance.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader("site_stats: benchmark volume diagnostics");

    for (const auto &spec : workloads::paperBenchmarks()) {
        const auto profiled = bench::profileSite(spec);
        const auto &run = profiled.run;
        const auto &machine = *run.machine;

        std::printf("--- %s ---\n", spec.name.c_str());
        std::printf("  instructions        %s\n",
                    withCommas(machine.instructionCount()).c_str());
        std::printf("  trace records       %s\n",
                    withCommas(machine.records().size()).c_str());
        std::printf("  load-complete index %s (%.0f%% of trace)\n",
                    withCommas(run.loadCompleteIndex).c_str(),
                    100.0 * static_cast<double>(run.loadCompleteIndex) /
                        static_cast<double>(machine.records().size()));
        std::printf("  virtual time        %s ms\n",
                    withCommas(machine.now() /
                               spec.browser.cyclesPerMs).c_str());

        const size_t window = bench::analysisEnd(run);
        const auto stats = analysis::computeThreadStats(
            machine.records(), profiled.slice.inSlice,
            run.threadNames(), window);
        for (const auto &thread : stats.perThread) {
            std::printf("  thread %-24s %12s instr   slice %5.1f%%\n",
                        thread.name.c_str(),
                        withCommas(thread.totalInstructions).c_str(),
                        thread.slicePercent());
        }
        std::printf("  overall slice       %.1f%%\n",
                    profiled.slice.slicePercent());
        std::printf("  markers             %s   criteria bytes %s\n",
                    withCommas(machine.pixelCriteria().markerCount())
                        .c_str(),
                    withCommas(profiled.slice.criteriaBytesSeeded)
                        .c_str());
        std::printf("  js bytes            %s total, %s used (%.0f%% "
                    "unused)\n",
                    withCommas(run.jsTotalBytes).c_str(),
                    withCommas(run.jsUsedBytes).c_str(),
                    100.0 * static_cast<double>(run.jsTotalBytes -
                                                run.jsUsedBytes) /
                        static_cast<double>(run.jsTotalBytes));
        std::printf("  css bytes           %s total, %s used (%.0f%% "
                    "unused)\n",
                    withCommas(run.cssTotalBytes).c_str(),
                    withCommas(run.cssUsedBytes).c_str(),
                    100.0 * static_cast<double>(run.cssTotalBytes -
                                                run.cssUsedBytes) /
                        static_cast<double>(run.cssTotalBytes));
        std::printf("  frames submitted    %llu\n",
                    static_cast<unsigned long long>(
                        run.tab->compositor().framesSubmitted()));
        std::printf("  tiles rastered      %llu  (cells %llu, clipped "
                    "items %llu)\n",
                    static_cast<unsigned long long>(
                        run.tab->compositor().rasterizer()
                            .tilesRastered()),
                    static_cast<unsigned long long>(
                        run.tab->compositor().rasterizer()
                            .cellsWritten()),
                    static_cast<unsigned long long>(
                        run.tab->compositor().rasterizer()
                            .itemsClipped()));
        std::printf("  vsync ticks         %llu\n",
                    static_cast<unsigned long long>(
                        run.tab->compositor().vsyncTicks()));
        std::printf("  functions (js)      %zu compiled, %zu executed\n",
                    run.tab->js().functionCount(),
                    run.tab->js().executedFunctionCount());
        std::printf("  timings             workload %.2fs  forward %.2fs "
                    " backward %.2fs\n",
                    profiled.workloadSeconds, profiled.forwardSeconds,
                    profiled.backwardSeconds);
        std::printf("  live-mem peak       %s bytes   pending-branch peak "
                    "%llu\n\n",
                    withCommas(profiled.slice.peakLiveMemBytes).c_str(),
                    static_cast<unsigned long long>(
                        profiled.slice.peakPendingBranches));
    }
    return 0;
}
