/**
 * @file
 * Diagnostic bench: function-level slice attribution (the profiler's
 * function-level output listed in the paper's Section III). Prints the
 * hottest functions of each benchmark with their share of the pixel
 * slice, which makes the dependence structure auditable: executed JS and
 * the raster/layout path should be largely in-slice, dead JS libraries,
 * debug tracing, and compositor bookkeeping largely out.
 */
#include <cstdio>

#include "analysis/function_stats.hh"
#include "bench/bench_util.hh"
#include "support/strings.hh"

using namespace webslice;

int
main()
{
    bench::printHeader("function_hotlist: per-function slice attribution");

    for (const auto &spec : workloads::paperBenchmarks()) {
        const auto profiled = bench::profileSite(spec);
        const size_t window = bench::analysisEnd(profiled.run);
        const auto stats = analysis::computeFunctionStats(
            {profiled.records().data(), window},
            {profiled.slice.inSlice.data(), window}, profiled.cfgs,
            profiled.run.machine->symtab());
        std::printf("--- %s (control-dep pairs: %zu) ---\n",
                    spec.name.c_str(), profiled.deps.pairCount());
        std::printf("%-52s %12s %8s\n", "function", "instr", "slice%");
        for (size_t i = 0; i < stats.size() && i < 20; ++i) {
            std::printf("%-52s %12s %7.1f%%\n", stats[i].name.c_str(),
                        withCommas(stats[i].totalInstructions).c_str(),
                        stats[i].slicePercent());
        }
        std::printf("\n");
    }
    return 0;
}
