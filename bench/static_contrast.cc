/**
 * @file
 * Static-vs-dynamic slice contrast across the paper's four sites: how
 * much of each trace the static over-approximation proves removable
 * without ever running the backward dynamic pass, and what the extra
 * cost of building the static model is next to the dynamic passes.
 *
 * For each benchmark: run the usual pixel-criteria profile, then build
 * the static model over the same window, walk the static PDG from the
 * same criteria, assert containment (dynamic ⊆ static), and bin every
 * executed instruction into necessary / dynamically-only unnecessary /
 * statically removable. Expected shape: the static slice covers nearly
 * the whole site universe (it is page-granular and flow-conservative),
 * so the statically-removable bin is small but nonzero — the dynamic
 * pass remains the workhorse, which is the point of reporting both.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "bench/bench_util.hh"
#include "check/containment.hh"
#include "staticdep/slice.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "static_contrast: static PDG build/walk cost and the "
        "Figure-5-style contrast bins");

    const auto categorizer = analysis::Categorizer::chromiumDefault();

    TextTable table;
    table.setHeader({"Benchmark", "sites", "static%", "build s", "walk s",
                     "dyn s", "contain", "necessary", "dyn-only",
                     "removable"});

    const auto specs = workloads::paperBenchmarks();
    bool all_contained = true;
    for (const auto &spec : specs) {
        const auto profiled = bench::profileSite(spec);
        const size_t window = bench::analysisEnd(profiled.run);
        const auto &symtab = profiled.run.machine->symtab();

        double t0 = bench::nowSeconds();
        const auto analysis = staticdep::buildStaticAnalysis(
            profiled.records(), profiled.cfgs, profiled.deps,
            {.endIndex = window});
        double t1 = bench::nowSeconds();
        const auto static_slice = staticdep::computeStaticSlice(
            analysis, profiled.run.machine->pixelCriteria(), {});
        double t2 = bench::nowSeconds();

        const auto containment = check::checkContainment(
            profiled.records(), profiled.cfgs, symtab, profiled.slice,
            static_slice);
        all_contained = all_contained && containment.ok();

        const auto contrast = analysis::contrastSlices(
            profiled.records(), profiled.slice.inSlice, static_slice,
            profiled.cfgs, symtab, categorizer, window);

        table.addRow(
            {spec.name,
             format("%llu", (unsigned long long)static_slice.siteUniverse),
             format("%.1f%%", static_slice.slicePercent()),
             format("%.3f", t1 - t0), format("%.3f", t2 - t1),
             format("%.3f",
                    profiled.forwardSeconds + profiled.backwardSeconds),
             containment.ok() ? "ok" : "VIOLATED",
             format("%.1f%%",
                    contrast.percentOfAnalyzed(contrast.necessary)),
             format("%.1f%%",
                    contrast.percentOfAnalyzed(contrast.dynamicOnly)),
             format("%.1f%%", contrast.percentOfAnalyzed(
                                  contrast.staticallyRemovable))});
    }

    table.render(std::cout);

    std::printf("\nShape checks:\n");
    std::printf("  - containment holds on every benchmark (dynamic ⊆ "
                "static): %s\n",
                all_contained ? "yes" : "NO — soundness bug");
    std::printf("  - the static walk is cheap next to the dynamic "
                "passes; the model\n    build amortizes across criteria "
                "modes because the fixpoints are\n    criteria-"
                "independent\n");
    return all_contained ? 0 : 1;
}
