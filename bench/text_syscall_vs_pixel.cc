/**
 * @file
 * Section V text experiment: "slicing based on either pixels buffer or
 * system calls leads to almost the same slice."
 *
 * For each benchmark this computes both slices and reports their sizes
 * and overlap. The syscall-based criteria (all values handed to the
 * kernel: frame submissions, network sends, futex words) are broader by
 * construction — the check is that the extra instructions they admit
 * (IPC serialization, request building) stay a small share, so the two
 * approaches agree on what is unnecessary.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "text_syscall_vs_pixel: pixel-buffer vs system-call slicing "
        "criteria");

    TextTable table;
    table.setHeader({"Benchmark", "Pixel slice", "Syscall slice",
                     "Pixel&Syscall", "Pixel-only", "Syscall-only"});

    for (const auto &spec : workloads::paperBenchmarks()) {
        const auto profiled = bench::profileSite(spec);
        slicer::SlicerOptions sys_options;
        sys_options.mode = slicer::CriteriaMode::Syscalls;
        sys_options = bench::windowedOptions(profiled.run, sys_options);
        const auto sys_slice = bench::resliceWith(profiled, sys_options);

        const size_t window = bench::analysisEnd(profiled.run);
        uint64_t instr = 0, both = 0, pixel_only = 0, sys_only = 0;
        for (size_t i = 0; i < window; ++i) {
            if (profiled.records()[i].isPseudo())
                continue;
            ++instr;
            const bool p = profiled.slice.inSlice[i];
            const bool s = sys_slice.inSlice[i];
            both += (p && s) ? 1 : 0;
            pixel_only += (p && !s) ? 1 : 0;
            sys_only += (!p && s) ? 1 : 0;
        }
        auto pct = [&](uint64_t n) {
            return format("%.1f%%", 100.0 * static_cast<double>(n) /
                                        static_cast<double>(instr));
        };
        table.addRow({spec.name, pct(both + pixel_only),
                      pct(both + sys_only), pct(both), pct(pixel_only),
                      pct(sys_only)});
    }

    table.render(std::cout);
    std::printf("\nShape check (paper): the two criteria produce almost "
                "the same slice — the\nsyscall slice adds only a small "
                "margin (network/IPC payload chains), and the\npixel "
                "slice is essentially contained in it.\n");
    return 0;
}
