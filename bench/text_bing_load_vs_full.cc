/**
 * @file
 * Section V-A text experiment: for Bing, slice the load-time prefix two
 * ways —
 *   (a) backward from the page-load-complete point (the paper: 49.8% of
 *       the 1.7 B load instructions), and
 *   (b) backward from the end of the full browsing session, then look at
 *       how many *load-time* instructions are in that slice (paper:
 *       50.6%).
 * The paper's conclusion: browsing the page makes only ~1% more of the
 * load-time work useful — almost everything unused at load stays unused.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "support/strings.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "text_bing_load_vs_full: Bing load-window slice, two criteria "
        "horizons");

    const auto spec = workloads::bingSpec();
    // Full-session slice (no window).
    const auto profiled = bench::profileSite(spec, {},
                                             /*apply_window=*/false);
    const size_t load_end = profiled.run.loadCompleteIndex;

    // (a) slice as if the trace ended at load complete.
    slicer::SlicerOptions load_options;
    load_options.endIndex = load_end;
    const auto load_slice = bench::resliceWith(profiled, load_options);

    // (b) the full-session slice, restricted to load-time instructions.
    uint64_t load_instr = 0, load_in_full_slice = 0;
    for (size_t i = 0; i < load_end; ++i) {
        if (profiled.records()[i].isPseudo())
            continue;
        ++load_instr;
        load_in_full_slice += profiled.slice.inSlice[i] ? 1 : 0;
    }
    const double full_pct = 100.0 * static_cast<double>(
        load_in_full_slice) / static_cast<double>(load_instr);

    std::printf("load window: %s instructions (of %s total)\n",
                withCommas(load_instr).c_str(),
                withCommas(profiled.slice.instructionsAnalyzed).c_str());
    std::printf("(a) slicing from load-complete:         %5.1f%%  "
                "(paper: 49.8%%)\n",
                load_slice.slicePercent());
    std::printf("(b) load-time share of the full slice:  %5.1f%%  "
                "(paper: 50.6%%)\n", full_pct);
    std::printf("difference (browsing made useful):      %+5.1f "
                "points  (paper: ~+0.8)\n",
                full_pct - load_slice.slicePercent());
    std::printf("\nConclusion check: browsing a page only makes a small "
                "extra share of the\nload-time instructions useful — "
                "load-time waste is real waste.\n");
    return 0;
}
