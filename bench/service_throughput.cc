/**
 * @file
 * Slicing-service throughput and latency benchmark.
 *
 *   service_throughput [--site bing|amazon|amazon-mobile|maps|synth-workers]
 *                      [--queries N] [--out FILE] [--quick]
 *                      [--fleet N] [--fleet-clients N]
 *
 * `synth-workers` is not a hand-modeled site: it is a generated
 * worker-heavy scenario (scenario::generateScenario, workers=2), so the
 * service fleet gets exercised against a multi-threaded recording whose
 * trace interleaves two dedicated workers with the main thread.
 *
 * Records one benchmark site to a temporary artifact prefix, then
 * measures the service from a client's point of view in three parts:
 *
 *  - session build: the one-time forward pass a fresh daemon pays for
 *    a recording, reported separately from any per-criterion cost;
 *  - per-criterion backward latency, cold vs warm: the same set of
 *    distinct criteria (mode x backward-jobs, one shared window) is
 *    sliced against a daemon started with --no-plan-cache (every query
 *    pays the full transcode: the cold baseline) and against a default
 *    daemon whose second-and-later criteria hit the cached epoch plan.
 *    The ratio of the medians is `warm_backward_speedup`;
 *  - warm throughput: single-query batches at 1, 4, and 8 concurrent
 *    client connections — queries/sec plus p50/p99 round trip latency.
 *
 * Throughput queries use distinct window ends so no two requests ever
 * dedup into one job: those numbers measure the scheduler, not the
 * dedup table. All results stream to stdout as a table and to
 * BENCH_service.json (webslice-metrics-v1) for tracking across commits.
 *
 * --fleet N (N >= 2) adds a fleet phase: N in-process shards, each on
 * its own socket with its own session cache, serving --fleet-clients
 * concurrent FleetClients (default 32) that route 2N distinct
 * recordings (hardlinked artifact sets with distinct .meta, hence
 * distinct digests) by consistent hashing. Reported: aggregate
 * queries/sec, p50/p99 across all shards, and the fleet-wide session
 * cache hit rate, in a `fleet` section of the JSON report.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.hh"
#include "service/client.hh"
#include "service/router.hh"
#include "service/server.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "trace/trace_file.hh"
#include "scenario/generator.hh"
#include "scenario/run.hh"
#include "workloads/sites.hh"

using namespace webslice;

namespace {

/** Write the .meta sidecar under `name` (the digest-bearing field). */
void
saveMeta(const workloads::RunResult &run,
         const workloads::SiteSpec &spec, const std::string &prefix,
         const std::string &name)
{
    std::ofstream meta(prefix + ".meta");
    meta << "benchmark " << name << '\n';
    meta << "loadCompleteIndex " << run.loadCompleteIndex << '\n';
    meta << "loadOnly "
         << (spec.actions.empty() && spec.lazyJsBytes == 0 ? 1 : 0)
         << '\n';
    for (size_t t = 0; t < run.threadNames().size(); ++t)
        meta << "thread " << t << ' ' << run.threadNames()[t] << '\n';
}

/** Save a run's artifacts the way webslice-record does. */
void
saveArtifacts(const workloads::RunResult &run,
              const workloads::SiteSpec &spec, const std::string &prefix)
{
    trace::TraceWriter writer(prefix + ".trc", /*block_index=*/true);
    for (const auto &rec : run.records())
        writer.append(rec);
    writer.close();
    run.machine->symtab().save(prefix + ".sym");
    run.machine->pixelCriteria().save(prefix + ".crit");
    saveMeta(run, spec, prefix, spec.name);
}

/** Hardlink (or copy) one artifact file to a new prefix. */
void
linkOrCopy(const std::string &from, const std::string &to)
{
    std::remove(to.c_str());
    if (::link(from.c_str(), to.c_str()) == 0)
        return;
    std::ifstream in(from, std::ios::binary);
    std::ofstream out(to, std::ios::binary);
    out << in.rdbuf();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * (sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/**
 * The per-criterion workload: `count` distinct criteria over the one
 * shared (default) window. Distinctness comes from mode x backward-jobs
 * so none of them dedup, yet all of them resolve to the same epoch
 * plan — exactly the "many criteria, one session" pattern the plan
 * cache exists for.
 */
std::vector<service::SliceQuery>
criterionSet(size_t count)
{
    std::vector<service::SliceQuery> queries(count);
    for (size_t i = 0; i < count; ++i) {
        queries[i].mode = i % 2 ? slicer::CriteriaMode::Syscalls
                                : slicer::CriteriaMode::PixelBuffer;
        queries[i].backwardJobs = 1 + static_cast<int>(i / 2);
    }
    return queries;
}

struct CriterionSample
{
    std::vector<double> sliceMs; ///< Backward pass only, per criterion.
    size_t planHits = 0;

    double median() const { return percentile(sliceMs, 50.0); }
    double p99() const { return percentile(sliceMs, 99.0); }
};

/**
 * Run each criterion as its own single-query batch on one connection,
 * sequentially, so the reported slice_ms is undisturbed by sibling
 * queries contending for cores.
 */
CriterionSample
runCriteria(const std::string &socket_path, const std::string &prefix,
            const std::vector<service::SliceQuery> &queries)
{
    service::ServiceClient client;
    std::string error;
    if (!client.connectUnix(socket_path, error)) {
        std::fprintf(stderr, "connect: %s\n", error.c_str());
        std::exit(1);
    }
    CriterionSample sample;
    for (const auto &query : queries) {
        service::ServiceClient::BatchOutcome outcome;
        if (!client.batch(prefix, {query}, outcome, error) ||
            outcome.ok != 1) {
            std::fprintf(stderr, "criterion batch failed: %s\n",
                         error.c_str());
            std::exit(1);
        }
        sample.sliceMs.push_back(outcome.results[0].sliceMs);
        sample.planHits += outcome.results[0].planHit ? 1 : 0;
    }
    return sample;
}

struct WarmSample
{
    int clients = 0;
    size_t queries = 0;
    double wallSeconds = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;

    double queriesPerSecond() const
    {
        return wallSeconds > 0.0 ? queries / wallSeconds : 0.0;
    }
};

/**
 * `clients` concurrent connections each issue `per_client` single-query
 * batches; every query carries a unique window end (derived from the
 * client and iteration indices) so none dedup.
 */
WarmSample
runWarm(const std::string &socket_path, const std::string &prefix,
        int clients, size_t per_client, size_t window_base)
{
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    std::atomic<size_t> failures{0};

    const double t0 = bench::nowSeconds();
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            service::ServiceClient client;
            std::string error;
            if (!client.connectUnix(socket_path, error)) {
                ++failures;
                return;
            }
            for (size_t i = 0; i < per_client; ++i) {
                service::SliceQuery query;
                query.endIndex =
                    window_base - (static_cast<size_t>(c) * per_client + i);
                service::ServiceClient::BatchOutcome outcome;
                const double q0 = bench::nowSeconds();
                if (!client.batch(prefix, {query}, outcome, error) ||
                    outcome.ok != 1) {
                    ++failures;
                    return;
                }
                latencies[c].push_back(
                    (bench::nowSeconds() - q0) * 1e3);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    WarmSample sample;
    sample.clients = clients;
    sample.wallSeconds = bench::nowSeconds() - t0;
    std::vector<double> all;
    for (const auto &per : latencies) {
        sample.queries += per.size();
        all.insert(all.end(), per.begin(), per.end());
    }
    if (failures.load() != 0) {
        std::fprintf(stderr,
                     "service_throughput: %zu client failures at "
                     "%d clients\n",
                     failures.load(), clients);
        std::exit(1);
    }
    sample.p50Ms = percentile(all, 50.0);
    sample.p99Ms = percentile(all, 99.0);
    return sample;
}

struct FleetSample
{
    int shards = 0;
    int clients = 0;
    size_t queries = 0;
    double wallSeconds = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t sessionsBuilt = 0;
    uint64_t failovers = 0;
    uint64_t duplicates = 0;
    uint64_t warmsSent = 0;

    double queriesPerSecond() const
    {
        return wallSeconds > 0.0 ? queries / wallSeconds : 0.0;
    }

    double cacheHitRate() const
    {
        const uint64_t total = cacheHits + cacheMisses;
        return total != 0 ? static_cast<double>(cacheHits) / total : 0.0;
    }
};

/**
 * The fleet phase: `shards` in-process servers, `clients` concurrent
 * FleetClients routing 2*shards distinct recordings (hardlinks of
 * `prefix` with distinct .meta) by digest. Every query carries a
 * unique window end so nothing dedups; latency is aggregated over all
 * clients, cache stats over all shards.
 */
FleetSample
runFleet(const workloads::RunResult &run,
         const workloads::SiteSpec &spec, const std::string &prefix,
         const std::string &tmp_dir, int shards, int clients,
         size_t per_client)
{
    // Distinct recordings: same trace/symtab/criteria bytes, different
    // .meta, therefore different combined digests that spread over the
    // ring.
    std::vector<std::string> prefixes;
    for (int p = 0; p < 2 * shards; ++p) {
        const std::string fp =
            format("%s_fleet%d", prefix.c_str(), p);
        for (const char *ext : {".trc", ".sym", ".crit"})
            linkOrCopy(prefix + ext, fp + ext);
        saveMeta(run, spec, fp,
                 format("%s-fleet-%d", spec.name.c_str(), p));
        prefixes.push_back(fp);
    }

    std::vector<std::unique_ptr<service::Server>> servers;
    std::vector<std::thread> serving;
    std::vector<std::string> endpoints;
    for (int s = 0; s < shards; ++s) {
        service::ServerOptions options;
        options.socketPath =
            format("%s/bench_service_shard%d.sock", tmp_dir.c_str(), s);
        options.workers = 4;
        options.shardId = format("shard-%d", s);
        servers.push_back(
            std::make_unique<service::Server>(options));
        endpoints.push_back(options.socketPath);
    }
    for (auto &server : servers)
        serving.emplace_back([&server] { server->run(); });

    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    std::atomic<size_t> failures{0};
    std::atomic<uint64_t> failovers{0}, duplicates{0}, warms{0};
    const size_t window_base = run.records().size();

    const double t0 = bench::nowSeconds();
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            service::FleetClient fleet(endpoints);
            std::string error;
            for (size_t i = 0; i < per_client; ++i) {
                const size_t global =
                    static_cast<size_t>(c) * per_client + i;
                const std::string &target =
                    prefixes[global % prefixes.size()];
                service::SliceQuery query;
                query.endIndex = window_base - global;
                service::ServiceClient::BatchOutcome outcome;
                const double q0 = bench::nowSeconds();
                if (!fleet.batch(target, {query}, outcome, error) ||
                    outcome.ok != 1) {
                    std::fprintf(stderr,
                                 "fleet client %d: %s\n", c,
                                 error.c_str());
                    ++failures;
                    return;
                }
                latencies[c].push_back(
                    (bench::nowSeconds() - q0) * 1e3);
            }
            const auto stats = fleet.stats();
            failovers += stats.failovers;
            duplicates += stats.duplicates;
            warms += stats.warmsSent;
        });
    }
    for (auto &thread : threads)
        thread.join();

    FleetSample sample;
    sample.shards = shards;
    sample.clients = clients;
    sample.wallSeconds = bench::nowSeconds() - t0;
    std::vector<double> all;
    for (const auto &per : latencies) {
        sample.queries += per.size();
        all.insert(all.end(), per.begin(), per.end());
    }
    sample.p50Ms = percentile(all, 50.0);
    sample.p99Ms = percentile(all, 99.0);
    sample.failovers = failovers.load();
    sample.duplicates = duplicates.load();
    sample.warmsSent = warms.load();

    for (auto &server : servers) {
        const auto cache = server->cache().stats();
        sample.cacheHits += cache.hits;
        sample.cacheMisses += cache.misses;
        sample.sessionsBuilt += cache.built;
        server->requestShutdown();
    }
    for (auto &thread : serving)
        thread.join();

    if (failures.load() != 0) {
        std::fprintf(stderr,
                     "service_throughput: %zu fleet client failures\n",
                     failures.load());
        std::exit(1);
    }

    for (const auto &fp : prefixes)
        for (const char *ext : {".trc", ".sym", ".crit", ".meta"})
            std::remove((fp + ext).c_str());
    return sample;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string site = "bing";
    std::string out_path = "BENCH_service.json";
    size_t queries = 8;
    bool quick = false;
    int fleet_shards = 0;
    int fleet_clients = 32;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--site") && a + 1 < argc) {
            site = argv[++a];
        } else if (!std::strcmp(argv[a], "--queries") && a + 1 < argc) {
            queries = static_cast<size_t>(std::atoi(argv[++a]));
        } else if (!std::strcmp(argv[a], "--out") && a + 1 < argc) {
            out_path = argv[++a];
        } else if (!std::strcmp(argv[a], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[a], "--fleet") && a + 1 < argc) {
            fleet_shards = std::atoi(argv[++a]);
            if (fleet_shards < 2 || fleet_shards > 4) {
                std::fprintf(stderr, "--fleet wants 2..4 shards\n");
                return 1;
            }
        } else if (!std::strcmp(argv[a], "--fleet-clients") &&
                   a + 1 < argc) {
            fleet_clients = std::atoi(argv[++a]);
            if (fleet_clients < 1 || fleet_clients > 64) {
                std::fprintf(stderr, "--fleet-clients wants 1..64\n");
                return 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--site NAME|synth-workers] "
                         "[--queries N] [--out FILE] [--quick] "
                         "[--fleet N] [--fleet-clients N]\n",
                         argv[0]);
            return 1;
        }
    }

    workloads::SiteSpec spec;
    scenario::Scenario synth;
    bool use_synth = false;
    if (site == "bing") {
        spec = workloads::bingSpec();
    } else if (site == "amazon") {
        spec = workloads::amazonDesktopSpec();
    } else if (site == "amazon-mobile") {
        spec = workloads::amazonMobileSpec();
    } else if (site == "maps") {
        spec = workloads::googleMapsSpec();
    } else if (site == "synth-workers") {
        scenario::Knobs knobs;
        knobs.workers = 2;
        synth = scenario::generateScenario(5, knobs);
        spec = synth.site;
        use_synth = true;
    } else {
        std::fprintf(stderr, "unknown site '%s'\n", site.c_str());
        return 1;
    }

    bench::printHeader("slicing service: batch throughput and latency");

    std::fprintf(stderr, "recording '%s'...\n", spec.name.c_str());
    const auto run = use_synth ? scenario::runScenario(synth)
                               : scenario::runSite(spec);
    const char *tmp = std::getenv("TMPDIR");
    const std::string prefix =
        std::string(tmp ? tmp : "/tmp") + "/bench_service_trace";
    const std::string cold_socket =
        std::string(tmp ? tmp : "/tmp") + "/bench_service_cold.sock";
    const std::string socket_path =
        std::string(tmp ? tmp : "/tmp") + "/bench_service.sock";
    saveArtifacts(run, spec, prefix);

    const auto criteria = criterionSet(queries);

    std::printf("site %s: %s records, %zu criteria "
                "(mode x backward-jobs, shared window)\n",
                spec.name.c_str(),
                withCommas(run.records().size()).c_str(), queries);

    // ---- phase 1: plans disabled — session build + cold criteria -----------
    // One throwaway query builds the session so the criterion loop below
    // measures the backward pass alone; with --no-plan-cache semantics
    // every criterion re-transcodes the window from scratch. This is
    // what each query cost before plan caching existed.
    double session_build_ms = 0.0;
    CriterionSample cold;
    {
        service::ServerOptions options;
        options.socketPath = cold_socket;
        options.workers = 2;
        options.usePlans = false;
        service::Server server(options);
        std::thread serving([&] { server.run(); });

        service::ServiceClient client;
        std::string error;
        if (!client.connectUnix(cold_socket, error)) {
            std::fprintf(stderr, "connect: %s\n", error.c_str());
            return 1;
        }
        service::ServiceClient::BatchOutcome outcome;
        if (!client.batch(prefix, {criteria[0]}, outcome, error) ||
            outcome.ok != 1) {
            std::fprintf(stderr, "session build failed: %s\n",
                         error.c_str());
            return 1;
        }
        session_build_ms =
            outcome.results[0].runMs - outcome.results[0].sliceMs;

        cold = runCriteria(cold_socket, prefix, criteria);
        client.close();
        server.requestShutdown();
        serving.join();
    }
    std::printf("  session build (forward pass, once): %8.1f ms\n",
                session_build_ms);
    std::printf("  cold criterion (no plan cache): p50 %8.2f ms  "
                "p99 %8.2f ms\n",
                cold.median(), cold.p99());

    // ---- phase 2: plans enabled — warm criteria + throughput ---------------
    service::ServerOptions options;
    options.socketPath = socket_path;
    options.workers = 8;
    service::Server server(options);
    std::thread serving([&] { server.run(); });

    // Warm-up: builds this daemon's session, the shared epoch plan, and
    // one slice per mode, so the mixed sample below measures what a
    // saturated daemon serves — repeats of already-seen criteria.
    {
        service::ServiceClient client;
        std::string error;
        if (!client.connectUnix(socket_path, error)) {
            std::fprintf(stderr, "connect: %s\n", error.c_str());
            return 1;
        }
        for (size_t i = 0; i < std::min<size_t>(2, criteria.size());
             ++i) {
            service::ServiceClient::BatchOutcome outcome;
            if (!client.batch(prefix, {criteria[i]}, outcome, error) ||
                outcome.ok != 1) {
                std::fprintf(stderr, "plan warm-up failed: %s\n",
                             error.c_str());
                return 1;
            }
        }
    }
    const CriterionSample warm = runCriteria(socket_path, prefix, criteria);

    // The full epoch replay a warm query pays when its criterion is new
    // to the plan: prime a fresh window's plan with a pixel query, then
    // time a syscalls query — a plan hit that cannot be answered from
    // the per-plan result memo.
    CriterionSample plan_walk;
    {
        service::ServiceClient client;
        std::string error;
        if (!client.connectUnix(socket_path, error)) {
            std::fprintf(stderr, "connect: %s\n", error.c_str());
            return 1;
        }
        for (size_t k = 1; k <= 3; ++k) {
            service::SliceQuery prime;
            prime.endIndex = run.records().size() / 2 - k;
            service::SliceQuery probe = prime;
            probe.mode = slicer::CriteriaMode::Syscalls;
            service::ServiceClient::BatchOutcome outcome;
            if (!client.batch(prefix, {prime}, outcome, error) ||
                outcome.ok != 1 ||
                !client.batch(prefix, {probe}, outcome, error) ||
                outcome.ok != 1) {
                std::fprintf(stderr, "plan-walk sample failed: %s\n",
                             error.c_str());
                return 1;
            }
            plan_walk.sliceMs.push_back(outcome.results[0].sliceMs);
            plan_walk.planHits += outcome.results[0].planHit ? 1 : 0;
        }
    }

    const double speedup =
        warm.median() > 0.0 ? cold.median() / warm.median() : 0.0;
    std::printf("  warm criterion (repeat, cached plan + memo): "
                "p50 %8.2f ms  p99 %8.2f ms  (%zu/%zu plan hits)\n",
                warm.median(), warm.p99(), warm.planHits,
                warm.sliceMs.size());
    std::printf("  warm criterion (new to plan, full replay):   "
                "p50 %8.2f ms  (half window, %zu/%zu plan hits)\n",
                plan_walk.median(), plan_walk.planHits,
                plan_walk.sliceMs.size());
    std::printf("  warm_backward_speedup: %.2fx\n\n", speedup);

    // ---- warm throughput at increasing client counts -----------------------
    const size_t per_client = quick ? 4 : 16;
    const size_t window_base = run.records().size();
    std::vector<WarmSample> samples;
    std::printf("%8s %10s %12s %10s %10s\n", "clients", "queries",
                "queries/s", "p50 ms", "p99 ms");
    for (const int clients : {1, 4, 8}) {
        const auto sample = runWarm(socket_path, prefix, clients,
                                    per_client, window_base);
        samples.push_back(sample);
        std::printf("%8d %10zu %12.2f %10.2f %10.2f\n", sample.clients,
                    sample.queries, sample.queriesPerSecond(),
                    sample.p50Ms, sample.p99Ms);
    }

    const auto cache = server.cache().stats();
    std::printf("\nsessions built %llu, cache hits %llu, misses %llu; "
                "plans built %llu, plan hits %llu\n",
                static_cast<unsigned long long>(cache.built),
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.planBuilds),
                static_cast<unsigned long long>(cache.planHits));

    server.requestShutdown();
    serving.join();

    // ---- fleet phase: shards x concurrent fleet clients --------------------
    FleetSample fleet;
    if (fleet_shards >= 2) {
        const size_t fleet_per_client = quick ? 2 : 8;
        std::printf("\nfleet: %d shards, %d clients x %zu queries, "
                    "%d recordings\n",
                    fleet_shards, fleet_clients, fleet_per_client,
                    2 * fleet_shards);
        fleet = runFleet(run, spec, prefix,
                         std::string(tmp ? tmp : "/tmp"), fleet_shards,
                         fleet_clients, fleet_per_client);
        std::printf("  %zu queries in %.2f s: %.2f queries/s, "
                    "p50 %.2f ms, p99 %.2f ms\n",
                    fleet.queries, fleet.wallSeconds,
                    fleet.queriesPerSecond(), fleet.p50Ms, fleet.p99Ms);
        std::printf("  fleet cache hit rate %.1f%% (%llu hits / %llu "
                    "lookups), %llu sessions built, %llu failovers, "
                    "%llu duplicates, %llu warms\n",
                    fleet.cacheHitRate() * 100.0,
                    static_cast<unsigned long long>(fleet.cacheHits),
                    static_cast<unsigned long long>(fleet.cacheHits +
                                                    fleet.cacheMisses),
                    static_cast<unsigned long long>(fleet.sessionsBuilt),
                    static_cast<unsigned long long>(fleet.failovers),
                    static_cast<unsigned long long>(fleet.duplicates),
                    static_cast<unsigned long long>(fleet.warmsSent));
    }

    std::ostringstream extra;
    extra << "{\n"
          << "    \"site\": \"" << jsonEscape(spec.name) << "\",\n"
          << "    \"records\": " << run.records().size() << ",\n"
          << "    \"criteria\": " << queries << ",\n"
          << "    \"session_build_ms\": "
          << format("%.3f", session_build_ms) << ",\n"
          << "    \"cold_criterion_p50_ms\": "
          << format("%.3f", cold.median()) << ",\n"
          << "    \"cold_criterion_p99_ms\": "
          << format("%.3f", cold.p99()) << ",\n"
          << "    \"warm_criterion_p50_ms\": "
          << format("%.3f", warm.median()) << ",\n"
          << "    \"warm_criterion_p99_ms\": "
          << format("%.3f", warm.p99()) << ",\n"
          << "    \"warm_plan_hits\": " << warm.planHits << ",\n"
          << "    \"warm_plan_walk_half_window_p50_ms\": "
          << format("%.3f", plan_walk.median()) << ",\n"
          << "    \"warm_backward_speedup\": "
          << format("%.3f", speedup) << ",\n"
          << "    \"sessions_built\": " << cache.built << ",\n"
          << "    \"plans_built\": " << cache.planBuilds << ",\n"
          << "    \"warm\": [";
    for (size_t i = 0; i < samples.size(); ++i) {
        const auto &s = samples[i];
        if (i)
            extra << ", ";
        extra << "{\"clients\": " << s.clients << ", \"queries\": "
              << s.queries << ", \"queries_per_second\": "
              << format("%.3f", s.queriesPerSecond())
              << ", \"p50_ms\": " << format("%.3f", s.p50Ms)
              << ", \"p99_ms\": " << format("%.3f", s.p99Ms) << "}";
    }
    extra << "]";
    if (fleet.shards >= 2) {
        extra << ",\n    \"fleet\": {\"shards\": " << fleet.shards
              << ", \"clients\": " << fleet.clients
              << ", \"queries\": " << fleet.queries
              << ", \"queries_per_second\": "
              << format("%.3f", fleet.queriesPerSecond())
              << ", \"p50_ms\": " << format("%.3f", fleet.p50Ms)
              << ", \"p99_ms\": " << format("%.3f", fleet.p99Ms)
              << ", \"cache_hit_rate\": "
              << format("%.4f", fleet.cacheHitRate())
              << ", \"cache_hits\": " << fleet.cacheHits
              << ", \"cache_misses\": " << fleet.cacheMisses
              << ", \"sessions_built\": " << fleet.sessionsBuilt
              << ", \"failovers\": " << fleet.failovers
              << ", \"duplicates\": " << fleet.duplicates
              << ", \"warms_sent\": " << fleet.warmsSent << "}";
    }
    extra << "\n  }";

    writeMetricsReport(out_path, MetricRegistry::global(),
                       "service_throughput", {{"service", extra.str()}});
    std::printf("wrote %s\n", out_path.c_str());

    for (const char *ext : {".trc", ".sym", ".crit", ".meta"})
        std::remove((prefix + ext).c_str());
    return 0;
}
