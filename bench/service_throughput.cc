/**
 * @file
 * Slicing-service throughput and latency benchmark.
 *
 *   service_throughput [--site bing|amazon|amazon-mobile|maps]
 *                      [--queries N] [--out FILE] [--quick]
 *
 * Records one benchmark site to a temporary artifact prefix, starts an
 * in-process webslice-served on a Unix socket, and measures the service
 * from a client's point of view:
 *
 *  - cold: the first batch against a fresh daemon, which pays the
 *    forward pass (session build) exactly once;
 *  - warm: single-query batches against the cached session at 1, 4, and
 *    8 concurrent client connections — queries/sec plus p50/p99 round
 *    trip latency.
 *
 * Every warm query uses a distinct window end so no two requests ever
 * dedup into one job: the numbers measure the scheduler, not the dedup
 * table. All results stream to stdout as a table and to BENCH_service
 * .json (webslice-metrics-v1) for tracking across commits.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "trace/trace_file.hh"
#include "workloads/sites.hh"

using namespace webslice;

namespace {

/** Save a run's artifacts the way webslice-record does. */
void
saveArtifacts(const workloads::RunResult &run,
              const workloads::SiteSpec &spec, const std::string &prefix)
{
    trace::TraceWriter writer(prefix + ".trc", /*block_index=*/true);
    for (const auto &rec : run.records())
        writer.append(rec);
    writer.close();
    run.machine->symtab().save(prefix + ".sym");
    run.machine->pixelCriteria().save(prefix + ".crit");
    std::ofstream meta(prefix + ".meta");
    meta << "benchmark " << spec.name << '\n';
    meta << "loadCompleteIndex " << run.loadCompleteIndex << '\n';
    meta << "loadOnly " << (spec.actions.empty() ? 1 : 0) << '\n';
    for (size_t t = 0; t < run.threadNames().size(); ++t)
        meta << "thread " << t << ' ' << run.threadNames()[t] << '\n';
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * (sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct WarmSample
{
    int clients = 0;
    size_t queries = 0;
    double wallSeconds = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;

    double queriesPerSecond() const
    {
        return wallSeconds > 0.0 ? queries / wallSeconds : 0.0;
    }
};

/**
 * `clients` concurrent connections each issue `per_client` single-query
 * batches; every query carries a unique window end (derived from the
 * client and iteration indices) so none dedup.
 */
WarmSample
runWarm(const std::string &socket_path, const std::string &prefix,
        int clients, size_t per_client, size_t window_base)
{
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    std::atomic<size_t> failures{0};

    const double t0 = bench::nowSeconds();
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            service::ServiceClient client;
            std::string error;
            if (!client.connectUnix(socket_path, error)) {
                ++failures;
                return;
            }
            for (size_t i = 0; i < per_client; ++i) {
                service::SliceQuery query;
                query.endIndex =
                    window_base - (static_cast<size_t>(c) * per_client + i);
                service::ServiceClient::BatchOutcome outcome;
                const double q0 = bench::nowSeconds();
                if (!client.batch(prefix, {query}, outcome, error) ||
                    outcome.ok != 1) {
                    ++failures;
                    return;
                }
                latencies[c].push_back(
                    (bench::nowSeconds() - q0) * 1e3);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    WarmSample sample;
    sample.clients = clients;
    sample.wallSeconds = bench::nowSeconds() - t0;
    std::vector<double> all;
    for (const auto &per : latencies) {
        sample.queries += per.size();
        all.insert(all.end(), per.begin(), per.end());
    }
    if (failures.load() != 0) {
        std::fprintf(stderr,
                     "service_throughput: %zu client failures at "
                     "%d clients\n",
                     failures.load(), clients);
        std::exit(1);
    }
    sample.p50Ms = percentile(all, 50.0);
    sample.p99Ms = percentile(all, 99.0);
    return sample;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string site = "bing";
    std::string out_path = "BENCH_service.json";
    size_t queries = 8;
    bool quick = false;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--site") && a + 1 < argc) {
            site = argv[++a];
        } else if (!std::strcmp(argv[a], "--queries") && a + 1 < argc) {
            queries = static_cast<size_t>(std::atoi(argv[++a]));
        } else if (!std::strcmp(argv[a], "--out") && a + 1 < argc) {
            out_path = argv[++a];
        } else if (!std::strcmp(argv[a], "--quick")) {
            quick = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--site NAME] [--queries N] "
                         "[--out FILE] [--quick]\n",
                         argv[0]);
            return 1;
        }
    }

    workloads::SiteSpec spec;
    if (site == "bing") {
        spec = workloads::bingSpec();
    } else if (site == "amazon") {
        spec = workloads::amazonDesktopSpec();
    } else if (site == "amazon-mobile") {
        spec = workloads::amazonMobileSpec();
    } else if (site == "maps") {
        spec = workloads::googleMapsSpec();
    } else {
        std::fprintf(stderr, "unknown site '%s'\n", site.c_str());
        return 1;
    }

    bench::printHeader("slicing service: batch throughput and latency");

    std::fprintf(stderr, "recording '%s'...\n", spec.name.c_str());
    const auto run = workloads::runSite(spec);
    const char *tmp = std::getenv("TMPDIR");
    const std::string prefix =
        std::string(tmp ? tmp : "/tmp") + "/bench_service_trace";
    const std::string socket_path =
        std::string(tmp ? tmp : "/tmp") + "/bench_service.sock";
    saveArtifacts(run, spec, prefix);

    service::ServerOptions options;
    options.socketPath = socket_path;
    options.workers = 8;
    service::Server server(options);
    std::thread serving([&] { server.run(); });

    // ---- cold: one batch pays the forward pass -----------------------------
    std::vector<service::SliceQuery> cold_batch(queries);
    for (size_t i = 0; i < queries; ++i) {
        cold_batch[i].mode = i % 2 ? slicer::CriteriaMode::Syscalls
                                   : slicer::CriteriaMode::PixelBuffer;
        if (i >= 2)
            cold_batch[i].endIndex = run.records().size() - i;
    }
    service::ServiceClient client;
    std::string error;
    if (!client.connectUnix(socket_path, error)) {
        std::fprintf(stderr, "connect: %s\n", error.c_str());
        return 1;
    }
    const double cold0 = bench::nowSeconds();
    service::ServiceClient::BatchOutcome cold_outcome;
    if (!client.batch(prefix, cold_batch, cold_outcome, error) ||
        cold_outcome.ok != queries) {
        std::fprintf(stderr, "cold batch failed: %s\n", error.c_str());
        return 1;
    }
    const double cold_seconds = bench::nowSeconds() - cold0;

    // The same batch again, now against the cached session.
    const double warm0 = bench::nowSeconds();
    service::ServiceClient::BatchOutcome warm_outcome;
    if (!client.batch(prefix, cold_batch, warm_outcome, error) ||
        warm_outcome.ok != queries) {
        std::fprintf(stderr, "warm batch failed: %s\n", error.c_str());
        return 1;
    }
    const double warm_seconds = bench::nowSeconds() - warm0;

    std::printf("site %s: %s records, batch of %zu queries\n",
                spec.name.c_str(),
                withCommas(run.records().size()).c_str(), queries);
    std::printf("  cold batch (builds session): %8.1f ms\n",
                cold_seconds * 1e3);
    std::printf("  warm batch (cached session): %8.1f ms  (%.2fx)\n\n",
                warm_seconds * 1e3,
                warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0);

    // ---- warm throughput at increasing client counts -----------------------
    const size_t per_client = quick ? 4 : 16;
    const size_t window_base = run.records().size();
    std::vector<WarmSample> samples;
    std::printf("%8s %10s %12s %10s %10s\n", "clients", "queries",
                "queries/s", "p50 ms", "p99 ms");
    for (const int clients : {1, 4, 8}) {
        const auto sample = runWarm(socket_path, prefix, clients,
                                    per_client, window_base);
        samples.push_back(sample);
        std::printf("%8d %10zu %12.2f %10.2f %10.2f\n", sample.clients,
                    sample.queries, sample.queriesPerSecond(),
                    sample.p50Ms, sample.p99Ms);
    }

    const auto cache = server.cache().stats();
    std::printf("\nsessions built %llu, cache hits %llu, misses %llu\n",
                static_cast<unsigned long long>(cache.built),
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));

    server.requestShutdown();
    serving.join();

    std::ostringstream extra;
    extra << "{\n"
          << "    \"site\": \"" << jsonEscape(spec.name) << "\",\n"
          << "    \"records\": " << run.records().size() << ",\n"
          << "    \"batch_queries\": " << queries << ",\n"
          << "    \"cold_batch_ms\": "
          << format("%.3f", cold_seconds * 1e3) << ",\n"
          << "    \"warm_batch_ms\": "
          << format("%.3f", warm_seconds * 1e3) << ",\n"
          << "    \"sessions_built\": " << cache.built << ",\n"
          << "    \"warm\": [";
    for (size_t i = 0; i < samples.size(); ++i) {
        const auto &s = samples[i];
        if (i)
            extra << ", ";
        extra << "{\"clients\": " << s.clients << ", \"queries\": "
              << s.queries << ", \"queries_per_second\": "
              << format("%.3f", s.queriesPerSecond())
              << ", \"p50_ms\": " << format("%.3f", s.p50Ms)
              << ", \"p99_ms\": " << format("%.3f", s.p99Ms) << "}";
    }
    extra << "]\n  }";

    writeMetricsReport(out_path, MetricRegistry::global(),
                       "service_throughput", {{"service", extra.str()}});
    std::printf("wrote %s\n", out_path.c_str());

    for (const char *ext : {".trc", ".sym", ".crit", ".meta"})
        std::remove((prefix + ext).c_str());
    return 0;
}
