/**
 * @file
 * Figure 2 — "CPU utilization by the main thread of the tab process
 * while browsing amazon.com."
 *
 * Replays the paper's session (load, scroll down and up a little, two
 * photo-roll clicks, a menu open) and prints the main thread's
 * utilization per 100 ms of virtual time as an ASCII bar chart. The
 * expected shape: a tall plateau during load, near-idle gaps between
 * interactions, and short spikes at each user action.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "support/strings.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "fig2_cpu_utilization: Figure 2 reproduction (amazon.com "
        "browsing session)");

    const auto spec = workloads::amazonFigure2Spec();
    const auto run = scenario::runSite(spec);
    const auto &machine = *run.machine;

    const auto &timeline =
        machine.threadTimeline(run.tab->threads().main);
    const uint64_t bucket_cycles = timeline.bucketWidth();
    const uint64_t cycles_per_ms = spec.browser.cyclesPerMs;
    const uint64_t bucket_ms = bucket_cycles / cycles_per_ms;

    // Aggregate buckets into 100 ms bins.
    const uint64_t bin_ms = 100;
    const uint64_t buckets_per_bin =
        std::max<uint64_t>(1, bin_ms / std::max<uint64_t>(1, bucket_ms));

    std::printf("session: %s\n", spec.name.c_str());
    std::printf("load complete at %llu ms; interactions at 3000/3800/"
                "4800 (scrolls), 6200/7400 (photo roll), 9000 (menu)\n\n",
                static_cast<unsigned long long>(run.tab->loadCompleteMs()));
    std::printf("%8s  %6s  %s\n", "time(ms)", "util%", "main-thread CPU");

    const size_t bins =
        (timeline.bucketCount() + buckets_per_bin - 1) / buckets_per_bin;
    for (size_t bin = 0; bin < bins; ++bin) {
        double executed = 0;
        for (uint64_t b = 0; b < buckets_per_bin; ++b)
            executed += timeline.sum(bin * buckets_per_bin + b);
        const double capacity = static_cast<double>(
            buckets_per_bin * bucket_cycles);
        const double util = 100.0 * executed / capacity;

        std::string bar(static_cast<size_t>(util / 2.0), '#');
        const uint64_t t = bin * bin_ms;
        const char *mark = "";
        if (t <= run.tab->loadCompleteMs() &&
            run.tab->loadCompleteMs() < t + bin_ms) {
            mark = "  <- page loaded";
        }
        std::printf("%8llu  %5.1f%%  %s%s\n",
                    static_cast<unsigned long long>(t), util, bar.c_str(),
                    mark);
    }

    std::printf("\nShape check (paper): utilization is pegged during "
                "load, then mostly idle\nwith brief spikes at each user "
                "interaction.\n");
    return 0;
}
