/**
 * @file
 * What-if bench for the paper's headline opportunity: "deferring
 * processing of JavaScript codes to a time when they are really needed
 * could provide better performance."
 *
 * Runs each benchmark twice — once with the eager Chromium-v58-style
 * engine (every function compiled at script load) and once with lazy
 * compilation (functions compiled at first call; unused functions are
 * only pre-scanned) — and reports the instruction savings, total and on
 * the main thread.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "whatif_lazy_js: the paper's deferred-JS opportunity, "
        "quantified");

    TextTable table;
    table.setHeader({"Benchmark", "Eager instr", "Lazy instr", "Saved",
                     "Main-thread saved", "Load ms eager", "Load ms "
                     "lazy"});

    for (const auto &spec : workloads::paperBenchmarks()) {
        browser::JsEngineConfig eager;
        const auto eager_run = scenario::runSite(spec, eager);

        browser::JsEngineConfig lazy;
        lazy.lazyCompile = true;
        const auto lazy_run = scenario::runSite(spec, lazy);

        auto mainInstr = [](const workloads::RunResult &run) {
            uint64_t count = 0;
            const auto main_tid = run.tab->threads().main;
            for (const auto &rec : run.records()) {
                if (!rec.isPseudo() && rec.tid == main_tid)
                    ++count;
            }
            return count;
        };

        const uint64_t eager_total =
            eager_run.machine->instructionCount();
        const uint64_t lazy_total = lazy_run.machine->instructionCount();
        const uint64_t eager_main = mainInstr(eager_run);
        const uint64_t lazy_main = mainInstr(lazy_run);

        const double saved_total =
            100.0 * (static_cast<double>(eager_total) -
                     static_cast<double>(lazy_total)) /
            static_cast<double>(eager_total);
        const double saved_main =
            100.0 * (static_cast<double>(eager_main) -
                     static_cast<double>(lazy_main)) /
            static_cast<double>(eager_main);
        table.addRow({
            spec.name,
            withCommas(eager_total),
            withCommas(lazy_total),
            format("%.1f%%", saved_total),
            format("%.1f%%", saved_main),
            withCommas(eager_run.tab->loadCompleteMs()),
            withCommas(lazy_run.tab->loadCompleteMs()),
        });
    }

    table.render(std::cout);
    std::printf("\nReading: lazy compilation removes the "
                "parse-and-compile work of functions\nthat never run — "
                "the exact computations the pixel slice flags as "
                "unnecessary.\nSavings track each site's unused-JS share "
                "(Table I), and load time improves\naccordingly.\n");
    return 0;
}
