/**
 * @file
 * Profiler pipeline scaling sweep.
 *
 *   pipeline_scaling [--site bing|bing-load|amazon|amazon-mobile|maps]
 *                    [--max-jobs N] [--reps N] [--out FILE] [--quick]
 *
 * Measures the profiler's two passes over one benchmark trace:
 *  - baseline: the seed pipeline — serial forward pass, backward pass on
 *    the legacy std::unordered_map live sets;
 *  - sweep: the current pipeline at increasing thread counts — parallel
 *    per-function forward pass, and the epoch-parallel backward pass
 *    (transcode/stitch/resolve over trace epochs, slicer/epoch.hh) with
 *    backwardJobs set to the same thread count.
 *
 * Every configuration's slice is verified bit-identical to the baseline
 * before any number is reported. Results go to stdout as a table and to
 * BENCH_profiler.json (machine readable) so the perf trajectory can be
 * tracked across commits; CI uploads the JSON as an artifact.
 *
 * Measurement protocol: with --reps N the baseline and every sweep
 * configuration are measured N times *interleaved* (baseline, then each
 * configuration, repeated), and the reported speedup is the median of
 * the per-rep ratios. On shared or frequency-scaled machines the CPU
 * drifts between phases; measuring baseline and optimized back to back
 * within each rep makes the ratio robust to that drift, where separate
 * best-of phases are not. Throughput columns show each configuration's
 * best rep.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"
#include "scenario/run.hh"
#include "workloads/sites.hh"

using namespace webslice;

namespace {

struct Sample
{
    int jobs = 1;
    double forwardSeconds = 0.0;
    double backwardSeconds = 0.0;
    uint64_t peakLiveSetBytes = 0;

    double totalSeconds() const { return forwardSeconds + backwardSeconds; }
};

/** One timed run of the full pipeline in one configuration. */
Sample
runOnce(const workloads::RunResult &run, int jobs, bool legacy_live_sets,
        const slicer::SliceResult *expect)
{
    Sample s;
    s.jobs = jobs;

    const double t0 = bench::nowSeconds();
    const auto cfgs = graph::buildCfgs(run.records(),
                                       run.machine->symtab(), jobs);
    const auto deps = graph::buildControlDeps(cfgs, jobs);
    const double t1 = bench::nowSeconds();

    slicer::SlicerOptions options = bench::windowedOptions(run);
    options.legacyLiveSets = legacy_live_sets;
    if (!legacy_live_sets)
        options.backwardJobs = jobs;
    const auto slice = slicer::computeSlice(
        run.records(), cfgs, deps, run.machine->pixelCriteria(), options);
    const double t2 = bench::nowSeconds();

    if (expect && slice.inSlice != expect->inSlice) {
        std::fprintf(stderr,
                     "FATAL: slice mismatch at jobs=%d "
                     "(parallel pipeline is not bit-identical)\n",
                     jobs);
        std::exit(1);
    }

    s.forwardSeconds = t1 - t0;
    s.backwardSeconds = t2 - t1;
    s.peakLiveSetBytes = slice.peakLiveMemBytes;
    return s;
}

/** Element-wise best (minimum time) across one configuration's reps. */
Sample
bestOf(const std::vector<Sample> &reps)
{
    Sample best = reps.front();
    for (const Sample &s : reps) {
        best.forwardSeconds = std::min(best.forwardSeconds,
                                       s.forwardSeconds);
        best.backwardSeconds = std::min(best.backwardSeconds,
                                        s.backwardSeconds);
    }
    return best;
}

/** Median of the per-rep baseline/config time ratios for one phase. */
template <typename Seconds>
double
medianSpeedup(const std::vector<Sample> &base,
              const std::vector<Sample> &conf, Seconds seconds)
{
    std::vector<double> ratios;
    ratios.reserve(base.size());
    for (size_t r = 0; r < base.size(); ++r)
        ratios.push_back(seconds(base[r]) / seconds(conf[r]));
    std::sort(ratios.begin(), ratios.end());
    const size_t n = ratios.size();
    return n % 2 ? ratios[n / 2]
                 : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
}

double
totalSpeedup(const std::vector<Sample> &base,
             const std::vector<Sample> &conf)
{
    return medianSpeedup(base, conf,
                         [](const Sample &s) { return s.totalSeconds(); });
}

double
forwardSpeedup(const std::vector<Sample> &base,
               const std::vector<Sample> &conf)
{
    return medianSpeedup(
        base, conf, [](const Sample &s) { return s.forwardSeconds; });
}

double
backwardSpeedup(const std::vector<Sample> &base,
                const std::vector<Sample> &conf)
{
    return medianSpeedup(
        base, conf, [](const Sample &s) { return s.backwardSeconds; });
}

double
recordsPerSec(uint64_t records, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
}

/** One configuration's timing fields (no surrounding braces). */
std::string
sampleFieldsJson(const Sample &s, uint64_t records)
{
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "\"forward_records_per_sec\": %.0f, "
                  "\"backward_records_per_sec\": %.0f, "
                  "\"forward_seconds\": %.6f, "
                  "\"backward_seconds\": %.6f, "
                  "\"peak_live_set_bytes\": %llu",
                  recordsPerSec(records, s.forwardSeconds),
                  recordsPerSec(records, s.backwardSeconds),
                  s.forwardSeconds, s.backwardSeconds,
                  static_cast<unsigned long long>(s.peakLiveSetBytes));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string site = "bing";
    std::string out_path = "BENCH_profiler.json";
    int max_jobs = 8;
    int reps = 3;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--site") && a + 1 < argc) {
            site = argv[++a];
        } else if (!std::strcmp(argv[a], "--max-jobs") && a + 1 < argc) {
            max_jobs = std::atoi(argv[++a]);
        } else if (!std::strcmp(argv[a], "--reps") && a + 1 < argc) {
            reps = std::atoi(argv[++a]);
        } else if (!std::strcmp(argv[a], "--out") && a + 1 < argc) {
            out_path = argv[++a];
        } else if (!std::strcmp(argv[a], "--quick")) {
            // CI configuration: smallest site, short sweep. Reps stay at
            // 3 so the published per-rep ratios keep their drift immunity
            // even in CI.
            site = "amazon-mobile";
            max_jobs = 4;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--site NAME] [--max-jobs N] "
                         "[--reps N] [--out FILE] [--quick]\n",
                         argv[0]);
            return 1;
        }
    }
    if (max_jobs < 1)
        max_jobs = 1;
    if (reps < 1)
        reps = 1;

    workloads::SiteSpec spec;
    if (site == "bing") {
        spec = workloads::bingSpec();
    } else if (site == "bing-load") {
        spec = workloads::withoutBrowseSession(workloads::bingSpec());
    } else if (site == "amazon") {
        spec = workloads::amazonDesktopSpec();
    } else if (site == "amazon-mobile") {
        spec = workloads::amazonMobileSpec();
    } else if (site == "maps") {
        spec = workloads::googleMapsSpec();
    } else {
        std::fprintf(stderr, "unknown site '%s'\n", site.c_str());
        return 1;
    }

    bench::printHeader("Profiler pipeline scaling: threaded forward pass "
                       "+ flat-hash backward pass");

    std::printf("running %s ...\n", spec.name.c_str());
    workloads::RunResult run = [&] {
        ScopedPhase phase("workload");
        return scenario::runSite(spec);
    }();
    const uint64_t records = run.records().size();
    std::printf("trace: %s records, analysis window %s\n\n",
                withCommas(records).c_str(),
                withCommas(bench::analysisEnd(run)).c_str());

    // The baseline's slice is the reference every configuration must
    // reproduce exactly.
    const auto reference = [&] {
        ScopedPhase phase("reference");
        const auto base_cfgs = graph::buildCfgs(run.records(),
                                                run.machine->symtab(), 1);
        const auto base_deps = graph::buildControlDeps(base_cfgs, 1);
        slicer::SlicerOptions base_options = bench::windowedOptions(run);
        base_options.legacyLiveSets = true;
        return slicer::computeSlice(run.records(), base_cfgs, base_deps,
                                    run.machine->pixelCriteria(),
                                    base_options);
    }();

    std::vector<int> job_counts;
    for (int jobs = 1; jobs <= max_jobs; jobs *= 2)
        job_counts.push_back(jobs);
    if (job_counts.back() != max_jobs)
        job_counts.push_back(max_jobs);

    // Interleaved measurement: each rep times the baseline (serial
    // forward pass + legacy unordered_map live sets — the pipeline as it
    // was before this optimization round) back to back with every sweep
    // configuration, so per-rep ratios are immune to machine-speed drift
    // between phases.
    std::vector<Sample> base_reps;
    std::vector<std::vector<Sample>> conf_reps(job_counts.size());
    {
        ScopedPhase phase("measure");
        for (int rep = 0; rep < reps; ++rep) {
            base_reps.push_back(runOnce(run, 1, /*legacy=*/true, nullptr));
            for (size_t c = 0; c < job_counts.size(); ++c)
                conf_reps[c].push_back(runOnce(run, job_counts[c],
                                               /*legacy=*/false,
                                               &reference));
        }
    }

    const Sample base = bestOf(base_reps);
    std::printf("%-28s %12s %12s %9s %9s %9s\n", "configuration",
                "fwd Mrec/s", "bwd Mrec/s", "fwd", "bwd", "total");
    std::printf("%-28s %12.2f %12.2f %8.2fx %8.2fx %8.2fx\n",
                "baseline (seed pipeline)",
                recordsPerSec(records, base.forwardSeconds) / 1e6,
                recordsPerSec(records, base.backwardSeconds) / 1e6, 1.0,
                1.0, 1.0);

    std::vector<Sample> sweep;
    std::vector<double> speedups;
    std::vector<double> fwd_speedups;
    std::vector<double> bwd_speedups;
    double speedup_at_4 = 0.0;
    double bwd_speedup_at_4 = 0.0;
    for (size_t c = 0; c < job_counts.size(); ++c) {
        const Sample s = bestOf(conf_reps[c]);
        const double speedup = totalSpeedup(base_reps, conf_reps[c]);
        const double fwd = forwardSpeedup(base_reps, conf_reps[c]);
        const double bwd = backwardSpeedup(base_reps, conf_reps[c]);
        sweep.push_back(s);
        speedups.push_back(speedup);
        fwd_speedups.push_back(fwd);
        bwd_speedups.push_back(bwd);
        if (job_counts[c] == 4) {
            speedup_at_4 = speedup;
            bwd_speedup_at_4 = bwd;
        }
        std::printf("%-28s %12.2f %12.2f %8.2fx %8.2fx %8.2fx\n",
                    format("optimized, %d job%s", job_counts[c],
                           job_counts[c] == 1 ? "" : "s")
                        .c_str(),
                    recordsPerSec(records, s.forwardSeconds) / 1e6,
                    recordsPerSec(records, s.backwardSeconds) / 1e6, fwd,
                    bwd, speedup);
    }
    std::printf("\nall configurations verified bit-identical to the "
                "baseline slice.\n");

    // ---- machine-readable output -------------------------------------------
    // Same webslice-metrics-v1 schema as `webslice-profile --metrics-json`:
    // phases/counters/gauges from the registry, then the benchmark's own
    // sections as extras.
    std::ostringstream sweep_json;
    sweep_json << "[\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
        sweep_json << "    {\"jobs\": " << sweep[i].jobs << ", "
                   << sampleFieldsJson(sweep[i], records)
                   << format(", \"forward_speedup_vs_baseline\": %.3f",
                             fwd_speedups[i])
                   << format(", \"backward_speedup_vs_baseline\": %.3f",
                             bwd_speedups[i])
                   << format(", \"end_to_end_speedup_vs_baseline\": %.3f}",
                             speedups[i])
                   << (i + 1 < sweep.size() ? ",\n" : "\n");
    }
    sweep_json << "  ]";

    const std::vector<std::pair<std::string, std::string>> extras = {
        {"site", "\"" + jsonEscape(site) + "\""},
        {"records", format("%llu",
                           static_cast<unsigned long long>(records))},
        {"reps", format("%d", reps)},
        {"baseline", "{" + sampleFieldsJson(base, records) + "}"},
        {"sweep", sweep_json.str()},
        {"end_to_end_speedup_at_4_jobs", format("%.3f", speedup_at_4)},
        {"backward_speedup_at_4_jobs", format("%.3f", bwd_speedup_at_4)},
    };
    writeMetricsReport(out_path, MetricRegistry::global(),
                       "pipeline_scaling", extras);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
