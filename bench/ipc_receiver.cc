/**
 * @file
 * The paper's future-work probe: "the IPC category needs more inspection
 * because execution of instructions belonging to this category might
 * have useful effect on the browser's main process."
 *
 * Upper-bounds that usefulness from the tab side: an IPC-category
 * instruction can only matter to the receiver if it feeds the bytes that
 * actually leave through the channel's sendto. Those are exactly the
 * instructions the syscall-criteria slice admits — so the share of
 * IPC-category instructions inside the syscall slice bounds how much of
 * the category receiver-side analysis could ever reclaim.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "ipc_receiver: bounding the receiver-side usefulness of the IPC "
        "category");

    TextTable table;
    table.setHeader({"Benchmark", "IPC instr", "in pixel slice",
                     "in syscall slice", "payload-bound"});

    const auto categorizer = analysis::Categorizer::chromiumDefault();
    for (const auto &spec : workloads::paperBenchmarks()) {
        const auto profiled = bench::profileSite(spec);
        slicer::SlicerOptions sys_options;
        sys_options.mode = slicer::CriteriaMode::Syscalls;
        sys_options = bench::windowedOptions(profiled.run, sys_options);
        const auto sys_slice = bench::resliceWith(profiled, sys_options);

        const size_t window = bench::analysisEnd(profiled.run);
        uint64_t ipc_total = 0, ipc_pixel = 0, ipc_syscall = 0;
        const auto &symtab = profiled.run.machine->symtab();
        for (size_t i = 0; i < window; ++i) {
            if (profiled.records()[i].isPseudo())
                continue;
            const auto func = profiled.cfgs.funcOf[i];
            const std::string name =
                profiled.cfgs.functionName(func, symtab);
            if (categorizer.categoryOf(name) != "IPC")
                continue;
            ++ipc_total;
            ipc_pixel += profiled.slice.inSlice[i] ? 1 : 0;
            ipc_syscall += sys_slice.inSlice[i] ? 1 : 0;
        }

        auto pct = [&](uint64_t n) {
            return ipc_total == 0
                       ? std::string("-")
                       : format("%.1f%%",
                                100.0 * static_cast<double>(n) /
                                    static_cast<double>(ipc_total));
        };
        table.addRow({spec.name, withCommas(ipc_total), pct(ipc_pixel),
                      pct(ipc_syscall), pct(ipc_syscall)});
    }

    table.render(std::cout);
    std::printf("\nReading: under pixel criteria the IPC category is "
                "(almost) entirely\nunnecessary, as the paper found. The "
                "syscall slice shows how much of it feeds\nbytes the "
                "browser process actually receives — the ceiling on what "
                "receiver-side\nanalysis (the paper's future work) could "
                "reclassify as useful; the rest is\nqueue/bookkeeping "
                "overhead that no receiver ever sees.\n");
    return 0;
}
