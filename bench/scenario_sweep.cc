/**
 * @file
 * Sweep the synthetic-scenario generator and slice every recording.
 *
 * The paper's Table II covers four hand-modeled sites; this bench asks
 * the same question — how much of the computation does the pixel slice
 * keep? — across a *family* of generated sites, so the slice statistics
 * can be read as a function of site character (script hotness, DOM
 * depth, stylesheet volume, worker offload) instead of four points.
 *
 * For every (knob setting, seed) member: record the scenario, run both
 * profiler passes, and reslice data-only (control dependences off, the
 * ablation knob) to split the slice into its data-carried core and the
 * extra instructions control dependences pull in. Emits
 * BENCH_scenario.json (schema webslice-scenario-v1) with one entry per
 * member plus per-family means; CI uploads it as an artifact.
 *
 *   scenario_sweep [--seeds A..B] [--quick] [--out FILE]
 *
 * Default: seeds 1..4 across 4 knob settings (16 recordings); --quick
 * cuts to 2 settings x 2 seeds for CI smoke coverage.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "scenario/generator.hh"
#include "scenario/run.hh"
#include "slicer/slicer.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

using namespace webslice;

namespace {

struct FamilySetting
{
    const char *label; ///< Human-readable knob summary.
    scenario::Knobs knobs;
};

std::vector<FamilySetting>
familySettings(bool quick)
{
    using scenario::Level;
    scenario::Knobs js_lo;
    js_lo.jsHotness = Level::Lo;
    scenario::Knobs js_hi;
    js_hi.jsHotness = Level::Hi;
    scenario::Knobs heavy_page;
    heavy_page.domDepth = Level::Hi;
    heavy_page.cssVolume = Level::Hi;
    scenario::Knobs offload;
    offload.workers = 2;

    std::vector<FamilySetting> settings = {
        {"js_hotness=lo", js_lo},
        {"js_hotness=hi", js_hi},
    };
    if (!quick) {
        settings.push_back({"dom_depth=hi css_volume=hi", heavy_page});
        settings.push_back({"workers=2", offload});
    }
    return settings;
}

struct MemberResult
{
    uint64_t seed = 0;
    std::string name;
    uint64_t records = 0;
    uint64_t traceBytes = 0; ///< 32 bytes per record, the v1 payload.
    double slicePercent = 0.0;
    double dataOnlyPercent = 0.0;
    double recordSeconds = 0.0;
    double sliceSeconds = 0.0;
};

MemberResult
profileMember(uint64_t seed, const scenario::Knobs &knobs)
{
    const auto sc = scenario::generateScenario(seed, knobs);

    const double t0 = bench::nowSeconds();
    const auto run = scenario::runScenario(sc);
    const double t1 = bench::nowSeconds();

    slicer::SlicerOptions options;
    const auto cfgs = graph::buildCfgs(run.records(),
                                       run.machine->symtab(),
                                       options.jobs);
    const auto deps = graph::buildControlDeps(cfgs, options.jobs);
    const auto slice = slicer::computeSlice(
        run.records(), cfgs, deps, run.machine->pixelCriteria(),
        bench::windowedOptions(run, options));
    const double t2 = bench::nowSeconds();

    // Ablation reslice: data dependences only. The gap to the full
    // slice is what control dependences (branch conditions and the code
    // computing them) contribute.
    slicer::SlicerOptions data_only = bench::windowedOptions(run, options);
    data_only.includeControlDeps = false;
    const auto data_slice = slicer::computeSlice(
        run.records(), cfgs, deps, run.machine->pixelCriteria(),
        data_only);

    MemberResult member;
    member.seed = seed;
    member.name = sc.name;
    member.records = run.records().size();
    member.traceBytes = run.records().size() * sizeof(trace::Record);
    member.slicePercent = slice.slicePercent();
    member.dataOnlyPercent = data_slice.slicePercent();
    member.recordSeconds = t1 - t0;
    member.sliceSeconds = t2 - t1;
    return member;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed_lo = 1, seed_hi = 4;
    bool quick = false;
    std::string out_path = "BENCH_scenario.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--quick") == 0) {
            quick = true;
            seed_hi = 2;
        } else if (std::strcmp(argv[a], "--seeds") == 0 &&
                   a + 1 < argc) {
            const std::string range = argv[++a];
            const size_t dots = range.find("..");
            fatal_if(dots == std::string::npos,
                     "--seeds needs A..B, got '", range, "'");
            seed_lo = std::strtoull(range.c_str(), nullptr, 0);
            seed_hi = std::strtoull(range.c_str() + dots + 2, nullptr, 0);
        } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
            out_path = argv[++a];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--seeds A..B] [--quick] "
                         "[--out FILE]\n",
                         argv[0]);
            return 1;
        }
    }

    bench::printHeader("Scenario-family slice sweep");

    std::string families_json = "[";
    bool first_family = true;
    for (const auto &setting : familySettings(quick)) {
        std::printf("\n-- family %s, seeds %llu..%llu --\n",
                    setting.label,
                    static_cast<unsigned long long>(seed_lo),
                    static_cast<unsigned long long>(seed_hi));
        std::printf("%6s %12s %12s %9s %9s %8s %8s\n", "seed",
                    "records", "trace B", "slice%", "data%", "rec s",
                    "slice s");

        std::vector<MemberResult> members;
        for (uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
            members.push_back(profileMember(seed, setting.knobs));
            const auto &m = members.back();
            std::printf("%6llu %12llu %12llu %8.1f%% %8.1f%% %8.2f "
                        "%8.2f\n",
                        static_cast<unsigned long long>(m.seed),
                        static_cast<unsigned long long>(m.records),
                        static_cast<unsigned long long>(m.traceBytes),
                        m.slicePercent, m.dataOnlyPercent,
                        m.recordSeconds, m.sliceSeconds);
        }

        double mean_slice = 0, mean_data = 0, mean_rec = 0,
               mean_slice_s = 0;
        uint64_t total_records = 0, total_bytes = 0;
        std::string members_json = "[";
        for (size_t i = 0; i < members.size(); ++i) {
            const auto &m = members[i];
            mean_slice += m.slicePercent;
            mean_data += m.dataOnlyPercent;
            mean_rec += m.recordSeconds;
            mean_slice_s += m.sliceSeconds;
            total_records += m.records;
            total_bytes += m.traceBytes;
            members_json += format(
                "%s\n      {\"seed\": %llu, \"name\": \"%s\", "
                "\"records\": %llu, \"trace_bytes\": %llu, "
                "\"slice_percent\": %.2f, "
                "\"data_only_percent\": %.2f, "
                "\"record_seconds\": %.3f, \"slice_seconds\": %.3f}",
                i ? "," : "",
                static_cast<unsigned long long>(m.seed),
                jsonEscape(m.name).c_str(),
                static_cast<unsigned long long>(m.records),
                static_cast<unsigned long long>(m.traceBytes),
                m.slicePercent, m.dataOnlyPercent, m.recordSeconds,
                m.sliceSeconds);
        }
        members_json += "\n    ]";
        const double n = static_cast<double>(members.size());
        std::printf("  mean slice %.1f%% (data-only %.1f%%, control "
                    "adds %.1f pts) over %s records\n",
                    mean_slice / n, mean_data / n,
                    (mean_slice - mean_data) / n,
                    withCommas(total_records).c_str());

        families_json += format(
            "%s\n  {\"family\": \"%s\", \"mean_slice_percent\": %.2f, "
            "\"mean_data_only_percent\": %.2f, "
            "\"mean_control_points\": %.2f, \"total_records\": %llu, "
            "\"total_trace_bytes\": %llu, \"mean_record_seconds\": "
            "%.3f, \"mean_slice_seconds\": %.3f, \"members\": %s}",
            first_family ? "" : ",", jsonEscape(setting.label).c_str(),
            mean_slice / n, mean_data / n, (mean_slice - mean_data) / n,
            static_cast<unsigned long long>(total_records),
            static_cast<unsigned long long>(total_bytes), mean_rec / n,
            mean_slice_s / n, members_json.c_str());
        first_family = false;
    }
    families_json += "\n]";

    writeMetricsReport(out_path, MetricRegistry::global(),
                       "scenario_sweep",
                       {{"families", families_json}},
                       "webslice-scenario-v1");
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
