/**
 * @file
 * Ablation bench (DESIGN.md extension): what each ingredient of the
 * slicing algorithm contributes, measured on the Amazon desktop
 * benchmark.
 *
 *  - full: data deps (registers + memory) + control deps (the paper's
 *    algorithm);
 *  - no-control-deps: drop the pending-branch mechanism — branches and
 *    the code computing their conditions leave the slice;
 *  - memory-only: drop register liveness — approximates slices by
 *    address liveness alone (shows why the paper tracks the CPU context
 *    per thread).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

int
main()
{
    bench::printHeader(
        "ablation_slicing: contribution of control deps and register "
        "liveness");

    const auto spec = workloads::amazonDesktopSpec();
    const auto profiled = bench::profileSite(spec);

    slicer::SlicerOptions no_control =
        bench::windowedOptions(profiled.run);
    no_control.includeControlDeps = false;
    const auto no_control_slice =
        bench::resliceWith(profiled, no_control);

    slicer::SlicerOptions memory_only =
        bench::windowedOptions(profiled.run);
    memory_only.includeRegisterDeps = false;
    const auto memory_only_slice =
        bench::resliceWith(profiled, memory_only);

    TextTable table;
    table.setHeader({"Variant", "Slice", "Delta vs full",
                     "Peak pending branches"});
    auto row = [&](const char *name, const slicer::SliceResult &result) {
        table.addRow({name, format("%.1f%%", result.slicePercent()),
                      format("%+.1f", result.slicePercent() -
                                          profiled.slice.slicePercent()),
                      withCommas(result.peakPendingBranches)});
    };
    row("full (paper algorithm)", profiled.slice);
    row("no control dependences", no_control_slice);
    row("memory-only liveness", memory_only_slice);
    table.render(std::cout);

    std::printf("\nReading: dropping control dependences undercounts the "
                "slice (branch chains\nvanish); memory-only liveness "
                "distorts it in both directions (register-carried\nflow "
                "is lost, address-liveness admits false positives). The "
                "full algorithm is\nwhat the paper runs.\n");
    return 0;
}
