/**
 * @file
 * Shared infrastructure for the benchmark harnesses: run a benchmark
 * site, execute the profiler's forward and backward passes, and cache
 * the pieces every table/figure needs.
 */

#ifndef WEBSLICE_BENCH_BENCH_UTIL_HH
#define WEBSLICE_BENCH_BENCH_UTIL_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/categorize.hh"
#include "analysis/progress.hh"
#include "analysis/thread_stats.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "scenario/run.hh"
#include "workloads/sites.hh"

namespace webslice {
namespace bench {

/** A fully profiled benchmark: the run plus both profiler passes. */
struct ProfiledRun
{
    workloads::RunResult run;
    graph::CfgSet cfgs;
    graph::ControlDepMap deps;
    slicer::SliceResult slice;

    double workloadSeconds = 0.0;
    double forwardSeconds = 0.0;
    double backwardSeconds = 0.0;

    const std::vector<trace::Record> &records() const
    {
        return run.records();
    }
};

/**
 * Run one benchmark and both profiler passes (pixel criteria unless
 * overridden). When apply_window is true (default), load-only benchmarks
 * are sliced up to the load-complete point, mirroring the paper's trace
 * boundaries.
 */
ProfiledRun profileSite(const workloads::SiteSpec &spec,
                        const slicer::SlicerOptions &options = {},
                        bool apply_window = true);

/**
 * Re-slice an already-profiled run with different options (reuses the
 * forward pass, as the paper notes the stored CDG allows).
 */
slicer::SliceResult resliceWith(const ProfiledRun &profiled,
                                const slicer::SlicerOptions &options);

/** Wall-clock helper. */
double nowSeconds();

/** Print a standard header for a bench binary. */
void printHeader(const std::string &title);

/**
 * Analysis window for a benchmark: load-only benchmarks (no scripted
 * actions) are analyzed up to the load-complete point, exactly like the
 * paper's traces that end when the page finishes loading; browse
 * benchmarks cover the whole session.
 */
size_t analysisEnd(const workloads::RunResult &run);

/** Slicer options with the benchmark's analysis window applied. */
slicer::SlicerOptions windowedOptions(const workloads::RunResult &run,
                                      slicer::SlicerOptions base = {});

/** The paper's reference numbers, for side-by-side printing. */
struct PaperTable2Row
{
    const char *benchmark;
    double all, main, compositor;
    double raster1, raster2, raster3; ///< -1 when the thread is absent
    const char *totalInstructions;
};

/** Table II reference rows in benchmark order. */
const std::vector<PaperTable2Row> &paperTable2();

} // namespace bench
} // namespace webslice

#endif // WEBSLICE_BENCH_BENCH_UTIL_HH
