#include "bench/bench_util.hh"

#include <chrono>
#include <cstdio>

namespace webslice {
namespace bench {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

ProfiledRun
profileSite(const workloads::SiteSpec &spec,
            const slicer::SlicerOptions &options, bool apply_window)
{
    ProfiledRun out;

    double t0 = nowSeconds();
    out.run = scenario::runSite(spec);
    double t1 = nowSeconds();
    out.cfgs = graph::buildCfgs(out.run.records(),
                                out.run.machine->symtab(), options.jobs);
    out.deps = graph::buildControlDeps(out.cfgs, options.jobs);
    double t2 = nowSeconds();
    slicer::SlicerOptions effective = options;
    if (apply_window)
        effective = windowedOptions(out.run, effective);
    out.slice = slicer::computeSlice(out.run.records(), out.cfgs,
                                     out.deps,
                                     out.run.machine->pixelCriteria(),
                                     effective);
    double t3 = nowSeconds();

    out.workloadSeconds = t1 - t0;
    out.forwardSeconds = t2 - t1;
    out.backwardSeconds = t3 - t2;
    return out;
}

slicer::SliceResult
resliceWith(const ProfiledRun &profiled,
            const slicer::SlicerOptions &options)
{
    return slicer::computeSlice(profiled.records(), profiled.cfgs,
                                profiled.deps,
                                profiled.run.machine->pixelCriteria(),
                                options);
}

size_t
analysisEnd(const workloads::RunResult &run)
{
    if (run.spec.actions.empty())
        return run.loadCompleteIndex;
    return run.records().size();
}

slicer::SlicerOptions
windowedOptions(const workloads::RunResult &run,
                slicer::SlicerOptions base)
{
    base.endIndex = analysisEnd(run);
    return base;
}

const std::vector<PaperTable2Row> &
paperTable2()
{
    static const std::vector<PaperTable2Row> rows = {
        {"Amazon (desktop view): Load", 46, 52, 34, 55, 60, 54,
         "6,217 M"},
        {"Amazon (mobile view): Load", 43, 59, 35, 14, 13, -1,
         "2,861 M"},
        {"Google Maps: Load", 47, 61, 35, 78, 74, -1, "4,238 M"},
        {"Bing: Load + Browse", 43, 44, 34, 71, 52, -1, "10,494 M"},
    };
    return rows;
}

void
printHeader(const std::string &title)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduction of: Characterization of Unnecessary "
                "Computations in Web Applications\n");
    std::printf("(ISPASS 2019). Substrate: traced virtual machine + "
                "miniature browser; shapes, not\n");
    std::printf("absolute magnitudes, are the comparison target — see "
                "EXPERIMENTS.md.\n");
    std::printf("==========================================================="
                "=====================\n\n");
}

} // namespace bench
} // namespace webslice
