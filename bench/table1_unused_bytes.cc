/**
 * @file
 * Table I — "Unused JavaScript and CSS code bytes."
 *
 * For Amazon, Bing, and Google Maps this runs a load-only session and a
 * load+browse session, then reports total vs unused JS+CSS bytes the way
 * the paper measured them with DevTools coverage: a script byte is used
 * once its function has executed, a stylesheet byte once its rule has
 * matched an element. Absolute byte counts are the paper's scaled by
 * kContentScale; the percentages are the reproduction target.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "support/strings.hh"
#include "support/table.hh"

using namespace webslice;

namespace {

struct PaperRow
{
    const char *unusedLoad;
    const char *totalLoad;
    double pctLoad;
    const char *unusedBrowse;
    const char *totalBrowse;
    double pctBrowse;
};

void
addRows(TextTable &table, const std::string &site, const char *phase,
        const workloads::RunResult &run, const char *paper_unused,
        const char *paper_total, double paper_pct)
{
    const double pct = 100.0 * static_cast<double>(run.unusedBytes()) /
                       static_cast<double>(run.totalBytes());
    table.addRow({site, phase, humanBytes(run.unusedBytes()),
                  humanBytes(run.totalBytes()), format("%.0f%%", pct),
                  format("%s / %s / %.0f%%", paper_unused, paper_total,
                         paper_pct)});
}

} // namespace

int
main()
{
    bench::printHeader("table1_unused_bytes: Table I reproduction");

    // Paper values: unused / total / percentage.
    const PaperRow paper_amazon = {"955 KB", "1.6 MB", 58,
                                   "882 KB", "1.6 MB", 54};
    const PaperRow paper_bing = {"103 KB", "199 KB", 52,
                                 "82.5 KB", "206 KB", 40};
    const PaperRow paper_maps = {"1.9 MB", "3.9 MB", 49,
                                 "2.0 MB", "4.6 MB", 43};

    TextTable table;
    table.setHeader({"Website", "Phase", "Unused bytes", "Total bytes",
                     "Pct", "Paper (unused/total/pct)"});

    struct Case
    {
        workloads::SiteSpec load_spec;
        workloads::SiteSpec browse_spec;
        PaperRow paper;
        const char *site;
    };
    const std::vector<Case> cases = {
        {workloads::amazonDesktopSpec(),
         workloads::withBrowseSession(workloads::amazonDesktopSpec()),
         paper_amazon, "Amazon"},
        {workloads::withoutBrowseSession(workloads::bingSpec()),
         workloads::bingSpec(), paper_bing, "Bing"},
        {workloads::googleMapsSpec(),
         workloads::withBrowseSession(workloads::googleMapsSpec()),
         paper_maps, "Google Maps"},
    };

    for (const auto &test_case : cases) {
        const auto load_run = scenario::runSite(test_case.load_spec);
        addRows(table, test_case.site, "Only Load", load_run,
                test_case.paper.unusedLoad, test_case.paper.totalLoad,
                test_case.paper.pctLoad);

        const auto browse_run = scenario::runSite(test_case.browse_spec);
        addRows(table, test_case.site, "Load and Browse", browse_run,
                test_case.paper.unusedBrowse,
                test_case.paper.totalBrowse,
                test_case.paper.pctBrowse);
        table.addSeparator();
    }

    table.render(std::cout);
    std::printf("\nNotes: byte volumes are the paper's scaled by %.3f "
                "(benchmark-sized traces);\n"
                "percentages are scale-invariant. Browsing lowers the "
                "unused share everywhere,\n"
                "and Bing/Google Maps download additional script while "
                "being browsed — both\n"
                "paper findings.\n",
                workloads::kContentScale);
    return 0;
}
