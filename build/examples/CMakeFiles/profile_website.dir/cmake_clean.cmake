file(REMOVE_RECURSE
  "CMakeFiles/profile_website.dir/profile_website.cpp.o"
  "CMakeFiles/profile_website.dir/profile_website.cpp.o.d"
  "profile_website"
  "profile_website.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_website.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
