# Empty compiler generated dependencies file for profile_website.
# This may be replaced when dependencies are built.
