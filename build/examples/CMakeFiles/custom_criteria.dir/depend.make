# Empty dependencies file for custom_criteria.
# This may be replaced when dependencies are built.
