file(REMOVE_RECURSE
  "CMakeFiles/custom_criteria.dir/custom_criteria.cpp.o"
  "CMakeFiles/custom_criteria.dir/custom_criteria.cpp.o.d"
  "custom_criteria"
  "custom_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
