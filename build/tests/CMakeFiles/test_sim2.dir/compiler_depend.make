# Empty compiler generated dependencies file for test_sim2.
# This may be replaced when dependencies are built.
