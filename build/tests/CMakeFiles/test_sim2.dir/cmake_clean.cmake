file(REMOVE_RECURSE
  "CMakeFiles/test_sim2.dir/test_sim2.cc.o"
  "CMakeFiles/test_sim2.dir/test_sim2.cc.o.d"
  "test_sim2"
  "test_sim2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
