file(REMOVE_RECURSE
  "CMakeFiles/test_browser.dir/test_browser.cc.o"
  "CMakeFiles/test_browser.dir/test_browser.cc.o.d"
  "test_browser"
  "test_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
