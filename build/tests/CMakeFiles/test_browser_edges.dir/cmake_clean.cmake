file(REMOVE_RECURSE
  "CMakeFiles/test_browser_edges.dir/test_browser_edges.cc.o"
  "CMakeFiles/test_browser_edges.dir/test_browser_edges.cc.o.d"
  "test_browser_edges"
  "test_browser_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_browser_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
