file(REMOVE_RECURSE
  "CMakeFiles/test_browser2.dir/test_browser2.cc.o"
  "CMakeFiles/test_browser2.dir/test_browser2.cc.o.d"
  "test_browser2"
  "test_browser2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_browser2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
