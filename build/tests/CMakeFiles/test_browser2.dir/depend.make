# Empty dependencies file for test_browser2.
# This may be replaced when dependencies are built.
