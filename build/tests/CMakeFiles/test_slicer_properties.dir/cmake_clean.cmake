file(REMOVE_RECURSE
  "CMakeFiles/test_slicer_properties.dir/test_slicer_properties.cc.o"
  "CMakeFiles/test_slicer_properties.dir/test_slicer_properties.cc.o.d"
  "test_slicer_properties"
  "test_slicer_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slicer_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
