# Empty compiler generated dependencies file for test_slicer_properties.
# This may be replaced when dependencies are built.
