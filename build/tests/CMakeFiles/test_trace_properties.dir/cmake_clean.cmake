file(REMOVE_RECURSE
  "CMakeFiles/test_trace_properties.dir/test_trace_properties.cc.o"
  "CMakeFiles/test_trace_properties.dir/test_trace_properties.cc.o.d"
  "test_trace_properties"
  "test_trace_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
