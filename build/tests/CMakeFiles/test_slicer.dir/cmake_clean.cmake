file(REMOVE_RECURSE
  "CMakeFiles/test_slicer.dir/test_slicer.cc.o"
  "CMakeFiles/test_slicer.dir/test_slicer.cc.o.d"
  "test_slicer"
  "test_slicer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
