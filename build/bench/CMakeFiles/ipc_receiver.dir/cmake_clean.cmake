file(REMOVE_RECURSE
  "CMakeFiles/ipc_receiver.dir/ipc_receiver.cc.o"
  "CMakeFiles/ipc_receiver.dir/ipc_receiver.cc.o.d"
  "ipc_receiver"
  "ipc_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
