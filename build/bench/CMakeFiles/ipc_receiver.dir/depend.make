# Empty dependencies file for ipc_receiver.
# This may be replaced when dependencies are built.
