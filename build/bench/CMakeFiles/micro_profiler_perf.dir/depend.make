# Empty dependencies file for micro_profiler_perf.
# This may be replaced when dependencies are built.
