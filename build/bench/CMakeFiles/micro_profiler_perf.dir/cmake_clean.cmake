file(REMOVE_RECURSE
  "CMakeFiles/micro_profiler_perf.dir/micro_profiler_perf.cc.o"
  "CMakeFiles/micro_profiler_perf.dir/micro_profiler_perf.cc.o.d"
  "micro_profiler_perf"
  "micro_profiler_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_profiler_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
