# Empty compiler generated dependencies file for fig4_backward_progress.
# This may be replaced when dependencies are built.
