file(REMOVE_RECURSE
  "CMakeFiles/fig4_backward_progress.dir/fig4_backward_progress.cc.o"
  "CMakeFiles/fig4_backward_progress.dir/fig4_backward_progress.cc.o.d"
  "fig4_backward_progress"
  "fig4_backward_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_backward_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
