file(REMOVE_RECURSE
  "CMakeFiles/whatif_lazy_js.dir/whatif_lazy_js.cc.o"
  "CMakeFiles/whatif_lazy_js.dir/whatif_lazy_js.cc.o.d"
  "whatif_lazy_js"
  "whatif_lazy_js.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_lazy_js.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
