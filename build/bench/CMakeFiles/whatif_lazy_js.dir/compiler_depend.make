# Empty compiler generated dependencies file for whatif_lazy_js.
# This may be replaced when dependencies are built.
