file(REMOVE_RECURSE
  "CMakeFiles/fig5_categorization.dir/fig5_categorization.cc.o"
  "CMakeFiles/fig5_categorization.dir/fig5_categorization.cc.o.d"
  "fig5_categorization"
  "fig5_categorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_categorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
