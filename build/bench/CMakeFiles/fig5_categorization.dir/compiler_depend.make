# Empty compiler generated dependencies file for fig5_categorization.
# This may be replaced when dependencies are built.
