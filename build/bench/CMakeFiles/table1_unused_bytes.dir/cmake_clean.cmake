file(REMOVE_RECURSE
  "CMakeFiles/table1_unused_bytes.dir/table1_unused_bytes.cc.o"
  "CMakeFiles/table1_unused_bytes.dir/table1_unused_bytes.cc.o.d"
  "table1_unused_bytes"
  "table1_unused_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_unused_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
