# Empty dependencies file for table1_unused_bytes.
# This may be replaced when dependencies are built.
