file(REMOVE_RECURSE
  "../lib/libwebslice_benchutil.a"
  "../lib/libwebslice_benchutil.pdb"
  "CMakeFiles/webslice_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/webslice_benchutil.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
