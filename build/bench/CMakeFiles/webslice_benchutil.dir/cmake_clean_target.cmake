file(REMOVE_RECURSE
  "../lib/libwebslice_benchutil.a"
)
