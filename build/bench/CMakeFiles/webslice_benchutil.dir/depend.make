# Empty dependencies file for webslice_benchutil.
# This may be replaced when dependencies are built.
