file(REMOVE_RECURSE
  "CMakeFiles/fig2_cpu_utilization.dir/fig2_cpu_utilization.cc.o"
  "CMakeFiles/fig2_cpu_utilization.dir/fig2_cpu_utilization.cc.o.d"
  "fig2_cpu_utilization"
  "fig2_cpu_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
