# Empty compiler generated dependencies file for function_hotlist.
# This may be replaced when dependencies are built.
