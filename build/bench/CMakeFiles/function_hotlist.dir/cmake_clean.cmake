file(REMOVE_RECURSE
  "CMakeFiles/function_hotlist.dir/function_hotlist.cc.o"
  "CMakeFiles/function_hotlist.dir/function_hotlist.cc.o.d"
  "function_hotlist"
  "function_hotlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_hotlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
