# Empty compiler generated dependencies file for text_bing_load_vs_full.
# This may be replaced when dependencies are built.
