file(REMOVE_RECURSE
  "CMakeFiles/text_bing_load_vs_full.dir/text_bing_load_vs_full.cc.o"
  "CMakeFiles/text_bing_load_vs_full.dir/text_bing_load_vs_full.cc.o.d"
  "text_bing_load_vs_full"
  "text_bing_load_vs_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_bing_load_vs_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
