# Empty compiler generated dependencies file for site_stats.
# This may be replaced when dependencies are built.
