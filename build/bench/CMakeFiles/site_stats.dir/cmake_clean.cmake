file(REMOVE_RECURSE
  "CMakeFiles/site_stats.dir/site_stats.cc.o"
  "CMakeFiles/site_stats.dir/site_stats.cc.o.d"
  "site_stats"
  "site_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
