file(REMOVE_RECURSE
  "CMakeFiles/text_syscall_vs_pixel.dir/text_syscall_vs_pixel.cc.o"
  "CMakeFiles/text_syscall_vs_pixel.dir/text_syscall_vs_pixel.cc.o.d"
  "text_syscall_vs_pixel"
  "text_syscall_vs_pixel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_syscall_vs_pixel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
