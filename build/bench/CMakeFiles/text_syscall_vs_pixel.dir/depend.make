# Empty dependencies file for text_syscall_vs_pixel.
# This may be replaced when dependencies are built.
