file(REMOVE_RECURSE
  "CMakeFiles/webslice_trace.dir/criteria.cc.o"
  "CMakeFiles/webslice_trace.dir/criteria.cc.o.d"
  "CMakeFiles/webslice_trace.dir/symtab.cc.o"
  "CMakeFiles/webslice_trace.dir/symtab.cc.o.d"
  "CMakeFiles/webslice_trace.dir/trace_file.cc.o"
  "CMakeFiles/webslice_trace.dir/trace_file.cc.o.d"
  "libwebslice_trace.a"
  "libwebslice_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
