file(REMOVE_RECURSE
  "libwebslice_trace.a"
)
