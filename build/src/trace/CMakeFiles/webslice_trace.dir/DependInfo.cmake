
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/criteria.cc" "src/trace/CMakeFiles/webslice_trace.dir/criteria.cc.o" "gcc" "src/trace/CMakeFiles/webslice_trace.dir/criteria.cc.o.d"
  "/root/repo/src/trace/symtab.cc" "src/trace/CMakeFiles/webslice_trace.dir/symtab.cc.o" "gcc" "src/trace/CMakeFiles/webslice_trace.dir/symtab.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/webslice_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/webslice_trace.dir/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/webslice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
