# Empty dependencies file for webslice_trace.
# This may be replaced when dependencies are built.
