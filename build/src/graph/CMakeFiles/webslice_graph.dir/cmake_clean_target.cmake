file(REMOVE_RECURSE
  "libwebslice_graph.a"
)
