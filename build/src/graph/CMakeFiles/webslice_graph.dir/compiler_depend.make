# Empty compiler generated dependencies file for webslice_graph.
# This may be replaced when dependencies are built.
