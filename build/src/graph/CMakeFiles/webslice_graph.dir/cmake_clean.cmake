file(REMOVE_RECURSE
  "CMakeFiles/webslice_graph.dir/cfg.cc.o"
  "CMakeFiles/webslice_graph.dir/cfg.cc.o.d"
  "CMakeFiles/webslice_graph.dir/control_deps.cc.o"
  "CMakeFiles/webslice_graph.dir/control_deps.cc.o.d"
  "CMakeFiles/webslice_graph.dir/postdom.cc.o"
  "CMakeFiles/webslice_graph.dir/postdom.cc.o.d"
  "libwebslice_graph.a"
  "libwebslice_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
