# Empty dependencies file for webslice_support.
# This may be replaced when dependencies are built.
