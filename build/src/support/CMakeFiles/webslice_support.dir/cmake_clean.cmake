file(REMOVE_RECURSE
  "CMakeFiles/webslice_support.dir/logging.cc.o"
  "CMakeFiles/webslice_support.dir/logging.cc.o.d"
  "CMakeFiles/webslice_support.dir/strings.cc.o"
  "CMakeFiles/webslice_support.dir/strings.cc.o.d"
  "CMakeFiles/webslice_support.dir/table.cc.o"
  "CMakeFiles/webslice_support.dir/table.cc.o.d"
  "libwebslice_support.a"
  "libwebslice_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
