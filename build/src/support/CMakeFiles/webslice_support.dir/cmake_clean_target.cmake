file(REMOVE_RECURSE
  "libwebslice_support.a"
)
