file(REMOVE_RECURSE
  "libwebslice_workloads.a"
)
