file(REMOVE_RECURSE
  "CMakeFiles/webslice_workloads.dir/content.cc.o"
  "CMakeFiles/webslice_workloads.dir/content.cc.o.d"
  "CMakeFiles/webslice_workloads.dir/sites.cc.o"
  "CMakeFiles/webslice_workloads.dir/sites.cc.o.d"
  "libwebslice_workloads.a"
  "libwebslice_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
