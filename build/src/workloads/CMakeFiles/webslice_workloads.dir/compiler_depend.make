# Empty compiler generated dependencies file for webslice_workloads.
# This may be replaced when dependencies are built.
