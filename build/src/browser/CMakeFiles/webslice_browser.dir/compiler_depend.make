# Empty compiler generated dependencies file for webslice_browser.
# This may be replaced when dependencies are built.
