
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/common.cc" "src/browser/CMakeFiles/webslice_browser.dir/common.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/common.cc.o.d"
  "/root/repo/src/browser/compositor.cc" "src/browser/CMakeFiles/webslice_browser.dir/compositor.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/compositor.cc.o.d"
  "/root/repo/src/browser/css.cc" "src/browser/CMakeFiles/webslice_browser.dir/css.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/css.cc.o.d"
  "/root/repo/src/browser/debugging.cc" "src/browser/CMakeFiles/webslice_browser.dir/debugging.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/debugging.cc.o.d"
  "/root/repo/src/browser/dom.cc" "src/browser/CMakeFiles/webslice_browser.dir/dom.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/dom.cc.o.d"
  "/root/repo/src/browser/html_parser.cc" "src/browser/CMakeFiles/webslice_browser.dir/html_parser.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/html_parser.cc.o.d"
  "/root/repo/src/browser/image.cc" "src/browser/CMakeFiles/webslice_browser.dir/image.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/image.cc.o.d"
  "/root/repo/src/browser/ipc.cc" "src/browser/CMakeFiles/webslice_browser.dir/ipc.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/ipc.cc.o.d"
  "/root/repo/src/browser/js.cc" "src/browser/CMakeFiles/webslice_browser.dir/js.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/js.cc.o.d"
  "/root/repo/src/browser/layout.cc" "src/browser/CMakeFiles/webslice_browser.dir/layout.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/layout.cc.o.d"
  "/root/repo/src/browser/lib.cc" "src/browser/CMakeFiles/webslice_browser.dir/lib.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/lib.cc.o.d"
  "/root/repo/src/browser/net.cc" "src/browser/CMakeFiles/webslice_browser.dir/net.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/net.cc.o.d"
  "/root/repo/src/browser/paint.cc" "src/browser/CMakeFiles/webslice_browser.dir/paint.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/paint.cc.o.d"
  "/root/repo/src/browser/raster.cc" "src/browser/CMakeFiles/webslice_browser.dir/raster.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/raster.cc.o.d"
  "/root/repo/src/browser/tab.cc" "src/browser/CMakeFiles/webslice_browser.dir/tab.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/tab.cc.o.d"
  "/root/repo/src/browser/threading.cc" "src/browser/CMakeFiles/webslice_browser.dir/threading.cc.o" "gcc" "src/browser/CMakeFiles/webslice_browser.dir/threading.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/webslice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/webslice_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/webslice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
