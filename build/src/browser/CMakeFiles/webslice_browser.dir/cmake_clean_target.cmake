file(REMOVE_RECURSE
  "libwebslice_browser.a"
)
