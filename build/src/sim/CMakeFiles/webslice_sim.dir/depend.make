# Empty dependencies file for webslice_sim.
# This may be replaced when dependencies are built.
