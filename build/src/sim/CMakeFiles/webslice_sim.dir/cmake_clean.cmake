file(REMOVE_RECURSE
  "CMakeFiles/webslice_sim.dir/machine.cc.o"
  "CMakeFiles/webslice_sim.dir/machine.cc.o.d"
  "CMakeFiles/webslice_sim.dir/memory.cc.o"
  "CMakeFiles/webslice_sim.dir/memory.cc.o.d"
  "libwebslice_sim.a"
  "libwebslice_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
