file(REMOVE_RECURSE
  "libwebslice_sim.a"
)
