
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/categorize.cc" "src/analysis/CMakeFiles/webslice_analysis.dir/categorize.cc.o" "gcc" "src/analysis/CMakeFiles/webslice_analysis.dir/categorize.cc.o.d"
  "/root/repo/src/analysis/function_stats.cc" "src/analysis/CMakeFiles/webslice_analysis.dir/function_stats.cc.o" "gcc" "src/analysis/CMakeFiles/webslice_analysis.dir/function_stats.cc.o.d"
  "/root/repo/src/analysis/progress.cc" "src/analysis/CMakeFiles/webslice_analysis.dir/progress.cc.o" "gcc" "src/analysis/CMakeFiles/webslice_analysis.dir/progress.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/webslice_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/webslice_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/thread_stats.cc" "src/analysis/CMakeFiles/webslice_analysis.dir/thread_stats.cc.o" "gcc" "src/analysis/CMakeFiles/webslice_analysis.dir/thread_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slicer/CMakeFiles/webslice_slicer.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/webslice_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/webslice_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/webslice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
