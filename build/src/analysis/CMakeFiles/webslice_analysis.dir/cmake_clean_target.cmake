file(REMOVE_RECURSE
  "libwebslice_analysis.a"
)
