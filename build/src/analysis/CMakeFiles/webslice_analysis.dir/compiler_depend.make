# Empty compiler generated dependencies file for webslice_analysis.
# This may be replaced when dependencies are built.
