file(REMOVE_RECURSE
  "CMakeFiles/webslice_analysis.dir/categorize.cc.o"
  "CMakeFiles/webslice_analysis.dir/categorize.cc.o.d"
  "CMakeFiles/webslice_analysis.dir/function_stats.cc.o"
  "CMakeFiles/webslice_analysis.dir/function_stats.cc.o.d"
  "CMakeFiles/webslice_analysis.dir/progress.cc.o"
  "CMakeFiles/webslice_analysis.dir/progress.cc.o.d"
  "CMakeFiles/webslice_analysis.dir/report.cc.o"
  "CMakeFiles/webslice_analysis.dir/report.cc.o.d"
  "CMakeFiles/webslice_analysis.dir/thread_stats.cc.o"
  "CMakeFiles/webslice_analysis.dir/thread_stats.cc.o.d"
  "libwebslice_analysis.a"
  "libwebslice_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
