# Empty dependencies file for webslice_analysis.
# This may be replaced when dependencies are built.
