file(REMOVE_RECURSE
  "CMakeFiles/webslice_slicer.dir/slicer.cc.o"
  "CMakeFiles/webslice_slicer.dir/slicer.cc.o.d"
  "libwebslice_slicer.a"
  "libwebslice_slicer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice_slicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
