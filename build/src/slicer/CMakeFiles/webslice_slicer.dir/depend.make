# Empty dependencies file for webslice_slicer.
# This may be replaced when dependencies are built.
