file(REMOVE_RECURSE
  "libwebslice_slicer.a"
)
