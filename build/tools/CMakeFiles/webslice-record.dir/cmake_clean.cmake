file(REMOVE_RECURSE
  "CMakeFiles/webslice-record.dir/webslice_record.cc.o"
  "CMakeFiles/webslice-record.dir/webslice_record.cc.o.d"
  "webslice-record"
  "webslice-record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice-record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
