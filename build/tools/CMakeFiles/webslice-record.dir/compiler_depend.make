# Empty compiler generated dependencies file for webslice-record.
# This may be replaced when dependencies are built.
