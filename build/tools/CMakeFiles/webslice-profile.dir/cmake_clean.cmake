file(REMOVE_RECURSE
  "CMakeFiles/webslice-profile.dir/webslice_profile.cc.o"
  "CMakeFiles/webslice-profile.dir/webslice_profile.cc.o.d"
  "webslice-profile"
  "webslice-profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webslice-profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
