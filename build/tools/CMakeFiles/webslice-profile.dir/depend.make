# Empty dependencies file for webslice-profile.
# This may be replaced when dependencies are built.
