/**
 * @file
 * Unit tests for the traced virtual machine: memory, allocator, traced
 * operations, call scopes, branches, syscalls, markers, the scheduler, and
 * the utilization timeline.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/syscalls.hh"

namespace webslice {
namespace sim {
namespace {

using trace::Record;
using trace::RecordKind;

// ---- SimMemory -------------------------------------------------------------

TEST(SimMemory, ScalarRoundTrip)
{
    SimMemory mem;
    mem.write(0x1000, 8, 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(mem.read(0x1000, 1), 0x88u);
    EXPECT_EQ(mem.read(0x1004, 4), 0x11223344u);
}

TEST(SimMemory, UntouchedReadsZero)
{
    SimMemory mem;
    EXPECT_EQ(mem.read(0xDEADBEEF, 8), 0u);
}

TEST(SimMemory, CrossPageAccess)
{
    SimMemory mem;
    const uint64_t addr = SimMemory::kPageBytes - 4;
    mem.write(addr, 8, 0xAABBCCDDEEFF0011ull);
    EXPECT_EQ(mem.read(addr, 8), 0xAABBCCDDEEFF0011ull);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(SimMemory, BulkBytes)
{
    SimMemory mem;
    const std::string text = "hello simulated world";
    mem.writeBytes(0x4000, text.data(), text.size());
    std::string back(text.size(), '\0');
    mem.readBytes(0x4000, back.data(), back.size());
    EXPECT_EQ(back, text);
}

// ---- SimAllocator ----------------------------------------------------------

TEST(SimAllocator, AlignedAndDisjoint)
{
    SimAllocator alloc;
    const uint64_t a = alloc.alloc(100, "a");
    const uint64_t b = alloc.alloc(10, "b");
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(alloc.liveBytes(), 112u + 16u - 112u % 16u);
}

TEST(SimAllocator, FreeListReuse)
{
    SimAllocator alloc;
    const uint64_t a = alloc.alloc(64);
    alloc.free(a);
    const uint64_t b = alloc.alloc(64);
    EXPECT_EQ(a, b);
    EXPECT_EQ(alloc.reuseCount(), 1u);
}

TEST(SimAllocator, ZeroSizeAllocationIsValid)
{
    SimAllocator alloc;
    const uint64_t a = alloc.alloc(0);
    const uint64_t b = alloc.alloc(0);
    EXPECT_NE(a, b);
}

// ---- traced ops ------------------------------------------------------------

/** Fixture with a one-thread machine. */
class MachineTest : public ::testing::Test
{
  protected:
    MachineTest() : tid(machine.addThread("main")), ctx(machine, tid) {}

    Machine machine;
    trace::ThreadId tid;
    Ctx ctx;
};

TEST_F(MachineTest, ImmAndArithmetic)
{
    Value a = ctx.imm(40);
    Value b = ctx.imm(2);
    Value sum = ctx.add(a, b);
    EXPECT_EQ(sum.get(), 42u);
    EXPECT_EQ(ctx.sub(a, b).get(), 38u);
    EXPECT_EQ(ctx.mul(a, b).get(), 80u);
    EXPECT_EQ(ctx.udiv(a, b).get(), 20u);
    EXPECT_EQ(ctx.umod(a, b).get(), 0u);
    EXPECT_EQ(ctx.band(a, b).get(), 0u);
    EXPECT_EQ(ctx.bor(a, b).get(), 42u);
    EXPECT_EQ(ctx.bxor(a, b).get(), 42u);
    EXPECT_EQ(ctx.shl(b, b).get(), 8u);
    EXPECT_EQ(ctx.shr(a, b).get(), 10u);
}

TEST_F(MachineTest, DivideByZeroYieldsZero)
{
    Value a = ctx.imm(7);
    Value z = ctx.imm(0);
    EXPECT_EQ(ctx.udiv(a, z).get(), 0u);
    EXPECT_EQ(ctx.umod(a, z).get(), 0u);
}

TEST_F(MachineTest, ImmediateForms)
{
    Value a = ctx.imm(10);
    EXPECT_EQ(ctx.addi(a, 5).get(), 15u);
    EXPECT_EQ(ctx.addi(a, -3).get(), 7u);
    EXPECT_EQ(ctx.muli(a, 7).get(), 70u);
    EXPECT_EQ(ctx.andi(a, 2).get(), 2u);
    EXPECT_EQ(ctx.shli(a, 2).get(), 40u);
    EXPECT_EQ(ctx.shri(a, 1).get(), 5u);
}

TEST_F(MachineTest, Comparisons)
{
    Value a = ctx.imm(3);
    Value b = ctx.imm(5);
    EXPECT_EQ(ctx.eq(a, b).get(), 0u);
    EXPECT_EQ(ctx.ne(a, b).get(), 1u);
    EXPECT_EQ(ctx.ltu(a, b).get(), 1u);
    EXPECT_EQ(ctx.leu(a, a).get(), 1u);
    EXPECT_EQ(ctx.gtu(a, b).get(), 0u);
    EXPECT_EQ(ctx.geu(b, a).get(), 1u);
    EXPECT_EQ(ctx.eqi(a, 3).get(), 1u);
    EXPECT_EQ(ctx.ltui(a, 3).get(), 0u);
    EXPECT_EQ(ctx.isZero(ctx.imm(0)).get(), 1u);
}

TEST_F(MachineTest, SelectPicksByCondition)
{
    Value t = ctx.imm(1);
    Value f = ctx.imm(0);
    Value a = ctx.imm(11);
    Value b = ctx.imm(22);
    EXPECT_EQ(ctx.select(t, a, b).get(), 11u);
    EXPECT_EQ(ctx.select(f, a, b).get(), 22u);
}

TEST_F(MachineTest, LoadStoreRoundTrip)
{
    const uint64_t addr = machine.alloc(16, "buf");
    Value v = ctx.imm(0xCAFE);
    ctx.store(addr, 4, v);
    Value back = ctx.load(addr, 4);
    EXPECT_EQ(back.get(), 0xCAFEu);
    EXPECT_EQ(machine.mem().read(addr, 4), 0xCAFEu);
}

TEST_F(MachineTest, LoadStoreViaPointer)
{
    const uint64_t addr = machine.alloc(32, "buf");
    Value base = ctx.imm(addr);
    Value v = ctx.imm(99);
    ctx.storeVia(base, 8, 4, v);
    Value back = ctx.loadVia(base, 8, 4);
    EXPECT_EQ(back.get(), 99u);

    // The records carry the pointer register as a dependency.
    const auto &records = machine.records();
    const auto &store = records[records.size() - 2];
    EXPECT_EQ(store.kind, RecordKind::Store);
    EXPECT_EQ(store.rr1, base.reg());
    const auto &load = records.back();
    EXPECT_EQ(load.kind, RecordKind::Load);
    EXPECT_EQ(load.rr0, base.reg());
    EXPECT_EQ(load.addr, addr + 8);
}

TEST_F(MachineTest, BranchEmitsTakenFlag)
{
    Value yes = ctx.imm(1);
    Value no = ctx.imm(0);
    EXPECT_TRUE(ctx.branchIf(yes));
    EXPECT_FALSE(ctx.branchIf(no));
    const auto &records = machine.records();
    const auto &taken = records[records.size() - 2];
    const auto &not_taken = records.back();
    EXPECT_EQ(taken.kind, RecordKind::Branch);
    EXPECT_TRUE(taken.taken());
    EXPECT_FALSE(not_taken.taken());
    EXPECT_EQ(taken.rr0, yes.reg());
}

TEST_F(MachineTest, SameSiteSamePcDifferentSiteDifferentPc)
{
    trace::Pc first = 0, second = 0;
    for (int i = 0; i < 2; ++i) {
        Value v = ctx.imm(i); // one site, hit twice
        (void)v;
        first = machine.records().back().pc;
    }
    Value other = ctx.imm(7); // a different site
    (void)other;
    second = machine.records().back().pc;

    const auto &records = machine.records();
    EXPECT_EQ(records[records.size() - 2].pc, first);
    EXPECT_EQ(records[records.size() - 3].pc, first);
    EXPECT_NE(first, second);
}

TEST_F(MachineTest, RegistersAreRecycled)
{
    trace::RegId reg;
    {
        Value v = ctx.imm(1);
        reg = v.reg();
    }
    Value next = ctx.imm(2);
    EXPECT_EQ(next.reg(), reg);
}

TEST_F(MachineTest, ValueMoveTransfersOwnership)
{
    Value a = ctx.imm(5);
    const trace::RegId reg = a.reg();
    Value b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(b.reg(), reg);
    EXPECT_EQ(b.get(), 5u);
}

TEST_F(MachineTest, TracedScopeEmitsCallAndRet)
{
    const auto func = machine.registerFunction("v8::Parser::parse");
    {
        TracedScope scope(ctx, func);
        Value v = ctx.imm(3);
        (void)v;
    }
    const auto &records = machine.records();
    ASSERT_GE(records.size(), 3u);
    const auto &call = records[records.size() - 3];
    const auto &body = records[records.size() - 2];
    const auto &ret = records.back();
    EXPECT_EQ(call.kind, RecordKind::Call);
    EXPECT_EQ(call.addr, machine.functionEntry(func));
    EXPECT_EQ(ret.kind, RecordKind::Ret);
    // The body pc is attributed to the function in the symbol table.
    EXPECT_EQ(machine.symtab().functionOfPc(body.pc), func);
}

TEST_F(MachineTest, IndirectCallReadsTargetRegister)
{
    const auto func = machine.registerFunction("v8::JSFunction::call");
    Value target = ctx.imm(machine.functionEntry(func));
    {
        TracedScope scope(ctx, func, target);
    }
    const auto &records = machine.records();
    const auto &call = records[records.size() - 2];
    EXPECT_EQ(call.kind, RecordKind::Call);
    EXPECT_TRUE(call.indirect());
    EXPECT_EQ(call.rr0, target.reg());
}

TEST_F(MachineTest, SyscallEmitsEffectRecords)
{
    const uint64_t buf = machine.alloc(64, "net");
    Value result = sysSendto(ctx, buf, 64);
    EXPECT_EQ(result.get(), 64u);

    const auto &records = machine.records();
    const auto &eff = records.back();
    const auto &sys = records[records.size() - 2];
    EXPECT_EQ(sys.kind, RecordKind::Syscall);
    EXPECT_EQ(sys.aux, kSysSendto);
    EXPECT_EQ(eff.kind, RecordKind::SyscallRead);
    EXPECT_EQ(eff.addr, buf);
    EXPECT_EQ(eff.aux, 64u);
    EXPECT_TRUE(eff.isPseudo());
}

TEST_F(MachineTest, PseudoRecordsDoNotAdvanceClock)
{
    const uint64_t before = machine.now();
    const uint64_t buf = machine.alloc(8);
    Value r = sysRecvfrom(ctx, buf, 8);
    (void)r;
    // alloc is untraced; recvfrom = 1 syscall instruction + 1 pseudo.
    EXPECT_EQ(machine.now(), before + 1);
    EXPECT_EQ(machine.instructionCount(), 1u);
    EXPECT_EQ(machine.records().size(), 2u);
}

TEST_F(MachineTest, MarkerRegistersCriteria)
{
    const trace::MemRange ranges[] = {{0x8000, 256}};
    const uint32_t m0 = ctx.marker(ranges);
    const uint32_t m1 = ctx.marker(ranges);
    EXPECT_EQ(m0, 0u);
    EXPECT_EQ(m1, 1u);
    EXPECT_EQ(machine.pixelCriteria().markerCount(), 2u);
    ASSERT_EQ(machine.pixelCriteria().forMarker(0).size(), 1u);
    EXPECT_EQ(machine.pixelCriteria().forMarker(0)[0].addr, 0x8000u);
    EXPECT_EQ(machine.records().back().kind, RecordKind::Marker);
    EXPECT_EQ(machine.records().back().aux, 1u);
}

// ---- scheduler -------------------------------------------------------------

TEST(Scheduler, RunsPostedTasks)
{
    Machine machine;
    const auto t0 = machine.addThread("main");
    int ran = 0;
    machine.post(t0, [&](Ctx &c) {
        Value v = c.imm(1);
        (void)v;
        ++ran;
    });
    machine.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(machine.instructionCount(), 1u);
}

TEST(Scheduler, RoundRobinInterleavesThreads)
{
    Machine machine;
    const auto t0 = machine.addThread("main");
    const auto t1 = machine.addThread("compositor");
    std::vector<int> order;
    machine.post(t0, [&](Ctx &) { order.push_back(0); });
    machine.post(t1, [&](Ctx &) { order.push_back(1); });
    machine.post(t0, [&](Ctx &) { order.push_back(0); });
    machine.post(t1, [&](Ctx &) { order.push_back(1); });
    machine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

TEST(Scheduler, TasksCanPostAcrossThreads)
{
    Machine machine;
    const auto t0 = machine.addThread("main");
    const auto t1 = machine.addThread("worker");
    std::vector<trace::ThreadId> seen;
    machine.post(t0, [&](Ctx &c) {
        seen.push_back(c.tid());
        c.machine().post(t1, [&](Ctx &c2) { seen.push_back(c2.tid()); });
    });
    machine.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], t0);
    EXPECT_EQ(seen[1], t1);
}

TEST(Scheduler, DelayedTasksAdvanceTheClock)
{
    Machine machine;
    const auto t0 = machine.addThread("main");
    uint64_t observed = 0;
    machine.postDelayed(t0, 5000, [&](Ctx &c) {
        observed = c.machine().now();
    });
    machine.run();
    EXPECT_GE(observed, 5000u);
}

TEST(Scheduler, DelayedOrderingIsStable)
{
    Machine machine;
    const auto t0 = machine.addThread("main");
    std::vector<int> order;
    machine.postDelayed(t0, 100, [&](Ctx &) { order.push_back(1); });
    machine.postDelayed(t0, 100, [&](Ctx &) { order.push_back(2); });
    machine.postDelayed(t0, 50, [&](Ctx &) { order.push_back(0); });
    machine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Scheduler, TimelineTracksPerThreadWork)
{
    MachineConfig config;
    config.timelineBucket = 10;
    Machine machine(config);
    const auto t0 = machine.addThread("main");
    machine.post(t0, [&](Ctx &c) {
        for (int i = 0; i < 25; ++i) {
            Value v = c.imm(i);
            (void)v;
        }
    });
    machine.run();
    const auto &timeline = machine.threadTimeline(t0);
    EXPECT_EQ(timeline.bucketWidth(), 10u);
    double total = 0;
    for (size_t i = 0; i < timeline.bucketCount(); ++i)
        total += timeline.sum(i);
    EXPECT_DOUBLE_EQ(total, 25.0);
    EXPECT_DOUBLE_EQ(timeline.sum(0), 10.0);
}

TEST(Scheduler, ThreadNames)
{
    Machine machine;
    const auto t0 = machine.addThread("CrRendererMain");
    const auto t1 = machine.addThread("Compositor");
    EXPECT_EQ(machine.threadName(t0), "CrRendererMain");
    EXPECT_EQ(machine.threadName(t1), "Compositor");
    EXPECT_EQ(machine.threadCount(), 2u);
}

} // namespace
} // namespace sim
} // namespace webslice
