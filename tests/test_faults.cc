/**
 * @file
 * Fault-injection tests for artifact ingestion, plus metrics-report
 * schema tests.
 *
 * Every loader must fail loudly — with the file name and the offending
 * offset or line — on truncated, corrupted, or trailing-garbage inputs,
 * and must never hand a partial artifact to the pipeline. The loaders
 * exit via fatal() (status 1), so the corruption cases are death tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "trace/criteria.hh"
#include "trace/symtab.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace {

std::string
tempPath(const std::string &stem)
{
    return std::string(::testing::TempDir()) + stem;
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/** A small, valid trace file on disk; tests corrupt copies of it. */
class TraceFaults : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tempPath("faults.trc");
        std::vector<trace::Record> records(5);
        for (size_t i = 0; i < records.size(); ++i)
            records[i].pc = 0x1000 + i;
        trace::saveTrace(path_, records);
        bytes_ = readBytes(path_);
        ASSERT_EQ(bytes_.size(), 16 + 5 * sizeof(trace::Record));
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Write a corrupted variant and return its path. */
    std::string
    corrupt(const std::string &stem, const std::string &bytes)
    {
        const std::string path = tempPath(stem);
        writeBytes(path, bytes);
        return path;
    }

    std::string path_;
    std::string bytes_;
};

TEST_F(TraceFaults, MissingFileIsFatal)
{
    EXPECT_EXIT(trace::loadTrace(tempPath("no-such.trc")),
                ::testing::ExitedWithCode(1), "no-such.trc");
}

TEST_F(TraceFaults, FileSmallerThanHeaderIsFatal)
{
    const auto path = corrupt("tiny.trc", bytes_.substr(0, 7));
    EXPECT_EXIT(trace::loadTrace(path), ::testing::ExitedWithCode(1),
                "too small for a header");
}

TEST_F(TraceFaults, BadMagicIsFatal)
{
    std::string bytes = bytes_;
    bytes[0] = 'X';
    const auto path = corrupt("magic.trc", bytes);
    EXPECT_EXIT(trace::loadTrace(path), ::testing::ExitedWithCode(1),
                "bad trace magic");
}

TEST_F(TraceFaults, AlignedTruncationIsFatal)
{
    // Drop the last record: header still claims 5.
    const auto path = corrupt(
        "trunc.trc", bytes_.substr(0, bytes_.size() - sizeof(trace::Record)));
    EXPECT_EXIT(trace::loadTrace(path), ::testing::ExitedWithCode(1),
                "truncated trace file.*header claims 5");
}

TEST_F(TraceFaults, MisalignedTruncationIsFatal)
{
    // Tear mid-record: not even a whole number of records remains.
    const auto path = corrupt("torn.trc", bytes_.substr(0, bytes_.size() - 9));
    EXPECT_EXIT(trace::loadTrace(path), ::testing::ExitedWithCode(1),
                "misaligned trace payload.*stray bytes");
}

TEST_F(TraceFaults, TrailingGarbageIsFatal)
{
    const auto path = corrupt(
        "garbage.trc", bytes_ + std::string(sizeof(trace::Record), '\xee'));
    EXPECT_EXIT(trace::loadTrace(path), ::testing::ExitedWithCode(1),
                "trailing garbage in trace file");
}

TEST_F(TraceFaults, EveryEntryPointValidates)
{
    // The same corrupt file must be rejected by all four access paths,
    // not just loadTrace.
    const auto path = corrupt(
        "all.trc", bytes_.substr(0, bytes_.size() - sizeof(trace::Record)));
    EXPECT_EXIT(trace::MappedTrace mapped(path),
                ::testing::ExitedWithCode(1), "truncated trace file");
    EXPECT_EXIT(trace::ForwardTraceReader reader(path),
                ::testing::ExitedWithCode(1), "truncated trace file");
    EXPECT_EXIT(trace::ReverseTraceReader reader(path),
                ::testing::ExitedWithCode(1), "truncated trace file");
}

TEST_F(TraceFaults, IntactFileStillLoads)
{
    const auto records = trace::loadTrace(path_);
    ASSERT_EQ(records.size(), 5u);
    EXPECT_EQ(records[4].pc, 0x1004u);
}

TEST(CriteriaFaults, EmptyFileIsFatal)
{
    const auto path = tempPath("empty.crit");
    writeBytes(path, "");
    trace::CriteriaSet criteria;
    EXPECT_EXIT(criteria.load(path), ::testing::ExitedWithCode(1),
                "empty criteria file");
    std::remove(path.c_str());
}

TEST(CriteriaFaults, BadHeaderIsFatal)
{
    const auto path = tempPath("hdr.crit");
    writeBytes(path, "webcrit 2\n");
    trace::CriteriaSet criteria;
    EXPECT_EXIT(criteria.load(path), ::testing::ExitedWithCode(1),
                "bad criteria header in .* line 1");
    std::remove(path.c_str());
}

TEST(CriteriaFaults, GarbageMidFileIsFatalWithLineNumber)
{
    // A malformed line mid-file must not read as EOF: slicing with a
    // partial criteria set would yield a plausible but wrong slice.
    const auto path = tempPath("mid.crit");
    writeBytes(path, "webcrit 1\n0 4096 64\nbogus line\n1 8192 64\n");
    trace::CriteriaSet criteria;
    EXPECT_EXIT(criteria.load(path), ::testing::ExitedWithCode(1),
                "malformed criteria entry in .* line 3");
    std::remove(path.c_str());
}

TEST(CriteriaFaults, TrailingTokensAreFatal)
{
    const auto path = tempPath("extra.crit");
    writeBytes(path, "webcrit 1\n0 4096 64 surprise\n");
    trace::CriteriaSet criteria;
    EXPECT_EXIT(criteria.load(path), ::testing::ExitedWithCode(1),
                "trailing garbage in .* line 2");
    std::remove(path.c_str());
}

TEST(CriteriaFaults, ValidRoundTrip)
{
    const auto path = tempPath("ok.crit");
    trace::CriteriaSet criteria;
    criteria.add(0, 4096, 64);
    criteria.add(3, 8192, 128);
    criteria.save(path);
    trace::CriteriaSet loaded;
    loaded.load(path);
    EXPECT_EQ(loaded.totalBytes(), 192u);
    ASSERT_EQ(loaded.forMarker(3).size(), 1u);
    EXPECT_EQ(loaded.forMarker(3)[0].addr, 8192u);
    std::remove(path.c_str());
}

TEST(SymtabFaults, EmptyFileIsFatal)
{
    const auto path = tempPath("empty.sym");
    writeBytes(path, "");
    trace::SymbolTable symtab;
    EXPECT_EXIT(symtab.load(path), ::testing::ExitedWithCode(1),
                "empty symbol table");
    std::remove(path.c_str());
}

TEST(SymtabFaults, TruncatedFunctionListIsFatal)
{
    // Claims 3 functions but stores 1.
    const auto path = tempPath("trunc.sym");
    writeBytes(path, "websym 1\n3\n0 4096 main\n");
    trace::SymbolTable symtab;
    EXPECT_EXIT(symtab.load(path), ::testing::ExitedWithCode(1),
                "expected 3 functions, got 1");
    std::remove(path.c_str());
}

TEST(SymtabFaults, MalformedSymbolLineIsFatal)
{
    const auto path = tempPath("mal.sym");
    writeBytes(path, "websym 1\n1\nnot-a-number 4096 main\n0\n");
    trace::SymbolTable symtab;
    EXPECT_EXIT(symtab.load(path), ::testing::ExitedWithCode(1),
                "malformed symbol entry in .* line 3");
    std::remove(path.c_str());
}

TEST(SymtabFaults, MissingPcOwnerCountIsFatal)
{
    const auto path = tempPath("nopc.sym");
    writeBytes(path, "websym 1\n1\n0 4096 main\n");
    trace::SymbolTable symtab;
    EXPECT_EXIT(symtab.load(path), ::testing::ExitedWithCode(1),
                "missing pc-owner count");
    std::remove(path.c_str());
}

TEST(SymtabFaults, TrailingGarbageIsFatal)
{
    const auto path = tempPath("trail.sym");
    writeBytes(path, "websym 1\n1\n0 4096 main\n1\n4096 0\nleftover\n");
    trace::SymbolTable symtab;
    EXPECT_EXIT(symtab.load(path), ::testing::ExitedWithCode(1),
                "trailing garbage in .* line 6");
    std::remove(path.c_str());
}

TEST(SymtabFaults, ValidRoundTripWithSpacedNames)
{
    const auto path = tempPath("ok.sym");
    trace::SymbolTable symtab;
    const auto f0 = symtab.addFunction(4096, "operator new(unsigned long)");
    symtab.addFunction(8192, "plain");
    symtab.assignPc(4100, f0);
    symtab.save(path);
    trace::SymbolTable loaded;
    loaded.load(path);
    EXPECT_EQ(loaded.symbol(f0).name, "operator new(unsigned long)");
    EXPECT_EQ(loaded.functionOfPc(4100), f0);
    std::remove(path.c_str());
}

TEST(Metrics, CountersAndGaugesRoundTrip)
{
    MetricRegistry registry;
    registry.counter("a.count").add(3);
    registry.counter("a.count").add(4);
    registry.gauge("b.peak").setMax(10);
    registry.gauge("b.peak").setMax(7); // lower sample must not win
    EXPECT_EQ(registry.counter("a.count").value(), 7u);
    EXPECT_EQ(registry.gauge("b.peak").value(), 10u);

    registry.reset();
    EXPECT_EQ(registry.counter("a.count").value(), 0u);
}

TEST(Metrics, ScopedPhaseRecordsSpan)
{
    MetricRegistry registry;
    {
        ScopedPhase phase("unit-test", &registry);
    }
    const auto spans = registry.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "unit-test");
    EXPECT_GE(spans[0].wallSeconds, 0.0);
}

TEST(Metrics, ReportJsonSchema)
{
    MetricRegistry registry;
    registry.counter("x.records").add(42);
    registry.gauge("x.peak").setMax(99);
    registry.addSpan(PhaseSpan{"load", 0.5, 1 << 20});
    registry.addSpan(PhaseSpan{"backward", 1.25, 2 << 20});

    const std::string json = metricsReportJson(
        registry, "unit-test", {{"extra", "{\"k\": 1}"}});

    EXPECT_NE(json.find("\"schema\": \"webslice-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tool\": \"unit-test\""), std::string::npos);
    EXPECT_NE(json.find("\"x.records\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"x.peak\": 99"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"load\""), std::string::npos);
    EXPECT_NE(json.find("\"extra\": {\"k\": 1}"), std::string::npos);
    // Spans keep insertion order (pipeline order, not alphabetical).
    EXPECT_LT(json.find("\"name\": \"load\""),
              json.find("\"name\": \"backward\""));
}

TEST(Metrics, ReportJsonWritesAndReloads)
{
    const auto path = tempPath("report.json");
    MetricRegistry registry;
    registry.counter("y.total").add(5);
    writeMetricsReport(path, registry, "writer-test");
    const std::string loaded = readBytes(path);
    EXPECT_EQ(loaded, metricsReportJson(registry, "writer-test"));
    std::remove(path.c_str());
}

TEST(Metrics, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Metrics, DigestFile)
{
    const auto path = tempPath("digest.bin");
    writeBytes(path, "a");
    const FileDigest digest = digestFile(path);
    EXPECT_TRUE(digest.ok);
    EXPECT_EQ(digest.bytes, 1u);
    // FNV-1a-64 of "a" is a published reference value.
    EXPECT_EQ(digest.fnv1a, 0xaf63dc4c8601ec8cull);
    std::remove(path.c_str());

    const FileDigest missing = digestFile(tempPath("no-such.bin"));
    EXPECT_FALSE(missing.ok);
}

} // namespace
} // namespace webslice
