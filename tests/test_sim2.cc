/**
 * @file
 * Additional machine-layer tests: site-pc stability across threads,
 * syscall helper coverage, allocator misuse (death tests), timeline
 * accounting across idle gaps, and Value edge semantics.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/syscalls.hh"

namespace webslice {
namespace sim {
namespace {

using trace::RecordKind;

TEST(SitePc, SameSiteSamePcAcrossThreads)
{
    Machine machine;
    const auto t0 = machine.addThread("a");
    const auto t1 = machine.addThread("b");

    auto emit = [](Ctx &ctx) {
        Value v = ctx.imm(7); // one shared site
        (void)v;
    };
    machine.post(t0, emit);
    machine.post(t1, emit);
    machine.run();

    ASSERT_EQ(machine.records().size(), 2u);
    EXPECT_EQ(machine.records()[0].pc, machine.records()[1].pc);
    EXPECT_NE(machine.records()[0].tid, machine.records()[1].tid);
}

TEST(SitePc, PcsAreFourByteSpaced)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    Value a = ctx.imm(1);
    Value b = ctx.imm(2);
    Value c = ctx.add(a, b);
    (void)c;
    const auto &records = machine.records();
    for (const auto &rec : records)
        EXPECT_EQ(rec.pc % 4, 0u);
    EXPECT_NE(records[0].pc, records[1].pc);
    EXPECT_NE(records[1].pc, records[2].pc);
}

TEST(Syscalls, WriteAndClockHelpers)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t buf = machine.alloc(32, "buf");

    Value w = sysWrite(ctx, buf, 32);
    EXPECT_EQ(w.get(), 32u);
    Value t = sysClockGettime(ctx, buf, 777);
    EXPECT_EQ(t.get(), 777u);
    Value f = sysFutex(ctx, buf);
    (void)f;

    size_t syscalls = 0, reads = 0, writes = 0;
    for (const auto &rec : machine.records()) {
        syscalls += rec.kind == RecordKind::Syscall;
        reads += rec.kind == RecordKind::SyscallRead;
        writes += rec.kind == RecordKind::SyscallWrite;
    }
    EXPECT_EQ(syscalls, 3u);
    EXPECT_EQ(reads, 2u);  // write buffer + futex word
    EXPECT_EQ(writes, 1u); // the timespec
}

TEST(AllocatorDeath, DoubleFreePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SimAllocator alloc;
    const uint64_t a = alloc.alloc(32);
    alloc.free(a);
    EXPECT_DEATH(alloc.free(a), "double free");
}

TEST(AllocatorDeath, ForeignFreePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SimAllocator alloc;
    EXPECT_DEATH(alloc.free(0xDEAD0000), "unallocated");
}

TEST(Timeline, IdleGapsLeaveEmptyBuckets)
{
    MachineConfig config;
    config.timelineBucket = 100;
    Machine machine(config);
    const auto tid = machine.addThread("main");

    machine.post(tid, [](Ctx &ctx) {
        for (int i = 0; i < 50; ++i) {
            Value v = ctx.imm(i);
            (void)v;
        }
    });
    // A long idle gap, then a little more work.
    machine.postDelayed(tid, 1000, [](Ctx &ctx) {
        for (int i = 0; i < 10; ++i) {
            Value v = ctx.imm(i);
            (void)v;
        }
    });
    machine.run();

    const auto &timeline = machine.threadTimeline(tid);
    // Bucket 0 is busy; some middle bucket is empty; the tail has work.
    EXPECT_DOUBLE_EQ(timeline.sum(0), 50.0);
    bool found_idle = false;
    for (size_t b = 1; b + 1 < timeline.bucketCount(); ++b)
        found_idle |= timeline.sum(b) == 0.0;
    EXPECT_TRUE(found_idle);
    double total = 0;
    for (size_t b = 0; b < timeline.bucketCount(); ++b)
        total += timeline.sum(b);
    EXPECT_DOUBLE_EQ(total, 60.0);
}

TEST(ValueEdges, SelfMoveAssignmentIsSafe)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    Value v = ctx.imm(5);
    Value &alias = v;
    v = std::move(alias);
    EXPECT_TRUE(v.valid());
    EXPECT_EQ(v.get(), 5u);
}

TEST(ValueEdges, DefaultValueIsInvalid)
{
    Value v;
    EXPECT_FALSE(v.valid());
    EXPECT_EQ(v.reg(), trace::kNoReg);
}

TEST(MachineFunctions, EntryAndRetPcsAreDistinct)
{
    Machine machine;
    const auto f0 = machine.registerFunction("a::f");
    const auto f1 = machine.registerFunction("b::g");
    EXPECT_NE(machine.functionEntry(f0), machine.functionEntry(f1));
    EXPECT_EQ(machine.symtab().functionAtEntry(machine.functionEntry(f0)),
              f0);
}

TEST(MachineFunctions, ScopesNestAndAttributePcs)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const auto outer = machine.registerFunction("x::outer");
    const auto inner = machine.registerFunction("x::inner");
    {
        TracedScope a(ctx, outer);
        {
            TracedScope b(ctx, inner);
            Value v = ctx.imm(1);
            EXPECT_EQ(machine.symtab().functionOfPc(
                          machine.records().back().pc),
                      inner);
            (void)v;
        }
        Value w = ctx.imm(2);
        EXPECT_EQ(machine.symtab().functionOfPc(
                      machine.records().back().pc),
                  outer);
        (void)w;
    }
}

} // namespace
} // namespace sim
} // namespace webslice
