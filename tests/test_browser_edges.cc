/**
 * @file
 * Edge-case tests for the browser substrate's parsers and engine: inputs
 * at the boundaries of the HTML/CSS/JS dialects, malformed-ish content
 * the generators never emit but a robust substrate must survive, and
 * small engine corner cases.
 */

#include <gtest/gtest.h>

#include "browser/css.hh"
#include "browser/html_parser.hh"
#include "browser/js.hh"
#include "browser/layout.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {
namespace {

using sim::Ctx;
using sim::Machine;

class EdgeTest : public ::testing::Test
{
  protected:
    EdgeTest()
        : tid(machine.addThread("main")), ctx(machine, tid),
          traceLog(machine)
    {
    }

    Resource
    res(std::string content, ResourceType type)
    {
        Resource resource;
        resource.type = type;
        resource.content = std::move(content);
        resource.size = resource.content.size();
        resource.addr =
            machine.alloc((resource.size + 15) & ~7ull, "res");
        machine.mem().writeBytes(resource.addr, resource.content.data(),
                                 resource.size);
        resource.loaded = true;
        return resource;
    }

    Machine machine;
    trace::ThreadId tid;
    Ctx ctx;
    TraceLog traceLog;
};

// ---- HTML edges ---------------------------------------------------------------

TEST_F(EdgeTest, EmptyDocumentYieldsJustTheRoot)
{
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(ctx, res("", ResourceType::Html));
    EXPECT_EQ(doc->elementCount(), 1u); // the synthetic body
    EXPECT_TRUE(doc->root()->children.empty());
}

TEST_F(EdgeTest, TextOnlyDocument)
{
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(ctx, res("just words here",
                                     ResourceType::Html));
    ASSERT_EQ(doc->root()->children.size(), 1u);
    EXPECT_TRUE(doc->root()->children[0]->isText());
    EXPECT_EQ(doc->root()->children[0]->text, "just words here");
}

TEST_F(EdgeTest, UnclosedTagIsToleratedByTheCloseOut)
{
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(
        ctx, res("<div id=a><span>inner", ResourceType::Html));
    Element *a = doc->byIdHash(hashString("a"));
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->children.size(), 1u);
    EXPECT_EQ(a->children[0]->tag, Tag::Span);
}

TEST_F(EdgeTest, StrayClosingTagsDoNotUnderflow)
{
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(
        ctx, res("</div></span><p id=ok>x</p>", ResourceType::Html));
    EXPECT_NE(doc->byIdHash(hashString("ok")), nullptr);
}

TEST_F(EdgeTest, UnknownTagsStillBecomeElements)
{
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(
        ctx, res("<widget id=w>x</widget>", ResourceType::Html));
    Element *w = doc->byIdHash(hashString("w"));
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->tag, Tag::None);
}

TEST_F(EdgeTest, ValuelessAndNumericAttributesMix)
{
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(
        ctx,
        res("<img src=a.img hidden w=64 h=48><div id=d hidden>t</div>",
            ResourceType::Html));
    Element *d = doc->byIdHash(hashString("d"));
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->hidden);
    // The image captured both dimensions around the bare attribute.
    bool found = false;
    for (const auto &el : doc->elements()) {
        if (el->tag == Tag::Img) {
            found = true;
            EXPECT_EQ(el->attrWidth, 64u);
            EXPECT_EQ(el->attrHeight, 48u);
            EXPECT_TRUE(el->hidden);
        }
    }
    EXPECT_TRUE(found);
}

// ---- CSS edges ------------------------------------------------------------------

TEST_F(EdgeTest, EmptyAndWhitespaceSheets)
{
    CssParser parser(machine, traceLog);
    EXPECT_TRUE(parser.parse(ctx, res("", ResourceType::Css))
                    ->rules.empty());
    EXPECT_TRUE(parser.parse(ctx, res("   \n\n  ", ResourceType::Css))
                    ->rules.empty());
}

TEST_F(EdgeTest, RuleWithoutDeclarations)
{
    CssParser parser(machine, traceLog);
    auto sheet = parser.parse(ctx, res(".empty{}", ResourceType::Css));
    ASSERT_EQ(sheet->rules.size(), 1u);
    EXPECT_TRUE(sheet->rules[0].declarations.empty());
}

TEST_F(EdgeTest, CompoundSelectorMatchesBothConstraints)
{
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(
        ctx,
        res("<div class=card id=x>t</div><span class=card id=y>u</span>",
            ResourceType::Html));
    CssParser cparser(machine, traceLog);
    auto sheet = cparser.parse(
        ctx, res("div.card{color:7}", ResourceType::Css));
    StyleResolver resolver(machine, traceLog);
    resolver.resolveAll(ctx, *doc, {sheet.get()});

    Element *x = doc->byIdHash(hashString("x"));
    Element *y = doc->byIdHash(hashString("y"));
    EXPECT_EQ(machine.mem().read(x->styleAddr + StyleFields::kColor, 4),
              7u);
    // span.card must NOT match div.card.
    EXPECT_NE(machine.mem().read(y->styleAddr + StyleFields::kColor, 4),
              7u);
}

TEST_F(EdgeTest, UnknownPropertyIsIgnoredGracefully)
{
    CssParser parser(machine, traceLog);
    auto sheet = parser.parse(
        ctx, res(".x{blorp:3;color:9}", ResourceType::Css));
    ASSERT_EQ(sheet->rules.size(), 1u);
    ASSERT_EQ(sheet->rules[0].declarations.size(), 2u);
    EXPECT_EQ(sheet->rules[0].declarations[0].property,
              CssProperty::None);
    EXPECT_EQ(sheet->rules[0].declarations[1].property,
              CssProperty::Color);
}

TEST_F(EdgeTest, LaterRuleWinsTheCascade)
{
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, res("<div class=a id=d>t</div>",
                                      ResourceType::Html));
    CssParser cparser(machine, traceLog);
    auto sheet = cparser.parse(
        ctx, res(".a{color:1}\n.a{color:2}\n.a{color:3}",
                 ResourceType::Css));
    StyleResolver resolver(machine, traceLog);
    resolver.resolveAll(ctx, *doc, {sheet.get()});
    Element *d = doc->byIdHash(hashString("d"));
    EXPECT_EQ(machine.mem().read(d->styleAddr + StyleFields::kColor, 4),
              3u);
}

// ---- JS edges -------------------------------------------------------------------

TEST_F(EdgeTest, EmptyScriptRuns)
{
    JsEngine engine(machine, traceLog);
    engine.runScript(ctx, res("", ResourceType::Js));
    EXPECT_EQ(engine.functionCount(), 1u); // just the toplevel
    EXPECT_EQ(engine.executedFunctionCount(), 1u);
}

TEST_F(EdgeTest, NestedParenthesesAndChainedOperators)
{
    JsEngine engine(machine, traceLog);
    // Left-associative, precedence-free: ((2+3)*4) == 20, then &15 == 4.
    engine.runScript(
        ctx, res("g = (2 + 3) * 4 & 15;", ResourceType::Js));
    SUCCEED(); // parse+execute without panic is the contract here
}

TEST_F(EdgeTest, RecursionIsSupported)
{
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, res("<div id=out>t</div>",
                                      ResourceType::Html));
    JsEngine engine(machine, traceLog);
    engine.setDocument(doc.get());
    const std::string out = std::to_string(hashString("out"));
    // sum(n) = n + sum(n-1), sum(0) = 0 -> sum(5) = 15.
    engine.runScript(
        ctx,
        res("function sum(n){if(n < 1){return 0;}"
            "return n + sum(n - 1);}"
            "dom.set(" + out + ", 1, sum(5));",
            ResourceType::Js));
    Element *el = doc->byIdHash(hashString("out"));
    EXPECT_EQ(machine.mem().read(el->styleAddr + StyleFields::kColor, 4),
              15u);
}

TEST_F(EdgeTest, ForwardReferencesResolve)
{
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, res("<div id=out>t</div>",
                                      ResourceType::Html));
    JsEngine engine(machine, traceLog);
    engine.setDocument(doc.get());
    const std::string out = std::to_string(hashString("out"));
    // `caller` references `callee` before its declaration.
    engine.runScript(
        ctx,
        res("function caller(a){return callee(a) + 1;}"
            "function callee(a){return a * 2;}"
            "dom.set(" + out + ", 1, caller(10));",
            ResourceType::Js));
    Element *el = doc->byIdHash(hashString("out"));
    EXPECT_EQ(machine.mem().read(el->styleAddr + StyleFields::kColor, 4),
              21u);
}

TEST_F(EdgeTest, DomOperationsOnUnknownIdsAreNoOps)
{
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, res("<div id=real>t</div>",
                                      ResourceType::Html));
    JsEngine engine(machine, traceLog);
    engine.setDocument(doc.get());
    engine.runScript(ctx, res("dom.set(123456789, 1, 7);"
                              "dom.hide(987654321);"
                              "g = dom.get(111, 2);",
                              ResourceType::Js));
    SUCCEED();
}

TEST_F(EdgeTest, GlobalsPersistAcrossScripts)
{
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, res("<div id=out>t</div>",
                                      ResourceType::Html));
    JsEngine engine(machine, traceLog);
    engine.setDocument(doc.get());
    const std::string out = std::to_string(hashString("out"));
    engine.runScript(ctx, res("g_shared = 30;", ResourceType::Js));
    engine.runScript(
        ctx, res("dom.set(" + out + ", 1, g_shared + 12);",
                 ResourceType::Js));
    Element *el = doc->byIdHash(hashString("out"));
    EXPECT_EQ(machine.mem().read(el->styleAddr + StyleFields::kColor, 4),
              42u);
}

// ---- layout edges -----------------------------------------------------------------

TEST_F(EdgeTest, ZeroWidthViewportDoesNotDivideByZero)
{
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, res("<p id=t>some text run</p>",
                                      ResourceType::Html));
    StyleResolver resolver(machine, traceLog);
    resolver.resolveAll(ctx, *doc, {});
    LayoutEngine layout(machine, traceLog);
    const uint32_t height = layout.layoutDocument(ctx, *doc, 0, 0);
    EXPECT_GE(height, 0u); // must simply not crash
}

TEST_F(EdgeTest, DeeplyNestedTreeLaysOut)
{
    std::string html;
    for (int i = 0; i < 24; ++i)
        html += "<div id=n" + std::to_string(i) + ">";
    html += "leaf";
    for (int i = 0; i < 24; ++i)
        html += "</div>";

    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, res(html, ResourceType::Html));
    StyleResolver resolver(machine, traceLog);
    resolver.resolveAll(ctx, *doc, {});
    LayoutEngine layout(machine, traceLog);
    const uint32_t height = layout.layoutDocument(ctx, *doc, 800, 600);
    EXPECT_GT(height, 0u);
    EXPECT_EQ(doc->elementCount(), 26u); // body + 24 divs + text
}

} // namespace
} // namespace browser
} // namespace webslice
