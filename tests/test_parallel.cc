/**
 * @file
 * Tests for the profiler's parallel plumbing: the thread pool itself,
 * and — more importantly — the guarantee that every parallel path
 * (sharded trace feeding, per-function CFG replay, parallel control
 * dependences, flat-hash vs legacy live sets) produces output
 * bit-identical to the serial baseline. Parallelism that changes the
 * slice is a correctness bug, not a performance feature.
 *
 * The sharded feed normally engages only on multicore machines and
 * large traces; ParallelCfgBuilder::shardOverrideForTesting bypasses
 * those heuristics so the path is exercised everywhere, including
 * single-core CI runners.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "slicer/slicer.hh"
#include "support/thread_pool.hh"

namespace webslice {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, CoversTheWholeRangeExactlyOnce)
{
    ThreadPool pool(3);
    constexpr size_t kCount = 10000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(0, kCount, [&hits](size_t i) { hits[i]++; });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroWorkersDegradesToSerial)
{
    ThreadPool pool(0);
    std::vector<int> order;
    pool.parallelFor(5, 10, [&order](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{5, 6, 7, 8, 9}));
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(7, 7, [&ran](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, BodyExceptionsPropagateToCaller)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must survive a throwing loop and accept more work.
    std::atomic<int> count{0};
    pool.parallelFor(0, 10, [&count](size_t) { count++; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ResolveJobsSemantics)
{
    EXPECT_EQ(ThreadPool::resolveJobs(1), 1u);
    EXPECT_EQ(ThreadPool::resolveJobs(5), 5u);
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);  // "all hardware threads"
    EXPECT_GE(ThreadPool::resolveJobs(-3), 1u);
}

// ---- TaskGroup / post / drain ----------------------------------------------

TEST(TaskGroup, PostedTasksAllRunAndWaitBlocks)
{
    ThreadPool pool(3);
    TaskGroup group;
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.post(group, [&ran] { ran++; });
    group.wait();
    EXPECT_EQ(ran.load(), 100);
    EXPECT_EQ(group.outstanding(), 0u);
    // The group is reusable after a wait.
    pool.post(group, [&ran] { ran++; });
    group.wait();
    EXPECT_EQ(ran.load(), 101);
}

TEST(TaskGroup, ZeroWorkerPoolRunsTasksInline)
{
    ThreadPool pool(0);
    TaskGroup group;
    int ran = 0;
    pool.post(group, [&ran] { ran++; });
    // With no workers the task already ran inside post().
    EXPECT_EQ(ran, 1);
    group.wait();
}

TEST(TaskGroup, DrainExecutesQueuedTasksOnCaller)
{
    // A pool whose single worker is blocked: drain() must let the
    // calling thread pick up the queued tasks itself instead of
    // deadlocking behind the stuck worker.
    ThreadPool pool(1);
    TaskGroup group;
    std::atomic<bool> release{false};
    pool.post(group, [&release] {
        while (!release.load())
            std::this_thread::yield();
    });
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i)
        pool.post(group, [&ran] { ran++; });
    std::thread unblocker([&release] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        release.store(true);
    });
    pool.drain(group);
    unblocker.join();
    EXPECT_EQ(ran.load(), 50);
    EXPECT_EQ(group.outstanding(), 0u);
}

TEST(TaskGroup, FirstTaskExceptionIsRethrownFromWait)
{
    ThreadPool pool(2);
    TaskGroup group;
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i) {
        pool.post(group, [&ran, i] {
            ++ran;
            if (i == 7)
                throw std::runtime_error("task boom");
        });
    }
    EXPECT_THROW(pool.drain(group), std::runtime_error);
    // Every task still ran; one exception does not cancel siblings.
    EXPECT_EQ(ran.load(), 20);
    // The group must be reusable after the error was consumed.
    pool.post(group, [&ran] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 21);
}

// ---- parallel pipeline == serial pipeline ----------------------------------

/**
 * A program with enough structure to make parallel bugs visible: two
 * threads, nested calls, loops with branches, cross-thread memory flow,
 * and records outside any traced function (synthetic toplevels).
 */
Machine
makeProgram()
{
    Machine machine;
    const auto t0 = machine.addThread("main");
    const auto t1 = machine.addThread("worker");
    const auto outer = machine.registerFunction("par::outer");
    const auto inner = machine.registerFunction("par::inner");
    const auto sink = machine.registerFunction("par::sink");
    const uint64_t shared = machine.alloc(64, "shared");
    const uint64_t pixels = machine.alloc(64, "pixels");
    const uint64_t junk = machine.alloc(64, "junk");

    machine.post(t0, [=](Ctx &ctx) {
        Value total = ctx.imm(0);
        {
            TracedScope scope(ctx, outer);
            Value i = ctx.imm(0);
            Value n = ctx.imm(8);
            while (true) {
                Value more = ctx.ltu(i, n);
                if (!ctx.branchIf(more))
                    break;
                {
                    TracedScope nested(ctx, inner);
                    Value sq = ctx.mul(i, i);
                    total = ctx.add(total, sq);
                }
                i = ctx.addi(i, 1);
            }
            ctx.store(shared, 8, total);
            Value waste = ctx.muli(total, 31);
            ctx.store(junk, 8, waste);
        }
        // Untraced tail: lands in the thread's synthetic toplevel.
        Value tail = ctx.addi(total, 1);
        ctx.store(junk + 8, 8, tail);
    });
    machine.post(t1, [=](Ctx &ctx) {
        TracedScope scope(ctx, sink);
        Value v = ctx.load(shared, 8);
        Value doubled = ctx.shli(v, 1);
        ctx.store(pixels, 8, doubled);
        const trace::MemRange ranges[] = {{pixels, 64}};
        ctx.marker(ranges);
    });
    machine.run();
    return machine;
}

void
expectSameCfgSet(const graph::CfgSet &a, const graph::CfgSet &b)
{
    EXPECT_EQ(a.funcOf, b.funcOf);
    EXPECT_EQ(a.firstSynthetic, b.firstSynthetic);
    EXPECT_EQ(a.syntheticNames, b.syntheticNames);
    ASSERT_EQ(a.byFunc.size(), b.byFunc.size());
    for (const auto &kv : a.byFunc) {
        const auto it = b.byFunc.find(kv.first);
        ASSERT_NE(it, b.byFunc.end()) << "missing function " << kv.first;
        const graph::Cfg &ca = kv.second;
        const graph::Cfg &cb = it->second;
        // Full structural identity, including node numbering: the
        // parallel feed promises bit-identical output, not isomorphism.
        EXPECT_EQ(ca.nodePc, cb.nodePc);
        EXPECT_EQ(ca.succs, cb.succs);
        EXPECT_EQ(ca.preds, cb.preds);
        EXPECT_EQ(ca.isBranch, cb.isBranch);
    }
}

TEST(ParallelPipeline, ParallelCfgsMatchSerial)
{
    Machine machine = makeProgram();
    const auto serial = graph::buildCfgs(machine.records(),
                                         machine.symtab(), 1);
    for (const int jobs : {2, 4}) {
        const auto parallel = graph::buildCfgs(machine.records(),
                                               machine.symtab(), jobs);
        expectSameCfgSet(serial, parallel);
    }
}

TEST(ParallelPipeline, ShardedFeedMatchesSerialForAnyShardCount)
{
    Machine machine = makeProgram();
    const auto serial = graph::buildCfgs(machine.records(),
                                         machine.symtab(), 1);
    // Force the sharded feed on regardless of core count or trace size,
    // including shard counts that leave some shards nearly empty.
    for (const size_t shards : {2u, 3u, 5u, 16u}) {
        graph::ParallelCfgBuilder::shardOverrideForTesting = shards;
        const auto sharded = graph::buildCfgs(machine.records(),
                                              machine.symtab(), 4);
        graph::ParallelCfgBuilder::shardOverrideForTesting = 0;
        expectSameCfgSet(serial, sharded);
    }
}

TEST(ParallelPipeline, ParallelControlDepsMatchSerial)
{
    Machine machine = makeProgram();
    const auto cfgs = graph::buildCfgs(machine.records(),
                                       machine.symtab(), 1);
    const auto serial = graph::buildControlDeps(cfgs, 1);
    const auto parallel = graph::buildControlDeps(cfgs, 4);
    ASSERT_EQ(serial.pairCount(), parallel.pairCount());
    for (const auto &kv : cfgs.byFunc) {
        for (const trace::Pc pc : kv.second.nodePc) {
            if (pc == trace::kNoPc)
                continue;
            const auto a = serial.depsOf(kv.first, pc);
            const auto b = parallel.depsOf(kv.first, pc);
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i)
                EXPECT_EQ(a[i], b[i]);
        }
    }
}

TEST(ParallelPipeline, SliceIdenticalAcrossJobsAndLiveSetPolicies)
{
    Machine machine = makeProgram();

    // Reference: fully serial, legacy (seed) live sets.
    const auto ref_cfgs = graph::buildCfgs(machine.records(),
                                           machine.symtab(), 1);
    const auto ref_deps = graph::buildControlDeps(ref_cfgs, 1);
    slicer::SlicerOptions legacy;
    legacy.legacyLiveSets = true;
    const auto reference = slicer::computeSlice(
        machine.records(), ref_cfgs, ref_deps, machine.pixelCriteria(),
        legacy);

    for (const int jobs : {1, 2, 4}) {
        graph::ParallelCfgBuilder::shardOverrideForTesting =
            jobs > 1 ? static_cast<size_t>(jobs) : 0;
        const auto cfgs = graph::buildCfgs(machine.records(),
                                           machine.symtab(), jobs);
        graph::ParallelCfgBuilder::shardOverrideForTesting = 0;
        const auto deps = graph::buildControlDeps(cfgs, jobs);
        slicer::SlicerOptions options;
        options.jobs = jobs;
        const auto slice = slicer::computeSlice(
            machine.records(), cfgs, deps, machine.pixelCriteria(),
            options);
        EXPECT_EQ(slice.inSlice, reference.inSlice) << "jobs=" << jobs;
        EXPECT_EQ(slice.sliceInstructions, reference.sliceInstructions);
        EXPECT_EQ(slice.instructionsAnalyzed,
                  reference.instructionsAnalyzed);
    }
}

} // namespace
} // namespace webslice
