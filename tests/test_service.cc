/**
 * @file
 * Tests of the slicing service: the JSON value and its defensive
 * parser, the length-prefixed frame transport, the session cache's LRU
 * eviction / digest invalidation / singleflight build, the batch
 * scheduler's bit-identity with the direct slicer plus its dedup,
 * backpressure, and timeout behavior, and an in-process daemon serving
 * a real client over a Unix socket end to end.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/scheduler.hh"
#include "service/server.hh"
#include "service/session_cache.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace service {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

std::string
tempPath(const std::string &stem)
{
    return std::string(::testing::TempDir()) + stem;
}

/** Bare connected Unix-socket fd, for tests that speak raw frames. */
int
connectUnixRaw(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

// ---- JSON value ----------------------------------------------------------

TEST(Json, ParsesAndRoundTripsNestedValues)
{
    const std::string text =
        R"({"a":[1,2.5,-3],"b":{"s":"hi\nthere","t":true,"n":null}})";
    Json value;
    std::string error;
    ASSERT_TRUE(Json::parse(text, value, error)) << error;
    ASSERT_TRUE(value.isObject());

    const Json *a = value.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[0].asInt(), 1);
    EXPECT_DOUBLE_EQ(a->items()[1].asDouble(), 2.5);
    EXPECT_EQ(a->items()[2].asInt(), -3);

    const Json *b = value.find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->find("s")->asString(), "hi\nthere");
    EXPECT_TRUE(b->find("t")->asBool());
    EXPECT_TRUE(b->find("n")->isNull());

    // dump() then parse() is the identity on the value.
    Json again;
    ASSERT_TRUE(Json::parse(value.dump(), again, error)) << error;
    EXPECT_EQ(again.dump(), value.dump());
}

TEST(Json, PreservesExactIntegersAndMemberOrder)
{
    Json value;
    std::string error;
    ASSERT_TRUE(
        Json::parse("{\"z\":9007199254740993,\"a\":1}", value, error));
    // Exact beyond a double's 53-bit mantissa.
    EXPECT_EQ(value.find("z")->asInt(), 9007199254740993ll);
    ASSERT_EQ(value.members().size(), 2u);
    EXPECT_EQ(value.members()[0].first, "z"); // insertion order kept
    EXPECT_EQ(value.members()[1].first, "a");
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    Json value;
    std::string error;
    ASSERT_TRUE(Json::parse(R"("\u00e9\u20ac")", value, error)) << error;
    EXPECT_EQ(value.asString(), "\xc3\xa9\xe2\x82\xac"); // é €
}

TEST(Json, RejectsMalformedInputWithByteOffsets)
{
    const char *bad[] = {
        "",            // empty
        "{",           // unterminated object
        "[1,]",        // trailing comma
        "{\"a\" 1}",   // missing colon
        "\"\\x\"",     // bad escape
        "01",          // leading zero
        "1 2",         // trailing garbage
        "nul",         // bad literal
        "\"unterminated",
    };
    for (const char *text : bad) {
        Json value;
        std::string error;
        EXPECT_FALSE(Json::parse(text, value, error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(Json, RejectsPathologicalNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    Json value;
    std::string error;
    EXPECT_FALSE(Json::parse(deep, value, error));
}

// ---- frame transport -----------------------------------------------------

TEST(Frames, RoundTripOverAPipe)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    std::string error;
    ASSERT_TRUE(writeFrame(fds[1], "{\"op\":\"ping\"}", error)) << error;
    ASSERT_TRUE(writeFrame(fds[1], "42", error)) << error;
    close(fds[1]);

    std::string payload;
    ASSERT_EQ(readFrame(fds[0], payload, error), FrameRead::Ok) << error;
    EXPECT_EQ(payload, "{\"op\":\"ping\"}");
    ASSERT_EQ(readFrame(fds[0], payload, error), FrameRead::Ok) << error;
    EXPECT_EQ(payload, "42");
    EXPECT_EQ(readFrame(fds[0], payload, error), FrameRead::Eof);
    close(fds[0]);
}

TEST(Frames, OversizedAndTruncatedFramesAreErrors)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    // Length prefix far beyond the ceiling.
    const uint32_t huge = kMaxFrameBytes + 1;
    ASSERT_EQ(write(fds[1], &huge, 4), 4);
    std::string payload, error;
    EXPECT_EQ(readFrame(fds[0], payload, error), FrameRead::Error);
    EXPECT_NE(error.find("frame"), std::string::npos);
    close(fds[0]);
    close(fds[1]);

    // Prefix promising more bytes than ever arrive.
    ASSERT_EQ(pipe(fds), 0);
    const uint32_t ten = 10;
    ASSERT_EQ(write(fds[1], &ten, 4), 4);
    ASSERT_EQ(write(fds[1], "abc", 3), 3);
    close(fds[1]);
    EXPECT_EQ(readFrame(fds[0], payload, error), FrameRead::Error);
    close(fds[0]);
}

TEST(Frames, WriteSideValidationMirrorsTheReadSide)
{
    // A conforming writer must never produce a frame a conforming
    // reader rejects: the refusal boundaries have to be identical on
    // both sides. Exercised with a tiny cap so the boundary is cheap.
    constexpr uint32_t kCap = 16;
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    std::string error, payload;

    // Empty payloads are refused before any byte hits the wire (the
    // reader treats a zero length as a protocol violation).
    EXPECT_FALSE(writeFrame(fds[1], "", error, kCap));
    EXPECT_NE(error.find("minimum 1"), std::string::npos);

    // Exactly at the cap: accepted by both sides.
    const std::string at_cap(kCap, 'x');
    ASSERT_TRUE(writeFrame(fds[1], at_cap, error, kCap)) << error;
    ASSERT_EQ(readFrame(fds[0], payload, error, kCap), FrameRead::Ok)
        << error;
    EXPECT_EQ(payload, at_cap);

    // One past the cap: the writer refuses...
    const std::string over_cap(kCap + 1, 'x');
    EXPECT_FALSE(writeFrame(fds[1], over_cap, error, kCap));
    EXPECT_NE(error.find("limit"), std::string::npos);

    // ...and had it been written (by a writer with a larger cap), the
    // reader with the small cap rejects it at the same boundary.
    ASSERT_TRUE(writeFrame(fds[1], over_cap, error, kCap + 1)) << error;
    EXPECT_EQ(readFrame(fds[0], payload, error, kCap),
              FrameRead::Error);
    close(fds[0]);
    close(fds[1]);

    // A raw zero length prefix is rejected by the reader outright.
    ASSERT_EQ(pipe(fds), 0);
    const uint32_t zero = 0;
    ASSERT_EQ(write(fds[1], &zero, 4), 4);
    EXPECT_EQ(readFrame(fds[0], payload, error), FrameRead::Error);
    EXPECT_NE(error.find("frame"), std::string::npos);
    close(fds[0]);
    close(fds[1]);
}

TEST(Frames, WriteToAClosedPeerReportsErrnoNotValidation)
{
    // The server tells a vanished client (EPIPE) from a malformed
    // frame via errno_out: 0 for validation refusals, the write errno
    // otherwise.
    std::signal(SIGPIPE, SIG_IGN);
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    close(fds[0]); // Reader gone; the next write raises EPIPE.

    std::string error;
    int write_errno = -1;
    EXPECT_FALSE(writeFrame(fds[1], "{}", error, kMaxFrameBytes,
                            &write_errno));
    EXPECT_EQ(write_errno, EPIPE);
    close(fds[1]);

    // Validation refusals never touch the wire: errno_out stays 0.
    ASSERT_EQ(pipe(fds), 0);
    write_errno = -1;
    EXPECT_FALSE(writeFrame(fds[1], "", error, kMaxFrameBytes,
                            &write_errno));
    EXPECT_EQ(write_errno, 0);
    close(fds[0]);
    close(fds[1]);
}

// ---- query wire format ---------------------------------------------------

TEST(SliceQuery, RoundTripsThroughJson)
{
    SliceQuery query;
    query.mode = slicer::CriteriaMode::Syscalls;
    query.noWindow = true;
    query.endIndex = 1234;
    query.backwardJobs = 4;
    query.timeoutMs = 250;

    SliceQuery parsed;
    std::string error;
    ASSERT_TRUE(SliceQuery::fromJson(query.toJson(), parsed, error))
        << error;
    EXPECT_EQ(parsed.mode, query.mode);
    EXPECT_EQ(parsed.noWindow, query.noWindow);
    EXPECT_EQ(parsed.endIndex, query.endIndex);
    EXPECT_EQ(parsed.backwardJobs, query.backwardJobs);
    EXPECT_EQ(parsed.timeoutMs, query.timeoutMs);
}

TEST(SliceQuery, RejectsUnknownMembersAndBadModes)
{
    Json bad = Json::object();
    bad.set("mode", Json::string("pixel"));
    bad.set("surprise", Json::integer(1));
    SliceQuery parsed;
    std::string error;
    EXPECT_FALSE(SliceQuery::fromJson(bad, parsed, error));
    EXPECT_NE(error.find("surprise"), std::string::npos);

    Json wrong = Json::object();
    wrong.set("mode", Json::string("voodoo"));
    EXPECT_FALSE(SliceQuery::fromJson(wrong, parsed, error));
}

TEST(SliceQuery, DedupKeyIgnoresTimeoutButNotWork)
{
    SliceQuery a, b;
    a.timeoutMs = 10;
    b.timeoutMs = 9999;
    EXPECT_EQ(a.dedupKey(1), b.dedupKey(1));
    EXPECT_NE(a.dedupKey(1), a.dedupKey(2)); // different recording
    b.endIndex = 7;
    EXPECT_NE(a.dedupKey(1), b.dedupKey(1)); // different window
}

// ---- recorded-artifact fixture -------------------------------------------

/**
 * A small multi-threaded program whose artifacts are written to a
 * <prefix> on disk, exactly as webslice-record would: .trc (with block
 * index), .sym, .crit, and a .meta naming the benchmark. `salt` varies
 * the computation so two fixtures are distinct recordings.
 */
struct SavedProgram
{
    Machine machine;
    std::string prefix;
    std::vector<uint64_t> buffers;

    explicit SavedProgram(const std::string &stem, uint64_t salt = 0,
                          int chains = 4)
    {
        prefix = tempPath(stem);
        const auto t0 = machine.addThread("main");
        const auto t1 = machine.addThread("worker");
        const auto fn = machine.registerFunction("svc::chain");

        for (int c = 0; c < chains; ++c)
            buffers.push_back(machine.alloc(64, "buf"));
        for (int c = 0; c < chains; ++c) {
            const uint64_t buffer = buffers[c];
            const uint64_t rounds = 2 + (c + salt) % 5;
            machine.post(c % 2 ? t1 : t0,
                         [fn, buffer, rounds, c](Ctx &ctx) {
                TracedScope scope(ctx, fn);
                Value acc = ctx.imm(static_cast<uint64_t>(c) + 1);
                Value i = ctx.imm(0);
                Value n = ctx.imm(rounds);
                while (true) {
                    Value more = ctx.ltu(i, n);
                    if (!ctx.branchIf(more))
                        break;
                    acc = ctx.add(acc, i);
                    i = ctx.addi(i, 1);
                }
                ctx.store(buffer, 8, acc);
                sim::sysWrite(ctx, buffer, 8);
            });
        }
        machine.post(t0, [this, chains](Ctx &ctx) {
            for (int c = 0; c < chains / 2; ++c) {
                const trace::MemRange ranges[] = {{buffers[c], 8}};
                ctx.marker(ranges);
            }
        });
        machine.run();

        trace::TraceWriter writer(prefix + ".trc", /*block_index=*/true);
        for (const auto &rec : machine.records())
            writer.append(rec);
        writer.close();
        machine.symtab().save(prefix + ".sym");
        machine.pixelCriteria().save(prefix + ".crit");
        std::ofstream meta(prefix + ".meta");
        meta << "benchmark service-test\n";
    }

    ~SavedProgram()
    {
        for (const char *ext : {".trc", ".sym", ".crit", ".meta"})
            std::remove((prefix + ext).c_str());
    }

    slicer::SliceResult
    directSlice(const slicer::SlicerOptions &options = {}) const
    {
        const auto cfgs =
            graph::buildCfgs(machine.records(), machine.symtab());
        const auto deps = graph::buildControlDeps(cfgs);
        return slicer::computeSlice(machine.records(), cfgs, deps,
                                    machine.pixelCriteria(), options);
    }
};

// ---- session cache -------------------------------------------------------

TEST(SessionCache, SecondAcquireIsAHit)
{
    const SavedProgram program("cache_hit");
    SessionCache cache(1ull << 30);
    bool hit = true;
    const auto first = cache.acquire(program.prefix, &hit);
    EXPECT_FALSE(hit);
    const auto second = cache.acquire(program.prefix, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), second.get());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.built, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(SessionCache, EvictsColdestUnderByteBudget)
{
    const SavedProgram one("evict_one", /*salt=*/1);
    const SavedProgram two("evict_two", /*salt=*/2);

    // A budget of one byte cannot hold any session, but the newest
    // entry is exempt from eviction: inserting the second must evict
    // exactly the first.
    SessionCache cache(/*byte_budget=*/1);
    cache.acquire(one.prefix);
    EXPECT_EQ(cache.stats().entries, 1u); // newest survives over-budget
    cache.acquire(two.prefix);

    auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 1u);

    // The evicted recording must be rebuilt on its next use.
    bool hit = true;
    cache.acquire(one.prefix, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.stats().built, 3u);
}

TEST(SessionCache, ChangedArtifactInvalidatesTheEntry)
{
    const SavedProgram program("invalidate", /*salt=*/3);
    SessionCache cache(1ull << 30);
    const auto first = cache.acquire(program.prefix);

    // Rewrite the criteria sidecar: same prefix, different recording.
    {
        trace::CriteriaSet fewer;
        fewer.add(/*marker=*/0, program.buffers[0], 4);
        fewer.save(program.prefix + ".crit");
    }

    bool hit = true;
    const auto second = cache.acquire(program.prefix, &hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(first.get(), second.get());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.invalidations, 1u);
    EXPECT_EQ(stats.built, 2u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(SessionCache, ConcurrentAcquiresBuildOnce)
{
    const SavedProgram program("concurrent", /*salt=*/4);
    SessionCache cache(1ull << 30);

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const Session>> sessions(kThreads);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            try {
                sessions[t] = cache.acquire(program.prefix);
            } catch (...) {
                ++failures;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(cache.stats().built, 1u);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(sessions[t].get(), sessions[0].get());
}

TEST(SessionCache, MissingArtifactsThrowInsteadOfExiting)
{
    SessionCache cache(1ull << 30);
    EXPECT_THROW(cache.acquire(tempPath("no_such_recording")),
                 FatalError);
    // The failure must not leave a poisoned entry behind.
    EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- epoch-plan cache ----------------------------------------------------

TEST(SessionCache, PlanAcquireHitsPerWindowAndCountsStats)
{
    const SavedProgram program("plan_cache", /*salt=*/21);
    SessionCache cache(1ull << 30);
    const auto session = cache.acquire(program.prefix);
    const size_t window = session->windowEnd(false, UINT64_MAX);

    bool hit = true;
    const auto plan = cache.acquirePlan(session, window, &hit);
    ASSERT_TRUE(plan);
    EXPECT_FALSE(hit);
    EXPECT_EQ(plan->windowEnd(), window);

    const auto again = cache.acquirePlan(session, window, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(plan.get(), again.get());

    // A different window is a different plan.
    const auto other = cache.acquirePlan(session, window - 1, &hit);
    ASSERT_TRUE(other);
    EXPECT_FALSE(hit);
    EXPECT_NE(other.get(), plan.get());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.planBuilds, 2u);
    EXPECT_EQ(stats.planHits, 1u);
    EXPECT_EQ(stats.planMisses, 2u);
    EXPECT_EQ(stats.planEntries, 2u);
    EXPECT_GT(stats.planBytes, 0u);
    EXPECT_GE(stats.bytes, stats.planBytes);
}

TEST(SessionCache, PlansEvictUnderTheSharedByteBudget)
{
    const SavedProgram program("plan_evict", /*salt=*/22);

    // Nothing fits in one byte, but the newest plan (and session) are
    // exempt: each insertion evicts the previous plan, never the
    // session.
    SessionCache cache(/*byte_budget=*/1);
    const auto session = cache.acquire(program.prefix);
    const size_t window = session->windowEnd(false, UINT64_MAX);

    cache.acquirePlan(session, window);
    EXPECT_EQ(cache.stats().planEntries, 1u);
    cache.acquirePlan(session, window - 1);
    auto stats = cache.stats();
    EXPECT_EQ(stats.planEntries, 1u);
    EXPECT_EQ(stats.planEvictions, 1u);
    EXPECT_EQ(stats.entries, 1u); // plans go before sessions

    // The evicted window must be rebuilt on its next use.
    bool hit = true;
    cache.acquirePlan(session, window, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.stats().planBuilds, 3u);
}

TEST(SessionCache, InvalidationDropsTheRecordingsPlans)
{
    const SavedProgram program("plan_invalidate", /*salt=*/23);
    SessionCache cache(1ull << 30);
    const auto first = cache.acquire(program.prefix);
    const size_t window = first->windowEnd(false, UINT64_MAX);
    cache.acquirePlan(first, window);
    EXPECT_EQ(cache.stats().planEntries, 1u);

    // Rewrite the criteria sidecar: same prefix, different recording —
    // plans built against the stale artifacts must go with the session.
    {
        trace::CriteriaSet fewer;
        fewer.add(/*marker=*/0, program.buffers[0], 4);
        fewer.save(program.prefix + ".crit");
    }
    const auto second = cache.acquire(program.prefix);
    EXPECT_EQ(cache.stats().invalidations, 1u);
    EXPECT_EQ(cache.stats().planEntries, 0u);

    bool hit = true;
    const auto rebuilt = cache.acquirePlan(
        second, second->windowEnd(false, UINT64_MAX), &hit);
    ASSERT_TRUE(rebuilt);
    EXPECT_FALSE(hit);
}

// ---- scheduler -----------------------------------------------------------

TEST(Scheduler, ResultIsBitIdenticalToTheDirectSlicer)
{
    const SavedProgram program("sched_exact", /*salt=*/5);
    SessionCache cache(1ull << 30);
    Scheduler scheduler(cache, {});

    SliceQuery query; // pixel-buffer, full window
    const auto submitted = scheduler.submit(program.prefix, query);
    ASSERT_FALSE(submitted.rejected);
    const QueryResult &result = submitted.job->wait();
    ASSERT_EQ(result.status, QueryResult::Status::Ok) << result.error;

    const auto direct = program.directSlice();
    EXPECT_EQ(result.sliceInstructions, direct.sliceInstructions);
    EXPECT_EQ(result.instructionsAnalyzed, direct.instructionsAnalyzed);
    EXPECT_EQ(result.inSliceFnv1a,
              fnv1a64(direct.inSlice.data(), direct.inSlice.size()));
}

TEST(Scheduler, DuplicateInFlightQueriesShareOneJob)
{
    const SavedProgram program("sched_dedup", /*salt=*/6);
    SessionCache cache(1ull << 30);
    Scheduler scheduler(cache, {/*workers=*/1, /*maxQueue=*/16});

    // Occupy the single worker so the next submissions stay queued.
    SliceQuery blocker;
    blocker.debugSleepMs = 200;
    scheduler.submit(program.prefix, blocker);

    SliceQuery query;
    query.endIndex = 50; // distinct from the blocker's key
    const auto first = scheduler.submit(program.prefix, query);
    const auto second = scheduler.submit(program.prefix, query);
    EXPECT_FALSE(first.deduped);
    EXPECT_TRUE(second.deduped);
    EXPECT_EQ(first.job.get(), second.job.get());

    const QueryResult &result = second.job->wait();
    EXPECT_EQ(result.status, QueryResult::Status::Ok) << result.error;
    scheduler.drain();
    EXPECT_EQ(scheduler.stats().deduped, 1u);
}

TEST(Scheduler, FullQueueRejectsImmediately)
{
    const SavedProgram program("sched_reject", /*salt=*/7);
    SessionCache cache(1ull << 30);
    Scheduler scheduler(cache, {/*workers=*/1, /*maxQueue=*/1});

    SliceQuery blocker;
    blocker.debugSleepMs = 200;
    scheduler.submit(program.prefix, blocker);

    SliceQuery query;
    query.endIndex = 50;
    const auto bounced = scheduler.submit(program.prefix, query);
    EXPECT_TRUE(bounced.rejected);
    ASSERT_TRUE(bounced.job->done());
    EXPECT_EQ(bounced.job->wait().status, QueryResult::Status::Rejected);
    EXPECT_NE(bounced.job->wait().error.find("queue full"),
              std::string::npos);
    scheduler.drain();
    EXPECT_EQ(scheduler.stats().rejected, 1u);
}

TEST(Scheduler, ExpiredDeadlineReportsTimeoutWithoutRunning)
{
    const SavedProgram program("sched_timeout", /*salt=*/8);
    SessionCache cache(1ull << 30);
    Scheduler scheduler(cache, {/*workers=*/1, /*maxQueue=*/16});

    SliceQuery blocker;
    blocker.debugSleepMs = 250;
    scheduler.submit(program.prefix, blocker);

    SliceQuery impatient;
    impatient.endIndex = 50;
    impatient.timeoutMs = 20; // expires while the blocker holds the worker
    const auto submitted = scheduler.submit(program.prefix, impatient);
    const QueryResult &result = submitted.job->wait();
    EXPECT_EQ(result.status, QueryResult::Status::Timeout);
    scheduler.drain();
    EXPECT_EQ(scheduler.stats().timedOut, 1u);
}

TEST(Scheduler, LoadFailuresFailTheOneRequestOnly)
{
    SessionCache cache(1ull << 30);
    Scheduler scheduler(cache, {});
    SliceQuery query;
    const auto submitted =
        scheduler.submit(tempPath("sched_no_artifacts"), query);
    const QueryResult &result = submitted.job->wait();
    EXPECT_EQ(result.status, QueryResult::Status::Error);
    EXPECT_FALSE(result.error.empty());
    scheduler.drain();
    EXPECT_EQ(scheduler.stats().failed, 1u);
}

TEST(Scheduler, ManyCriteriaOverOneSessionShareOnePlan)
{
    const SavedProgram program("sched_plans", /*salt=*/24);
    SessionCache cache(1ull << 30);
    Scheduler scheduler(cache, {/*workers=*/2, /*maxQueue=*/32});

    // The oracle answers for both criteria modes at the default window.
    const auto direct_pixel = program.directSlice();
    slicer::SlicerOptions syscall_options;
    syscall_options.mode = slicer::CriteriaMode::Syscalls;
    const auto direct_syscalls = program.directSlice(syscall_options);

    // Eight criterion queries against one recording: both modes, four
    // backward-job counts. Sequential waits make the first query the
    // one (and only) plan build.
    for (int i = 0; i < 8; ++i) {
        SliceQuery query;
        query.mode = i % 2 ? slicer::CriteriaMode::Syscalls
                           : slicer::CriteriaMode::PixelBuffer;
        query.backwardJobs = 1 + i / 2;
        const auto submitted = scheduler.submit(program.prefix, query);
        ASSERT_FALSE(submitted.rejected);
        const QueryResult &result = submitted.job->wait();
        ASSERT_EQ(result.status, QueryResult::Status::Ok) << result.error;
        EXPECT_EQ(result.planHit, i != 0) << "query " << i;

        const auto &direct = i % 2 ? direct_syscalls : direct_pixel;
        EXPECT_EQ(result.inSliceFnv1a,
                  fnv1a64(direct.inSlice.data(), direct.inSlice.size()))
            << "query " << i;
    }
    scheduler.drain();

    const auto stats = cache.stats();
    EXPECT_EQ(stats.planBuilds, 1u);
    EXPECT_EQ(stats.planHits, 7u);
    EXPECT_EQ(stats.built, 1u); // one forward pass for the whole batch
}

TEST(Scheduler, PlanEvictionMidBatchKeepsResultsCorrect)
{
    const SavedProgram program("sched_evict", /*salt=*/25);

    // A one-byte budget holds only the newest plan: alternating between
    // two windows evicts the other window's plan every time, so every
    // query after the first pair rebuilds — and must still be right.
    SessionCache cache(/*byte_budget=*/1);
    Scheduler scheduler(cache, {/*workers=*/1, /*maxQueue=*/16});

    const size_t windows[] = {60, 40};
    slicer::SliceResult oracle[2];
    for (int w = 0; w < 2; ++w) {
        slicer::SlicerOptions options;
        options.endIndex = windows[w];
        oracle[w] = program.directSlice(options);
    }

    for (int round = 0; round < 3; ++round) {
        for (int w = 0; w < 2; ++w) {
            SliceQuery query;
            query.endIndex = windows[w];
            query.backwardJobs = 1 + round;
            const auto submitted =
                scheduler.submit(program.prefix, query);
            ASSERT_FALSE(submitted.rejected);
            const QueryResult &result = submitted.job->wait();
            ASSERT_EQ(result.status, QueryResult::Status::Ok)
                << result.error;
            EXPECT_EQ(result.inSliceFnv1a,
                      fnv1a64(oracle[w].inSlice.data(),
                              oracle[w].inSlice.size()))
                << "round " << round << " window " << windows[w];
        }
    }
    scheduler.drain();

    const auto stats = cache.stats();
    EXPECT_GE(stats.planEvictions, 4u);
    EXPECT_EQ(stats.planBuilds, 6u); // every round rebuilds both plans
    EXPECT_LE(stats.planEntries, 1u);
}

TEST(Scheduler, PlanlessModeRunsEveryQueryCold)
{
    const SavedProgram program("sched_planless", /*salt=*/26);
    SessionCache cache(1ull << 30);
    Scheduler scheduler(
        cache, {/*workers=*/1, /*maxQueue=*/16, /*usePlans=*/false});

    const auto direct = program.directSlice();
    for (int i = 0; i < 2; ++i) {
        SliceQuery query;
        query.backwardJobs = 1 + i;
        const auto submitted = scheduler.submit(program.prefix, query);
        const QueryResult &result = submitted.job->wait();
        ASSERT_EQ(result.status, QueryResult::Status::Ok) << result.error;
        EXPECT_FALSE(result.planHit);
        EXPECT_EQ(result.inSliceFnv1a,
                  fnv1a64(direct.inSlice.data(), direct.inSlice.size()));
    }
    scheduler.drain();
    EXPECT_EQ(cache.stats().planBuilds, 0u);
}

// ---- end to end over a real socket ---------------------------------------

TEST(Server, ServesABatchOverAUnixSocket)
{
    const SavedProgram program("e2e", /*salt=*/9);

    ServerOptions options;
    options.socketPath = tempPath("e2e.sock");
    options.workers = 4;
    Server server(options);
    std::thread serving([&] { server.run(); });

    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connectUnix(options.socketPath, error)) << error;

    // ping
    Json ping = Json::object();
    ping.set("op", Json::string("ping"));
    Json pong;
    ASSERT_TRUE(client.call(ping, pong, error)) << error;
    EXPECT_EQ(pong.find("op")->asString(), "pong");
    EXPECT_EQ(pong.find("schema")->asString(), kServeSchema);

    // One batch mixing criteria modes and windows.
    std::vector<SliceQuery> queries(4);
    queries[1].mode = slicer::CriteriaMode::Syscalls;
    queries[2].endIndex = 40;
    queries[3].backwardJobs = 2;

    ServiceClient::BatchOutcome outcome;
    ASSERT_TRUE(client.batch(program.prefix, queries, outcome, error))
        << error;
    ASSERT_EQ(outcome.results.size(), 4u);
    EXPECT_EQ(outcome.ok, 4u);

    // The pixel-buffer default query must be bit-identical to running
    // the slicer directly over the same records.
    const auto direct = program.directSlice();
    EXPECT_EQ(outcome.results[0].inSliceFnv1a,
              fnv1a64(direct.inSlice.data(), direct.inSlice.size()));

    // Same batch again: the session must come from the cache.
    ServiceClient::BatchOutcome warm;
    ASSERT_TRUE(client.batch(program.prefix, queries, warm, error))
        << error;
    EXPECT_EQ(warm.ok, 4u);
    for (const auto &result : warm.results) {
        EXPECT_TRUE(result.cacheHit);
        EXPECT_TRUE(result.planHit); // both windows' plans are cached
    }
    EXPECT_EQ(warm.results[0].inSliceFnv1a,
              outcome.results[0].inSliceFnv1a);
    EXPECT_EQ(server.cache().stats().built, 1u);
    // Two windows appeared in the batch (default and endIndex=40), so
    // exactly two plans were transcoded across both batches.
    EXPECT_EQ(server.cache().stats().planBuilds, 2u);

    // stats frames carry the cache, slicer, and scheduler sections.
    Json stats_request = Json::object();
    stats_request.set("op", Json::string("stats"));
    Json stats;
    ASSERT_TRUE(client.call(stats_request, stats, error)) << error;
    ASSERT_NE(stats.find("cache"), nullptr);
    EXPECT_EQ(stats.find("cache")->find("built")->asInt(), 1);
    EXPECT_EQ(stats.find("cache")->find("plan_builds")->asInt(), 2);
    EXPECT_GE(stats.find("cache")->find("plan_hits")->asInt(), 4);
    ASSERT_NE(stats.find("scheduler"), nullptr);
    // Slicer counters are global across the process, so only presence
    // and monotonicity are asserted here.
    const Json *slicer_stats = stats.find("slicer");
    ASSERT_NE(slicer_stats, nullptr);
    ASSERT_NE(slicer_stats->find("epoch_boundary_splits"), nullptr);
    EXPECT_GE(slicer_stats->find("plan_hits")->asInt(), 4);
    EXPECT_GE(slicer_stats->find("memo_hits")->asInt(), 0);

    // A malformed request answers with an error frame, not a dead
    // daemon; the connection closes, so reconnect for shutdown.
    Json bad = Json::object();
    bad.set("op", Json::string("frobnicate"));
    Json answer;
    ASSERT_TRUE(client.call(bad, answer, error)) << error;
    EXPECT_EQ(answer.find("status")->asString(), "error");

    ServiceClient again;
    ASSERT_TRUE(again.connectUnix(options.socketPath, error)) << error;
    Json shutdown_request = Json::object();
    shutdown_request.set("op", Json::string("shutdown"));
    Json ack;
    ASSERT_TRUE(again.call(shutdown_request, ack, error)) << error;
    EXPECT_EQ(ack.find("status")->asString(), "ok");

    serving.join();
    // Graceful shutdown removes the socket file.
    EXPECT_NE(access(options.socketPath.c_str(), F_OK), 0);
}

TEST(Server, MalformedBatchQueryFailsInBandAndStopsTheBatch)
{
    const SavedProgram program("e2e_bad", /*salt=*/10);

    ServerOptions options;
    options.socketPath = tempPath("e2e_bad.sock");
    Server server(options);
    std::thread serving([&] { server.run(); });

    // Hand-build a batch whose second query is garbage, over a raw
    // socket so every streamed frame is visible.
    const int fd = connectUnixRaw(options.socketPath);
    ASSERT_GE(fd, 0);

    Json request = Json::object();
    request.set("op", Json::string("batch"));
    request.set("prefix", Json::string(program.prefix));
    Json queries = Json::array();
    queries.push(SliceQuery().toJson());
    Json bad = Json::object();
    bad.set("mode", Json::string("nonsense"));
    queries.push(bad);
    queries.push(SliceQuery().toJson()); // must never be submitted
    request.set("queries", std::move(queries));

    std::string error;
    ASSERT_TRUE(writeFrame(fd, request.dump(), error)) << error;

    std::vector<Json> frames;
    for (;;) {
        std::string payload;
        const FrameRead got = readFrame(fd, payload, error);
        ASSERT_EQ(got, FrameRead::Ok) << error;
        Json frame;
        ASSERT_TRUE(Json::parse(payload, frame, error)) << error;
        const bool is_done = frame.find("op")->asString() == "batch_done";
        frames.push_back(std::move(frame));
        if (is_done)
            break;
    }
    close(fd);

    // id 0 ran; id 1 failed in-band with the parse diagnostic; id 2
    // was cut off by the malformed query ("a half-understood batch
    // must not half-run"); batch_done reports the mixed outcome.
    ASSERT_EQ(frames.size(), 3u); // result 0, result 1, batch_done
    EXPECT_EQ(frames[0].find("status")->asString(), "ok");
    EXPECT_EQ(frames[1].find("status")->asString(), "error");
    EXPECT_NE(frames[1].find("error")->asString().find("nonsense"),
              std::string::npos);
    EXPECT_EQ(frames[2].find("op")->asString(), "batch_done");
    EXPECT_EQ(frames[2].find("status")->asString(), "error");
    EXPECT_EQ(server.scheduler().stats().submitted, 1u);

    server.requestShutdown();
    serving.join();
}

TEST(Server, ClientDisconnectMidBatchAbandonsQueuedJobs)
{
    const SavedProgram program("e2e_gone", /*salt=*/11);

    ServerOptions options;
    options.socketPath = tempPath("e2e_gone.sock");
    options.workers = 1; // Serialize jobs so the tail stays queued.
    Server server(options);
    std::thread serving([&] { server.run(); });

    const uint64_t disconnects_before =
        MetricRegistry::global()
            .counter("service.client_disconnects")
            .value();

    // Five queries on one worker: the first is quick, the rest hold
    // the worker long enough for the disconnect to land while they
    // are queued. Distinct windows keep them from deduping.
    const int fd = connectUnixRaw(options.socketPath);
    ASSERT_GE(fd, 0);
    Json request = Json::object();
    request.set("op", Json::string("batch"));
    request.set("prefix", Json::string(program.prefix));
    Json queries = Json::array();
    for (int i = 0; i < 5; ++i) {
        SliceQuery query;
        query.endIndex = 60 - static_cast<uint64_t>(i);
        query.debugSleepMs = i == 0 ? 0 : 400;
        queries.push(query.toJson());
    }
    request.set("queries", std::move(queries));
    std::string error;
    ASSERT_TRUE(writeFrame(fd, request.dump(), error)) << error;

    // Consume the first result, then vanish mid-batch.
    std::string payload;
    ASSERT_EQ(readFrame(fd, payload, error), FrameRead::Ok) << error;
    close(fd);

    // The dropped connection must cancel the still-queued tail: the
    // running job finishes, but jobs dequeued with no waiters left are
    // abandoned without running their backward pass. Poll rather than
    // drain: Scheduler::drain() lends this thread to the pool, which
    // would run the queued tail before the handler can withdraw it.
    // The handler notices the hangup when the in-flight job's result
    // fails to send; the next dequeue races that, so at most one of
    // the four queued jobs can slip through and run.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.scheduler().stats().completed < 5 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto stats = server.scheduler().stats();
    EXPECT_EQ(stats.submitted, 5u);
    EXPECT_EQ(stats.completed, 5u);
    EXPECT_GE(stats.abandoned, 2u);
    EXPECT_EQ(stats.failed, 0u); // Abandons are not failures.
    EXPECT_GE(MetricRegistry::global()
                  .counter("service.client_disconnects")
                  .value(),
              disconnects_before + 1);

    server.requestShutdown();
    serving.join();
}

TEST(Server, DrainRefusesBatchesButKeepsAnsweringPings)
{
    const SavedProgram program("e2e_drain", /*salt=*/12);

    ServerOptions options;
    options.socketPath = tempPath("e2e_drain.sock");
    options.shardId = "shard-a";
    options.shardEpoch = 7;
    Server server(options);
    std::thread serving([&] { server.run(); });

    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connectUnix(options.socketPath, error)) << error;

    // Before the drain: batches work and results carry the shard
    // identity a fleet client attributes failovers with.
    ServiceClient::BatchOutcome outcome;
    ASSERT_TRUE(client.batch(program.prefix, {SliceQuery()}, outcome,
                             error))
        << error;
    ASSERT_EQ(outcome.ok, 1u);
    EXPECT_EQ(outcome.results[0].shard, "shard-a");
    EXPECT_EQ(outcome.results[0].shardEpoch, 7u);

    // Ping reports draining:false with the shard identity.
    Json ping = Json::object();
    ping.set("op", Json::string("ping"));
    Json pong;
    ASSERT_TRUE(client.call(ping, pong, error)) << error;
    EXPECT_EQ(pong.find("shard")->asString(), "shard-a");
    EXPECT_EQ(pong.find("shard_epoch")->asInt(), 7);
    EXPECT_FALSE(pong.find("draining")->asBool());

    // The drain op acks and flips the flag...
    Json drain = Json::object();
    drain.set("op", Json::string("drain"));
    Json ack;
    ASSERT_TRUE(client.call(drain, ack, error)) << error;
    EXPECT_EQ(ack.find("op")->asString(), "drain_ack");
    EXPECT_TRUE(ack.find("draining")->asBool());
    EXPECT_TRUE(server.draining());

    // ...pings still answer (flagged, so health checks see the state)...
    ASSERT_TRUE(client.call(ping, pong, error)) << error;
    EXPECT_TRUE(pong.find("draining")->asBool());

    // ...but new batches are refused with an error frame naming the
    // drain, and the frame carries "draining": true so a fleet client
    // treats it as a failover rather than a user error.
    ServiceClient refused;
    ASSERT_TRUE(refused.connectUnix(options.socketPath, error)) << error;
    ServiceClient::BatchOutcome ignored;
    EXPECT_FALSE(refused.batch(program.prefix, {SliceQuery()}, ignored,
                               error));
    EXPECT_NE(error.find("draining"), std::string::npos);

    server.requestShutdown();
    serving.join();
}

TEST(Server, WarmOpBuildsTheSessionWithoutSlicing)
{
    const SavedProgram program("e2e_warm", /*salt=*/13);

    ServerOptions options;
    options.socketPath = tempPath("e2e_warm.sock");
    Server server(options);
    std::thread serving([&] { server.run(); });

    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connectUnix(options.socketPath, error)) << error;

    Json warm = Json::object();
    warm.set("op", Json::string("warm"));
    warm.set("prefix", Json::string(program.prefix));
    Json ack;
    ASSERT_TRUE(client.call(warm, ack, error)) << error;
    EXPECT_EQ(ack.find("op")->asString(), "warm_ack");

    // The build is asynchronous; drain the worker pool, then the first
    // real query must hit the replicated session.
    server.scheduler().drain();
    EXPECT_EQ(server.cache().stats().built, 1u);

    ServiceClient::BatchOutcome outcome;
    ASSERT_TRUE(client.batch(program.prefix, {SliceQuery()}, outcome,
                             error))
        << error;
    ASSERT_EQ(outcome.ok, 1u);
    EXPECT_TRUE(outcome.results[0].cacheHit);

    // A warm op without a prefix is a request error, not a crash.
    ServiceClient bad;
    ASSERT_TRUE(bad.connectUnix(options.socketPath, error)) << error;
    Json no_prefix = Json::object();
    no_prefix.set("op", Json::string("warm"));
    Json answer;
    ASSERT_TRUE(bad.call(no_prefix, answer, error)) << error;
    EXPECT_EQ(answer.find("status")->asString(), "error");

    server.requestShutdown();
    serving.join();
}

} // namespace
} // namespace service
} // namespace webslice
