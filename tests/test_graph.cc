/**
 * @file
 * Unit tests for the forward pass: CFG reconstruction from dynamic traces,
 * postdominator computation, and control dependences.
 */

#include <gtest/gtest.h>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "graph/postdom.hh"
#include "sim/machine.hh"

namespace webslice {
namespace graph {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

// ---- postdominators on hand-built graphs -----------------------------------

/** Build a CFG from an edge list over nodes 0..n-1 (0=entry, 1=exit). */
Cfg
makeCfg(int nodes, std::initializer_list<std::pair<int, int>> edges)
{
    Cfg cfg;
    cfg.nodePc.assign(nodes, trace::kNoPc);
    cfg.succs.assign(nodes, {});
    cfg.preds.assign(nodes, {});
    cfg.isBranch.assign(nodes, false);
    for (int i = 2; i < nodes; ++i) {
        cfg.nodePc[i] = 0x1000 + 4 * i;
        cfg.pcNode[cfg.nodePc[i]] = i;
    }
    for (auto [a, b] : edges)
        cfg.addEdge(a, b);
    return cfg;
}

TEST(Postdom, LinearChain)
{
    // entry -> 2 -> 3 -> exit
    Cfg cfg = makeCfg(4, {{0, 2}, {2, 3}, {3, 1}});
    const auto ipdom = computePostdoms(cfg);
    EXPECT_EQ(ipdom[0], 2);
    EXPECT_EQ(ipdom[2], 3);
    EXPECT_EQ(ipdom[3], 1);
    EXPECT_EQ(ipdom[1], 1);
}

TEST(Postdom, Diamond)
{
    // entry -> 2(branch) -> {3, 4} -> 5 -> exit
    Cfg cfg = makeCfg(6,
                      {{0, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}, {5, 1}});
    const auto ipdom = computePostdoms(cfg);
    EXPECT_EQ(ipdom[2], 5); // join postdominates the branch
    EXPECT_EQ(ipdom[3], 5);
    EXPECT_EQ(ipdom[4], 5);
    EXPECT_EQ(ipdom[5], 1);
    EXPECT_TRUE(postdominates(ipdom, 5, 2));
    EXPECT_TRUE(postdominates(ipdom, 1, 2));
    EXPECT_FALSE(postdominates(ipdom, 3, 2));
}

TEST(Postdom, LoopBackEdge)
{
    // entry -> 2(header/branch) -> 3(body) -> 2 ; 2 -> exit
    Cfg cfg = makeCfg(4, {{0, 2}, {2, 3}, {3, 2}, {2, 1}});
    const auto ipdom = computePostdoms(cfg);
    EXPECT_EQ(ipdom[3], 2); // body postdominated by the header
    EXPECT_EQ(ipdom[2], 1);
}

TEST(Postdom, SelfPostdominationHoldsTrivially)
{
    Cfg cfg = makeCfg(3, {{0, 2}, {2, 1}});
    const auto ipdom = computePostdoms(cfg);
    EXPECT_TRUE(postdominates(ipdom, 2, 2));
}

// ---- control deps on hand-built graphs -------------------------------------

TEST(ControlDeps, DiamondArmsDependOnBranch)
{
    CfgSet cfgs;
    Cfg cfg = makeCfg(6,
                      {{0, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}, {5, 1}});
    cfg.func = 0;
    cfg.isBranch[2] = true;
    cfgs.byFunc.emplace(0u, std::move(cfg));

    const ControlDepMap deps = buildControlDeps(cfgs);
    const trace::Pc branch_pc = 0x1000 + 4 * 2;
    const auto then_deps = deps.depsOf(0, 0x1000 + 4 * 3);
    const auto else_deps = deps.depsOf(0, 0x1000 + 4 * 4);
    const auto join_deps = deps.depsOf(0, 0x1000 + 4 * 5);
    ASSERT_EQ(then_deps.size(), 1u);
    EXPECT_EQ(then_deps[0], branch_pc);
    ASSERT_EQ(else_deps.size(), 1u);
    EXPECT_EQ(else_deps[0], branch_pc);
    EXPECT_TRUE(join_deps.empty());
}

TEST(ControlDeps, LoopBodyAndHeaderDependOnHeaderBranch)
{
    CfgSet cfgs;
    Cfg cfg = makeCfg(4, {{0, 2}, {2, 3}, {3, 2}, {2, 1}});
    cfg.func = 3;
    cfg.isBranch[2] = true;
    cfgs.byFunc.emplace(3u, std::move(cfg));

    const ControlDepMap deps = buildControlDeps(cfgs);
    const trace::Pc header_pc = 0x1000 + 4 * 2;
    const auto body_deps = deps.depsOf(3, 0x1000 + 4 * 3);
    ASSERT_EQ(body_deps.size(), 1u);
    EXPECT_EQ(body_deps[0], header_pc);
    // The loop header is control-dependent on itself (back edge).
    const auto header_deps = deps.depsOf(3, header_pc);
    ASSERT_EQ(header_deps.size(), 1u);
    EXPECT_EQ(header_deps[0], header_pc);
}

TEST(ControlDeps, NonBranchMultiSuccessorIsIgnored)
{
    CfgSet cfgs;
    Cfg cfg = makeCfg(6,
                      {{0, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}, {5, 1}});
    cfg.func = 1;
    // Node 2 has two successors but never executed a Branch record.
    cfgs.byFunc.emplace(1u, std::move(cfg));

    const ControlDepMap deps = buildControlDeps(cfgs);
    EXPECT_TRUE(deps.depsOf(1, 0x1000 + 4 * 3).empty());
    EXPECT_EQ(deps.pairCount(), 0u);
}

TEST(ControlDepMap, SaveLoadRoundTrip)
{
    ControlDepMap deps;
    deps.add(2, 0x1010, 0x1004);
    deps.add(2, 0x1010, 0x1008);
    deps.add(2, 0x1010, 0x1004); // duplicate ignored
    deps.add(7, 0x2000, 0x2004);
    EXPECT_EQ(deps.pairCount(), 3u);

    const std::string path = std::string(::testing::TempDir()) + "cdg.txt";
    deps.save(path);
    ControlDepMap loaded;
    loaded.load(path);
    EXPECT_EQ(loaded.pairCount(), 3u);
    EXPECT_EQ(loaded.depsOf(2, 0x1010).size(), 2u);
    EXPECT_EQ(loaded.depsOf(7, 0x2000).size(), 1u);
    EXPECT_TRUE(loaded.depsOf(9, 0x1010).empty());
    std::remove(path.c_str());
}

// ---- CFG reconstruction from machine traces ---------------------------------

TEST(CfgBuild, AttributesRecordsToFunctions)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const auto outer = machine.registerFunction("css::resolve");
    const auto inner = machine.registerFunction("css::match");

    {
        TracedScope outer_scope(ctx, outer);
        Value a = ctx.imm(1);
        {
            TracedScope inner_scope(ctx, inner);
            Value b = ctx.imm(2);
            (void)b;
        }
        Value c = ctx.addi(a, 1);
        (void)c;
    }

    const auto cfgs = buildCfgs(machine.records(), machine.symtab());
    const auto &records = machine.records();
    // Layout: Call(outer) imm Call(inner) imm Ret addi Ret
    ASSERT_EQ(records.size(), 7u);
    ASSERT_EQ(cfgs.funcOf.size(), 7u);
    // The Call record belongs to the *caller*: toplevel for the first.
    EXPECT_GE(cfgs.funcOf[0], cfgs.firstSynthetic);
    EXPECT_EQ(cfgs.funcOf[1], outer);
    EXPECT_EQ(cfgs.funcOf[2], outer); // inner Call belongs to outer
    EXPECT_EQ(cfgs.funcOf[3], inner);
    EXPECT_EQ(cfgs.funcOf[4], inner); // inner Ret
    EXPECT_EQ(cfgs.funcOf[5], outer);
    EXPECT_EQ(cfgs.funcOf[6], outer); // outer Ret
}

TEST(CfgBuild, BranchBothWaysMakesDiamond)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto func = machine.registerFunction("layout::place");

    auto body = [&](Ctx &ctx, bool flag) {
        TracedScope scope(ctx, func);
        Value cond = ctx.imm(flag ? 1 : 0);
        if (ctx.branchIf(cond)) {
            Value t = ctx.imm(10);
            (void)t;
        } else {
            Value f = ctx.imm(20);
            (void)f;
        }
        Value join = ctx.imm(30);
        (void)join;
    };
    machine.post(tid, [&](Ctx &ctx) { body(ctx, true); });
    machine.post(tid, [&](Ctx &ctx) { body(ctx, false); });
    machine.run();

    const auto cfgs = buildCfgs(machine.records(), machine.symtab());
    const auto &cfg = cfgs.byFunc.at(func);

    // Find the branch node: it must have two distinct successors.
    NodeId branch_node = kNoNode;
    for (size_t n = 0; n < cfg.nodeCount(); ++n) {
        if (cfg.isBranch[n])
            branch_node = static_cast<NodeId>(n);
    }
    ASSERT_NE(branch_node, kNoNode);
    EXPECT_EQ(cfg.succs[branch_node].size(), 2u);

    // And control deps must point both arms at the branch.
    const auto deps = buildControlDeps(cfgs);
    const trace::Pc branch_pc = cfg.nodePc[branch_node];
    size_t dependent_pcs = 0;
    for (size_t n = 2; n < cfg.nodeCount(); ++n) {
        const auto node_deps = deps.depsOf(func, cfg.nodePc[n]);
        for (const auto pc : node_deps) {
            if (pc == branch_pc)
                ++dependent_pcs;
        }
    }
    EXPECT_EQ(dependent_pcs, 2u); // then-arm and else-arm only
}

TEST(CfgBuild, SyntheticToplevelPerThread)
{
    Machine machine;
    const auto t0 = machine.addThread("main");
    const auto t1 = machine.addThread("worker");
    machine.post(t0, [](Ctx &ctx) {
        Value v = ctx.imm(1);
        (void)v;
    });
    machine.post(t1, [](Ctx &ctx) {
        Value v = ctx.imm(2);
        (void)v;
    });
    machine.run();

    const auto cfgs = buildCfgs(machine.records(), machine.symtab());
    ASSERT_EQ(cfgs.funcOf.size(), 2u);
    EXPECT_NE(cfgs.funcOf[0], cfgs.funcOf[1]);
    EXPECT_GE(cfgs.funcOf[0], cfgs.firstSynthetic);
    const std::string name0 =
        cfgs.functionName(cfgs.funcOf[0], machine.symtab());
    EXPECT_NE(name0.find("toplevel"), std::string::npos);
}

TEST(CfgBuild, LoopFormsBackEdge)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const auto func = machine.registerFunction("lib::loop");

    {
        TracedScope scope(ctx, func);
        Value i = ctx.imm(0);
        Value n = ctx.imm(3);
        while (true) {
            Value cond = ctx.ltu(i, n);
            if (!ctx.branchIf(cond))
                break;
            i = ctx.addi(i, 1);
        }
    }

    const auto cfgs = buildCfgs(machine.records(), machine.symtab());
    const auto &cfg = cfgs.byFunc.at(func);
    // The branch node must have both a loop successor and an exit-side
    // successor.
    NodeId branch_node = kNoNode;
    for (size_t n = 0; n < cfg.nodeCount(); ++n) {
        if (cfg.isBranch[n])
            branch_node = static_cast<NodeId>(n);
    }
    ASSERT_NE(branch_node, kNoNode);
    EXPECT_EQ(cfg.succs[branch_node].size(), 2u);

    const auto deps = buildControlDeps(cfgs);
    // The loop body (addi site) is control-dependent on the loop branch.
    bool body_depends = false;
    for (size_t n = 2; n < cfg.nodeCount(); ++n) {
        for (const auto pc : deps.depsOf(func, cfg.nodePc[n])) {
            if (pc == cfg.nodePc[branch_node])
                body_depends = true;
        }
    }
    EXPECT_TRUE(body_depends);
}

TEST(CfgBuild, PseudoRecordsInheritFunction)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const auto func = machine.registerFunction("net::send");
    {
        TracedScope scope(ctx, func);
        const trace::MemRange reads[] = {{0x100, 8}};
        Value r = ctx.syscall(1, 8, reads, {});
        (void)r;
    }
    const auto cfgs = buildCfgs(machine.records(), machine.symtab());
    // Call, Syscall, SyscallRead(pseudo), Ret
    ASSERT_EQ(cfgs.funcOf.size(), 4u);
    EXPECT_EQ(cfgs.funcOf[1], func);
    EXPECT_EQ(cfgs.funcOf[2], func); // pseudo inherits
}

} // namespace
} // namespace graph
} // namespace webslice
