/**
 * @file
 * Unit tests for the open-addressing hash containers (FlatMap64 /
 * FlatSet64) behind the slicer's live sets. The interesting cases are
 * the ones linear probing with backward-shift deletion can get wrong:
 * deletions in the middle of probe chains, rehashes under load, and the
 * generation counter that guards callers' cached value pointers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

#include "support/flat_map.hh"

namespace webslice {
namespace {

TEST(FlatMap, InsertFindErase)
{
    FlatMap64 map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42u), nullptr);
    EXPECT_FALSE(map.erase(42u));

    map.findOrInsert(42u) = 7;
    map.findOrInsert(43u) = 8;
    ASSERT_NE(map.find(42u), nullptr);
    EXPECT_EQ(*map.find(42u), 7u);
    ASSERT_NE(map.find(43u), nullptr);
    EXPECT_EQ(*map.find(43u), 8u);
    EXPECT_EQ(map.size(), 2u);

    // findOrInsert on a present key must not duplicate it.
    map.findOrInsert(42u) = 9;
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(*map.find(42u), 9u);

    EXPECT_TRUE(map.erase(42u));
    EXPECT_EQ(map.find(42u), nullptr);
    EXPECT_FALSE(map.erase(42u));
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, ZeroKeyAndZeroValueAreOrdinary)
{
    // Only ~0ull is reserved; key 0 and value 0 are ordinary citizens.
    FlatMap64 map;
    map.findOrInsert(0u) = 0;
    ASSERT_NE(map.find(0u), nullptr);
    EXPECT_EQ(*map.find(0u), 0u);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_TRUE(map.erase(0u));
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap, NewEntriesAreZeroInitialized)
{
    FlatMap64 map;
    map.findOrInsert(5u) = 123;
    EXPECT_TRUE(map.erase(5u));
    // Reinserting after erase (and after clear) must not resurrect the
    // old value.
    EXPECT_EQ(map.findOrInsert(5u), 0u);
    map.findOrInsert(5u) = 99;
    map.clear();
    EXPECT_EQ(map.findOrInsert(5u), 0u);
}

TEST(FlatMap, RehashUnderLoadKeepsEveryEntry)
{
    FlatMap64 map;
    constexpr uint64_t kCount = 10000;
    for (uint64_t k = 0; k < kCount; ++k)
        map.findOrInsert(k * 2654435761ull) = k;
    EXPECT_EQ(map.size(), kCount);
    // Load factor stays at or under 3/4 across all growth steps.
    EXPECT_LE(map.size() * 4, map.capacity() * 3);
    for (uint64_t k = 0; k < kCount; ++k) {
        const uint64_t *val = map.find(k * 2654435761ull);
        ASSERT_NE(val, nullptr) << "lost key " << k;
        EXPECT_EQ(*val, k);
    }
}

TEST(FlatMap, BackwardShiftDeletionPreservesProbeChains)
{
    // Build long probe chains (sequential keys collide after the mix
    // only occasionally, so force pressure with many keys), then delete
    // every other key and verify the survivors are all still reachable.
    FlatMap64 map;
    constexpr uint64_t kCount = 4096;
    for (uint64_t k = 1; k <= kCount; ++k)
        map.findOrInsert(k) = k * 10;
    for (uint64_t k = 1; k <= kCount; k += 2)
        EXPECT_TRUE(map.erase(k));
    EXPECT_EQ(map.size(), kCount / 2);
    for (uint64_t k = 1; k <= kCount; ++k) {
        const uint64_t *val = map.find(k);
        if (k % 2) {
            EXPECT_EQ(val, nullptr);
        } else {
            ASSERT_NE(val, nullptr) << "deletion broke chain to " << k;
            EXPECT_EQ(*val, k * 10);
        }
    }
}

TEST(FlatMap, RandomizedParityWithStdMap)
{
    // Drive the flat map and std::unordered_map with the same random
    // operation stream; they must agree at every step.
    std::mt19937_64 rng(12345);
    FlatMap64 flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    for (int op = 0; op < 20000; ++op) {
        const uint64_t key = rng() % 512; // small domain -> many hits
        switch (rng() % 3) {
          case 0:
            flat.findOrInsert(key) = op;
            ref[key] = op;
            break;
          case 1:
            EXPECT_EQ(flat.erase(key), ref.erase(key) != 0);
            break;
          default: {
            const uint64_t *val = flat.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(val, nullptr);
            } else {
                ASSERT_NE(val, nullptr);
                EXPECT_EQ(*val, it->second);
            }
          }
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
}

TEST(FlatMap, GenerationTracksEntryMovement)
{
    FlatMap64 map;
    const uint32_t g0 = map.generation();

    // Non-moving inserts keep the generation stable...
    map.reserve(8);
    const uint32_t g1 = map.generation();
    map.findOrInsert(1u) = 1;
    map.findOrInsert(2u) = 2;
    EXPECT_EQ(map.generation(), g1);
    EXPECT_GE(g1, g0); // reserve may rehash an empty table

    // ...while erase, clear, and rehash all invalidate cached pointers.
    map.erase(1u);
    const uint32_t g2 = map.generation();
    EXPECT_GT(g2, g1);
    map.clear();
    const uint32_t g3 = map.generation();
    EXPECT_GT(g3, g2);
    for (uint64_t k = 0; k < 64; ++k)
        map.findOrInsert(k) = k; // forces at least one growth rehash
    EXPECT_GT(map.generation(), g3);
}

TEST(FlatMap, ForEachVisitsEachEntryOnce)
{
    FlatMap64 map;
    for (uint64_t k = 0; k < 100; ++k)
        map.findOrInsert(k) = k + 1000;
    std::map<uint64_t, uint64_t> seen;
    map.forEach([&seen](uint64_t key, uint64_t val) {
        EXPECT_TRUE(seen.emplace(key, val).second)
            << "key visited twice: " << key;
    });
    EXPECT_EQ(seen.size(), 100u);
    for (const auto &[key, val] : seen)
        EXPECT_EQ(val, key + 1000);
}

TEST(FlatSet, InsertEraseContains)
{
    FlatSet64 set;
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains(7u));
    EXPECT_FALSE(set.erase(7u));

    EXPECT_TRUE(set.insert(7u));
    EXPECT_FALSE(set.insert(7u)); // duplicate
    EXPECT_TRUE(set.contains(7u));
    EXPECT_EQ(set.size(), 1u);

    EXPECT_TRUE(set.erase(7u));
    EXPECT_FALSE(set.contains(7u));
    EXPECT_TRUE(set.empty());
}

TEST(FlatSet, RandomizedParityWithStdSet)
{
    std::mt19937_64 rng(777);
    FlatSet64 flat;
    std::set<uint64_t> ref;
    for (int op = 0; op < 20000; ++op) {
        const uint64_t key = rng() % 256;
        if (rng() % 2) {
            EXPECT_EQ(flat.insert(key), ref.insert(key).second);
        } else {
            EXPECT_EQ(flat.erase(key), ref.erase(key) != 0);
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
    for (uint64_t key = 0; key < 256; ++key)
        EXPECT_EQ(flat.contains(key), ref.count(key) != 0);
}

} // namespace
} // namespace webslice
