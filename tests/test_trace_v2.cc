/**
 * @file
 * Tests of the columnar compressed trace format (v2) and its companions:
 * the LZ block codec, every reader's transparent v2 decode, the
 * process-wide decode cache, the checkpointed value-log sidecar, and —
 * the contract the whole format hangs on — bit-identical slices from v1
 * and v2 files of the same recording.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"
#include "support/lz.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "trace/columnar.hh"
#include "trace/criteria.hh"
#include "trace/trace_file.hh"
#include "trace/value_log.hh"

namespace webslice {
namespace trace {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

std::string
tempPath(const char *stem)
{
    return std::string(::testing::TempDir()) + stem;
}

/**
 * A record stream exercising every column: monotone and jumpy deltas,
 * every kind, both flags, real registers and kNoReg.
 */
Record
makeRecord(size_t i)
{
    Record rec;
    rec.pc = static_cast<Pc>(0x1000 + 4 * (i % 1000));
    rec.addr = (i % 7 == 0) ? 0x7fff00000000ull + i * 4096
                            : 0x10000000ull + i;
    rec.aux = static_cast<uint32_t>(i % 9);
    rec.tid = static_cast<ThreadId>(i % 3);
    rec.kind = static_cast<RecordKind>(i % 12);
    rec.flags = static_cast<uint8_t>(i % 4);
    rec.rr0 = (i % 5 == 0) ? kNoReg : static_cast<RegId>(i % 64);
    rec.rr1 = (i % 11 == 0) ? static_cast<RegId>((i + 7) % 64) : kNoReg;
    rec.rr2 = (i % 31 == 0) ? static_cast<RegId>((i + 3) % 64) : kNoReg;
    rec.rw = static_cast<RegId>((i + 1) % 64);
    return rec;
}

/**
 * Field-wise, never memcmp: the 32-byte Record carries 4 bytes of
 * struct padding whose content v1 files do not define.
 */
void
expectSameRecord(const Record &a, const Record &b, size_t i)
{
    ASSERT_TRUE(a.addr == b.addr && a.pc == b.pc && a.aux == b.aux &&
                a.tid == b.tid && a.kind == b.kind &&
                a.flags == b.flags && a.rr0 == b.rr0 && a.rr1 == b.rr1 &&
                a.rr2 == b.rr2 && a.rw == b.rw)
        << "record " << i << " differs";
}

void
expectSameRecords(const std::vector<Record> &a, const std::vector<Record> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectSameRecord(a[i], b[i], i);
}

uint64_t
counterValue(const char *name)
{
    return MetricRegistry::global().counter(name).value();
}

// ---- LZ codec --------------------------------------------------------------

TEST(LzCodec, RoundTripsVariedPayloads)
{
    std::mt19937_64 prng(7);
    std::vector<std::vector<uint8_t>> payloads;
    payloads.push_back({});                               // empty
    payloads.push_back({0x42});                           // single byte
    payloads.push_back(std::vector<uint8_t>(100000, 0x00)); // one run
    {
        std::vector<uint8_t> repetitive;                  // small period
        for (size_t i = 0; i < 70000; ++i)
            repetitive.push_back(static_cast<uint8_t>(i % 13));
        payloads.push_back(std::move(repetitive));
    }
    {
        std::vector<uint8_t> random_bytes;                // incompressible
        for (size_t i = 0; i < 65536; ++i)
            random_bytes.push_back(static_cast<uint8_t>(prng()));
        payloads.push_back(std::move(random_bytes));
    }
    {
        std::vector<uint8_t> mixed;                       // runs + noise
        for (size_t i = 0; i < 50000; ++i)
            mixed.push_back(prng() % 3 ? 0xAB
                                       : static_cast<uint8_t>(prng()));
        payloads.push_back(std::move(mixed));
    }

    for (const auto &payload : payloads) {
        std::vector<uint8_t> compressed;
        lzCompress(payload.data(), payload.size(), compressed);
        std::vector<uint8_t> decoded(payload.size());
        ASSERT_TRUE(lzDecompress(compressed.data(), compressed.size(),
                                 decoded.data(), decoded.size()));
        EXPECT_EQ(decoded, payload);
    }
}

TEST(LzCodec, CompressesRepetitiveInput)
{
    std::vector<uint8_t> payload(1 << 16, 0x5A);
    std::vector<uint8_t> compressed;
    lzCompress(payload.data(), payload.size(), compressed);
    EXPECT_LT(compressed.size(), payload.size() / 16);
}

TEST(LzCodec, RejectsTruncationAndWrongSize)
{
    std::vector<uint8_t> payload;
    for (size_t i = 0; i < 10000; ++i)
        payload.push_back(static_cast<uint8_t>(i % 29));
    std::vector<uint8_t> compressed;
    lzCompress(payload.data(), payload.size(), compressed);

    std::vector<uint8_t> decoded(payload.size());
    // Truncated stream: cannot produce the promised byte count.
    EXPECT_FALSE(lzDecompress(compressed.data(), compressed.size() / 2,
                              decoded.data(), decoded.size()));
    // Empty stream for a non-empty destination.
    EXPECT_FALSE(lzDecompress(compressed.data(), 0, decoded.data(),
                              decoded.size()));
    // Wrong destination size: stream must decode to exactly dst_size.
    std::vector<uint8_t> short_dst(payload.size() - 1);
    EXPECT_FALSE(lzDecompress(compressed.data(), compressed.size(),
                              short_dst.data(), short_dst.size()));
}

// ---- v2 write + whole-file load --------------------------------------------

TEST(TraceV2, SniffsBothFormats)
{
    const std::string v1 = tempPath("sniff_v1.trc");
    const std::string v2 = tempPath("sniff_v2.trc");
    saveTrace(v1, {makeRecord(0)}, TraceFormat::V1);
    saveTrace(v2, {makeRecord(0)}, TraceFormat::V2);
    EXPECT_EQ(sniffTraceFormat(v1), TraceFormat::V1);
    EXPECT_EQ(sniffTraceFormat(v2), TraceFormat::V2);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(TraceV2, MultiBlockRoundTrip)
{
    // Spans two full blocks plus a partial third, so both the cross-block
    // delta checkpoints and the short tail block are exercised.
    const std::string path = tempPath("v2_roundtrip.trc");
    std::vector<Record> records;
    const size_t count = 2 * kTraceIndexBlockRecords + 4321;
    for (size_t i = 0; i < count; ++i)
        records.push_back(makeRecord(i));
    saveTrace(path, records, TraceFormat::V2);

    expectSameRecords(records, loadTrace(path));
    std::remove(path.c_str());
}

TEST(TraceV2, EmptyTrace)
{
    const std::string path = tempPath("v2_empty.trc");
    {
        TraceWriter writer(path, /*block_index=*/false, TraceFormat::V2);
    }
    EXPECT_EQ(sniffTraceFormat(path), TraceFormat::V2);
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceV2, WriterCountsAndCompresses)
{
    const std::string path = tempPath("v2_size.trc");
    std::vector<Record> records;
    for (size_t i = 0; i < kTraceIndexBlockRecords; ++i)
        records.push_back(makeRecord(i));
    {
        TraceWriter writer(path, /*block_index=*/false, TraceFormat::V2);
        for (const auto &rec : records)
            writer.append(rec);
        EXPECT_EQ(writer.count(), records.size());
    }
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto v2_bytes = static_cast<uint64_t>(in.tellg());
    const uint64_t v1_bytes = 16 + records.size() * sizeof(Record);
    // The synthetic stream is more regular than a real trace, but the 4x
    // CI floor must hold here too.
    EXPECT_LT(v2_bytes * 4, v1_bytes);
    std::remove(path.c_str());
}

TEST(TraceV2, AtomicWriterPublishesOnCloseOnly)
{
    const std::string path = tempPath("v2_atomic.trc");
    std::remove(path.c_str());
    {
        TraceWriter writer(path, /*block_index=*/false, TraceFormat::V2,
                           /*atomic=*/true);
        for (size_t i = 0; i < 100; ++i)
            writer.append(makeRecord(i));
        // Not yet renamed into place: the final name must not exist.
        std::ifstream probe(path, std::ios::binary);
        EXPECT_FALSE(probe.good());
        writer.close();
    }
    EXPECT_EQ(loadTrace(path).size(), 100u);
    // No temp file left behind.
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(TraceV1, AtomicWriterWorksToo)
{
    const std::string path = tempPath("v1_atomic.trc");
    std::remove(path.c_str());
    {
        TraceWriter writer(path, /*block_index=*/true, TraceFormat::V1,
                           /*atomic=*/true);
        for (size_t i = 0; i < 100; ++i)
            writer.append(makeRecord(i));
        std::ifstream probe(path, std::ios::binary);
        EXPECT_FALSE(probe.good());
    }
    EXPECT_EQ(loadTrace(path).size(), 100u);
    std::remove(path.c_str());
}

// ---- ranged loads, block index, mmap view ----------------------------------

struct BigV2Trace : ::testing::Test
{
    std::string path = tempPath("v2_big.trc");
    std::vector<Record> records;

    void
    SetUp() override
    {
        const size_t count = kTraceIndexBlockRecords + 4000;
        for (size_t i = 0; i < count; ++i)
            records.push_back(makeRecord(i));
        saveTrace(path, records, TraceFormat::V2);
    }

    void TearDown() override { std::remove(path.c_str()); }
};

TEST_F(BigV2Trace, RangedLoadsMatchFullDecode)
{
    struct { uint64_t first, count; } ranges[] = {
        {0, 1},                                  // first record
        {records.size() - 1, 1},                 // last record
        {0, records.size()},                     // everything
        {kTraceIndexBlockRecords - 5, 10},       // straddles the boundary
        {kTraceIndexBlockRecords, 100},          // block-aligned start
        {17, 4000},                              // interior of block 0
        {records.size() - 123, 123},             // tail of the short block
        {5000, 0},                               // empty range
    };
    for (const auto &r : ranges) {
        const auto got = loadTraceRange(path, r.first, r.count);
        ASSERT_EQ(got.size(), r.count);
        for (uint64_t i = 0; i < r.count; ++i)
            expectSameRecord(records[r.first + i], got[i],
                             static_cast<size_t>(r.first + i));
    }
}

TEST_F(BigV2Trace, BlockIndexProjectsToV1Shape)
{
    // The structural v2 index must serve the epoch planner through the
    // same TraceBlockIndex the v1 footer fills.
    const TraceBlockIndex index = loadTraceBlockIndex(path);
    ASSERT_TRUE(index.present());
    EXPECT_EQ(index.blockRecords, kTraceIndexBlockRecords);
    ASSERT_EQ(index.blockCount(), 2u);

    uint32_t instructions[2] = {0, 0};
    uint32_t pseudo[2] = {0, 0};
    for (size_t i = 0; i < records.size(); ++i) {
        const size_t b = i / kTraceIndexBlockRecords;
        if (records[i].isPseudo())
            ++pseudo[b];
        else
            ++instructions[b];
    }
    for (size_t b = 0; b < 2; ++b) {
        EXPECT_EQ(index.instructions[b], instructions[b]);
        EXPECT_EQ(index.pseudoRecords[b], pseudo[b]);
    }
}

TEST_F(BigV2Trace, MappedTraceDecodesTransparently)
{
    MappedTrace mapped(path);
    // v2 cannot be a zero-copy view; the fallback buffer serves instead.
    EXPECT_FALSE(mapped.mapped());
    ASSERT_EQ(mapped.count(), records.size());
    for (size_t i = 0; i < records.size(); ++i)
        expectSameRecord(records[i], mapped[i], i);
    EXPECT_TRUE(mapped.blockIndex().present());
}

TEST_F(BigV2Trace, ForwardReaderMatchesWithAndWithoutPrefetch)
{
    for (const bool prefetch : {false, true}) {
        ForwardTraceReader reader(path, 1 << 16, prefetch);
        EXPECT_EQ(reader.count(), records.size());
        Record rec;
        size_t i = 0;
        while (reader.next(rec)) {
            ASSERT_LT(i, records.size());
            expectSameRecord(records[i], rec, i);
            ++i;
        }
        EXPECT_EQ(i, records.size());
        EXPECT_FALSE(reader.next(rec));
    }
}

TEST_F(BigV2Trace, ReverseReaderMatchesWithAndWithoutPrefetch)
{
    for (const bool prefetch : {false, true}) {
        ReverseTraceReader reader(path, 1 << 16, prefetch);
        EXPECT_EQ(reader.count(), records.size());
        Record rec;
        size_t i = records.size();
        while (reader.next(rec)) {
            ASSERT_GT(i, 0u);
            --i;
            expectSameRecord(records[i], rec, i);
        }
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(reader.remaining(), 0u);
    }
}

TEST_F(BigV2Trace, RangedReverseReaderMatches)
{
    struct { uint64_t first, last; } ranges[] = {
        {0, records.size()},                       // full file
        {kTraceIndexBlockRecords - 7,
         kTraceIndexBlockRecords + 9},             // straddles the boundary
        {100, 200},                                // interior of block 0
        {records.size() - 50, records.size()},     // tail
        {42, 42},                                  // empty
    };
    for (const auto &r : ranges) {
        for (const bool prefetch : {false, true}) {
            ReverseTraceReader reader(path, r.first, r.last, 1 << 16,
                                      prefetch);
            EXPECT_EQ(reader.remaining(), r.last - r.first);
            Record rec;
            uint64_t i = r.last;
            while (reader.next(rec)) {
                ASSERT_GT(i, r.first);
                --i;
                expectSameRecord(records[i], rec,
                                 static_cast<size_t>(i));
            }
            EXPECT_EQ(i, r.first);
        }
    }
}

// ---- decode cache ----------------------------------------------------------

TEST_F(BigV2Trace, DecodeCacheHitsOnRepeatedRange)
{
    auto &cache = TraceDecodeCache::global();
    cache.clear();
    const auto before = cache.stats();
    const uint64_t decoded_before = counterValue("trace.blocks_decoded");

    const auto first = loadTraceRange(path, 10, 20);
    const auto again = loadTraceRange(path, 10, 20);
    expectSameRecords(first, again);

    const auto after = cache.stats();
    EXPECT_GE(after.misses, before.misses + 1); // first decode missed
    EXPECT_GE(after.hits, before.hits + 1);     // second was served hot
    EXPECT_GE(counterValue("trace.blocks_decoded"), decoded_before + 1);
    EXPECT_GT(counterValue("trace.bytes_decoded"), 0u);
}

TEST_F(BigV2Trace, DecodeCacheEvictsUnderTinyBudget)
{
    auto &cache = TraceDecodeCache::global();
    const uint64_t default_budget = cache.budget();
    cache.clear();
    cache.setBudget(sizeof(Record)); // far below one decoded block

    const auto evictions_before = cache.stats().evictions;
    (void)loadTraceRange(path, 0, 1);
    (void)loadTraceRange(path, kTraceIndexBlockRecords, 1);
    const auto stats = cache.stats();
    EXPECT_GT(stats.evictions, evictions_before);
    // Over-budget eviction keeps only the newest block: the entry being
    // handed out is never evicted from under its caller.
    EXPECT_LE(stats.entries, 1u);

    // Eviction must not corrupt results handed out before it.
    const auto got = loadTraceRange(path, 5, 5);
    for (size_t i = 0; i < got.size(); ++i)
        expectSameRecord(records[5 + i], got[i], 5 + i);

    cache.setBudget(default_budget);
    cache.clear();
}

// ---- corruption is loud ----------------------------------------------------

void
truncateFile(const std::string &path, uint64_t bytes)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<char> head(bytes);
    in.read(head.data(), static_cast<std::streamsize>(bytes));
    ASSERT_EQ(static_cast<uint64_t>(in.gcount()), bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(head.data(), static_cast<std::streamsize>(bytes));
}

void
flipByteAt(const std::string &path, uint64_t offset)
{
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    io.seekp(static_cast<std::streamoff>(offset));
    io.write(&byte, 1);
}

struct TraceV2Death : BigV2Trace
{
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
        BigV2Trace::SetUp();
    }
};

TEST_F(TraceV2Death, TruncatedBelowHeaderIsFatal)
{
    truncateFile(path, sizeof(V2Header) - 4);
    EXPECT_DEATH(loadTrace(path), "too small for a v2 header");
}

TEST_F(TraceV2Death, TruncatedMidPayloadIsFatal)
{
    // The header survives but the index offset now points past EOF.
    truncateFile(path, sizeof(V2Header) + 100);
    EXPECT_DEATH(loadTrace(path), "corrupt trace block index in");
}

TEST_F(TraceV2Death, MissingIndexTailIsFatal)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto bytes = static_cast<uint64_t>(in.tellg());
    in.close();
    truncateFile(path, bytes - sizeof(V2BlockEntry));
    EXPECT_DEATH(loadTrace(path), "corrupt");
}

TEST_F(TraceV2Death, CorruptColumnPayloadIsFatalWithContext)
{
    // Shred the front of block 0's compressed payload; the failure must
    // name the file, the block, and its byte offset.
    for (uint64_t off = 0; off < 16; ++off)
        flipByteAt(path, sizeof(V2Header) + off);
    EXPECT_DEATH(loadTrace(path),
                 "corrupt compressed trace block in .*block 0 at offset");
}

TEST_F(TraceV2Death, CorruptIndexGeometryIsFatal)
{
    // Overwrite the index's blockCount (third u64 of the index header).
    std::ifstream in(path, std::ios::binary);
    V2Header header;
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    in.close();
    const uint64_t corrupt_count = 999;
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(static_cast<std::streamoff>(header.indexOffset + 16));
    io.write(reinterpret_cast<const char *>(&corrupt_count),
             sizeof(corrupt_count));
    io.close();
    EXPECT_DEATH(loadTrace(path), "corrupt trace");
}

TEST_F(TraceV2Death, RangeBoundsAreChecked)
{
    EXPECT_DEATH(loadTraceRange(path, records.size(), 1), "out of bounds");
}

// ---- slice bit-identity across formats -------------------------------------

using graph::buildCfgs;
using graph::buildControlDeps;
using slicer::computeSlice;
using slicer::computeSliceFromFile;
using slicer::CriteriaMode;
using slicer::SlicerOptions;

/** Two threads of random traced work with markers and syscalls. */
Machine
randomProgram(uint64_t seed, bool value_log = false)
{
    Machine machine;
    if (value_log)
        machine.enableValueLog();
    Rng rng(seed);
    const auto t0 = machine.addThread("a");
    const auto t1 = machine.addThread("b");
    const auto fn_a = machine.registerFunction("fuzz::alpha");
    const auto fn_b = machine.registerFunction("fuzz::beta");
    const uint64_t heap = machine.alloc(256, "heap");
    const uint64_t pixels = machine.alloc(64, "tile");
    const uint64_t net = machine.alloc(32, "net");

    auto program = [&, fn_a, fn_b](Ctx &ctx, uint64_t thread_seed) {
        Rng r(thread_seed);
        TracedScope top(ctx, fn_a);
        std::vector<Value> vals;
        vals.push_back(ctx.imm(r.below(1000)));
        const size_t steps = 40 + r.below(60);
        for (size_t i = 0; i < steps; ++i) {
            auto pick = [&]() -> Value & {
                return vals[r.below(vals.size())];
            };
            switch (r.below(9)) {
              case 0:
                vals.push_back(ctx.imm(r.below(1 << 20)));
                break;
              case 1:
                vals.push_back(ctx.add(pick(), pick()));
                break;
              case 2:
                vals.push_back(
                    ctx.addi(pick(), static_cast<int64_t>(r.below(9))));
                break;
              case 3:
                ctx.store(heap + 8 * r.below(30), 4, pick());
                break;
              case 4:
                vals.push_back(ctx.load(heap + 8 * r.below(30), 4));
                break;
              case 5:
                ctx.store(pixels + 4 * r.below(15), 4, pick());
                break;
              case 6: {
                TracedScope scope(ctx, fn_b);
                Value flag = ctx.imm(r.below(2));
                Value color = ctx.imm(r.below(256));
                if (ctx.branchIf(flag))
                    ctx.store(pixels + 4 * r.below(15), 4, color);
                break;
              }
              case 7:
                if (r.chance(0.5)) {
                    ctx.store(net, 4, pick());
                    (void)sim::sysSendto(ctx, net, 16);
                } else {
                    ctx.machine().mem().write(net, 4, r.next());
                    (void)sim::sysRecvfrom(ctx, net, 16);
                }
                break;
              case 8: {
                const MemRange ranges[] = {{pixels, 64}};
                ctx.marker(ranges);
                break;
              }
            }
            if (vals.size() > 12)
                vals.erase(vals.begin(),
                           vals.begin() +
                               static_cast<long>(vals.size() - 6));
        }
        const MemRange ranges[] = {{pixels, 64}};
        ctx.marker(ranges);
    };
    machine.post(t0, [&](Ctx &ctx) { program(ctx, seed * 2 + 1); });
    machine.post(t1, [&](Ctx &ctx) { program(ctx, seed * 2 + 2); });
    machine.run();
    return machine;
}

TEST(TraceV2Fuzz, SlicesBitIdenticalAcrossFormats)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        const Machine machine = randomProgram(seed);
        const graph::CfgSet cfgs =
            buildCfgs(machine.records(), machine.symtab());
        const graph::ControlDepMap deps = buildControlDeps(cfgs);

        const std::string v1 = tempPath("fuzz_v1.trc");
        const std::string v2 = tempPath("fuzz_v2.trc");
        saveTrace(v1, machine.records(), TraceFormat::V1);
        saveTrace(v2, machine.records(), TraceFormat::V2);
        expectSameRecords(loadTrace(v1), loadTrace(v2));

        for (const auto mode :
             {CriteriaMode::PixelBuffer, CriteriaMode::Syscalls}) {
            SlicerOptions options;
            options.mode = mode;
            const auto oracle =
                computeSlice(machine.records(), cfgs, deps,
                             machine.pixelCriteria(), options);
            for (const std::string &path : {v1, v2}) {
                for (const int jobs : {1, 3}) {
                    options.backwardJobs = jobs;
                    const auto from_file = computeSliceFromFile(
                        path, cfgs, deps, machine.pixelCriteria(),
                        options);
                    EXPECT_EQ(oracle.inSlice, from_file.inSlice)
                        << "seed " << seed << " mode "
                        << static_cast<int>(mode) << " jobs " << jobs
                        << " file " << path;
                    EXPECT_EQ(oracle.sliceInstructions,
                              from_file.sliceInstructions);
                    EXPECT_EQ(oracle.instructionsAnalyzed,
                              from_file.instructionsAnalyzed);
                    EXPECT_EQ(oracle.criteriaBytesSeeded,
                              from_file.criteriaBytesSeeded);
                }
            }
        }
        std::remove(v1.c_str());
        std::remove(v2.c_str());
    }
}

// ---- value log v2 ----------------------------------------------------------

TEST(ValueLogV2, SniffsBothFormats)
{
    const Machine machine = randomProgram(3, /*value_log=*/true);
    ASSERT_NE(machine.valueLog(), nullptr);
    const std::string v1 = tempPath("sniff_v1.val");
    const std::string v2 = tempPath("sniff_v2.val");
    machine.valueLog()->save(v1);
    machine.valueLog()->save(v2, ValueLogFormat::V2, machine.records(),
                             machine.pixelCriteria());
    EXPECT_EQ(sniffValueLogFormat(v1), ValueLogFormat::V1);
    EXPECT_EQ(sniffValueLogFormat(v2), ValueLogFormat::V2);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(ValueLogV2, ReconstructedSnapshotsMatchStoredBlobs)
{
    for (uint64_t seed = 0; seed < 4; ++seed) {
        const Machine machine = randomProgram(seed, /*value_log=*/true);
        const ValueLog *live = machine.valueLog();
        ASSERT_NE(live, nullptr);

        const std::string v1 = tempPath("vlog_v1.val");
        const std::string v2 = tempPath("vlog_v2.val");
        live->save(v1);
        live->save(v2, ValueLogFormat::V2, machine.records(),
                   machine.pixelCriteria());

        const uint64_t rebuilt_before =
            counterValue("value_log.snapshots_reconstructed") +
            counterValue("value_log.snapshot_fallbacks");

        ValueLog from_v1, from_v2;
        from_v1.load(v1, machine.records());
        from_v2.load(v2, machine.records());

        // Values and every blob — syscall effect ranges AND the marker
        // snapshots the v2 file rebuilt by replay — must be
        // bit-identical to the v1 (raw) load.
        EXPECT_EQ(from_v1.values, from_v2.values) << "seed " << seed;
        ASSERT_EQ(from_v1.blobs.size(), from_v2.blobs.size());
        for (const auto &kv : from_v1.blobs) {
            const auto *blob = from_v2.blobAt(kv.first);
            ASSERT_NE(blob, nullptr)
                << "seed " << seed << ": v2 lost blob at record "
                << kv.first;
            EXPECT_EQ(*blob, kv.second)
                << "seed " << seed << ": blob at record " << kv.first
                << " differs";
        }

        // Every marker snapshot came out of the reconstruction (or its
        // verified raw fallback), never silently skipped.
        size_t markers = 0;
        for (const auto &rec : machine.records())
            markers += rec.kind == RecordKind::Marker;
        EXPECT_GE(counterValue("value_log.snapshots_reconstructed") +
                      counterValue("value_log.snapshot_fallbacks"),
                  rebuilt_before + markers);

        std::remove(v1.c_str());
        std::remove(v2.c_str());
    }
}

TEST(ValueLogV2, CheckpointRestoresAreCounted)
{
    const Machine machine = randomProgram(1, /*value_log=*/true);
    const std::string v2 = tempPath("vlog_restore.val");
    machine.valueLog()->save(v2, ValueLogFormat::V2, machine.records(),
                             machine.pixelCriteria());
    const uint64_t restores_before =
        counterValue("trace.checkpoint_restores");
    ValueLog loaded;
    loaded.load(v2, machine.records());
    EXPECT_GT(counterValue("trace.checkpoint_restores"), restores_before);
    std::remove(v2.c_str());
}

TEST(ValueLogV2Death, V1OnlyLoadRefusesV2Files)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Machine machine = randomProgram(2, /*value_log=*/true);
    const std::string v2 = tempPath("vlog_refuse.val");
    machine.valueLog()->save(v2, ValueLogFormat::V2, machine.records(),
                             machine.pixelCriteria());
    ValueLog log;
    EXPECT_DEATH(log.load(v2), "use load\\(path, records\\)");
    std::remove(v2.c_str());
}

TEST(ValueLogV2Death, TruncationIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Machine machine = randomProgram(4, /*value_log=*/true);
    const std::string v2 = tempPath("vlog_trunc.val");
    machine.valueLog()->save(v2, ValueLogFormat::V2, machine.records(),
                             machine.pixelCriteria());
    std::ifstream in(v2, std::ios::binary | std::ios::ate);
    const auto bytes = static_cast<uint64_t>(in.tellg());
    in.close();
    truncateFile(v2, bytes / 2);
    ValueLog log;
    EXPECT_DEATH(log.load(v2, machine.records()), "value log");
    std::remove(v2.c_str());
}

} // namespace
} // namespace trace
} // namespace webslice
