/**
 * @file
 * Unit tests for the analysis layer: per-thread slice statistics, the
 * backward-progress series, and namespace categorization.
 */

#include <gtest/gtest.h>

#include "analysis/categorize.hh"
#include "analysis/progress.hh"
#include "analysis/thread_stats.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "slicer/slicer.hh"

namespace webslice {
namespace analysis {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;
using trace::Record;
using trace::RecordKind;

// ---- thread stats ----------------------------------------------------------

TEST(ThreadStats, CountsPerThread)
{
    std::vector<Record> records(6);
    std::vector<uint8_t> verdicts = {1, 0, 1, 1, 0, 0};
    for (size_t i = 0; i < records.size(); ++i)
        records[i].tid = static_cast<trace::ThreadId>(i % 2);

    const std::string names[] = {"main", "compositor"};
    const auto stats = computeThreadStats(records, verdicts, names);
    EXPECT_EQ(stats.all.totalInstructions, 6u);
    EXPECT_EQ(stats.all.sliceInstructions, 3u);
    EXPECT_DOUBLE_EQ(stats.all.slicePercent(), 50.0);
    ASSERT_EQ(stats.perThread.size(), 2u);
    EXPECT_EQ(stats.perThread[0].name, "main");
    EXPECT_EQ(stats.perThread[0].totalInstructions, 3u);
    EXPECT_EQ(stats.perThread[0].sliceInstructions, 2u);
    EXPECT_EQ(stats.perThread[1].totalInstructions, 3u);
    EXPECT_EQ(stats.perThread[1].sliceInstructions, 1u);
}

TEST(ThreadStats, SkipsPseudoRecords)
{
    std::vector<Record> records(3);
    records[1].kind = RecordKind::SyscallRead;
    std::vector<uint8_t> verdicts = {1, 0, 0};
    const auto stats = computeThreadStats(records, verdicts);
    EXPECT_EQ(stats.all.totalInstructions, 2u);
}

TEST(ThreadStats, RespectsEndIndex)
{
    std::vector<Record> records(10);
    std::vector<uint8_t> verdicts(10, 1);
    const auto stats = computeThreadStats(records, verdicts, {}, 4);
    EXPECT_EQ(stats.all.totalInstructions, 4u);
}

TEST(ThreadStats, EmptyPercentIsZero)
{
    ThreadSliceStats stats;
    EXPECT_DOUBLE_EQ(stats.slicePercent(), 0.0);
}

// ---- progress --------------------------------------------------------------

TEST(Progress, CumulativeFromTheEnd)
{
    // 4 instructions; the last two are in the slice.
    std::vector<Record> records(4);
    std::vector<uint8_t> verdicts = {0, 0, 1, 1};
    const auto series = computeBackwardProgress(records, verdicts, 4);
    ASSERT_GE(series.size(), 4u);
    // First sample (1 analyzed from the end): 100%.
    EXPECT_DOUBLE_EQ(series.front().slicePercent, 100.0);
    // Final sample covers everything: 50%.
    EXPECT_DOUBLE_EQ(series.back().slicePercent, 50.0);
    EXPECT_EQ(series.back().analyzed, 4u);
}

TEST(Progress, ThreadFilter)
{
    std::vector<Record> records(4);
    records[0].tid = 0;
    records[1].tid = 1;
    records[2].tid = 0;
    records[3].tid = 1;
    std::vector<uint8_t> verdicts = {1, 0, 0, 0};
    const auto series =
        computeBackwardProgress(records, verdicts, 2, trace::ThreadId{0});
    ASSERT_FALSE(series.empty());
    EXPECT_EQ(series.back().analyzed, 2u);
    EXPECT_DOUBLE_EQ(series.back().slicePercent, 50.0);
}

TEST(Progress, EmptyTraceYieldsEmptySeries)
{
    const auto series = computeBackwardProgress({}, {}, 10);
    EXPECT_TRUE(series.empty());
}

// ---- categorizer -----------------------------------------------------------

TEST(Categorizer, ChromiumDefaultMapping)
{
    const auto c = Categorizer::chromiumDefault();
    EXPECT_EQ(c.categoryOf("v8::Parser::parseProgram"), "JavaScript");
    EXPECT_EQ(c.categoryOf("debug::TraceEvent::record"), "Debugging");
    EXPECT_EQ(c.categoryOf("ipc::Channel::send"), "IPC");
    EXPECT_EQ(c.categoryOf("base::threading::Mutex::lock"),
              "Multi-threading");
    EXPECT_EQ(c.categoryOf("cc::TileManager::schedule"), "Compositing");
    EXPECT_EQ(c.categoryOf("gfx::DisplayList::append"), "Graphics");
    EXPECT_EQ(c.categoryOf("css::Resolver::match"), "CSS");
    EXPECT_EQ(c.categoryOf("style::Cascade::apply"), "CSS");
    EXPECT_EQ(c.categoryOf("scheduler::EventQueue::pop"), "Other");
    EXPECT_EQ(c.categoryOf("net::Loader::fetch"), "Other");
}

TEST(Categorizer, UnmappedNamesYieldEmpty)
{
    const auto c = Categorizer::chromiumDefault();
    EXPECT_EQ(c.categoryOf("plainHelper"), "");
    EXPECT_EQ(c.categoryOf("lib::memcpy"), "");
    EXPECT_EQ(c.categoryOf("html::Parser::token"), "");
}

TEST(Categorizer, DeeperRuleWins)
{
    Categorizer c;
    c.addRule("base", "Other");
    c.addRule("base::threading", "Multi-threading");
    EXPECT_EQ(c.categoryOf("base::threading::Lock::acquire"),
              "Multi-threading");
    EXPECT_EQ(c.categoryOf("base::Timer::now"), "Other");
}

TEST(Categorizer, ReportOrderMatchesPaperLegend)
{
    const auto &order = Categorizer::reportOrder();
    ASSERT_EQ(order.size(), 8u);
    EXPECT_EQ(order.front(), "JavaScript");
    EXPECT_EQ(order.back(), "Other");
}

// ---- categorization over a real trace ---------------------------------------

TEST(Categorize, NonSliceInstructionsLandInNamespaceBuckets)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto js = machine.registerFunction("v8::Script::compile");
    const auto dbg = machine.registerFunction("debug::TraceEvent::log");
    const auto painter = machine.registerFunction("gfx::Painter::fill");
    const uint64_t pixels = machine.alloc(4, "tile");
    const uint64_t junk = machine.alloc(16, "junk");

    machine.post(tid, [&](Ctx &ctx) {
        {
            TracedScope scope(ctx, js); // wasted JS work
            Value a = ctx.imm(1);
            Value b = ctx.addi(a, 2);
            ctx.store(junk, 4, b);
        }
        {
            TracedScope scope(ctx, dbg); // wasted debug work
            Value m = ctx.imm(7);
            ctx.store(junk + 8, 4, m);
        }
        {
            TracedScope scope(ctx, painter); // useful work
            Value color = ctx.imm(0xFFF);
            ctx.store(pixels, 4, color);
        }
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto cfgs = graph::buildCfgs(machine.records(), machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    const auto result = slicer::computeSlice(
        machine.records(), cfgs, deps, machine.pixelCriteria());

    const auto dist = categorizeUnnecessary(
        machine.records(), result.inSlice, cfgs, machine.symtab(),
        Categorizer::chromiumDefault());

    // JS: imm + addi + store + Ret = 4; debug: imm + store + Ret = 3.
    // The two dead Call records belong to the *caller* (toplevel glue),
    // so they are uncategorized — the same effect the paper sees with
    // functions that carry no namespace. The painter is fully in the
    // slice.
    EXPECT_EQ(dist.counts.at("JavaScript"), 4u);
    EXPECT_EQ(dist.counts.at("Debugging"), 3u);
    EXPECT_EQ(dist.counts.count("Graphics"), 0u);
    EXPECT_EQ(dist.totalUnnecessary, 9u);
    EXPECT_EQ(dist.uncategorized, 2u);
    EXPECT_NEAR(dist.coveragePercent(), 77.8, 0.1);
    EXPECT_GT(dist.sharePercent("JavaScript"),
              dist.sharePercent("Debugging"));
}

TEST(Categorize, TopLevelGlueIsUncategorized)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    machine.post(tid, [&](Ctx &ctx) {
        Value v = ctx.imm(1); // toplevel, no enclosing traced function
        (void)v;
    });
    machine.run();

    const auto cfgs = graph::buildCfgs(machine.records(), machine.symtab());
    std::vector<uint8_t> verdicts(machine.records().size(), 0);
    const auto dist = categorizeUnnecessary(
        machine.records(), verdicts, cfgs, machine.symtab(),
        Categorizer::chromiumDefault());
    EXPECT_EQ(dist.totalUnnecessary, 1u);
    EXPECT_EQ(dist.uncategorized, 1u);
    EXPECT_DOUBLE_EQ(dist.coveragePercent(), 0.0);
}

} // namespace
} // namespace analysis
} // namespace webslice
