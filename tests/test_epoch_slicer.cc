/**
 * @file
 * Tests of the epoch-parallel backward slicer (slicer/epoch.hh).
 *
 * The contract under test is brutal and simple: for every trace, every
 * criteria mode, every ablation, and every epoch plan — including
 * adversarial boundaries forced through syscall groups, pending
 * branches, live registers, and open call frames — the epoch-parallel
 * slice must be bit-identical to the sequential oracle, counters and
 * peaks included. The only tolerated divergence is the
 * flatProbes/flatResizes hash diagnostics, whose probe history depends
 * on table growth order.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/epoch.hh"
#include "slicer/slicer.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace slicer {
namespace {

using graph::buildCfgs;
using graph::buildControlDeps;
using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;
using trace::RecordKind;

/** RAII setter for the epoch-boundary test override. */
struct BoundaryOverride
{
    std::vector<size_t> interior;

    explicit BoundaryOverride(std::vector<size_t> bounds)
        : interior(std::move(bounds))
    {
        EpochPlanner::boundariesOverrideForTesting = &interior;
    }

    ~BoundaryOverride()
    {
        EpochPlanner::boundariesOverrideForTesting = nullptr;
    }
};

/** Everything the backward pass needs, built once per machine. */
struct ForwardResult
{
    graph::CfgSet cfgs;
    graph::ControlDepMap deps;

    explicit ForwardResult(const Machine &machine)
        : cfgs(buildCfgs(machine.records(), machine.symtab())),
          deps(buildControlDeps(cfgs))
    {
    }
};

/** Every field but the hash diagnostics must match the oracle. */
void
expectIdentical(const SliceResult &oracle, const SliceResult &epoch,
                const char *what)
{
    EXPECT_EQ(oracle.inSlice, epoch.inSlice) << what;
    EXPECT_EQ(oracle.instructionsAnalyzed, epoch.instructionsAnalyzed)
        << what;
    EXPECT_EQ(oracle.sliceInstructions, epoch.sliceInstructions) << what;
    EXPECT_EQ(oracle.criteriaBytesSeeded, epoch.criteriaBytesSeeded)
        << what;
    EXPECT_EQ(oracle.recordsFed, epoch.recordsFed) << what;
    EXPECT_EQ(oracle.analyzedWindowEnd, epoch.analyzedWindowEnd) << what;
    EXPECT_EQ(oracle.peakLiveMemBytes, epoch.peakLiveMemBytes) << what;
    EXPECT_EQ(oracle.peakLiveMemChunks, epoch.peakLiveMemChunks) << what;
    EXPECT_EQ(oracle.peakPendingBranches, epoch.peakPendingBranches)
        << what;
}

/**
 * Slice sequentially and epoch-parallel under `options` (for a few job
 * counts) and assert bit-identity.
 */
void
expectEpochMatchesSequential(const Machine &machine,
                             SlicerOptions options = {},
                             const char *what = "epoch vs sequential")
{
    const ForwardResult fwd(machine);
    options.backwardJobs = 1;
    const auto oracle = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    for (const int jobs : {2, 3, 8}) {
        options.backwardJobs = jobs;
        ASSERT_TRUE(epochParallelEligible(options,
                                          machine.records().size()));
        const auto epoch = computeSlice(machine.records(), fwd.cfgs,
                                        fwd.deps,
                                        machine.pixelCriteria(), options);
        expectIdentical(oracle, epoch, what);
    }
}

/** Index of the i-th record of the given kind. */
size_t
nthOfKind(const Machine &machine, RecordKind kind, size_t n = 0)
{
    const auto &records = machine.records();
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].kind == kind) {
            if (n == 0)
                return i;
            --n;
        }
    }
    ADD_FAILURE() << "record of requested kind not found";
    return records.size();
}

TEST(EpochSlicer, Eligibility)
{
    SlicerOptions options;
    EXPECT_FALSE(epochParallelEligible(options, 100)); // backwardJobs=1
    options.backwardJobs = 4;
    EXPECT_TRUE(epochParallelEligible(options, 100));
    EXPECT_FALSE(epochParallelEligible(options, 0)); // empty trace
    options.legacyLiveSets = true; // the measured oracle stays sequential
    EXPECT_FALSE(epochParallelEligible(options, 100));
}

TEST(EpochSlicer, MatchesSequentialOnStraightLineProgram)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(64, "tile");
    const uint64_t scratch = machine.alloc(64, "scratch");

    Value color = ctx.imm(0xFF00FF);
    ctx.store(pixels, 4, color);
    Value junk = ctx.imm(7);
    ctx.store(scratch, 4, junk);
    Value more = ctx.add(color, junk);
    ctx.store(pixels + 8, 4, more);
    const trace::MemRange ranges[] = {{pixels, 64}};
    ctx.marker(ranges);

    expectEpochMatchesSequential(machine);
}

TEST(EpochSlicer, RegisterLivenessCrossesEpochBoundary)
{
    // The producer imm lands in epoch 0, the store consuming its
    // register in epoch 1: the boundary cuts straight through a live
    // register, which the stitched live-out must carry.
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(8, "tile");

    Value color = ctx.imm(0xAB);          // 0: must join via register
    Value pad0 = ctx.imm(1);              // 1: dead
    (void)pad0;
    const size_t boundary = machine.records().size();
    ctx.store(pixels, 4, color);          // 2: in later epoch
    const trace::MemRange ranges[] = {{pixels, 8}};
    ctx.marker(ranges);

    const BoundaryOverride forced({boundary});
    expectEpochMatchesSequential(machine);

    const ForwardResult fwd(machine);
    SlicerOptions options;
    options.backwardJobs = 2;
    const auto result = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    EXPECT_TRUE(result.inSlice[0]);
    EXPECT_FALSE(result.inSlice[1]);
}

TEST(EpochSlicer, PendingBranchResolvesInEarlierEpoch)
{
    // The live store joins in the newest epoch and queues its guarding
    // branch as pending; the branch's nearest preceding instance lives
    // in an earlier epoch, so the pending set must survive the stitch.
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto func = machine.registerFunction("paint::fill");
    const uint64_t pixels = machine.alloc(4, "tile");

    auto body = [&](Ctx &ctx, uint64_t flag_value) {
        TracedScope scope(ctx, func);
        Value flag = ctx.imm(flag_value);
        Value color = ctx.imm(0xABC);
        if (ctx.branchIf(flag))
            ctx.store(pixels, 4, color);
    };
    size_t boundary = 0;
    machine.post(tid, [&](Ctx &ctx) {
        body(ctx, 0); // skipping instance: creates the CFG diamond
        body(ctx, 1); // storing instance: joins with its branch
        boundary = ctx.machine().records().size() - 2;
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    // Force a boundary between the live branch and its store.
    const size_t live_branch = nthOfKind(machine, RecordKind::Branch, 1);
    const size_t store = nthOfKind(machine, RecordKind::Store, 0);
    ASSERT_LT(live_branch, store);
    const BoundaryOverride forced({store});
    expectEpochMatchesSequential(machine);

    const ForwardResult fwd(machine);
    SlicerOptions options;
    options.backwardJobs = 2;
    const auto result = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    EXPECT_TRUE(result.inSlice[live_branch]);
    EXPECT_FALSE(
        result.inSlice[nthOfKind(machine, RecordKind::Branch, 0)]);
}

TEST(EpochSlicer, CallFrameSpansEpochBoundary)
{
    // Boundary inside a function body: the Ret opens its frame in the
    // newer epoch, the Call closes it in the older one — and the Call's
    // cross-epoch write of the Ret's verdict must land.
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto painter = machine.registerFunction("paint::run");
    const auto logger = machine.registerFunction("debug::log");
    const uint64_t pixels = machine.alloc(4, "tile");
    const uint64_t logbuf = machine.alloc(4, "log");

    size_t boundary = 0;
    machine.post(tid, [&](Ctx &ctx) {
        {
            TracedScope scope(ctx, painter);
            Value color = ctx.imm(0xF0F0F0);
            boundary = ctx.machine().records().size();
            ctx.store(pixels, 4, color);
        }
        {
            TracedScope scope(ctx, logger);
            Value msg = ctx.imm(42);
            ctx.store(logbuf, 4, msg);
        }
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const BoundaryOverride forced({boundary});
    expectEpochMatchesSequential(machine);

    const ForwardResult fwd(machine);
    SlicerOptions options;
    options.backwardJobs = 2;
    const auto result = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::Call, 0)]);
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::Ret, 0)]);
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Call, 1)]);
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Ret, 1)]);
}

TEST(EpochSlicer, SyscallGroupBoundaryIsRepaired)
{
    // A boundary proposed between a Syscall record and its pseudo
    // records must shift so the whole group stays in one epoch, and the
    // repair must be counted.
    Machine machine;
    const auto tid = machine.addThread("main");
    const uint64_t netbuf = machine.alloc(16, "net");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(tid, [&](Ctx &ctx) {
        ctx.machine().mem().write(netbuf, 4, 0xBEEF);
        Value r = sim::sysRecvfrom(ctx, netbuf, 16);
        (void)r;
        Value data = ctx.load(netbuf, 4);
        ctx.store(pixels, 4, data);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const size_t sys = nthOfKind(machine, RecordKind::Syscall);
    ASSERT_TRUE(machine.records()[sys + 1].isPseudo());

    auto &splits = MetricRegistry::global().counter(
        "criteria.epoch_boundary_splits");
    const uint64_t splits_before = splits.value();
    const BoundaryOverride forced({sys + 1});
    expectEpochMatchesSequential(machine);
    EXPECT_GT(splits.value(), splits_before);

    SlicerOptions sys_mode;
    sys_mode.mode = CriteriaMode::Syscalls;
    expectEpochMatchesSequential(machine, sys_mode);
}

TEST(EpochSlicer, MarkerAtBoundaryAndEmptyEpochs)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(8, "tile");

    Value color = ctx.imm(0x1);
    ctx.store(pixels, 4, color);
    const size_t marker_index = machine.records().size();
    const trace::MemRange ranges[] = {{pixels, 8}};
    ctx.marker(ranges);
    Value late = ctx.imm(0x2);
    ctx.store(pixels, 4, late);
    ctx.marker(ranges);

    // Duplicate and colliding boundaries yield empty epochs; the marker
    // sits exactly on a boundary.
    const BoundaryOverride forced(
        {marker_index, marker_index, marker_index, marker_index + 1});
    expectEpochMatchesSequential(machine);
}

TEST(EpochSlicer, MoreJobsThanRecords)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(4, "tile");
    Value v = ctx.imm(3);
    ctx.store(pixels, 4, v);
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges); // 3 records total

    const ForwardResult fwd(machine);
    SlicerOptions options;
    const auto oracle = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    options.backwardJobs = 64; // far more than records
    const auto epoch = computeSlice(machine.records(), fwd.cfgs,
                                    fwd.deps, machine.pixelCriteria(),
                                    options);
    expectIdentical(oracle, epoch, "jobs > records");
}

TEST(EpochSlicer, WindowedAnalysisMatches)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(4, "tile");

    Value early = ctx.imm(0x1);
    ctx.store(pixels, 4, early);
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);
    const size_t window = machine.records().size();
    Value late = ctx.imm(0x2);
    ctx.store(pixels, 4, late);
    ctx.marker(ranges);

    SlicerOptions options;
    options.endIndex = window;
    expectEpochMatchesSequential(machine, options);
}

TEST(EpochSlicer, AblationsMatch)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto func = machine.registerFunction("paint::fill");
    const uint64_t pixels = machine.alloc(4, "tile");
    const uint64_t sendbuf = machine.alloc(16, "net");

    auto body = [&](Ctx &ctx, uint64_t flag_value) {
        TracedScope scope(ctx, func);
        Value flag = ctx.imm(flag_value);
        Value color = ctx.imm(0xABC);
        if (ctx.branchIf(flag))
            ctx.store(pixels, 4, color);
    };
    machine.post(tid, [&](Ctx &ctx) {
        body(ctx, 0);
        body(ctx, 1);
        Value payload = ctx.imm(0x77);
        ctx.store(sendbuf, 4, payload);
        Value r = sim::sysSendto(ctx, sendbuf, 16);
        (void)r;
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    SlicerOptions options;
    expectEpochMatchesSequential(machine, options, "default");

    options = {};
    options.includeControlDeps = false;
    expectEpochMatchesSequential(machine, options, "no control deps");

    options = {};
    options.includeRegisterDeps = false;
    expectEpochMatchesSequential(machine, options, "memory only");

    options = {};
    options.mode = CriteriaMode::Syscalls;
    expectEpochMatchesSequential(machine, options, "syscall criteria");
}

TEST(EpochSlicer, CrossThreadFlowAcrossEpochs)
{
    Machine machine;
    const auto t_main = machine.addThread("main");
    const auto t_raster = machine.addThread("raster");
    const uint64_t item = machine.alloc(8, "item");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(t_main, [&](Ctx &ctx) {
        Value color = ctx.imm(0x00FF00);
        ctx.store(item, 4, color);
        ctx.machine().post(t_raster, [&](Ctx &rctx) {
            Value loaded = rctx.load(item, 4);
            rctx.store(pixels, 4, loaded);
            const trace::MemRange ranges[] = {{pixels, 4}};
            rctx.marker(ranges);
        });
    });
    machine.run();

    // Boundary between the producing thread's store and the consuming
    // thread's load: the shared live-memory set crosses the boundary.
    const size_t load = nthOfKind(machine, RecordKind::Load);
    const BoundaryOverride forced({load});
    expectEpochMatchesSequential(machine);
}

/**
 * Random program generator for the fuzz loop: a mix of arithmetic,
 * loads/stores over a small heap, guarded stores inside traced function
 * scopes, syscalls, and markers, spread over two threads.
 */
Machine
randomProgram(uint64_t seed)
{
    Machine machine;
    Rng rng(seed);
    const auto t0 = machine.addThread("a");
    const auto t1 = machine.addThread("b");
    const auto fn_a = machine.registerFunction("fuzz::alpha");
    const auto fn_b = machine.registerFunction("fuzz::beta");
    const uint64_t heap = machine.alloc(256, "heap");
    const uint64_t pixels = machine.alloc(64, "tile");
    const uint64_t net = machine.alloc(32, "net");

    auto program = [&, fn_a, fn_b](Ctx &ctx, uint64_t thread_seed) {
        Rng r(thread_seed);
        TracedScope top(ctx, fn_a);
        std::vector<Value> vals;
        vals.push_back(ctx.imm(r.below(1000)));
        const size_t steps = 30 + r.below(50);
        for (size_t i = 0; i < steps; ++i) {
            auto pick = [&]() -> Value & {
                return vals[r.below(vals.size())];
            };
            switch (r.below(9)) {
              case 0:
                vals.push_back(ctx.imm(r.below(1 << 20)));
                break;
              case 1:
                vals.push_back(ctx.add(pick(), pick()));
                break;
              case 2:
                vals.push_back(
                    ctx.addi(pick(), static_cast<int64_t>(r.below(9))));
                break;
              case 3:
                ctx.store(heap + 8 * r.below(30), 4, pick());
                break;
              case 4:
                vals.push_back(ctx.load(heap + 8 * r.below(30), 4));
                break;
              case 5:
                ctx.store(pixels + 4 * r.below(15), 4, pick());
                break;
              case 6: {
                TracedScope scope(ctx, fn_b);
                Value flag = ctx.imm(r.below(2));
                Value color = ctx.imm(r.below(256));
                if (ctx.branchIf(flag))
                    ctx.store(pixels + 4 * r.below(15), 4, color);
                break;
              }
              case 7:
                if (r.chance(0.5)) {
                    ctx.store(net, 4, pick());
                    (void)sim::sysSendto(ctx, net, 16);
                } else {
                    ctx.machine().mem().write(net, 4, r.next());
                    (void)sim::sysRecvfrom(ctx, net, 16);
                }
                break;
              case 8: {
                const trace::MemRange ranges[] = {{pixels, 64}};
                ctx.marker(ranges);
                break;
              }
            }
            if (vals.size() > 12)
                vals.erase(vals.begin(),
                           vals.begin() +
                               static_cast<long>(vals.size() - 6));
        }
        const trace::MemRange ranges[] = {{pixels, 64}};
        ctx.marker(ranges);
    };
    machine.post(t0, [&](Ctx &ctx) { program(ctx, seed * 2 + 1); });
    machine.post(t1, [&](Ctx &ctx) { program(ctx, seed * 2 + 2); });
    machine.run();
    return machine;
}

TEST(EpochSlicer, FuzzBitIdentityAgainstSequential)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        const Machine machine = randomProgram(seed);
        const ForwardResult fwd(machine);
        Rng r(seed ^ 0xF00D);

        for (const auto mode :
             {CriteriaMode::PixelBuffer, CriteriaMode::Syscalls}) {
            SlicerOptions options;
            options.mode = mode;
            options.includeControlDeps = r.chance(0.8);
            options.includeRegisterDeps = r.chance(0.8);
            const auto oracle = computeSlice(
                machine.records(), fwd.cfgs, fwd.deps,
                machine.pixelCriteria(), options);

            // Planner-chosen boundaries at two job counts...
            for (const int jobs : {2, 5}) {
                options.backwardJobs = jobs;
                const auto epoch = computeSlice(
                    machine.records(), fwd.cfgs, fwd.deps,
                    machine.pixelCriteria(), options);
                expectIdentical(oracle, epoch, "fuzz planner bounds");
            }

            // ...and adversarial random ones (possibly colliding).
            std::vector<size_t> interior;
            for (int i = 0; i < 5; ++i)
                interior.push_back(
                    r.below(machine.records().size() + 2));
            const BoundaryOverride forced(interior);
            options.backwardJobs = 3;
            const auto epoch = computeSlice(
                machine.records(), fwd.cfgs, fwd.deps,
                machine.pixelCriteria(), options);
            expectIdentical(oracle, epoch, "fuzz random bounds");
        }
    }
}

// ---- reusable epoch plans ------------------------------------------------

uint64_t
counterValue(const char *name)
{
    return MetricRegistry::global().counter(name).value();
}

/** RAII setter for the widened-summary test hook. */
struct ForceWidenedSummaries
{
    ForceWidenedSummaries()
    {
        EpochPlanner::forceWidenedSummariesForTesting = true;
    }

    ~ForceWidenedSummaries()
    {
        EpochPlanner::forceWidenedSummariesForTesting = false;
    }
};

TEST(EpochPlan, ReuseAcrossCriteriaIsBitIdentical)
{
    const Machine machine = randomProgram(11);
    const ForwardResult fwd(machine);
    const SlicerOptions build;
    const auto plan = buildEpochPlan(machine.records(), fwd.cfgs,
                                     fwd.deps, build);
    ASSERT_TRUE(plan);
    EXPECT_TRUE(plan->compatibleWith(build, machine.records().size()));
    EXPECT_EQ(plan->windowEnd(), machine.records().size());
    EXPECT_GT(plan->epochCount(), 0u);
    EXPECT_GT(plan->approxBytes(), 0u);

    // One plan serves both criteria modes at any job count, and every
    // reuse is bit-identical to a from-scratch slice of that criterion.
    for (const auto mode :
         {CriteriaMode::PixelBuffer, CriteriaMode::Syscalls}) {
        SlicerOptions options;
        options.mode = mode;
        const auto oracle = computeSlice(machine.records(), fwd.cfgs,
                                         fwd.deps,
                                         machine.pixelCriteria(), options);
        for (const int jobs : {1, 3}) {
            options.backwardJobs = jobs;
            options.reusePlan = plan.get();
            const uint64_t hits = counterValue("slicer.plan_hits");
            const auto warm = computeSlice(machine.records(), fwd.cfgs,
                                           fwd.deps,
                                           machine.pixelCriteria(),
                                           options);
            EXPECT_EQ(counterValue("slicer.plan_hits"), hits + 1);
            expectIdentical(oracle, warm, "plan reuse");
        }
    }
}

TEST(EpochPlan, RepeatCriterionIsServedFromTheResultMemo)
{
    const Machine machine = randomProgram(12);
    const ForwardResult fwd(machine);
    SlicerOptions options;
    const auto plan = buildEpochPlan(machine.records(), fwd.cfgs,
                                     fwd.deps, options);
    ASSERT_TRUE(plan);
    options.reusePlan = plan.get();

    const auto first = computeSlice(machine.records(), fwd.cfgs,
                                    fwd.deps, machine.pixelCriteria(),
                                    options);
    const uint64_t memo = counterValue("slicer.memo_hits");
    options.backwardJobs = 4; // an execution knob, not a criterion
    const auto second = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    EXPECT_EQ(counterValue("slicer.memo_hits"), memo + 1);
    expectIdentical(first, second, "memoized repeat");

    // Different criteria content must miss the memo (and still slice
    // correctly against the shared transcode).
    trace::CriteriaSet other;
    other.add(/*marker=*/0, 0x100000, 4);
    const auto third = computeSlice(machine.records(), fwd.cfgs,
                                    fwd.deps, other, options);
    EXPECT_EQ(counterValue("slicer.memo_hits"), memo + 1);
    options.reusePlan = nullptr;
    options.backwardJobs = 1;
    const auto fresh = computeSlice(machine.records(), fwd.cfgs,
                                    fwd.deps, other, options);
    expectIdentical(fresh, third, "changed criteria");
}

TEST(EpochPlan, IncompatibleOptionsFallBackToThePlanlessPath)
{
    const Machine machine = randomProgram(13);
    const ForwardResult fwd(machine);
    const SlicerOptions build; // full window, both dep kinds
    const auto plan = buildEpochPlan(machine.records(), fwd.cfgs,
                                     fwd.deps, build);
    ASSERT_TRUE(plan);

    SlicerOptions options;
    options.endIndex = machine.records().size() / 2;
    options.reusePlan = plan.get();
    EXPECT_FALSE(plan->compatibleWith(options, machine.records().size()));

    const uint64_t misses = counterValue("slicer.plan_misses");
    const auto sliced = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    EXPECT_EQ(counterValue("slicer.plan_misses"), misses + 1);

    options.reusePlan = nullptr;
    const auto oracle = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    expectIdentical(oracle, sliced, "incompatible window fallback");
}

TEST(EpochPlan, SkipsProvablyInertEpochs)
{
    // [Call][color imm][200 inert Alu][store pixels][marker][Ret]: the
    // middle epoch only kills registers the walk never holds live, so
    // its gen/kill summary must prove it skippable — and the slice must
    // still match the oracle exactly.
    Machine machine;
    const auto t0 = machine.addThread("main");
    const auto fn = machine.registerFunction("skip::inert");
    const uint64_t pixels = machine.alloc(64, "tile");
    machine.post(t0, [&, fn](Ctx &ctx) {
        TracedScope scope(ctx, fn);
        Value color = ctx.imm(7);
        Value v = ctx.imm(1);
        for (int i = 0; i < 150; ++i)
            v = ctx.addi(v, 1);
        ctx.store(pixels, 4, color);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const ForwardResult fwd(machine);
    const size_t store_at = nthOfKind(machine, RecordKind::Store);
    const size_t chain_at = nthOfKind(machine, RecordKind::Alu, 5);
    ASSERT_LT(chain_at, store_at);
    const BoundaryOverride bounds({chain_at, store_at});

    SlicerOptions options;
    const auto oracle = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    const auto plan = buildEpochPlan(machine.records(), fwd.cfgs,
                                     fwd.deps, options);
    ASSERT_TRUE(plan);

    options.reusePlan = plan.get();
    const uint64_t skipped = counterValue("slicer.epochs_skipped");
    const auto warm = computeSlice(machine.records(), fwd.cfgs, fwd.deps,
                                   machine.pixelCriteria(), options);
    EXPECT_GT(counterValue("slicer.epochs_skipped"), skipped);
    expectIdentical(oracle, warm, "inert epoch skipped");
}

TEST(EpochPlan, FuzzReuseMatchesSequentialEvenWithWidenedSummaries)
{
    // Widened summaries must disable skipping, never change results:
    // odd seeds force every summary conservative and the plan replay
    // still has to be bit-identical to the oracle.
    for (uint64_t seed = 100; seed < 106; ++seed) {
        const Machine machine = randomProgram(seed);
        const ForwardResult fwd(machine);

        std::unique_ptr<ForceWidenedSummaries> widened;
        if (seed % 2)
            widened = std::make_unique<ForceWidenedSummaries>();

        const SlicerOptions build;
        const auto plan = buildEpochPlan(machine.records(), fwd.cfgs,
                                         fwd.deps, build);
        ASSERT_TRUE(plan);

        for (const auto mode :
             {CriteriaMode::PixelBuffer, CriteriaMode::Syscalls}) {
            SlicerOptions options;
            options.mode = mode;
            const auto oracle = computeSlice(machine.records(), fwd.cfgs,
                                             fwd.deps,
                                             machine.pixelCriteria(),
                                             options);
            for (const int jobs : {1, 4}) {
                options.backwardJobs = jobs;
                options.reusePlan = plan.get();
                const auto warm = computeSlice(machine.records(),
                                               fwd.cfgs, fwd.deps,
                                               machine.pixelCriteria(),
                                               options);
                expectIdentical(oracle, warm, "fuzz plan reuse");
            }
        }
    }
}

TEST(SplitBoundary, ShiftsOntoSyscallRecord)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const uint64_t netbuf = machine.alloc(16, "net");

    machine.post(tid, [&](Ctx &ctx) {
        Value v = ctx.imm(1);
        ctx.store(netbuf, 4, v);
        (void)sim::sysSendto(ctx, netbuf, 16);
        Value after = ctx.imm(2);
        (void)after;
    });
    machine.run();

    const auto &records = machine.records();
    const size_t sys = nthOfKind(machine, RecordKind::Syscall);
    size_t last_pseudo = sys;
    while (last_pseudo + 1 < records.size() &&
           records[last_pseudo + 1].isPseudo())
        ++last_pseudo;
    ASSERT_GT(last_pseudo, sys);

    // Any boundary inside the pseudo group lands on the Syscall...
    for (size_t b = sys + 1; b <= last_pseudo; ++b)
        EXPECT_EQ(trace::CriteriaSet::splitBoundary(records, b), sys);
    // ...and boundaries outside the group are untouched.
    EXPECT_EQ(trace::CriteriaSet::splitBoundary(records, sys), sys);
    EXPECT_EQ(trace::CriteriaSet::splitBoundary(records, 0), 0u);
    EXPECT_EQ(trace::CriteriaSet::splitBoundary(records, last_pseudo + 1),
              last_pseudo + 1);
    EXPECT_EQ(
        trace::CriteriaSet::splitBoundary(records, records.size() + 5),
        records.size() + 5);
}

/** A saved multi-block trace with its machine (for file-path tests). */
struct BigSavedProgram
{
    Machine machine;
    std::string path;

    BigSavedProgram()
    {
        const auto tid = machine.addThread("main");
        const uint64_t heap = machine.alloc(64, "heap");
        const uint64_t pixels = machine.alloc(16, "tile");
        machine.post(tid, [&](Ctx &ctx) {
            // Enough records to span several index blocks.
            const size_t rounds = (1 << 16) + 4000;
            for (size_t i = 0; i < rounds; ++i) {
                Value v = ctx.imm(i & 0xFF);
                ctx.store(heap + 8 * (i % 8), 4, v);
            }
            Value color = ctx.load(heap, 4);
            ctx.store(pixels, 4, color);
            const trace::MemRange ranges[] = {{pixels, 16}};
            ctx.marker(ranges);
        });
        machine.run();

        path = std::string(::testing::TempDir()) + "epoch_big.trc";
        trace::TraceWriter writer(path, /*block_index=*/true);
        for (const auto &rec : machine.records())
            writer.append(rec);
        writer.close();
    }

    ~BigSavedProgram() { std::remove(path.c_str()); }
};

TEST(TraceBlockIndex, RoundTripsThroughWriterAndLoader)
{
    const BigSavedProgram program;
    const auto &records = program.machine.records();

    const auto index = trace::loadTraceBlockIndex(program.path);
    ASSERT_TRUE(index.present());
    EXPECT_EQ(index.blockRecords, trace::kTraceIndexBlockRecords);
    const size_t expect_blocks =
        (records.size() + trace::kTraceIndexBlockRecords - 1) /
        trace::kTraceIndexBlockRecords;
    ASSERT_EQ(index.blockCount(), expect_blocks);
    ASSERT_GE(index.blockCount(), 2u);

    uint64_t instructions = 0;
    uint64_t pseudos = 0;
    for (size_t b = 0; b < index.blockCount(); ++b) {
        instructions += index.instructions[b];
        pseudos += index.pseudoRecords[b];
    }
    uint64_t expect_instructions = 0;
    for (const auto &rec : records)
        expect_instructions += rec.isPseudo() ? 0 : 1;
    EXPECT_EQ(instructions, expect_instructions);
    EXPECT_EQ(pseudos, records.size() - expect_instructions);

    // The mmap view exposes the same index.
    trace::MappedTrace mapped(program.path);
    ASSERT_TRUE(mapped.blockIndex().present());
    EXPECT_EQ(mapped.blockIndex().instructions, index.instructions);
    EXPECT_EQ(mapped.count(), records.size());
    EXPECT_EQ(mapped[0].pc, records[0].pc);
}

TEST(TraceBlockIndex, LoadTraceRangeReturnsExactWindow)
{
    const BigSavedProgram program;
    const auto &records = program.machine.records();

    const auto window = trace::loadTraceRange(program.path, 1000, 50);
    ASSERT_EQ(window.size(), 50u);
    for (size_t i = 0; i < window.size(); ++i) {
        EXPECT_EQ(window[i].pc, records[1000 + i].pc);
        EXPECT_EQ(window[i].addr, records[1000 + i].addr);
    }
    EXPECT_TRUE(trace::loadTraceRange(program.path, 7, 0).empty());
}

TEST(TraceBlockIndex, RangedReverseReaderYieldsExactSegment)
{
    const BigSavedProgram program;
    const auto &records = program.machine.records();

    const uint64_t first = 900;
    const uint64_t last = 70000;
    for (const bool prefetch : {false, true}) {
        trace::ReverseTraceReader reader(program.path, first, last,
                                         /*block_records=*/777, prefetch);
        trace::Record rec;
        uint64_t idx = last;
        while (reader.next(rec)) {
            --idx;
            ASSERT_EQ(rec.pc, records[idx].pc) << "prefetch=" << prefetch;
            ASSERT_EQ(rec.addr, records[idx].addr);
        }
        EXPECT_EQ(idx, first);
    }

    // Empty and full ranges behave.
    trace::ReverseTraceReader empty(program.path, uint64_t{5}, uint64_t{5});
    trace::Record rec;
    EXPECT_FALSE(empty.next(rec));
    trace::ReverseTraceReader full(program.path, uint64_t{0},
                                   uint64_t{records.size()});
    EXPECT_EQ(full.remaining(), records.size());
}

TEST(TraceBlockIndexDeath, RangeBoundsAreChecked)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const BigSavedProgram program;
    const auto count = program.machine.records().size();
    EXPECT_DEATH(trace::loadTraceRange(program.path, count, 1),
                 "out of bounds");
    EXPECT_DEATH(trace::ReverseTraceReader(program.path, uint64_t{10},
                                           uint64_t{5}),
                 "range");
}

TEST(EpochSlicer, FileSliceMatchesMemorySliceUsingIndex)
{
    const BigSavedProgram program;
    const ForwardResult fwd(program.machine);

    SlicerOptions options;
    const auto oracle =
        computeSlice(program.machine.records(), fwd.cfgs, fwd.deps,
                     program.machine.pixelCriteria(), options);

    auto &planned = MetricRegistry::global().counter(
        "slicer.epochs_planned");
    const uint64_t planned_before = planned.value();
    options.backwardJobs = 4;
    const auto epoch = computeSliceFromFile(
        program.path, fwd.cfgs, fwd.deps,
        program.machine.pixelCriteria(), options);
    EXPECT_GT(planned.value(), planned_before);

    expectIdentical(oracle, epoch, "file epoch slice");

    // The windowed variant agrees too (window cuts mid-trace).
    options.endIndex = program.machine.records().size() / 2;
    options.backwardJobs = 1;
    const auto windowed_oracle =
        computeSlice(program.machine.records(), fwd.cfgs, fwd.deps,
                     program.machine.pixelCriteria(), options);
    options.backwardJobs = 3;
    const auto windowed_epoch = computeSliceFromFile(
        program.path, fwd.cfgs, fwd.deps,
        program.machine.pixelCriteria(), options);
    EXPECT_EQ(windowed_oracle.inSlice, windowed_epoch.inSlice);
    EXPECT_EQ(windowed_oracle.sliceInstructions,
              windowed_epoch.sliceInstructions);
    EXPECT_EQ(windowed_oracle.instructionsAnalyzed,
              windowed_epoch.instructionsAnalyzed);
}

TEST(EpochSlicer, FileSliceWithoutIndexStillMatches)
{
    // saveTrace writes no footer: the planner falls back to equal-record
    // epochs and the result is still bit-identical.
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(16, "tile");
    for (int i = 0; i < 50; ++i) {
        Value v = ctx.imm(i);
        ctx.store(pixels + 4 * (i % 4), 4, v);
    }
    const trace::MemRange ranges[] = {{pixels, 16}};
    ctx.marker(ranges);

    const std::string path =
        std::string(::testing::TempDir()) + "epoch_noindex.trc";
    trace::saveTrace(path, machine.records());
    EXPECT_FALSE(trace::loadTraceBlockIndex(path).present());

    const ForwardResult fwd(machine);
    SlicerOptions options;
    const auto oracle = computeSlice(machine.records(), fwd.cfgs,
                                     fwd.deps, machine.pixelCriteria(),
                                     options);
    options.backwardJobs = 4;
    const auto epoch =
        computeSliceFromFile(path, fwd.cfgs, fwd.deps,
                             machine.pixelCriteria(), options);
    expectIdentical(oracle, epoch, "file epoch slice, no index");
    std::remove(path.c_str());
}

} // namespace
} // namespace slicer
} // namespace webslice
