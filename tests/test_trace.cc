/**
 * @file
 * Unit tests for the trace layer: record layout, file round-trips, the
 * reverse block reader, the symbol table, and criteria files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/criteria.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace trace {
namespace {

std::string
tempPath(const char *stem)
{
    return std::string(::testing::TempDir()) + stem;
}

Record
makeRecord(size_t i)
{
    Record rec;
    rec.pc = static_cast<Pc>(0x1000 + 4 * i);
    rec.addr = 0x10000000ull + i;
    rec.aux = static_cast<uint32_t>(i % 9);
    rec.tid = static_cast<ThreadId>(i % 3);
    rec.kind = (i % 2) ? RecordKind::Alu : RecordKind::Store;
    rec.rr0 = static_cast<RegId>(i % 64);
    rec.rw = static_cast<RegId>((i + 1) % 64);
    return rec;
}

// ---- record ----------------------------------------------------------------

TEST(Record, StaysCompact)
{
    EXPECT_EQ(sizeof(Record), 32u);
}

TEST(Record, PseudoDetection)
{
    Record rec;
    rec.kind = RecordKind::SyscallRead;
    EXPECT_TRUE(rec.isPseudo());
    rec.kind = RecordKind::SyscallWrite;
    EXPECT_TRUE(rec.isPseudo());
    rec.kind = RecordKind::Syscall;
    EXPECT_FALSE(rec.isPseudo());
    rec.kind = RecordKind::Marker;
    EXPECT_FALSE(rec.isPseudo());
}

TEST(Record, ControlDetectionAndFlags)
{
    Record rec;
    rec.kind = RecordKind::Branch;
    EXPECT_TRUE(rec.isControl());
    EXPECT_FALSE(rec.taken());
    rec.flags |= kFlagTaken;
    EXPECT_TRUE(rec.taken());
    rec.kind = RecordKind::Call;
    rec.flags |= kFlagIndirect;
    EXPECT_TRUE(rec.indirect());
    rec.kind = RecordKind::Load;
    EXPECT_FALSE(rec.isControl());
}

// ---- trace file ------------------------------------------------------------

TEST(TraceFile, WriteLoadRoundTrip)
{
    const std::string path = tempPath("roundtrip.trc");
    {
        TraceWriter writer(path);
        for (size_t i = 0; i < 1000; ++i)
            writer.append(makeRecord(i));
        EXPECT_EQ(writer.count(), 1000u);
    }
    const auto records = loadTrace(path);
    ASSERT_EQ(records.size(), 1000u);
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].pc, makeRecord(i).pc);
        EXPECT_EQ(records[i].addr, makeRecord(i).addr);
        EXPECT_EQ(records[i].tid, makeRecord(i).tid);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTrace)
{
    const std::string path = tempPath("empty.trc");
    {
        TraceWriter writer(path);
    }
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceFile, SaveTraceHelper)
{
    const std::string path = tempPath("save.trc");
    std::vector<Record> records;
    for (size_t i = 0; i < 77; ++i)
        records.push_back(makeRecord(i));
    saveTrace(path, records);
    const auto loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), 77u);
    EXPECT_EQ(loaded[76].addr, records[76].addr);
    std::remove(path.c_str());
}

TEST(ReverseTraceReader, YieldsRecordsBackwards)
{
    const std::string path = tempPath("reverse.trc");
    std::vector<Record> records;
    for (size_t i = 0; i < 333; ++i)
        records.push_back(makeRecord(i));
    saveTrace(path, records);

    // Block size smaller than the trace forces multiple block loads.
    ReverseTraceReader reader(path, 64);
    EXPECT_EQ(reader.count(), 333u);
    Record rec;
    size_t expected = 333;
    while (reader.next(rec)) {
        --expected;
        EXPECT_EQ(rec.pc, records[expected].pc);
        EXPECT_EQ(rec.addr, records[expected].addr);
    }
    EXPECT_EQ(expected, 0u);
    EXPECT_EQ(reader.remaining(), 0u);
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(ReverseTraceReader, EmptyFile)
{
    const std::string path = tempPath("reverse_empty.trc");
    saveTrace(path, {});
    ReverseTraceReader reader(path);
    Record rec;
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(ReverseTraceReader, BlockExactlyDivides)
{
    const std::string path = tempPath("reverse_exact.trc");
    std::vector<Record> records;
    for (size_t i = 0; i < 128; ++i)
        records.push_back(makeRecord(i));
    saveTrace(path, records);
    ReverseTraceReader reader(path, 32);
    Record rec;
    size_t count = 0;
    while (reader.next(rec))
        ++count;
    EXPECT_EQ(count, 128u);
    std::remove(path.c_str());
}

// ---- symbol table ----------------------------------------------------------

TEST(SymbolTable, RegisterAndLookup)
{
    SymbolTable symtab;
    const FuncId f0 = symtab.addFunction(0x1000, "v8::Parser::parse");
    const FuncId f1 = symtab.addFunction(0x2000, "cc::TileManager::run");
    EXPECT_EQ(f0, 0u);
    EXPECT_EQ(f1, 1u);
    EXPECT_EQ(symtab.functionAtEntry(0x1000), f0);
    EXPECT_EQ(symtab.functionAtEntry(0x2000), f1);
    EXPECT_EQ(symtab.functionAtEntry(0x3000), kNoFunc);
    EXPECT_EQ(symtab.symbol(f0).name, "v8::Parser::parse");
    EXPECT_EQ(symtab.functionCount(), 2u);
}

TEST(SymbolTable, PcOwnershipFirstWins)
{
    SymbolTable symtab;
    const FuncId f0 = symtab.addFunction(0x1000, "a::f");
    const FuncId f1 = symtab.addFunction(0x2000, "b::g");
    symtab.assignPc(0x1004, f0);
    symtab.assignPc(0x1004, f1); // ignored: first owner wins
    EXPECT_EQ(symtab.functionOfPc(0x1004), f0);
    EXPECT_EQ(symtab.functionOfPc(0x9999), kNoFunc);
}

TEST(SymbolTable, SaveLoadRoundTrip)
{
    SymbolTable symtab;
    const FuncId f0 = symtab.addFunction(0x1000, "v8::Script::compile");
    symtab.addFunction(0x2000, "base::threading::Mutex::lock");
    symtab.assignPc(0x1008, f0);

    const std::string path = tempPath("symtab.txt");
    symtab.save(path);

    SymbolTable loaded;
    loaded.load(path);
    EXPECT_EQ(loaded.functionCount(), 2u);
    EXPECT_EQ(loaded.symbol(0).name, "v8::Script::compile");
    EXPECT_EQ(loaded.symbol(1).name, "base::threading::Mutex::lock");
    EXPECT_EQ(loaded.functionAtEntry(0x2000), 1u);
    EXPECT_EQ(loaded.functionOfPc(0x1008), f0);
    std::remove(path.c_str());
}

// ---- criteria --------------------------------------------------------------

TEST(CriteriaSet, AddAndQuery)
{
    CriteriaSet criteria;
    criteria.add(0, 0x1000, 256);
    criteria.add(0, 0x2000, 64);
    criteria.add(5, 0x3000, 128);
    EXPECT_EQ(criteria.markerCount(), 2u);
    EXPECT_EQ(criteria.forMarker(0).size(), 2u);
    EXPECT_EQ(criteria.forMarker(5).size(), 1u);
    EXPECT_TRUE(criteria.forMarker(7).empty());
    EXPECT_EQ(criteria.totalBytes(), 448u);
}

TEST(CriteriaSet, SaveLoadRoundTrip)
{
    CriteriaSet criteria;
    criteria.add(1, 0xAAAA, 16);
    criteria.add(2, 0xBBBB, 32);

    const std::string path = tempPath("criteria.txt");
    criteria.save(path);

    CriteriaSet loaded;
    loaded.load(path);
    EXPECT_EQ(loaded.markerCount(), 2u);
    ASSERT_EQ(loaded.forMarker(1).size(), 1u);
    EXPECT_EQ(loaded.forMarker(1)[0], (MemRange{0xAAAA, 16}));
    EXPECT_EQ(loaded.totalBytes(), 48u);
    std::remove(path.c_str());
}

} // namespace
} // namespace trace
} // namespace webslice
