/**
 * @file
 * Property tests of the trace-layer data structures against reference
 * models: SparseByteSet vs std::set<uint64_t> under random operation
 * sequences, and the reverse block reader across a block-size sweep.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hh"
#include "support/sparse_byte_set.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace {

// ---- SparseByteSet vs a reference model --------------------------------------

class SparseSetModelSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SparseSetModelSweep, MatchesReferenceModelUnderRandomOps)
{
    Rng rng(GetParam());
    SparseByteSet set;
    std::set<uint64_t> model;

    // Addresses drawn from a small window so collisions are common, with
    // occasional far-away ranges to exercise chunk churn.
    auto randomRange = [&]() {
        uint64_t addr = rng.below(512);
        if (rng.chance(0.1))
            addr += 0xFFFFF000ull; // chunk-boundary-hostile region
        const uint64_t size = rng.below(70) + 1;
        return std::make_pair(addr, size);
    };

    for (int step = 0; step < 2000; ++step) {
        const auto [addr, size] = randomRange();
        switch (rng.below(4)) {
          case 0: {
            set.insert(addr, size);
            for (uint64_t a = addr; a < addr + size; ++a)
                model.insert(a);
            break;
          }
          case 1: {
            set.erase(addr, size);
            for (uint64_t a = addr; a < addr + size; ++a)
                model.erase(a);
            break;
          }
          case 2: {
            bool expected = false;
            for (uint64_t a = addr; a < addr + size && !expected; ++a)
                expected = model.count(a) > 0;
            EXPECT_EQ(set.intersects(addr, size), expected)
                << "step " << step;
            break;
          }
          default: {
            bool expected = false;
            for (uint64_t a = addr; a < addr + size; ++a)
                expected |= model.erase(a) > 0;
            EXPECT_EQ(set.testAndErase(addr, size), expected)
                << "step " << step;
            break;
          }
        }
        ASSERT_EQ(set.size(), model.size()) << "step " << step;
    }

    // Final sweep: per-byte agreement over the hot window.
    for (uint64_t a = 0; a < 600; ++a)
        EXPECT_EQ(set.contains(a), model.count(a) > 0) << "byte " << a;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseSetModelSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- reverse reader sweep -------------------------------------------------------

class ReverseReaderSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(ReverseReaderSweep, YieldsExactReverseOrder)
{
    const auto [record_count, block_size] = GetParam();
    const std::string path = std::string(::testing::TempDir()) +
                             "sweep_" + std::to_string(record_count) +
                             "_" + std::to_string(block_size) + ".trc";

    std::vector<trace::Record> records(record_count);
    for (size_t i = 0; i < record_count; ++i) {
        records[i].pc = static_cast<trace::Pc>(i * 4 + 0x1000);
        records[i].addr = i * 13;
    }
    trace::saveTrace(path, records);

    trace::ReverseTraceReader reader(path, block_size);
    trace::Record rec;
    size_t expected = record_count;
    while (reader.next(rec)) {
        ASSERT_GT(expected, 0u);
        --expected;
        ASSERT_EQ(rec.pc, records[expected].pc);
        ASSERT_EQ(rec.addr, records[expected].addr);
    }
    EXPECT_EQ(expected, 0u);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReverseReaderSweep,
    ::testing::Values(std::make_pair<size_t, size_t>(0, 16),
                      std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(5, 16),
                      std::make_pair<size_t, size_t>(16, 16),
                      std::make_pair<size_t, size_t>(17, 16),
                      std::make_pair<size_t, size_t>(1000, 7),
                      std::make_pair<size_t, size_t>(1000, 1024),
                      std::make_pair<size_t, size_t>(4096, 4096)));

// ---- RNG statistical sanity --------------------------------------------------------

TEST(RngDistribution, BelowIsRoughlyUniform)
{
    Rng rng(31337);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.below(kBuckets)];
    for (int b = 0; b < kBuckets; ++b) {
        EXPECT_GT(counts[b], kDraws / kBuckets - kDraws / 40);
        EXPECT_LT(counts[b], kDraws / kBuckets + kDraws / 40);
    }
}

} // namespace
} // namespace webslice
