/**
 * @file
 * Tests of the backward slicing pass on small traced programs.
 *
 * Each test builds a miniature program on the simulated machine, runs the
 * forward pass (CFGs + control deps) and the backward pass, and checks
 * precisely which instructions join the slice. These encode the paper's
 * slicing rules: criteria seeding, kill/gen liveness, branch pending
 * lists, syscall effects, and cross-thread flow through shared memory.
 */

#include <gtest/gtest.h>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"

namespace webslice {
namespace slicer {
namespace {

using graph::buildCfgs;
using graph::buildControlDeps;
using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;
using trace::RecordKind;

/** Runs forward + backward passes with default (pixel) criteria. */
SliceResult
slice(Machine &machine, SlicerOptions options = {})
{
    const auto cfgs = buildCfgs(machine.records(), machine.symtab());
    const auto deps = buildControlDeps(cfgs);
    return computeSlice(machine.records(), cfgs, deps,
                        machine.pixelCriteria(), options);
}

/** Index of the i-th record of the given kind. */
size_t
nthOfKind(const Machine &machine, RecordKind kind, size_t n = 0)
{
    const auto &records = machine.records();
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].kind == kind) {
            if (n == 0)
                return i;
            --n;
        }
    }
    ADD_FAILURE() << "record of requested kind not found";
    return records.size();
}

TEST(Slicer, StoreFeedingCriteriaIsInSlice)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);

    const uint64_t pixels = machine.alloc(64, "tile");
    const uint64_t scratch = machine.alloc(64, "scratch");

    Value color = ctx.imm(0xFF00FF);          // 0: feeds pixels
    ctx.store(pixels, 4, color);              // 1: feeds pixels
    Value junk = ctx.imm(7);                  // 2: dead
    ctx.store(scratch, 4, junk);              // 3: dead
    const trace::MemRange ranges[] = {{pixels, 64}};
    ctx.marker(ranges);                       // 4: criterion

    const auto result = slice(machine);
    ASSERT_EQ(result.inSlice.size(), 5u);
    EXPECT_TRUE(result.inSlice[0]);
    EXPECT_TRUE(result.inSlice[1]);
    EXPECT_FALSE(result.inSlice[2]);
    EXPECT_FALSE(result.inSlice[3]);
    EXPECT_TRUE(result.inSlice[4]);
    EXPECT_EQ(result.instructionsAnalyzed, 5u);
    EXPECT_EQ(result.sliceInstructions, 3u);
    EXPECT_EQ(result.criteriaBytesSeeded, 64u);
}

TEST(Slicer, ArithmeticChainIsFollowed)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(16, "tile");

    Value a = ctx.imm(3);          // in slice
    Value b = ctx.imm(4);          // in slice
    Value c = ctx.add(a, b);       // in slice
    Value d = ctx.muli(c, 2);      // in slice
    Value e = ctx.imm(100);        // dead
    Value f = ctx.addi(e, 1);      // dead
    (void)f;
    ctx.store(pixels, 4, d);       // in slice
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    EXPECT_TRUE(result.inSlice[0]);
    EXPECT_TRUE(result.inSlice[1]);
    EXPECT_TRUE(result.inSlice[2]);
    EXPECT_TRUE(result.inSlice[3]);
    EXPECT_FALSE(result.inSlice[4]);
    EXPECT_FALSE(result.inSlice[5]);
    EXPECT_TRUE(result.inSlice[6]);
}

TEST(Slicer, OverwrittenStoreIsDead)
{
    // Overdraw: the first store to the pixel is killed by the second.
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(4, "tile");

    Value under = ctx.imm(0x111111);  // dead (overdrawn)
    ctx.store(pixels, 4, under);      // dead (overdrawn)
    Value over = ctx.imm(0x222222);   // live
    ctx.store(pixels, 4, over);       // live
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    EXPECT_FALSE(result.inSlice[0]);
    EXPECT_FALSE(result.inSlice[1]);
    EXPECT_TRUE(result.inSlice[2]);
    EXPECT_TRUE(result.inSlice[3]);
}

TEST(Slicer, PartialOverwriteKeepsBothStores)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(8, "tile");

    Value wide = ctx.imm(0xAAAABBBBCCCCDDDDull);
    ctx.store(pixels, 8, wide);     // half survives
    Value narrow = ctx.imm(0x1234);
    ctx.store(pixels, 4, narrow);   // overwrites low half only
    const trace::MemRange ranges[] = {{pixels, 8}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    EXPECT_TRUE(result.inSlice[1]);
    EXPECT_TRUE(result.inSlice[3]);
}

TEST(Slicer, LoadBridgesMemoryDependence)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t style = machine.alloc(8, "style");
    const uint64_t pixels = machine.alloc(8, "tile");

    Value v = ctx.imm(5);            // in slice
    ctx.store(style, 4, v);          // in slice
    Value loaded = ctx.load(style, 4); // in slice
    Value scaled = ctx.muli(loaded, 3); // in slice
    ctx.store(pixels, 4, scaled);    // in slice
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    for (size_t i = 0; i < result.inSlice.size(); ++i)
        EXPECT_TRUE(result.inSlice[i]) << "record " << i;
}

TEST(Slicer, PointerRegisterBecomesLive)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t node = machine.alloc(32, "node");
    const uint64_t pixels = machine.alloc(8, "tile");

    Value base = ctx.imm(node);           // in slice (address dep)
    Value v = ctx.imm(9);                 // in slice
    ctx.storeVia(base, 8, 4, v);          // in slice
    Value loaded = ctx.loadVia(base, 8, 4); // in slice
    ctx.store(pixels, 4, loaded);         // in slice
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    EXPECT_TRUE(result.inSlice[0]) << "pointer imm must join via rr deps";
    EXPECT_TRUE(result.inSlice[2]);
    EXPECT_TRUE(result.inSlice[3]);
}

TEST(Slicer, BranchGuardingLiveStoreJoinsWithItsCondition)
{
    // Control dependence only exists in the *observed* CFG when the branch
    // was seen to go both ways (dynamic CFGs have no static fall-through
    // knowledge), so run the guarded body once skipping and once storing.
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto func = machine.registerFunction("paint::fill");
    const uint64_t pixels = machine.alloc(4, "tile");

    auto body = [&](Ctx &ctx, uint64_t flag_value) {
        TracedScope scope(ctx, func);
        Value flag = ctx.imm(flag_value); // condition source
        Value color = ctx.imm(0xABC);
        if (ctx.branchIf(flag)) {         // controls the store
            ctx.store(pixels, 4, color);
        }
    };
    machine.post(tid, [&](Ctx &ctx) {
        body(ctx, 0); // skipping instance: everything dead
        body(ctx, 1); // storing instance: chain joins the slice
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    const size_t skip_branch = nthOfKind(machine, RecordKind::Branch, 0);
    const size_t live_branch = nthOfKind(machine, RecordKind::Branch, 1);
    const size_t store = nthOfKind(machine, RecordKind::Store);
    EXPECT_FALSE(result.inSlice[skip_branch]);
    EXPECT_TRUE(result.inSlice[live_branch]);
    EXPECT_TRUE(result.inSlice[store]);
    // The live instance's condition producer (first imm after its Call)
    // joins through the branch's condition register.
    const size_t live_call = nthOfKind(machine, RecordKind::Call, 1);
    EXPECT_TRUE(result.inSlice[live_call + 1]);
    // The skipping instance's condition producer stays out.
    const size_t skip_call = nthOfKind(machine, RecordKind::Call, 0);
    EXPECT_FALSE(result.inSlice[skip_call + 1]);
}

TEST(Slicer, BranchNotControllingSliceIsExcluded)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto func = machine.registerFunction("paint::fill");
    const uint64_t pixels = machine.alloc(4, "tile");
    const uint64_t scratch = machine.alloc(4, "scratch");

    auto body = [&](Ctx &ctx, uint64_t flag_value) {
        TracedScope scope(ctx, func);
        Value color = ctx.imm(0xABC);
        ctx.store(pixels, 4, color);      // live, unconditional
        Value flag = ctx.imm(flag_value); // dead
        if (ctx.branchIf(flag)) {         // dead: controls only scratch
            Value junk = ctx.imm(1);      // dead
            ctx.store(scratch, 4, junk);  // dead
        }
    };
    machine.post(tid, [&](Ctx &ctx) {
        body(ctx, 0);
        body(ctx, 1);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Branch, 0)]);
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Branch, 1)]);
    // Store order: [0] pixels (overwritten), [1] pixels (survives),
    // [2] scratch (guarded, dead).
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Store, 0)]);
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::Store, 1)]);
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Store, 2)]);
}

TEST(Slicer, ControlDepsCanBeDisabled)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto func = machine.registerFunction("paint::fill");
    const uint64_t pixels = machine.alloc(4, "tile");

    auto body = [&](Ctx &ctx, uint64_t flag_value) {
        TracedScope scope(ctx, func);
        Value flag = ctx.imm(flag_value);
        Value color = ctx.imm(0xABC);
        if (ctx.branchIf(flag))
            ctx.store(pixels, 4, color);
    };
    machine.post(tid, [&](Ctx &ctx) {
        body(ctx, 0);
        body(ctx, 1);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    // With control deps the guarding branch joins the slice...
    const auto with_deps = slice(machine);
    const size_t live_branch = nthOfKind(machine, RecordKind::Branch, 1);
    EXPECT_TRUE(with_deps.inSlice[live_branch]);

    // ...and without, it does not, but the data chain is unaffected.
    SlicerOptions options;
    options.includeControlDeps = false;
    const auto without_deps = slice(machine, options);
    EXPECT_FALSE(without_deps.inSlice[live_branch]);
    const size_t store = nthOfKind(machine, RecordKind::Store);
    EXPECT_TRUE(without_deps.inSlice[store]);
    EXPECT_LT(without_deps.sliceInstructions, with_deps.sliceInstructions);
}

TEST(Slicer, NearestPrecedingBranchInstanceJoins)
{
    // Two dynamic instances of the same branch site; only the one that
    // actually guards the live store (the nearest preceding instance)
    // must join the slice.
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto func = machine.registerFunction("paint::fill");
    const uint64_t pixels = machine.alloc(4, "tile");
    const uint64_t scratch = machine.alloc(4, "scratch");

    auto iteration = [&](Ctx &ctx, uint64_t target, uint64_t flag_value) {
        TracedScope scope(ctx, func);
        Value flag = ctx.imm(flag_value);
        Value color = ctx.imm(0xABC);
        if (ctx.branchIf(flag))
            ctx.store(target, 4, color);
    };
    machine.post(tid, [&](Ctx &ctx) {
        iteration(ctx, scratch, 1); // guards a dead store
        iteration(ctx, pixels, 1);  // guards the live store
        iteration(ctx, scratch, 0); // skipping instance (creates the
                                    // diamond in the observed CFG)
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    // Only the instance guarding the live store joins: the pending-list
    // mechanism picks the nearest instance *preceding* the in-slice store,
    // so the later skipping instance and the earlier dead-store instance
    // both stay out.
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Branch, 0)]);
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::Branch, 1)]);
    EXPECT_FALSE(result.inSlice[nthOfKind(machine, RecordKind::Branch, 2)]);
}

TEST(Slicer, CrossThreadFlowThroughSharedMemory)
{
    Machine machine;
    const auto t_main = machine.addThread("main");
    const auto t_raster = machine.addThread("raster");
    const uint64_t display_item = machine.alloc(8, "item");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(t_main, [&](Ctx &ctx) {
        Value color = ctx.imm(0x00FF00);   // in slice (cross-thread)
        ctx.store(display_item, 4, color); // in slice
        ctx.machine().post(t_raster, [&](Ctx &rctx) {
            Value loaded = rctx.load(display_item, 4); // in slice
            ctx.machine(); // no-op; silence unused warnings
            rctx.store(pixels, 4, loaded);             // in slice
            const trace::MemRange ranges[] = {{pixels, 4}};
            rctx.marker(ranges);
        });
    });
    machine.run();

    const auto result = slice(machine);
    for (size_t i = 0; i < result.inSlice.size(); ++i)
        EXPECT_TRUE(result.inSlice[i]) << "record " << i;
}

TEST(Slicer, RegisterLivenessIsPerThread)
{
    // Two threads use the same virtual register id for unrelated values;
    // liveness of one thread's register must not leak into the other.
    Machine machine;
    const auto t0 = machine.addThread("a");
    const auto t1 = machine.addThread("b");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(t0, [&](Ctx &ctx) {
        Value dead = ctx.imm(1); // same reg id as the other thread's live
        (void)dead;
    });
    machine.post(t1, [&](Ctx &ctx) {
        Value live = ctx.imm(2);
        ctx.store(pixels, 4, live);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    // Thread a's imm shares the register id but must stay dead.
    const auto &records = machine.records();
    size_t t0_imm = records.size();
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].tid == t0 && records[i].kind == RecordKind::LoadImm)
            t0_imm = i;
    }
    ASSERT_LT(t0_imm, records.size());
    EXPECT_FALSE(result.inSlice[t0_imm]);
    EXPECT_EQ(result.sliceInstructions, 3u);
}

TEST(Slicer, ContributingCallAndRetJoinSlice)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto painter = machine.registerFunction("paint::run");
    const auto logger = machine.registerFunction("debug::log");
    const uint64_t pixels = machine.alloc(4, "tile");
    const uint64_t logbuf = machine.alloc(4, "log");

    machine.post(tid, [&](Ctx &ctx) {
        {
            TracedScope scope(ctx, painter);
            Value color = ctx.imm(0xF0F0F0);
            ctx.store(pixels, 4, color);
        }
        {
            TracedScope scope(ctx, logger);
            Value msg = ctx.imm(42);
            ctx.store(logbuf, 4, msg);
        }
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    const size_t painter_call = nthOfKind(machine, RecordKind::Call, 0);
    const size_t painter_ret = nthOfKind(machine, RecordKind::Ret, 0);
    const size_t logger_call = nthOfKind(machine, RecordKind::Call, 1);
    const size_t logger_ret = nthOfKind(machine, RecordKind::Ret, 1);
    EXPECT_TRUE(result.inSlice[painter_call]);
    EXPECT_TRUE(result.inSlice[painter_ret]);
    EXPECT_FALSE(result.inSlice[logger_call]);
    EXPECT_FALSE(result.inSlice[logger_ret]);
}

TEST(Slicer, IndirectCallTargetRegisterJoins)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const auto handler = machine.registerFunction("v8::Handler::run");
    const uint64_t fnptr_cell = machine.alloc(8, "code");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(tid, [&](Ctx &ctx) {
        // The function "pointer" is data in simulated memory.
        Value entry = ctx.imm(ctx.machine().functionEntry(handler));
        ctx.store(fnptr_cell, 8, entry);
        Value target = ctx.load(fnptr_cell, 8);
        {
            TracedScope scope(ctx, handler, target);
            Value color = ctx.imm(0x123456);
            ctx.store(pixels, 4, color);
        }
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    // The whole dispatch chain joins: entry imm, store, load, call.
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::LoadImm, 0)]);
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::Store, 0)]);
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::Load, 0)]);
    EXPECT_TRUE(result.inSlice[nthOfKind(machine, RecordKind::Call, 0)]);
}

TEST(Slicer, SyscallJoinsWhenItsWriteIsLive)
{
    // recvfrom writes resource bytes that end up in pixels: the syscall
    // must join the slice; the killed bytes stop the chase at the OS
    // boundary.
    Machine machine;
    const auto tid = machine.addThread("main");
    const uint64_t netbuf = machine.alloc(16, "net");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(tid, [&](Ctx &ctx) {
        ctx.machine().mem().write(netbuf, 4, 0xBEEF); // kernel-side fill
        Value r = sim::sysRecvfrom(ctx, netbuf, 16);
        (void)r;
        Value data = ctx.load(netbuf, 4);
        ctx.store(pixels, 4, data);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    const size_t sys = nthOfKind(machine, RecordKind::Syscall);
    EXPECT_TRUE(result.inSlice[sys]);
}

TEST(Slicer, UnrelatedSyscallStaysOutInPixelMode)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const uint64_t logbuf = machine.alloc(16, "log");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(tid, [&](Ctx &ctx) {
        Value r = sim::sysWrite(ctx, logbuf, 16); // console logging
        (void)r;
        Value color = ctx.imm(0xFFFFFF);
        ctx.store(pixels, 4, color);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto result = slice(machine);
    const size_t sys = nthOfKind(machine, RecordKind::Syscall);
    EXPECT_FALSE(result.inSlice[sys]);
}

TEST(Slicer, SyscallModeSeedsSyscallReads)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const uint64_t sendbuf = machine.alloc(16, "net");
    const uint64_t pixels = machine.alloc(4, "tile");

    machine.post(tid, [&](Ctx &ctx) {
        Value payload = ctx.imm(0x77);     // feeds sendto: in syscall slice
        ctx.store(sendbuf, 4, payload);
        Value r = sim::sysSendto(ctx, sendbuf, 16);
        (void)r;
        Value color = ctx.imm(0xFFFFFF);   // feeds pixels
        ctx.store(pixels, 4, color);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    SlicerOptions pixel_options;
    const auto pixel_result = slice(machine, pixel_options);

    SlicerOptions sys_options;
    sys_options.mode = CriteriaMode::Syscalls;
    const auto sys_result = slice(machine, sys_options);

    const size_t payload_imm = nthOfKind(machine, RecordKind::LoadImm, 0);
    const size_t payload_store = nthOfKind(machine, RecordKind::Store, 0);
    EXPECT_FALSE(pixel_result.inSlice[payload_imm]);
    EXPECT_TRUE(sys_result.inSlice[payload_imm]);
    EXPECT_TRUE(sys_result.inSlice[payload_store]);
    // Syscall mode sees every syscall; pixel content is not seeded there,
    // so the color chain stays out in this tiny program.
    const size_t color_imm = nthOfKind(machine, RecordKind::LoadImm, 1);
    EXPECT_TRUE(pixel_result.inSlice[color_imm]);
    EXPECT_FALSE(sys_result.inSlice[color_imm]);
}

TEST(Slicer, EndIndexWindowsTheAnalysis)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(4, "tile");

    Value early = ctx.imm(0x1);
    ctx.store(pixels, 4, early);
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);                       // index 2
    const size_t load_done = machine.records().size();

    Value late = ctx.imm(0x2);
    ctx.store(pixels, 4, late);
    ctx.marker(ranges);                       // beyond the window

    SlicerOptions options;
    options.endIndex = load_done;
    const auto result = slice(machine, options);
    EXPECT_EQ(result.instructionsAnalyzed, 3u);
    EXPECT_TRUE(result.inSlice[0]);
    EXPECT_TRUE(result.inSlice[1]);
    EXPECT_TRUE(result.inSlice[2]);
    EXPECT_FALSE(result.inSlice[3]);
    EXPECT_FALSE(result.inSlice[4]);
    EXPECT_FALSE(result.inSlice[5]);
}

TEST(Slicer, FullWindowSeesLaterOverwriteKillEarlierStore)
{
    // Same program as above without the window: the late store overwrites
    // the pixel, so the early chain is dead — but the early marker still
    // seeds its own criteria, keeping the early chain live.
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(4, "tile");

    Value early = ctx.imm(0x1);
    ctx.store(pixels, 4, early);
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);
    Value late = ctx.imm(0x2);
    ctx.store(pixels, 4, late);
    ctx.marker(ranges);

    const auto result = slice(machine);
    // Every marker is a criterion: both chains are useful (each produced
    // a displayed frame), which is exactly the paper's semantics.
    EXPECT_TRUE(result.inSlice[0]);
    EXPECT_TRUE(result.inSlice[1]);
    EXPECT_TRUE(result.inSlice[3]);
    EXPECT_TRUE(result.inSlice[4]);
}

TEST(Slicer, SelectPullsAllThreeOperands)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(4, "tile");

    Value cond = ctx.imm(1);
    Value a = ctx.imm(10);
    Value b = ctx.imm(20);
    Value chosen = ctx.select(cond, a, b);
    ctx.store(pixels, 4, chosen);
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    EXPECT_TRUE(result.inSlice[0]);
    EXPECT_TRUE(result.inSlice[1]);
    EXPECT_TRUE(result.inSlice[2]);
    EXPECT_TRUE(result.inSlice[3]);
}

TEST(Slicer, RegisterReuseDoesNotLeakLiveness)
{
    // A dead value that happens to reuse the register of a live value
    // (recycled by the allocator) must not join the slice: the later
    // write kills the register before the dead producer is reached.
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(4, "tile");

    trace::RegId first_reg;
    {
        Value dead = ctx.imm(0xDEAD); // record 0: dead
        first_reg = dead.reg();
    }
    Value live = ctx.imm(0x11FE); // reuses the same register
    ASSERT_EQ(live.reg(), first_reg);
    ctx.store(pixels, 4, live);
    const trace::MemRange ranges[] = {{pixels, 4}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    EXPECT_FALSE(result.inSlice[0]);
    EXPECT_TRUE(result.inSlice[1]);
}

TEST(Slicer, PeakDiagnosticsArePopulated)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    const uint64_t pixels = machine.alloc(256, "tile");
    Value v = ctx.imm(1);
    ctx.store(pixels, 4, v);
    const trace::MemRange ranges[] = {{pixels, 256}};
    ctx.marker(ranges);

    const auto result = slice(machine);
    EXPECT_GE(result.peakLiveMemBytes, 252u);
    EXPECT_EQ(result.slicePercent(), 100.0);
}

} // namespace
} // namespace slicer
} // namespace webslice
