/**
 * @file
 * Equivalence tests for the file-streaming profiler paths: the forward
 * reader, buildCfgsFromFile vs buildCfgs, and computeSliceFromFile vs
 * computeSlice must agree bit-for-bit, so huge traces can be profiled in
 * bounded memory without changing any result.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "slicer/slicer.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

/** A moderately interesting traced program saved to a file. */
struct SavedProgram
{
    Machine machine;
    std::string path;

    SavedProgram()
    {
        const auto t0 = machine.addThread("main");
        const auto t1 = machine.addThread("worker");
        const auto fn = machine.registerFunction("stream::work");
        const uint64_t shared = machine.alloc(64, "shared");
        const uint64_t pixels = machine.alloc(64, "pixels");
        const uint64_t junk = machine.alloc(64, "junk");

        machine.post(t0, [&, fn](Ctx &ctx) {
            TracedScope scope(ctx, fn);
            Value v = ctx.imm(41);
            Value i = ctx.imm(0);
            Value n = ctx.imm(5);
            while (true) {
                Value more = ctx.ltu(i, n);
                if (!ctx.branchIf(more))
                    break;
                v = ctx.add(v, i);
                i = ctx.addi(i, 1);
            }
            ctx.store(shared, 8, v);
            Value waste = ctx.muli(v, 99);
            ctx.store(junk, 8, waste);
        });
        machine.post(t1, [&, fn](Ctx &ctx) {
            TracedScope scope(ctx, fn);
            Value loaded = ctx.load(shared, 8);
            Value shifted = ctx.shli(loaded, 1);
            ctx.store(pixels, 8, shifted);
            const trace::MemRange ranges[] = {{pixels, 64}};
            ctx.marker(ranges);
        });
        machine.run();

        path = std::string(::testing::TempDir()) + "streamed.trc";
        trace::saveTrace(path, machine.records());
    }

    ~SavedProgram() { std::remove(path.c_str()); }
};

TEST(Streaming, ForwardReaderYieldsExactOrder)
{
    SavedProgram program;
    trace::ForwardTraceReader reader(program.path, /*block=*/7);
    trace::Record rec;
    size_t index = 0;
    while (reader.next(rec)) {
        ASSERT_LT(index, program.machine.records().size());
        EXPECT_EQ(rec.pc, program.machine.records()[index].pc);
        EXPECT_EQ(rec.addr, program.machine.records()[index].addr);
        ++index;
    }
    EXPECT_EQ(index, program.machine.records().size());
}

TEST(Streaming, FileCfgsMatchInMemoryCfgs)
{
    SavedProgram program;
    const auto memory_cfgs = graph::buildCfgs(
        program.machine.records(), program.machine.symtab());
    const auto file_cfgs = graph::buildCfgsFromFile(
        program.path, program.machine.symtab());

    EXPECT_EQ(memory_cfgs.funcOf, file_cfgs.funcOf);
    EXPECT_EQ(memory_cfgs.byFunc.size(), file_cfgs.byFunc.size());
    for (const auto &kv : memory_cfgs.byFunc) {
        const auto it = file_cfgs.byFunc.find(kv.first);
        ASSERT_NE(it, file_cfgs.byFunc.end());
        EXPECT_EQ(kv.second.nodeCount(), it->second.nodeCount());
        EXPECT_EQ(kv.second.succs, it->second.succs);
    }
}

TEST(Streaming, FileSliceMatchesInMemorySlice)
{
    SavedProgram program;
    const auto cfgs = graph::buildCfgs(program.machine.records(),
                                       program.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);

    const auto memory_slice = slicer::computeSlice(
        program.machine.records(), cfgs, deps,
        program.machine.pixelCriteria());
    const auto file_slice = slicer::computeSliceFromFile(
        program.path, cfgs, deps, program.machine.pixelCriteria());

    EXPECT_EQ(memory_slice.inSlice, file_slice.inSlice);
    EXPECT_EQ(memory_slice.sliceInstructions,
              file_slice.sliceInstructions);
    EXPECT_EQ(memory_slice.instructionsAnalyzed,
              file_slice.instructionsAnalyzed);
}

TEST(Streaming, FileSliceHonorsOptions)
{
    SavedProgram program;
    const auto cfgs = graph::buildCfgs(program.machine.records(),
                                       program.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);

    slicer::SlicerOptions options;
    options.mode = slicer::CriteriaMode::Syscalls;
    options.endIndex = program.machine.records().size() / 2;
    const auto memory_slice = slicer::computeSlice(
        program.machine.records(), cfgs, deps,
        program.machine.pixelCriteria(), options);
    const auto file_slice = slicer::computeSliceFromFile(
        program.path, cfgs, deps, program.machine.pixelCriteria(),
        options);
    EXPECT_EQ(memory_slice.inSlice, file_slice.inSlice);
}

TEST(MappedTrace, RecordsMatchLoadTrace)
{
    SavedProgram program;
    const auto loaded = trace::loadTrace(program.path);
    trace::MappedTrace mapped(program.path);

    ASSERT_EQ(mapped.count(), loaded.size());
    const auto span = mapped.records();
    ASSERT_EQ(span.size(), loaded.size());
    for (size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(span[i].pc, loaded[i].pc);
        EXPECT_EQ(span[i].addr, loaded[i].addr);
        EXPECT_EQ(span[i].kind, loaded[i].kind);
        EXPECT_EQ(mapped[i].tid, loaded[i].tid);
    }
}

TEST(MappedTrace, DrivesTheFullPipeline)
{
    // The mmap view must be a drop-in replacement for the loaded vector:
    // same CFGs, same slice.
    SavedProgram program;
    trace::MappedTrace mapped(program.path);

    const auto cfgs = graph::buildCfgs(mapped.records(),
                                       program.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    const auto mapped_slice = slicer::computeSlice(
        mapped.records(), cfgs, deps, program.machine.pixelCriteria());

    const auto ref_cfgs = graph::buildCfgs(program.machine.records(),
                                           program.machine.symtab());
    const auto ref_deps = graph::buildControlDeps(ref_cfgs);
    const auto ref_slice = slicer::computeSlice(
        program.machine.records(), ref_cfgs, ref_deps,
        program.machine.pixelCriteria());

    EXPECT_EQ(cfgs.funcOf, ref_cfgs.funcOf);
    EXPECT_EQ(mapped_slice.inSlice, ref_slice.inSlice);
}

TEST(Streaming, PrefetchingReadersMatchSynchronousReaders)
{
    // The double-buffered background-IO mode must yield exactly the
    // same record sequence as the synchronous mode, in both directions,
    // including block sizes that do not divide the trace length.
    SavedProgram program;
    for (const size_t block : {1ul, 7ul, 64ul, 1ul << 16}) {
        trace::ForwardTraceReader sync_fwd(program.path, block,
                                           /*prefetch=*/false);
        trace::ForwardTraceReader pre_fwd(program.path, block,
                                          /*prefetch=*/true);
        trace::Record a, b;
        while (true) {
            const bool more_sync = sync_fwd.next(a);
            const bool more_pre = pre_fwd.next(b);
            ASSERT_EQ(more_sync, more_pre) << "block=" << block;
            if (!more_sync)
                break;
            ASSERT_EQ(a.pc, b.pc);
            ASSERT_EQ(a.addr, b.addr);
        }

        trace::ReverseTraceReader sync_rev(program.path, block,
                                           /*prefetch=*/false);
        trace::ReverseTraceReader pre_rev(program.path, block,
                                          /*prefetch=*/true);
        while (true) {
            const bool more_sync = sync_rev.next(a);
            const bool more_pre = pre_rev.next(b);
            ASSERT_EQ(more_sync, more_pre) << "block=" << block;
            if (!more_sync)
                break;
            ASSERT_EQ(a.pc, b.pc);
            ASSERT_EQ(a.addr, b.addr);
        }
    }
}

TEST(Streaming, ReverseReaderReportsRemaining)
{
    SavedProgram program;
    trace::ReverseTraceReader reader(program.path, /*block=*/16);
    const uint64_t total = reader.count();
    EXPECT_EQ(reader.remaining(), total);
    trace::Record rec;
    uint64_t yielded = 0;
    while (reader.next(rec)) {
        ++yielded;
        EXPECT_EQ(reader.remaining(), total - yielded);
    }
    EXPECT_EQ(yielded, total);
    EXPECT_FALSE(reader.next(rec)); // stays exhausted
}

TEST(StreamingDeath, FeedMustDescend)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SavedProgram program;
    const auto cfgs = graph::buildCfgs(program.machine.records(),
                                       program.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    slicer::BackwardPass pass(cfgs, deps,
                              program.machine.pixelCriteria(), {},
                              program.machine.records().size());
    pass.feed(5, program.machine.records()[5]);
    EXPECT_DEATH(pass.feed(5, program.machine.records()[5]),
                 "descending");
}

TEST(StreamingDeath, AttributionLengthIsChecked)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SavedProgram program;
    const auto cfgs = graph::buildCfgs(program.machine.records(),
                                       program.machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    EXPECT_DEATH(slicer::BackwardPass(
                     cfgs, deps, program.machine.pixelCriteria(), {},
                     program.machine.records().size() + 1),
                 "attribution");
}

} // namespace
} // namespace webslice
