/**
 * @file
 * Scenario subsystem tests.
 *
 * The contracts under test, in order of importance:
 *  - .scn ports of the paper benchmarks schedule the identical task
 *    sequence as the hard-coded spec factories, so the recorded traces
 *    are record-for-record identical (the tentpole determinism claim).
 *  - The DSL round-trips: serialize -> parse -> serialize is a fixed
 *    point, for every verb.
 *  - Malformed scenarios die loudly with path:line context.
 *  - The generator is deterministic: same (seed, knobs) gives the same
 *    scenario text and the same trace digest; and its scenarios
 *    actually exercise the new verbs end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "scenario/generator.hh"
#include "scenario/run.hh"
#include "scenario/scenario.hh"
#include "support/metrics.hh"
#include "workloads/sites.hh"

#ifndef WEBSLICE_SOURCE_DIR
#error "tests/CMakeLists.txt must define WEBSLICE_SOURCE_DIR"
#endif

namespace webslice {
namespace {

using browser::UserAction;
using scenario::Knobs;
using scenario::Scenario;

std::string
scnPath(const std::string &stem)
{
    return std::string(WEBSLICE_SOURCE_DIR) + "/scenarios/" + stem;
}

/** Record-for-record equality with a useful first-mismatch message. */
void
expectSameTrace(const std::vector<trace::Record> &a,
                const std::vector<trace::Record> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const auto &ra = a[i];
        const auto &rb = b[i];
        const bool same = ra.addr == rb.addr && ra.pc == rb.pc &&
                          ra.aux == rb.aux && ra.tid == rb.tid &&
                          ra.kind == rb.kind && ra.flags == rb.flags &&
                          ra.rr0 == rb.rr0 && ra.rr1 == rb.rr1 &&
                          ra.rr2 == rb.rr2 && ra.rw == rb.rw;
        ASSERT_TRUE(same) << "first mismatch at record " << i << ": pc "
                          << ra.pc << " vs " << rb.pc << ", kind "
                          << static_cast<int>(ra.kind) << " vs "
                          << static_cast<int>(rb.kind);
    }
}

// ---- paper benchmark ports ---------------------------------------------

struct BenchmarkPort
{
    const char *scn;
    workloads::SiteSpec (*factory)();
};

class ScenarioPorts : public ::testing::TestWithParam<BenchmarkPort>
{};

TEST_P(ScenarioPorts, ScnFileMatchesFactoryBitForBit)
{
    const auto &port = GetParam();
    const Scenario parsed =
        scenario::parseScenarioFile(scnPath(port.scn));
    const auto spec_run = scenario::runSite(port.factory());
    const auto scn_run = scenario::runScenario(parsed);

    expectSameTrace(spec_run.records(), scn_run.records());
    EXPECT_EQ(spec_run.loadCompleteIndex, scn_run.loadCompleteIndex);
    EXPECT_EQ(spec_run.jsTotalBytes, scn_run.jsTotalBytes);
    EXPECT_EQ(spec_run.jsUsedBytes, scn_run.jsUsedBytes);
    EXPECT_EQ(spec_run.cssTotalBytes, scn_run.cssTotalBytes);
    EXPECT_EQ(spec_run.cssUsedBytes, scn_run.cssUsedBytes);
    EXPECT_EQ(spec_run.spec.name, scn_run.spec.name);
}

INSTANTIATE_TEST_SUITE_P(
    PaperBenchmarks, ScenarioPorts,
    ::testing::Values(
        BenchmarkPort{"amazon_mobile.scn", workloads::amazonMobileSpec},
        BenchmarkPort{"bing.scn", workloads::bingSpec}),
    [](const auto &info) {
        std::string name = info.param.scn;
        return name.substr(0, name.find('.'));
    });

// The desktop/maps ports record multi-minute traces; CI runs all four
// through cmp on the recorded files instead. Here we still verify their
// .scn files parse back to the exact factory spec via the serializer.
TEST(ScenarioPorts, HeavyPortsSerializeIdentically)
{
    const struct
    {
        const char *scn;
        workloads::SiteSpec (*factory)();
    } heavy[] = {
        {"amazon_desktop.scn", workloads::amazonDesktopSpec},
        {"maps.scn", workloads::googleMapsSpec},
    };
    for (const auto &port : heavy) {
        std::ifstream in(scnPath(port.scn));
        ASSERT_TRUE(in.is_open()) << port.scn;
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        EXPECT_EQ(text, scenario::serializeScenario(
                            scenario::scenarioFromSpec(port.factory())))
            << port.scn;
    }
}

// ---- DSL round-trip ----------------------------------------------------

TEST(ScenarioDsl, EveryVerbRoundTrips)
{
    const std::string text = "scenario \"all verbs\"\n"
                             "site {\n"
                             "  url https://v.example/\n"
                             "  seed 0x9\n"
                             "  search_box 1\n"
                             "}\n"
                             "tab {\n"
                             "  url https://t.example/\n"
                             "  seed 0xa\n"
                             "  session 3000\n"
                             "}\n"
                             "session 5000\n"
                             "workers 2\n"
                             "scroll 1000 250\n"
                             "click 1500 btn-menu\n"
                             "key 1800 searchbox\n"
                             "fetch 2000 4096 0.75\n"
                             "type 2200 searchbox 3 120\n"
                             "partialnav 2600 sec-0 2 3 1500 0.8\n"
                             "raf 3000 800 util0\n"
                             "worker 3300 1 64\n"
                             "click 3500 btn-menu tab=1\n";
    const Scenario parsed = scenario::parseScenarioText(text, "inline");
    const std::string canon = scenario::serializeScenario(parsed);
    // Parsing the canonical form back is a fixed point.
    EXPECT_EQ(canon, scenario::serializeScenario(
                         scenario::parseScenarioText(canon, "canon")));

    EXPECT_EQ(parsed.name, "all verbs");
    EXPECT_EQ(parsed.site.seed, 0x9u);
    ASSERT_EQ(parsed.extraTabs.size(), 1u);
    EXPECT_EQ(parsed.extraTabs[0].seed, 0xAu);
    EXPECT_EQ(parsed.extraTabs[0].sessionMs, 3000u);
    EXPECT_EQ(parsed.workers, 2);
    EXPECT_EQ(parsed.site.sessionMs, 5000u);
    // Legacy verbs stay in site.actions, new verbs in extraActions.
    ASSERT_EQ(parsed.site.actions.size(), 3u);
    EXPECT_EQ(parsed.site.actions[0].kind, UserAction::Kind::Scroll);
    EXPECT_EQ(parsed.site.lazyJsBytes, 4096u);
    EXPECT_EQ(parsed.site.lazyJsAtMs, 2000u);
    EXPECT_DOUBLE_EQ(parsed.site.lazyJsLoadFraction, 0.75);
    ASSERT_EQ(parsed.extraActions.size(), 5u);
    EXPECT_EQ(parsed.extraActions[0].kind, UserAction::Kind::Type);
    EXPECT_EQ(parsed.extraActions[0].count, 3);
    EXPECT_EQ(parsed.extraActions[0].intervalMs, 120u);
    EXPECT_EQ(parsed.extraActions[1].kind, UserAction::Kind::PartialNav);
    EXPECT_EQ(parsed.extraActions[1].fragSections, 2);
    EXPECT_EQ(parsed.extraActions[1].bytes, 1500u);
    EXPECT_DOUBLE_EQ(parsed.extraActions[1].loadFraction, 0.8);
    EXPECT_EQ(parsed.extraActions[2].kind, UserAction::Kind::RafLoop);
    EXPECT_EQ(parsed.extraActions[2].fnName, "util0");
    EXPECT_EQ(parsed.extraActions[3].kind, UserAction::Kind::WorkerTask);
    EXPECT_EQ(parsed.extraActions[3].workerIndex, 1);
    EXPECT_EQ(parsed.extraActions[4].kind, UserAction::Kind::Click);
    EXPECT_EQ(parsed.extraActions[4].tab, 1);
}

TEST(ScenarioDsl, LoadOnlyConsidersTheWholeScenario)
{
    // The .meta loadOnly flag windows every downstream analysis at
    // loadCompleteIndex, so it must only be set when *nothing* is
    // scheduled after the load — including the new-verb actions that
    // live outside site.actions.
    Scenario bare;
    EXPECT_TRUE(scenario::isLoadOnly(bare));

    Scenario with_extra = bare;
    UserAction raf;
    raf.kind = UserAction::Kind::RafLoop;
    with_extra.extraActions.push_back(raf);
    EXPECT_FALSE(scenario::isLoadOnly(with_extra));

    Scenario with_legacy = bare;
    with_legacy.site.actions.emplace_back();
    EXPECT_FALSE(scenario::isLoadOnly(with_legacy));

    Scenario with_lazy = bare;
    with_lazy.site.lazyJsBytes = 512;
    EXPECT_FALSE(scenario::isLoadOnly(with_lazy));

    Scenario with_workers = bare;
    with_workers.workers = 1;
    EXPECT_FALSE(scenario::isLoadOnly(with_workers));

    Scenario with_tab = bare;
    with_tab.extraTabs.emplace_back();
    EXPECT_FALSE(scenario::isLoadOnly(with_tab));
}

TEST(ScenarioDsl, RelativeTimesFollowTheCursor)
{
    const Scenario sc = scenario::parseScenarioText(
        "site {\n  seed 1\n}\n"
        "click 1000 a\n"
        "wait 500\n"
        "click +0 b\n"    // 1500
        "scroll +250 10\n" // 1750
        "click 4000 c\n"
        "click +100 d\n", // 4100
        "inline");
    ASSERT_EQ(sc.site.actions.size(), 5u);
    EXPECT_EQ(sc.site.actions[1].atMs, 1500u);
    EXPECT_EQ(sc.site.actions[2].atMs, 1750u);
    EXPECT_EQ(sc.site.actions[4].atMs, 4100u);
}

// ---- malformed scenarios die with path:line context --------------------

using ScenarioDeath = ::testing::Test;

void
expectParseDeath(const std::string &text, const std::string &pattern)
{
    EXPECT_EXIT(scenario::parseScenarioText(text, "bad.scn"),
                ::testing::ExitedWithCode(1), pattern);
}

TEST(ScenarioDeath, UnknownDirectiveNamesFileAndLine)
{
    expectParseDeath("frobnicate 100\n", "bad.scn:1:.*frobnicate");
}

TEST(ScenarioDeath, UnknownSiteKeyNamesFileAndLine)
{
    expectParseDeath("site {\n  volume 11\n}\n", "bad.scn:2:.*volume");
}

TEST(ScenarioDeath, MalformedNumberNamesFileAndLine)
{
    expectParseDeath("click 12x4 btn-menu\n", "bad.scn:1:.*12x4");
}

TEST(ScenarioDeath, SecondFetchIsRejected)
{
    expectParseDeath("fetch 100 10 0.5\nfetch 200 10 0.5\n",
                     "bad.scn:2:.*one 'fetch'");
}

TEST(ScenarioDeath, UndeclaredWorkerIsRejected)
{
    expectParseDeath("worker 100 0 16\n",
                     "bad.scn:1:.*worker 0 not declared");
}

TEST(ScenarioDeath, UndeclaredTabIsRejected)
{
    expectParseDeath("click 100 a tab=2\n", "bad.scn:1:.*tab=2");
}

TEST(ScenarioDeath, UnterminatedBlockIsRejected)
{
    expectParseDeath("site {\n  seed 1\n", "bad.scn:.*unterminated");
}

TEST(ScenarioDeath, MissingFileNamesPath)
{
    EXPECT_EXIT(scenario::parseScenarioFile("/no/such/file.scn"),
                ::testing::ExitedWithCode(1), "/no/such/file.scn");
}

// ---- generator determinism ---------------------------------------------

TEST(ScenarioGenerator, SameSeedAndKnobsAreByteIdentical)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Knobs knobs;
        knobs.jsHotness = seed % 2 ? scenario::Level::Hi
                                   : scenario::Level::Lo;
        knobs.domDepth = seed % 3 ? scenario::Level::Mid
                                  : scenario::Level::Hi;
        const auto a = scenario::generateScenario(seed, knobs);
        const auto b = scenario::generateScenario(seed, knobs);
        EXPECT_EQ(scenario::serializeScenario(a),
                  scenario::serializeScenario(b))
            << "seed " << seed;
    }
}

TEST(ScenarioGenerator, DifferentSeedsDiffer)
{
    const Knobs knobs;
    EXPECT_NE(
        scenario::serializeScenario(scenario::generateScenario(1, knobs)),
        scenario::serializeScenario(scenario::generateScenario(2, knobs)));
}

TEST(ScenarioGenerator, GeneratedSceneryRunsDeterministically)
{
    // Small/lo so the test stays fast: run the same generated scenario
    // twice (via its serialized text, like the CLI does) and demand the
    // identical trace; the in-memory records are what the trace file
    // serializes, so equal records == equal .trc bytes.
    Knobs knobs;
    knobs.domDepth = scenario::Level::Lo;
    knobs.cssVolume = scenario::Level::Lo;
    knobs.jsHotness = scenario::Level::Lo;
    knobs.images = scenario::Level::Lo;
    const auto sc = scenario::generateScenario(7, knobs);
    const std::string text = scenario::serializeScenario(sc);
    const auto run1 = scenario::runScenario(
        scenario::parseScenarioText(text, "gen7"));
    const auto run2 = scenario::runScenario(
        scenario::parseScenarioText(text, "gen7"));
    expectSameTrace(run1.records(), run2.records());
    EXPECT_GT(run1.records().size(), 10000u);
}

TEST(ScenarioGenerator, ReparsedScnReproducesTheInMemoryTrace)
{
    // `webslice-scenario sweep` records the in-memory scenario and
    // writes its .scn beside the artifacts, so the .scn must describe
    // the *same* session. Pick a lo-knob seed whose partialnav carries
    // a fragment script (generator loadFraction 0.8, not the parser
    // default 0.95): a serializer that dropped the fraction would make
    // the reparsed run execute a different script.
    Knobs knobs;
    knobs.domDepth = scenario::Level::Lo;
    knobs.cssVolume = scenario::Level::Lo;
    knobs.jsHotness = scenario::Level::Lo;
    knobs.images = scenario::Level::Lo;
    Scenario sc;
    bool has_frag_script = false;
    for (uint64_t seed = 1; seed <= 16 && !has_frag_script; ++seed) {
        sc = scenario::generateScenario(seed, knobs);
        for (const auto &action : sc.extraActions) {
            has_frag_script |=
                action.kind == UserAction::Kind::PartialNav &&
                action.bytes > 0;
        }
    }
    ASSERT_TRUE(has_frag_script)
        << "no seed in 1..16 attaches a fragment script";

    const auto direct = scenario::runScenario(sc);
    const auto reparsed = scenario::runScenario(
        scenario::parseScenarioText(scenario::serializeScenario(sc),
                                    "reparsed"));
    expectSameTrace(direct.records(), reparsed.records());
}

TEST(ScenarioGenerator, KnobParsingRejectsJunk)
{
    Knobs knobs;
    EXPECT_EXIT(scenario::applyKnob(knobs, "js_hotness", "max"),
                ::testing::ExitedWithCode(1), "lo, mid, or hi");
    EXPECT_EXIT(scenario::applyKnob(knobs, "bogus", "hi"),
                ::testing::ExitedWithCode(1), "unknown knob 'bogus'");
    EXPECT_EXIT(scenario::applyKnob(knobs, "workers", "99"),
                ::testing::ExitedWithCode(1), "0\\.\\.8");
}

// ---- new verbs actually execute ----------------------------------------

workloads::SiteSpec
tinySpec()
{
    workloads::SiteSpec spec;
    spec.name = "tiny";
    spec.url = "https://tiny.example/";
    spec.seed = 0x5;
    spec.page.sections = 1;
    spec.page.itemsPerSection = 1;
    spec.page.hiddenMenus = 1;
    spec.js.targetBytes = 3000;
    spec.css.targetBytes = 1500;
    spec.sessionMs = 2500;
    return spec;
}

TEST(ScenarioVerbs, PartialNavSwapsTheSubtreeAndRunsItsScript)
{
    Scenario sc = scenario::scenarioFromSpec(tinySpec());
    UserAction nav;
    nav.kind = UserAction::Kind::PartialNav;
    nav.atMs = 1200;
    nav.targetId = "sec-0";
    nav.fragSections = 2;
    nav.fragItems = 2;
    nav.bytes = 1200;
    sc.extraActions.push_back(nav);

    const auto base = scenario::runSite(tinySpec());
    const auto run = scenario::runScenario(sc);
    EXPECT_EQ(run.tab->partialNavsCompleted(), 1u);
    // The swap re-parses, restyles, and re-lays-out the subtree, and
    // the fragment script runs: strictly more work than the bare spec.
    EXPECT_GT(run.records().size(), base.records().size());
    EXPECT_GT(run.jsTotalBytes, base.jsTotalBytes);
}

TEST(ScenarioVerbs, RafLoopTicksAtVsyncCadence)
{
    Scenario sc = scenario::scenarioFromSpec(tinySpec());
    UserAction raf;
    raf.kind = UserAction::Kind::RafLoop;
    raf.atMs = 1000;
    raf.durationMs = 160; // 10 ticks at the 16 ms default vsync
    raf.fnName = "util0";
    sc.extraActions.push_back(raf);

    const auto run = scenario::runScenario(sc);
    EXPECT_EQ(run.tab->rafTicksFired(), 10u);
}

TEST(ScenarioVerbs, WorkerBurstsCompleteAndAddThreads)
{
    Scenario sc = scenario::scenarioFromSpec(tinySpec());
    sc.workers = 2;
    for (int w = 0; w < 2; ++w) {
        UserAction task;
        task.kind = UserAction::Kind::WorkerTask;
        task.atMs = 1000 + 200 * w;
        task.workerIndex = w;
        task.units = 32;
        sc.extraActions.push_back(task);
    }

    const auto run = scenario::runScenario(sc);
    EXPECT_EQ(run.tab->workerCount(), 2u);
    EXPECT_EQ(run.tab->workerTasksCompleted(), 2u);
    // Worker threads are visible in the run's thread table.
    const auto names = run.threadNames();
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "DedicatedWorker thread 0"),
              names.end());
}

TEST(ScenarioVerbs, TypeBurstFiresEveryKeystroke)
{
    workloads::SiteSpec spec = tinySpec();
    spec.page.searchBox = true;
    Scenario sc = scenario::scenarioFromSpec(spec);
    UserAction burst;
    burst.kind = UserAction::Kind::Type;
    burst.atMs = 1000;
    burst.targetId = "searchbox";
    burst.count = 4;
    burst.intervalMs = 100;
    sc.extraActions.push_back(burst);

    workloads::SiteSpec manual = spec;
    for (int k = 0; k < 4; ++k) {
        manual.actions.push_back({UserAction::Kind::Key,
                                  1000 + 100 * static_cast<uint64_t>(k),
                                  0, "searchbox"});
    }

    // A type burst is sugar for count spaced keystrokes.
    const auto burst_run = scenario::runScenario(sc);
    const auto manual_run = scenario::runSite(manual);
    expectSameTrace(burst_run.records(), manual_run.records());
}

TEST(ScenarioVerbs, ExtraTabsShareTheMachine)
{
    Scenario sc = scenario::scenarioFromSpec(tinySpec());
    workloads::SiteSpec second = tinySpec();
    second.name = "tiny [tab 1]";
    second.seed = 0x6;
    sc.extraTabs.push_back(second);

    const auto run = scenario::runScenario(sc);
    ASSERT_EQ(run.extraTabs.size(), 1u);
    EXPECT_TRUE(run.extraTabs[0]->loadComplete());
    // Both documents were parsed on the one shared machine.
    EXPECT_GT(run.extraTabs[0]->pipelineUpdates(), 0u);
    const auto solo = scenario::runSite(tinySpec());
    EXPECT_GT(run.records().size(), solo.records().size());
}

} // namespace
} // namespace webslice
