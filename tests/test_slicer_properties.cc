/**
 * @file
 * Property-style tests of the profiler: invariants that must hold for
 * any trace, checked over parameterized program families — determinism,
 * slice-subset bounds, criteria monotonicity, per-thread isolation, and
 * mode relationships.
 */

#include <gtest/gtest.h>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"
#include "support/rng.hh"

namespace webslice {
namespace slicer {
namespace {

using graph::buildCfgs;
using graph::buildControlDeps;
using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

/**
 * A program family: `chains` independent computation chains on `threads`
 * threads, each ending in a store to its own buffer; chain i becomes a
 * criterion iff i < live_chains. Every chain does data-dependent control
 * flow so control dependences are exercised.
 */
struct ChainProgram
{
    Machine machine;
    std::vector<uint64_t> buffers;
    std::vector<trace::ThreadId> tids;

    ChainProgram(int chains, int threads, int live_chains, uint64_t seed)
    {
        Rng rng(seed);
        for (int t = 0; t < threads; ++t)
            tids.push_back(machine.addThread("t" + std::to_string(t)));
        const auto fn = machine.registerFunction("prop::chain");

        for (int c = 0; c < chains; ++c)
            buffers.push_back(machine.alloc(64, "chain"));

        for (int c = 0; c < chains; ++c) {
            const uint64_t buffer = buffers[c];
            const uint64_t iterations = rng.below(6) + 2;
            const uint64_t toggle = rng.below(2);
            machine.post(tids[c % threads],
                         [this, fn, buffer, iterations, toggle,
                          c](Ctx &ctx) {
                TracedScope scope(ctx, fn);
                Value acc = ctx.imm(static_cast<uint64_t>(c) + 1);
                Value i = ctx.imm(0);
                Value n = ctx.imm(iterations);
                while (true) {
                    Value more = ctx.ltu(i, n);
                    if (!ctx.branchIf(more))
                        break;
                    acc = ctx.add(acc, i);
                    i = ctx.addi(i, 1);
                }
                Value flag = ctx.imm(toggle);
                if (ctx.branchIf(flag))
                    acc = ctx.muli(acc, 3);
                ctx.store(buffer, 8, acc);
            });
        }
        machine.post(tids[0], [this, live_chains](Ctx &ctx) {
            for (int c = 0; c < live_chains; ++c) {
                const trace::MemRange ranges[] = {{buffers[c], 8}};
                ctx.marker(ranges);
            }
        });
        machine.run();
    }

    SliceResult
    slice(const SlicerOptions &options = {}) const
    {
        const auto cfgs =
            buildCfgs(machine.records(), machine.symtab());
        const auto deps = buildControlDeps(cfgs);
        return computeSlice(machine.records(), cfgs, deps,
                            machine.pixelCriteria(), options);
    }
};

struct ChainParams
{
    int chains;
    int threads;
    int live;
    uint64_t seed;
};

class ChainSweep : public ::testing::TestWithParam<ChainParams>
{
};

TEST_P(ChainSweep, SliceIsBoundedAndExcludesPseudoRecords)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    const auto result = program.slice();

    EXPECT_LE(result.sliceInstructions, result.instructionsAnalyzed);
    ASSERT_EQ(result.inSlice.size(), program.machine.records().size());
    for (size_t i = 0; i < result.inSlice.size(); ++i) {
        if (program.machine.records()[i].isPseudo()) {
            EXPECT_FALSE(result.inSlice[i]) << "pseudo record " << i;
        }
    }
}

TEST_P(ChainSweep, DeterministicAcrossRepeatedPasses)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    const auto first = program.slice();
    const auto second = program.slice();
    EXPECT_EQ(first.inSlice, second.inSlice);
    EXPECT_EQ(first.sliceInstructions, second.sliceInstructions);
}

TEST_P(ChainSweep, IdenticalProgramsProduceIdenticalTraces)
{
    const auto p = GetParam();
    ChainProgram a(p.chains, p.threads, p.live, p.seed);
    ChainProgram b(p.chains, p.threads, p.live, p.seed);
    ASSERT_EQ(a.machine.records().size(), b.machine.records().size());
    for (size_t i = 0; i < a.machine.records().size(); ++i) {
        EXPECT_EQ(a.machine.records()[i].pc,
                  b.machine.records()[i].pc);
        EXPECT_EQ(a.machine.records()[i].addr,
                  b.machine.records()[i].addr);
    }
}

TEST_P(ChainSweep, MoreCriteriaNeverShrinkTheSlice)
{
    const auto p = GetParam();
    if (p.live >= p.chains)
        GTEST_SKIP() << "no headroom for extra criteria";
    ChainProgram fewer(p.chains, p.threads, p.live, p.seed);
    ChainProgram more(p.chains, p.threads, p.live + 1, p.seed);
    // The traces differ only in the extra marker at the very end, so the
    // slice counts are directly comparable.
    EXPECT_GE(more.slice().sliceInstructions,
              fewer.slice().sliceInstructions);
}

TEST_P(ChainSweep, DeadChainsStayOut)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    const auto result = program.slice();

    // Every store to a non-criteria buffer must be out of the slice;
    // every store to a criteria buffer must be in it.
    const auto &records = program.machine.records();
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].kind != trace::RecordKind::Store)
            continue;
        for (int c = 0; c < p.chains; ++c) {
            if (records[i].addr != program.buffers[c])
                continue;
            if (c < p.live) {
                EXPECT_TRUE(result.inSlice[i]) << "live chain " << c;
            } else {
                EXPECT_FALSE(result.inSlice[i]) << "dead chain " << c;
            }
        }
    }
}

TEST_P(ChainSweep, NoCriteriaMeansEmptySlice)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, /*live_chains=*/0, p.seed);
    const auto result = program.slice();
    EXPECT_EQ(result.sliceInstructions, 0u);
}

TEST_P(ChainSweep, AblationsOnlyRemoveWork)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    const auto full = program.slice();

    SlicerOptions no_control;
    no_control.includeControlDeps = false;
    EXPECT_LE(program.slice(no_control).sliceInstructions,
              full.sliceInstructions);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, ChainSweep,
    ::testing::Values(ChainParams{1, 1, 1, 11}, ChainParams{4, 1, 2, 12},
                      ChainParams{4, 2, 2, 13}, ChainParams{6, 3, 3, 14},
                      ChainParams{8, 2, 1, 15}, ChainParams{8, 4, 8, 16},
                      ChainParams{3, 3, 0, 17},
                      ChainParams{12, 2, 6, 18}));

// ---- windowing properties ---------------------------------------------------

TEST(SlicerWindow, NothingBeyondTheWindowJoins)
{
    ChainProgram program(4, 2, 4, 99);
    SlicerOptions options;
    options.endIndex = program.machine.records().size() / 2;
    const auto result = program.slice(options);
    for (size_t i = options.endIndex; i < result.inSlice.size(); ++i)
        EXPECT_FALSE(result.inSlice[i]);
}

TEST(SlicerWindow, WindowCountsOnlyWindowInstructions)
{
    ChainProgram program(4, 2, 4, 100);
    SlicerOptions options;
    options.endIndex = program.machine.records().size() / 3;
    const auto result = program.slice(options);
    uint64_t expected = 0;
    for (size_t i = 0; i < options.endIndex; ++i) {
        if (!program.machine.records()[i].isPseudo())
            ++expected;
    }
    EXPECT_EQ(result.instructionsAnalyzed, expected);
}

// ---- syscall-mode properties --------------------------------------------------

TEST(SyscallMode, ContainsPixelSliceWhenPixelsLeaveThroughSyscalls)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    const uint64_t pixels = machine.alloc(32, "pixels");
    machine.post(tid, [&](Ctx &ctx) {
        Value color = ctx.imm(0xABCDEF);
        ctx.store(pixels, 4, color);
        const trace::MemRange ranges[] = {{pixels, 32}};
        ctx.marker(ranges);
        // The frame leaves through the kernel, as the compositor's
        // submit does.
        Value rc = sim::sysSendto(ctx, pixels, 32);
        (void)rc;
    });
    machine.run();

    const auto cfgs = buildCfgs(machine.records(), machine.symtab());
    const auto deps = buildControlDeps(cfgs);
    const auto pixel = computeSlice(machine.records(), cfgs, deps,
                                    machine.pixelCriteria());
    SlicerOptions sys_options;
    sys_options.mode = CriteriaMode::Syscalls;
    const auto sys = computeSlice(machine.records(), cfgs, deps,
                                  machine.pixelCriteria(), sys_options);

    for (size_t i = 0; i < pixel.inSlice.size(); ++i) {
        if (machine.records()[i].kind == trace::RecordKind::Marker)
            continue; // markers are criteria only in pixel mode
        if (pixel.inSlice[i]) {
            EXPECT_TRUE(sys.inSlice[i]) << "record " << i;
        }
    }
}

} // namespace
} // namespace slicer
} // namespace webslice
