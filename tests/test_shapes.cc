/**
 * @file
 * Regression locks on the paper's qualitative findings, on scaled-down
 * versions of the real benchmark specs (fast enough for ctest). These are
 * the claims the reproduction stands on; if a substrate change breaks an
 * ordering, this suite — not a bench rerun — should catch it.
 */

#include <gtest/gtest.h>

#include "analysis/categorize.hh"
#include "analysis/thread_stats.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "scenario/run.hh"
#include "workloads/sites.hh"

namespace webslice {
namespace {

/** Shrink a paper spec's content so the test runs in well under a
 *  second while keeping its structural knobs. */
workloads::SiteSpec
shrink(workloads::SiteSpec spec)
{
    spec.js.targetBytes = std::min<uint64_t>(spec.js.targetBytes, 20000);
    spec.css.targetBytes =
        std::min<uint64_t>(spec.css.targetBytes, 7000);
    spec.page.sections = std::min(spec.page.sections, 3);
    spec.page.itemsPerSection = std::min(spec.page.itemsPerSection, 3);
    spec.imageBytes = 512;
    return spec;
}

struct ShapeRun
{
    workloads::RunResult run;
    analysis::SliceBreakdown stats;
    slicer::SliceResult slice;

    explicit ShapeRun(const workloads::SiteSpec &spec)
        : run(scenario::runSite(spec))
    {
        const auto cfgs = graph::buildCfgs(run.records(),
                                           run.machine->symtab());
        const auto deps = graph::buildControlDeps(cfgs);
        slicer::SlicerOptions options;
        if (spec.actions.empty())
            options.endIndex = run.loadCompleteIndex;
        slice = slicer::computeSlice(run.records(), cfgs, deps,
                                     run.machine->pixelCriteria(),
                                     options);
        stats = analysis::computeThreadStats(
            run.records(), slice.inSlice, run.threadNames(),
            options.endIndex);
    }

    double main() const { return stats.perThread[0].slicePercent(); }
    double compositor() const
    {
        return stats.perThread[1].slicePercent();
    }

    double
    rasterAverage() const
    {
        double sum = 0;
        int count = 0;
        for (size_t t = 2; t < stats.perThread.size(); ++t) {
            if (stats.perThread[t].name.rfind("CompositorTile", 0) != 0)
                continue;
            sum += stats.perThread[t].slicePercent();
            ++count;
        }
        return count ? sum / count : 0.0;
    }
};

TEST(PaperShapes, SubstantialFractionOfWorkIsUnnecessary)
{
    // The paper's headline: a large share of executed instructions never
    // reaches the pixels.
    ShapeRun amazon(shrink(workloads::amazonDesktopSpec()));
    EXPECT_GT(amazon.slice.slicePercent(), 25.0);
    EXPECT_LT(amazon.slice.slicePercent(), 75.0);
}

TEST(PaperShapes, MainThreadOutslicesTheCompositor)
{
    ShapeRun amazon(shrink(workloads::amazonDesktopSpec()));
    EXPECT_GT(amazon.main(), amazon.compositor());
}

TEST(PaperShapes, MobileRasterizersAreFarBelowDesktop)
{
    ShapeRun desktop(shrink(workloads::amazonDesktopSpec()));
    ShapeRun mobile(shrink(workloads::amazonMobileSpec()));
    EXPECT_LT(mobile.rasterAverage(), desktop.rasterAverage());
    EXPECT_LT(mobile.rasterAverage(), 30.0);
}

TEST(PaperShapes, JavaScriptDominatesLoadTimeWaste)
{
    ShapeRun amazon(shrink(workloads::amazonDesktopSpec()));
    const auto cfgs = graph::buildCfgs(amazon.run.records(),
                                       amazon.run.machine->symtab());
    const auto dist = analysis::categorizeUnnecessary(
        amazon.run.records(), amazon.slice.inSlice, cfgs,
        amazon.run.machine->symtab(),
        analysis::Categorizer::chromiumDefault(),
        amazon.run.loadCompleteIndex);

    const double js = dist.sharePercent("JavaScript");
    for (const auto &category : analysis::Categorizer::reportOrder()) {
        if (category == "JavaScript")
            continue;
        EXPECT_GE(js, dist.sharePercent(category)) << category;
    }
}

TEST(PaperShapes, UnusedBytesStayInThePaperBand)
{
    // Table I: 40-60% of JS+CSS bytes unused after load.
    for (const auto &spec : workloads::paperBenchmarks()) {
        auto small = shrink(spec);
        small.actions.clear();
        small.lazyJsBytes = 0;
        small.sessionMs = 400;
        const auto run = scenario::runSite(small);
        const double unused =
            100.0 * static_cast<double>(run.unusedBytes()) /
            static_cast<double>(run.totalBytes());
        EXPECT_GT(unused, 35.0) << spec.name;
        EXPECT_LT(unused, 65.0) << spec.name;
    }
}

TEST(PaperShapes, BrowsingLowersTheUnusedShare)
{
    auto load_spec = shrink(workloads::withoutBrowseSession(
        workloads::bingSpec()));
    auto browse_spec = shrink(workloads::bingSpec());
    const auto load_run = scenario::runSite(load_spec);
    const auto browse_run = scenario::runSite(browse_spec);
    const double load_unused =
        static_cast<double>(load_run.unusedBytes()) /
        static_cast<double>(load_run.totalBytes());
    const double browse_unused =
        static_cast<double>(browse_run.unusedBytes()) /
        static_cast<double>(browse_run.totalBytes());
    EXPECT_LT(browse_unused, load_unused);
}

TEST(PaperShapes, SyscallAndPixelCriteriaAgree)
{
    ShapeRun amazon(shrink(workloads::amazonDesktopSpec()));
    const auto cfgs = graph::buildCfgs(amazon.run.records(),
                                       amazon.run.machine->symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    slicer::SlicerOptions options;
    options.mode = slicer::CriteriaMode::Syscalls;
    options.endIndex = amazon.run.loadCompleteIndex;
    const auto sys = slicer::computeSlice(
        amazon.run.records(), cfgs, deps,
        amazon.run.machine->pixelCriteria(), options);
    EXPECT_NEAR(sys.slicePercent(), amazon.slice.slicePercent(), 6.0);
}

} // namespace
} // namespace webslice
