/**
 * @file
 * Integration tests for the browser substrate: HTML parsing, CSS
 * resolution, the JS engine, layout, paint, raster, the compositor, and
 * a small end-to-end tab session sliced with the profiler.
 */

#include <gtest/gtest.h>

#include "browser/css.hh"
#include "browser/html_parser.hh"
#include "browser/js.hh"
#include "browser/layout.hh"
#include "browser/tab.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"

namespace webslice {
namespace browser {
namespace {

using sim::Ctx;
using sim::Machine;

/** Load a string into simulated memory as a ready Resource. */
Resource
makeResource(Machine &machine, std::string content, ResourceType type)
{
    Resource res;
    res.type = type;
    res.content = std::move(content);
    res.size = res.content.size();
    const uint64_t padded = (res.size + 15) & ~7ull;
    res.addr = machine.alloc(padded, "test-resource");
    machine.mem().writeBytes(res.addr, res.content.data(), res.size);
    res.loaded = true;
    return res;
}

/** Fixture with a machine, one main thread, and a trace log. */
class BrowserTest : public ::testing::Test
{
  protected:
    BrowserTest()
        : tid(machine.addThread("main")), ctx(machine, tid),
          traceLog(machine)
    {
    }

    Machine machine;
    trace::ThreadId tid;
    Ctx ctx;
    TraceLog traceLog;
};

// ---- HTML ------------------------------------------------------------------

TEST_F(BrowserTest, ParsesElementsAndAttributes)
{
    const Resource html = makeResource(
        machine,
        "<div id=hero class=big>hello world"
        "<span class=tag>x</span></div>"
        "<img src=pic.img w=120 h=80>",
        ResourceType::Html);

    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(ctx, html);

    // body + div + text + span + text + img
    EXPECT_EQ(doc->elementCount(), 6u);
    Element *hero = doc->byIdHash(hashString("hero"));
    ASSERT_NE(hero, nullptr);
    EXPECT_EQ(hero->tag, Tag::Div);
    EXPECT_EQ(hero->className, "big");
    EXPECT_EQ(hero->children.size(), 2u); // text + span

    // Attributes made it into simulated memory.
    EXPECT_EQ(machine.mem().read(hero->addr + ElementFields::kIdHash, 4),
              hashString("hero"));
    EXPECT_EQ(machine.mem().read(hero->addr + ElementFields::kTag, 4),
              static_cast<uint32_t>(Tag::Div));

    // The image captured its dimensions and queued its url.
    ASSERT_EQ(doc->imageUrls.size(), 1u);
    EXPECT_EQ(doc->imageUrls[0], "pic.img");
}

TEST_F(BrowserTest, DiscoversSubresources)
{
    const Resource html = makeResource(
        machine, "<link href=a.css><script src=b.js><div>x</div>",
        ResourceType::Html);
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(ctx, html);
    ASSERT_EQ(doc->cssUrls.size(), 1u);
    EXPECT_EQ(doc->cssUrls[0], "a.css");
    ASSERT_EQ(doc->jsUrls.size(), 1u);
    EXPECT_EQ(doc->jsUrls[0], "b.js");
}

TEST_F(BrowserTest, HiddenAttributeAndTextNodes)
{
    const Resource html = makeResource(
        machine, "<div id=menu hidden>secret text</div>",
        ResourceType::Html);
    HtmlParser parser(machine, traceLog);
    auto doc = parser.parse(ctx, html);
    Element *menu = doc->byIdHash(hashString("menu"));
    ASSERT_NE(menu, nullptr);
    EXPECT_TRUE(menu->hidden);
    ASSERT_EQ(menu->children.size(), 1u);
    EXPECT_TRUE(menu->children[0]->isText());
    EXPECT_EQ(menu->children[0]->text, "secret text");
    EXPECT_GT(menu->children[0]->textLen, 0u);
}

// ---- CSS -------------------------------------------------------------------

TEST_F(BrowserTest, ParsesRulesAndMatchesSelectors)
{
    const Resource html = makeResource(
        machine, "<div id=hero class=big>t</div><p class=small>u</p>",
        ResourceType::Html);
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, html);

    const Resource css = makeResource(
        machine,
        ".big{color:111;height:200}\n"
        "#hero{bg:222}\n"
        "p{font:18}\n"
        ".unused{color:999;width:50}\n",
        ResourceType::Css);
    CssParser cparser(machine, traceLog);
    auto sheet = cparser.parse(ctx, css);
    ASSERT_EQ(sheet->rules.size(), 4u);

    StyleResolver resolver(machine, traceLog);
    std::vector<StyleSheet *> sheets{sheet.get()};
    resolver.resolveAll(ctx, *doc, sheets);

    Element *hero = doc->byIdHash(hashString("hero"));
    ASSERT_NE(hero, nullptr);
    EXPECT_EQ(machine.mem().read(hero->styleAddr + StyleFields::kColor, 4),
              111u);
    EXPECT_EQ(machine.mem().read(
                  hero->styleAddr + StyleFields::kBackground, 4),
              222u);
    EXPECT_EQ(machine.mem().read(hero->styleAddr + StyleFields::kHeight, 4),
              200u);

    // Coverage: three of four rules matched.
    EXPECT_TRUE(sheet->rules[0].matched);
    EXPECT_TRUE(sheet->rules[1].matched);
    EXPECT_TRUE(sheet->rules[2].matched);
    EXPECT_FALSE(sheet->rules[3].matched);
    EXPECT_LT(sheet->usedBytes(), sheet->totalBytes);
    EXPECT_GT(sheet->usedBytes(), 0u);
}

TEST_F(BrowserTest, HiddenAttributeForcesDisplayNone)
{
    const Resource html = makeResource(
        machine, "<div id=menu hidden>m</div><div id=vis>v</div>",
        ResourceType::Html);
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, html);

    StyleResolver resolver(machine, traceLog);
    resolver.resolveAll(ctx, *doc, {});

    Element *menu = doc->byIdHash(hashString("menu"));
    Element *vis = doc->byIdHash(hashString("vis"));
    EXPECT_EQ(machine.mem().read(
                  menu->styleAddr + StyleFields::kDisplay, 4),
              kDisplayNone);
    EXPECT_EQ(machine.mem().read(vis->styleAddr + StyleFields::kDisplay, 4),
              kDisplayBlock);
    // The hidden element's text inherits the hiding.
    EXPECT_EQ(machine.mem().read(
                  menu->children[0]->styleAddr + StyleFields::kDisplay, 4),
              kDisplayNone);
}

// ---- JS --------------------------------------------------------------------

TEST_F(BrowserTest, RunsTopLevelAndTracksCoverage)
{
    const Resource html = makeResource(
        machine, "<div id=hero>t</div>", ResourceType::Html);
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, html);

    JsEngine engine(machine, traceLog);
    engine.setDocument(doc.get());

    const std::string hero = std::to_string(hashString("hero"));
    const Resource script = makeResource(
        machine,
        "function used(a){var x = a * 2; return x + 1;}"
        "function unused(a){var y = a + 99; return y;}"
        "g = used(20);"
        "dom.set(" + hero + ", 1, g);",
        ResourceType::Js);
    engine.runScript(ctx, script);

    // used() ran, unused() did not.
    EXPECT_EQ(engine.functionCount(), 3u); // used, unused, toplevel
    EXPECT_EQ(engine.executedFunctionCount(), 2u);
    EXPECT_GT(engine.usedBytes(), 0u);
    EXPECT_LT(engine.usedBytes(), engine.totalBytes());

    // The dom.set landed: color = used(20) = 41.
    Element *el = doc->byIdHash(hashString("hero"));
    EXPECT_EQ(machine.mem().read(el->styleAddr + StyleFields::kColor, 4),
              41u);
}

TEST_F(BrowserTest, ControlFlowAndGlobals)
{
    JsEngine engine(machine, traceLog);
    const Resource script = makeResource(
        machine,
        "function f(n){var acc = 0; var i = 0;"
        " while(i < n){i = i + 1; acc = acc + i;}"
        " if(acc > 9){acc = acc * 2;}else{acc = acc + 100;}"
        " return acc;}"
        "r1 = f(4);"  // 1+2+3+4=10 > 9 -> 20
        "r2 = f(2);", // 1+2=3 -> 103
        ResourceType::Js);
    engine.runScript(ctx, script);
    EXPECT_GT(engine.bytecodeOpsExecuted(), 20u);
    // No direct global accessor; verify through a dom round trip instead.
    SUCCEED();
}

TEST_F(BrowserTest, EventListenersFire)
{
    const Resource html = makeResource(
        machine, "<button id=b>k</button><div id=out>o</div>",
        ResourceType::Html);
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, html);

    JsEngine engine(machine, traceLog);
    engine.setDocument(doc.get());

    const std::string b = std::to_string(hashString("b"));
    const std::string out = std::to_string(hashString("out"));
    const Resource script = makeResource(
        machine,
        "function onClick(){g = g + 5; dom.set(" + out + ", 2, g);}"
        "g = 100;"
        "dom.listen(" + b + ", 0, onClick);",
        ResourceType::Js);
    engine.runScript(ctx, script);

    EXPECT_TRUE(engine.fireEvent(ctx, hashString("b"), JsEvent::Click));
    Element *el = doc->byIdHash(hashString("out"));
    EXPECT_EQ(machine.mem().read(
                  el->styleAddr + StyleFields::kBackground, 4),
              105u);
    EXPECT_TRUE(engine.fireEvent(ctx, hashString("b"), JsEvent::Click));
    EXPECT_EQ(machine.mem().read(
                  el->styleAddr + StyleFields::kBackground, 4),
              110u);
    // No listener on this id.
    EXPECT_FALSE(engine.fireEvent(ctx, hashString("zzz"),
                                  JsEvent::Click));
}

TEST_F(BrowserTest, JitOptimizesHotFunctions)
{
    JsEngine engine(machine, traceLog);
    const Resource script = makeResource(
        machine,
        "function hot(a){return a * 3;}"
        "g = hot(1) + hot(2) + hot(3) + hot(4);",
        ResourceType::Js);
    engine.runScript(ctx, script);
    EXPECT_EQ(engine.optimizations(), 1u);
}

TEST_F(BrowserTest, LazyCompileDefersBytecodeGeneration)
{
    JsEngineConfig config;
    config.lazyCompile = true;
    JsEngine engine(machine, traceLog, config);
    const Resource script = makeResource(
        machine,
        "function called(a){return a + 1;}"
        "function never(a){var q = a * 9; return q;}"
        "g = called(1);",
        ResourceType::Js);

    JsEngine eager(machine, traceLog);
    // Lazy engine compiles only what runs.
    engine.runScript(ctx, script);
    EXPECT_EQ(engine.executedFunctionCount(), 2u); // called + toplevel
    EXPECT_EQ(engine.functionCount(), 3u);
}

TEST_F(BrowserTest, TimersFireThroughTheScheduler)
{
    const Resource html = makeResource(
        machine, "<div id=out>o</div>", ResourceType::Html);
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, html);

    JsEngine engine(machine, traceLog);
    engine.setDocument(doc.get());
    const std::string out = std::to_string(hashString("out"));
    const Resource script = makeResource(
        machine,
        "function later(){dom.set(" + out + ", 1, 777);}"
        "timer(5, later);",
        ResourceType::Js);

    machine.post(tid, [&](Ctx &c) { engine.runScript(c, script); });
    machine.run();

    Element *el = doc->byIdHash(hashString("out"));
    EXPECT_EQ(machine.mem().read(el->styleAddr + StyleFields::kColor, 4),
              777u);
}

// ---- layout ------------------------------------------------------------------

TEST_F(BrowserTest, BlockFlowStacksChildren)
{
    const Resource html = makeResource(
        machine, "<div id=a>x</div><div id=b>y</div>",
        ResourceType::Html);
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, html);

    const Resource css = makeResource(
        machine, ".none{color:1}\n#a{height:100}\n#b{height:60}\n",
        ResourceType::Css);
    CssParser cparser(machine, traceLog);
    auto sheet = cparser.parse(ctx, css);
    StyleResolver resolver(machine, traceLog);
    resolver.resolveAll(ctx, *doc, {sheet.get()});

    LayoutEngine layout(machine, traceLog);
    const uint32_t height = layout.layoutDocument(ctx, *doc, 800, 600);

    Element *a = doc->byIdHash(hashString("a"));
    Element *b = doc->byIdHash(hashString("b"));
    const uint64_t ay = machine.mem().read(
        a->layoutAddr + LayoutFields::kY, 4);
    const uint64_t by = machine.mem().read(
        b->layoutAddr + LayoutFields::kY, 4);
    EXPECT_LT(ay, by);
    EXPECT_GE(by, ay + 100);
    EXPECT_GE(height, 160u);
    EXPECT_EQ(machine.mem().read(a->layoutAddr + LayoutFields::kHeight, 4),
              100u);
}

TEST_F(BrowserTest, HiddenSubtreeGetsNoBoxes)
{
    const Resource html = makeResource(
        machine, "<div id=menu hidden><p id=inner>t</p></div>",
        ResourceType::Html);
    HtmlParser hparser(machine, traceLog);
    auto doc = hparser.parse(ctx, html);
    StyleResolver resolver(machine, traceLog);
    resolver.resolveAll(ctx, *doc, {});
    LayoutEngine layout(machine, traceLog);
    layout.layoutDocument(ctx, *doc, 800, 600);

    Element *menu = doc->byIdHash(hashString("menu"));
    EXPECT_EQ(machine.mem().read(
                  menu->layoutAddr + LayoutFields::kHeight, 4),
              0u);
}

// ---- end-to-end tab ------------------------------------------------------------

TEST(TabEndToEnd, TinySiteProducesASliceableTrace)
{
    sim::Machine machine;
    BrowserConfig config;
    config.viewportWidth = 512;
    config.viewportHeight = 512;
    config.rasterThreads = 2;
    Tab tab(machine, config);

    SiteContent site;
    site.url = "https://tiny.example/";
    const std::string hero = std::to_string(hashString("hero"));
    site.html =
        "<link href=m.css><script src=a.js>"
        "<div id=hero class=card>hello webslice</div>"
        "<div id=menu class=menu hidden>secret</div>";
    site.resources["m.css"] = {
        ResourceType::Css,
        ".card{bg:12345;height:120}\n.menu{bg:777}\n.dead{color:1}\n"};
    site.resources["a.js"] = {
        ResourceType::Js,
        "function used(a){return a * 2;}"
        "function unused(a){return a + 1;}"
        "dom.set(" + hero + ", 1, used(21));"};

    tab.setSessionMs(600);
    tab.navigate(site);
    machine.run();

    EXPECT_TRUE(tab.loadComplete());
    EXPECT_GT(machine.instructionCount(), 1000u);
    EXPECT_GT(machine.pixelCriteria().markerCount(), 0u);
    EXPECT_GT(tab.compositor().framesSubmitted(), 0u);
    EXPECT_GT(tab.compositor().rasterizer().tilesRastered(), 0u);

    // Forward + backward passes over the whole session.
    const auto cfgs = graph::buildCfgs(machine.records(),
                                       machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    const auto result = slicer::computeSlice(
        machine.records(), cfgs, deps, machine.pixelCriteria());

    EXPECT_GT(result.sliceInstructions, 0u);
    EXPECT_LT(result.sliceInstructions, result.instructionsAnalyzed);
    const double pct = result.slicePercent();
    EXPECT_GT(pct, 5.0);
    EXPECT_LT(pct, 95.0);

    // Coverage: some JS/CSS unused.
    EXPECT_LT(tab.js().usedBytes(), tab.js().totalBytes());
    EXPECT_LT(tab.cssUsedBytes(), tab.cssTotalBytes());
}

TEST(TabEndToEnd, ClickDrivesJsAndRepaint)
{
    sim::Machine machine;
    BrowserConfig config;
    config.viewportWidth = 512;
    config.viewportHeight = 512;
    Tab tab(machine, config);

    const std::string b = std::to_string(hashString("b"));
    const std::string hero = std::to_string(hashString("hero"));
    SiteContent site;
    site.url = "https://click.example/";
    site.html = "<link href=m.css><script src=a.js>"
                "<button id=b class=btn>go</button>"
                "<div id=hero class=card>x</div>";
    site.resources["m.css"] = {
        ResourceType::Css, ".card{bg:99;height:80}\n.btn{height:20}\n"};
    site.resources["a.js"] = {
        ResourceType::Js,
        "function onClick(){g = g + 1; dom.set(" + hero +
            ", 2, g * 1000);}"
        "g = 5;"
        "dom.listen(" + b + ", 0, onClick);"};

    tab.setSessionMs(1500);
    tab.navigate(site);
    tab.scheduleClick(700, "b");
    machine.run();

    Element *el = tab.document()->byIdHash(hashString("hero"));
    ASSERT_NE(el, nullptr);
    EXPECT_EQ(machine.mem().read(
                  el->styleAddr + StyleFields::kBackground, 4),
              6000u);
    EXPECT_GE(tab.compositor().framesSubmitted(), 2u);
}

TEST(TabEndToEnd, ScrollIsHandledOnTheCompositor)
{
    sim::Machine machine;
    BrowserConfig config;
    config.viewportWidth = 512;
    config.viewportHeight = 256;
    Tab tab(machine, config);

    SiteContent site;
    site.url = "https://scroll.example/";
    site.html = "<link href=m.css>"
                "<div class=tall id=a>one</div>"
                "<div class=tall id=b>two</div>"
                "<div class=tall id=c>three</div>";
    site.resources["m.css"] = {ResourceType::Css,
                               ".tall{height:400;bg:31}\n"};
    tab.setSessionMs(1500);
    tab.navigate(site);
    tab.scheduleScroll(700, 300);
    machine.run();

    EXPECT_EQ(tab.compositor().scrollOffset(), 300);
    EXPECT_GE(tab.compositor().framesSubmitted(), 2u);
}

} // namespace
} // namespace browser
} // namespace webslice
