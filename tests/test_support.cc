/**
 * @file
 * Unit tests for the support layer: strings, sparse byte set, stats,
 * tables, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.hh"
#include "support/sparse_byte_set.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace webslice {
namespace {

// ---- strings ---------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField)
{
    const auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, PrefixSuffix)
{
    EXPECT_TRUE(startsWith("v8::Parser", "v8"));
    EXPECT_FALSE(startsWith("v", "v8"));
    EXPECT_TRUE(endsWith("foo.cc", ".cc"));
    EXPECT_FALSE(endsWith("cc", "foo.cc"));
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, TopNamespace)
{
    EXPECT_EQ(topNamespace("v8::Parser::parse"), "v8");
    EXPECT_EQ(topNamespace("plainFunction"), "");
    EXPECT_EQ(topNamespace("cc::TileManager"), "cc");
}

TEST(Strings, NamespacePath)
{
    EXPECT_EQ(namespacePath("base::threading::Mutex::lock", 2),
              "base::threading");
    EXPECT_EQ(namespacePath("a::f", 2), "a");
    EXPECT_EQ(namespacePath("f", 1), "");
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(format("%.1f%%", 45.04), "45.0%");
}

TEST(Strings, HumanBytes)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(955ull * 1024), "955 KB");
    EXPECT_EQ(humanBytes(1638ull * 1024), "1.6 MB");
}

TEST(Strings, HumanMillionsAndCommas)
{
    EXPECT_EQ(withCommas(6217000000ull), "6,217,000,000");
    EXPECT_EQ(humanMillions(6217000000ull), "6,217 M");
    EXPECT_EQ(humanMillions(500000ull), "500 K");
}

// ---- sparse byte set -------------------------------------------------------
//
// The set is templated over its chunk index (flat-hash default vs the
// legacy std::unordered_map baseline) and over the one-entry last-chunk
// cache; every behavioral test runs against both configurations so the
// optimized interior can never drift from the baseline semantics.

template <typename SetType>
class SparseByteSetTyped : public ::testing::Test
{
};

using ByteSetVariants = ::testing::Types<SparseByteSet, LegacySparseByteSet>;
TYPED_TEST_SUITE(SparseByteSetTyped, ByteSetVariants);

TYPED_TEST(SparseByteSetTyped, InsertContains)
{
    TypeParam set;
    EXPECT_TRUE(set.empty());
    set.insert(100, 4);
    EXPECT_EQ(set.size(), 4u);
    EXPECT_TRUE(set.contains(100));
    EXPECT_TRUE(set.contains(103));
    EXPECT_FALSE(set.contains(104));
    EXPECT_FALSE(set.contains(99));
}

TYPED_TEST(SparseByteSetTyped, InsertIsIdempotent)
{
    TypeParam set;
    set.insert(10, 8);
    set.insert(12, 4);
    EXPECT_EQ(set.size(), 8u);
}

TYPED_TEST(SparseByteSetTyped, EraseRange)
{
    TypeParam set;
    set.insert(0, 128);
    set.erase(32, 64);
    EXPECT_EQ(set.size(), 64u);
    EXPECT_TRUE(set.contains(31));
    EXPECT_FALSE(set.contains(32));
    EXPECT_FALSE(set.contains(95));
    EXPECT_TRUE(set.contains(96));
}

TYPED_TEST(SparseByteSetTyped, IntersectsAcrossChunkBoundary)
{
    TypeParam set;
    set.insert(63, 2); // bytes 63 and 64 straddle a chunk boundary
    EXPECT_TRUE(set.intersects(64, 1));
    EXPECT_TRUE(set.intersects(0, 64));
    EXPECT_FALSE(set.intersects(65, 100));
}

TYPED_TEST(SparseByteSetTyped, TestAndErase)
{
    TypeParam set;
    set.insert(200, 8);
    EXPECT_TRUE(set.testAndErase(204, 8));
    EXPECT_EQ(set.size(), 4u);
    EXPECT_FALSE(set.testAndErase(204, 8));
    EXPECT_TRUE(set.contains(203));
}

TYPED_TEST(SparseByteSetTyped, ChunksFreedOnErase)
{
    TypeParam set;
    set.insert(0, 64);
    EXPECT_EQ(set.chunkCount(), 1u);
    set.erase(0, 64);
    EXPECT_EQ(set.chunkCount(), 0u);
    EXPECT_TRUE(set.empty());
}

TYPED_TEST(SparseByteSetTyped, LargeRangeSpanningManyChunks)
{
    TypeParam set;
    set.insert(1000, 1000);
    EXPECT_EQ(set.size(), 1000u);
    EXPECT_TRUE(set.intersects(1999, 1));
    EXPECT_FALSE(set.intersects(2000, 1));
    set.erase(1000, 1000);
    EXPECT_TRUE(set.empty());
}

TYPED_TEST(SparseByteSetTyped, HighAddresses)
{
    TypeParam set;
    const uint64_t high = 0xFFFFFFFF00000000ull;
    set.insert(high, 16);
    EXPECT_TRUE(set.contains(high + 15));
    EXPECT_FALSE(set.contains(high + 16));
}

TYPED_TEST(SparseByteSetTyped, AlignedFullChunkUsesFullMask)
{
    // A 64-byte aligned span covers a whole chunk in one (base, ~0)
    // piece — the mask-building shortcut must still mean "all 64 bytes".
    TypeParam set;
    set.insert(128, 64);
    EXPECT_EQ(set.size(), 64u);
    EXPECT_EQ(set.chunkCount(), 1u);
    EXPECT_TRUE(set.contains(128));
    EXPECT_TRUE(set.contains(191));
    EXPECT_FALSE(set.contains(127));
    EXPECT_FALSE(set.contains(192));
    EXPECT_TRUE(set.testAndErase(128, 64));
    EXPECT_TRUE(set.empty());
}

TYPED_TEST(SparseByteSetTyped, CacheSurvivesEraseOfOtherChunk)
{
    // Regression guard for the one-entry chunk cache: erasing one chunk
    // can move *other* entries in an open-addressing interior, so a
    // cached pointer must not be trusted across it.
    TypeParam set;
    set.insert(0, 8);      // chunk 0 (cached)
    set.insert(640, 8);    // chunk 10
    set.insert(1280, 8);   // chunk 20
    set.erase(640, 8);     // frees chunk 10, may shift the others
    EXPECT_TRUE(set.contains(0));
    EXPECT_TRUE(set.contains(1287));
    EXPECT_FALSE(set.contains(640));
    set.insert(4, 8); // touches cached chunk 0 again
    EXPECT_EQ(set.size(), 8u + 8u + 4u);
}

TYPED_TEST(SparseByteSetTyped, ManyChunksSurviveRehash)
{
    // Enough distinct chunks to force several interior growths; every
    // byte must remain reachable and the population exact.
    TypeParam set;
    constexpr uint64_t kChunks = 3000;
    for (uint64_t c = 0; c < kChunks; ++c)
        set.insert(c * 64 + (c % 32), 2);
    EXPECT_EQ(set.size(), kChunks * 2);
    EXPECT_EQ(set.chunkCount(), kChunks);
    for (uint64_t c = 0; c < kChunks; ++c) {
        EXPECT_TRUE(set.contains(c * 64 + (c % 32)));
        EXPECT_TRUE(set.contains(c * 64 + (c % 32) + 1));
    }
    for (uint64_t c = 0; c < kChunks; c += 2)
        set.erase(c * 64 + (c % 32), 2);
    EXPECT_EQ(set.size(), kChunks);
    EXPECT_EQ(set.chunkCount(), kChunks / 2);
}

TYPED_TEST(SparseByteSetTyped, ClearResetsEverything)
{
    TypeParam set;
    set.insert(10, 100);
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.chunkCount(), 0u);
    EXPECT_FALSE(set.intersects(0, 200));
    set.insert(10, 4); // usable after clear
    EXPECT_EQ(set.size(), 4u);
}

TEST(SparseByteSet, FlatAndLegacyAgreeOnRandomWorkload)
{
    // Drive both interiors with one pseudo-random slicer-like workload
    // (inserts, kills, probes over a few hot pages) and require exact
    // agreement — the benchmark's "bit-identical slice" claim rests on
    // this equivalence.
    SparseByteSet flat;
    LegacySparseByteSet legacy;
    Rng rng(2024);
    for (int op = 0; op < 30000; ++op) {
        const uint64_t addr = rng.below(4096);
        const uint64_t size = 1 + rng.below(16);
        switch (rng.below(4)) {
          case 0:
            flat.insert(addr, size);
            legacy.insert(addr, size);
            break;
          case 1:
            flat.erase(addr, size);
            legacy.erase(addr, size);
            break;
          case 2:
            ASSERT_EQ(flat.testAndErase(addr, size),
                      legacy.testAndErase(addr, size));
            break;
          default:
            ASSERT_EQ(flat.intersects(addr, size),
                      legacy.intersects(addr, size));
        }
        ASSERT_EQ(flat.size(), legacy.size());
        ASSERT_EQ(flat.chunkCount(), legacy.chunkCount());
    }
}

// ---- stats -----------------------------------------------------------------

TEST(CounterSet, Accumulates)
{
    CounterSet counters;
    counters.add("a");
    counters.add("a", 4);
    counters.add("b", 2);
    EXPECT_EQ(counters.get("a"), 5u);
    EXPECT_EQ(counters.get("b"), 2u);
    EXPECT_EQ(counters.get("missing"), 0u);
    EXPECT_EQ(counters.total(), 7u);
}

TEST(TimeSeries, BucketsByPosition)
{
    TimeSeries series(10);
    series.add(0, 1.0);
    series.add(9, 2.0);
    series.add(10, 5.0);
    EXPECT_EQ(series.bucketCount(), 2u);
    EXPECT_DOUBLE_EQ(series.sum(0), 3.0);
    EXPECT_DOUBLE_EQ(series.sum(1), 5.0);
    EXPECT_EQ(series.count(0), 2u);
    EXPECT_DOUBLE_EQ(series.mean(0), 1.5);
    EXPECT_DOUBLE_EQ(series.sum(7), 0.0);
}

TEST(Summary, TracksMinMaxMean)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    s.add(2.0);
    s.add(6.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

// ---- table -----------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table;
    table.setHeader({"Thread", "Slice"});
    table.addRow({"Main", "52%"});
    table.addRow({"Compositor", "34%"});
    std::ostringstream os;
    table.render(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Thread"), std::string::npos);
    EXPECT_NE(text.find("Compositor  34%"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, PadsShortRows)
{
    TextTable table;
    table.setHeader({"a", "b", "c"});
    table.addRow({"only"});
    std::ostringstream os;
    table.render(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 16; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 0);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(rng.range(9, 9), 9);
    EXPECT_EQ(rng.range(9, 2), 9);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

} // namespace
} // namespace webslice
