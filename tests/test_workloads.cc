/**
 * @file
 * Tests of the workload generators and the benchmark runner: determinism,
 * content-volume contracts, parse-ability of generated content by the
 * browser substrate, and end-to-end invariants for every paper benchmark
 * specification (parameterized).
 */

#include <gtest/gtest.h>

#include "browser/css.hh"
#include "browser/html_parser.hh"
#include "browser/js.hh"
#include "workloads/content.hh"
#include "scenario/run.hh"
#include "workloads/sites.hh"

namespace webslice {
namespace workloads {
namespace {

browser::Resource
toResource(sim::Machine &machine, std::string content,
           browser::ResourceType type)
{
    browser::Resource res;
    res.type = type;
    res.content = std::move(content);
    res.size = res.content.size();
    res.addr = machine.alloc((res.size + 15) & ~7ull, "res");
    machine.mem().writeBytes(res.addr, res.content.data(), res.size);
    res.loaded = true;
    return res;
}

// ---- generators --------------------------------------------------------------

TEST(Content, PageGenerationIsDeterministic)
{
    PageSpec spec;
    Rng a(42), b(42), c(43);
    const auto page_a = generatePage(a, spec);
    const auto page_b = generatePage(b, spec);
    const auto page_c = generatePage(c, spec);
    EXPECT_EQ(page_a.html, page_b.html);
    EXPECT_NE(page_a.html, page_c.html);
}

TEST(Content, PageExposesInteractionTargets)
{
    PageSpec spec;
    spec.hiddenMenus = 2;
    spec.carousel = true;
    spec.newsPane = true;
    spec.searchBox = true;
    Rng rng(7);
    const auto page = generatePage(rng, spec);
    EXPECT_EQ(page.menuButtonId, "btn-menu");
    EXPECT_EQ(page.firstMenuId, "menu-0");
    EXPECT_EQ(page.rollButtonId, "btn-roll");
    EXPECT_EQ(page.searchBoxId, "searchbox");
    EXPECT_FALSE(page.visibleTargetIds.empty());
    EXPECT_FALSE(page.hiddenTargetIds.empty());
    EXPECT_FALSE(page.imageUrls.empty());
}

TEST(Content, CssHitsByteTargetAndSplitsUsage)
{
    PageSpec page_spec;
    Rng rng(9);
    const auto page = generatePage(rng, page_spec);
    CssSpec spec;
    spec.targetBytes = 30000;
    spec.usedFraction = 0.5;
    const std::string css = generateCss(rng, spec, page);
    EXPECT_GE(css.size(), spec.targetBytes);
    EXPECT_LT(css.size(), spec.targetBytes + 2048);
    EXPECT_NE(css.find(".card{"), std::string::npos);
    EXPECT_NE(css.find("#nope-"), std::string::npos);
}

TEST(Content, JsHitsByteTarget)
{
    PageSpec page_spec;
    Rng rng(10);
    const auto page = generatePage(rng, page_spec);
    JsSpec spec;
    spec.targetBytes = 40000;
    const std::string js = generateJs(rng, spec, page);
    EXPECT_GE(js.size(), spec.targetBytes);
    EXPECT_LT(js.size(), spec.targetBytes + 4096);
    EXPECT_NE(js.find("dom.listen("), std::string::npos);
}

TEST(Content, NamePrefixKeepsBundlesDisjoint)
{
    PageSpec page_spec;
    Rng rng(11);
    const auto page = generatePage(rng, page_spec);
    JsSpec spec;
    spec.targetBytes = 5000;
    spec.namePrefix = "lz_";
    const std::string js = generateJs(rng, spec, page);
    EXPECT_NE(js.find("function lz_init"), std::string::npos);
    EXPECT_EQ(js.find("function init"), std::string::npos);
}

TEST(Content, IdHashLiteralMatchesRuntimeHash)
{
    EXPECT_EQ(idHashLiteral("btn-menu"),
              std::to_string(browser::hashString("btn-menu")));
}

TEST(Content, GeneratedCssParsesCleanly)
{
    sim::Machine machine;
    const auto tid = machine.addThread("main");
    sim::Ctx ctx(machine, tid);
    browser::TraceLog log(machine);

    PageSpec page_spec;
    Rng rng(12);
    const auto page = generatePage(rng, page_spec);
    CssSpec spec;
    spec.targetBytes = 12000;
    const auto res = toResource(machine, generateCss(rng, spec, page),
                                browser::ResourceType::Css);
    browser::CssParser parser(machine, log);
    const auto sheet = parser.parse(ctx, res);
    EXPECT_GT(sheet->rules.size(), 20u);
    EXPECT_EQ(sheet->totalBytes, res.size);
}

TEST(Content, GeneratedJsParsesAndRuns)
{
    sim::Machine machine;
    const auto tid = machine.addThread("main");
    browser::TraceLog log(machine);

    PageSpec page_spec;
    Rng rng(13);
    const auto page = generatePage(rng, page_spec);

    // Parse the page first so dom.* targets exist.
    const auto html_res =
        toResource(machine, page.html, browser::ResourceType::Html);
    JsSpec spec;
    spec.targetBytes = 15000;
    const auto js_res = toResource(machine, generateJs(rng, spec, page),
                                   browser::ResourceType::Js);

    machine.post(tid, [&](sim::Ctx &ctx) {
        browser::HtmlParser html_parser(machine, log);
        auto doc = html_parser.parse(ctx, html_res);
        browser::JsEngine engine(machine, log);
        engine.setDocument(doc.get());
        engine.runScript(ctx, js_res);
        EXPECT_GT(engine.functionCount(), 5u);
        EXPECT_GT(engine.executedFunctionCount(), 1u);
        EXPECT_LT(engine.usedBytes(), engine.totalBytes());
    });
    machine.run();
}

// ---- specs --------------------------------------------------------------------

class PaperSpecSweep
    : public ::testing::TestWithParam<int>
{
  protected:
    SiteSpec spec() const { return paperBenchmarks()[GetParam()]; }
};

TEST_P(PaperSpecSweep, SiteContentIsSelfConsistent)
{
    const auto site = buildSiteContent(spec());
    EXPECT_NE(site.html.find("<link href=main.css>"), std::string::npos);
    EXPECT_NE(site.html.find("<script src=app.js>"), std::string::npos);
    EXPECT_TRUE(site.resources.count("main.css"));
    EXPECT_TRUE(site.resources.count("app.js"));
    // Every referenced image has a payload.
    size_t pos = 0;
    while ((pos = site.html.find("src=", pos)) != std::string::npos) {
        pos += 4;
        const size_t end = site.html.find_first_of(" >", pos);
        const std::string url = site.html.substr(pos, end - pos);
        if (url != "app.js") {
            EXPECT_TRUE(site.resources.count(url)) << url;
        }
    }
}

TEST_P(PaperSpecSweep, ContentGenerationIsDeterministic)
{
    const auto a = buildSiteContent(spec());
    const auto b = buildSiteContent(spec());
    EXPECT_EQ(a.html, b.html);
    EXPECT_EQ(a.resources.at("app.js").second,
              b.resources.at("app.js").second);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PaperSpecSweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(Specs, BrowseVariantsDeriveCorrectly)
{
    const auto amazon = amazonDesktopSpec();
    const auto browse = withBrowseSession(amazon);
    EXPECT_TRUE(amazon.actions.empty());
    EXPECT_FALSE(browse.actions.empty());
    EXPECT_GT(browse.sessionMs, amazon.sessionMs);

    const auto maps_browse = withBrowseSession(googleMapsSpec());
    EXPECT_GT(maps_browse.lazyJsBytes, 0u); // Maps grows while browsed

    const auto bing = bingSpec();
    EXPECT_EQ(withBrowseSession(bing).actions.size(),
              bing.actions.size()); // already a browse benchmark

    const auto bing_load = withoutBrowseSession(bing);
    EXPECT_TRUE(bing_load.actions.empty());
    EXPECT_EQ(bing_load.lazyJsBytes, 0u);
}

TEST(Specs, PaperBenchmarkShapes)
{
    const auto specs = paperBenchmarks();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].browser.rasterThreads, 3); // paper: 3 for desktop
    EXPECT_EQ(specs[1].browser.rasterThreads, 2);
    EXPECT_TRUE(specs[1].browser.mobile);
    EXPECT_EQ(specs[1].browser.viewportWidth, 360);
    EXPECT_TRUE(specs[2].page.mapCanvas);
    EXPECT_TRUE(specs[3].page.searchBox);
    EXPECT_FALSE(specs[3].actions.empty()); // Bing browses
}

// ---- runner (one small end-to-end run) -----------------------------------------

TEST(Runner, TinySpecRunsEndToEnd)
{
    SiteSpec spec;
    spec.name = "tiny";
    spec.url = "https://tiny.example/";
    spec.seed = 123;
    spec.browser.viewportWidth = 512;
    spec.browser.viewportHeight = 384;
    spec.page.sections = 1;
    spec.page.itemsPerSection = 1;
    spec.page.hiddenMenus = 1;
    spec.js.targetBytes = 3000;
    spec.css.targetBytes = 1500;
    spec.sessionMs = 300;

    const auto run = scenario::runSite(spec);
    EXPECT_TRUE(run.tab->loadComplete());
    EXPECT_GT(run.records().size(), 1000u);
    EXPECT_GT(run.machine->pixelCriteria().markerCount(), 0u);
    EXPECT_GT(run.jsTotalBytes, 0u);
    EXPECT_LT(run.jsUsedBytes, run.jsTotalBytes);
    EXPECT_LT(run.cssUsedBytes, run.cssTotalBytes);
    EXPECT_EQ(run.threadNames().size(),
              2u + spec.browser.rasterThreads + 1u);
    EXPECT_LE(run.loadCompleteIndex, run.records().size());
}

TEST(Runner, ActionsFireDuringTheSession)
{
    SiteSpec spec;
    spec.name = "tiny-browse";
    spec.url = "https://tiny.example/";
    spec.seed = 124;
    spec.browser.viewportWidth = 512;
    spec.browser.viewportHeight = 384;
    spec.page.sections = 1;
    spec.page.itemsPerSection = 1;
    spec.page.hiddenMenus = 1;
    spec.js.targetBytes = 3000;
    spec.css.targetBytes = 1500;
    spec.sessionMs = 2500;
    spec.actions = {{UserAction::Kind::Click, 1200, 0, "btn-menu"}};

    const auto run = scenario::runSite(spec);
    // The menu toggle ran: the handler flipped g_menu and the menu became
    // visible, which forces extra pipeline updates after load.
    EXPECT_GT(run.records().size(), run.loadCompleteIndex);
    EXPECT_GT(run.jsUsedBytes, 0u);
}

} // namespace
} // namespace workloads
} // namespace webslice
