/**
 * @file
 * Tests of fleet routing and failover: the consistent-hash ring's
 * determinism and ~1/N remap property, endpoint spec parsing, and the
 * FleetClient's end-to-end guarantees — batches route to the digest's
 * owner, a shard dying or draining mid-batch fails over to the next
 * replica, and no criterion is ever lost or double-reported across
 * the handoff (request-id dedup), with results bit-identical to the
 * direct slicer throughout.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "service/client.hh"
#include "service/router.hh"
#include "service/server.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace service {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

std::string
tempPath(const std::string &stem)
{
    return std::string(::testing::TempDir()) + stem;
}

// ---- consistent-hash ring ------------------------------------------------

std::vector<std::string>
endpointSet(int count)
{
    std::vector<std::string> endpoints;
    for (int i = 0; i < count; ++i)
        endpoints.push_back(format("/tmp/shard-%d.sock", i));
    return endpoints;
}

TEST(ShardRouter, PlacementIsDeterministicAcrossInstances)
{
    // Two routers built from the same endpoint list — as two client
    // processes, or one client before and after a restart — must agree
    // on every placement: cross-restart cache affinity depends on it.
    const ShardRouter a(endpointSet(3));
    const ShardRouter b(endpointSet(3));
    for (uint64_t digest = 1; digest <= 4096; ++digest) {
        EXPECT_EQ(a.primaryFor(digest), b.primaryFor(digest));
        EXPECT_EQ(a.ownersFor(digest, 2), b.ownersFor(digest, 2));
    }
}

TEST(ShardRouter, SpreadsKeysOverEveryShard)
{
    const auto endpoints = endpointSet(4);
    const ShardRouter router(endpoints);
    std::vector<size_t> hits(endpoints.size(), 0);
    constexpr uint64_t kKeys = 4096;
    for (uint64_t digest = 1; digest <= kKeys; ++digest) {
        const std::string owner = router.primaryFor(digest);
        for (size_t e = 0; e < endpoints.size(); ++e)
            if (endpoints[e] == owner)
                ++hits[e];
    }
    // With 64 virtual nodes per shard the split is close to uniform;
    // only gross imbalance (a starved or dominant shard) is asserted.
    for (size_t e = 0; e < hits.size(); ++e) {
        EXPECT_GT(hits[e], kKeys / 16) << endpoints[e];
        EXPECT_LT(hits[e], kKeys / 2) << endpoints[e];
    }
}

TEST(ShardRouter, GrowingTheFleetRemapsAboutOneNth)
{
    // The consistent-hash property: adding a fifth shard to a fleet of
    // four must move ~1/5 of the keyspace, and every moved key must
    // move TO the new shard — never between old shards (that would
    // invalidate caches for no reason).
    auto four = endpointSet(4);
    auto five = endpointSet(5);
    const std::string &added = five.back();
    const ShardRouter before(four);
    const ShardRouter after(five);

    constexpr uint64_t kKeys = 8192;
    uint64_t moved = 0;
    for (uint64_t digest = 1; digest <= kKeys; ++digest) {
        const std::string was = before.primaryFor(digest);
        const std::string now = after.primaryFor(digest);
        if (was == now)
            continue;
        ++moved;
        EXPECT_EQ(now, added) << "key " << digest
                              << " moved between old shards";
    }
    // Expectation is kKeys/5; allow generous slack for hash variance.
    EXPECT_GT(moved, kKeys / 10);
    EXPECT_LT(moved, kKeys * 2 / 5);
}

TEST(ShardRouter, OwnersAreDistinctAndFailoverFollowsRingOrder)
{
    const ShardRouter router(endpointSet(3));
    ShardRouter failed(endpointSet(3));
    for (uint64_t digest = 1; digest <= 512; ++digest) {
        const auto owners = router.ownersFor(digest, 2);
        ASSERT_EQ(owners.size(), 2u);
        EXPECT_NE(owners[0], owners[1]);

        // Killing the primary promotes exactly the replica the healthy
        // router would have named second.
        failed.setUp(failed.endpoints()[0]);
        failed.setUp(failed.endpoints()[1]);
        failed.setUp(failed.endpoints()[2]);
        failed.setDown(owners[0]);
        EXPECT_EQ(failed.primaryFor(digest), owners[1]);
    }
}

TEST(ShardRouter, AllShardsDownMeansNoOwners)
{
    ShardRouter router(endpointSet(2));
    router.setDown(router.endpoints()[0]);
    router.setDown(router.endpoints()[1]);
    EXPECT_EQ(router.liveCount(), 0u);
    EXPECT_TRUE(router.ownersFor(1, 2).empty());
    EXPECT_EQ(router.primaryFor(1), "");

    router.setUp(router.endpoints()[1]);
    EXPECT_EQ(router.primaryFor(1), router.endpoints()[1]);
}

TEST(ShardRouter, DuplicateEndpointsCollapse)
{
    // A doubled spec must not masquerade as an extra replica.
    std::vector<std::string> doubled = {"/tmp/a.sock", "/tmp/a.sock",
                                        "/tmp/b.sock"};
    const ShardRouter router(doubled);
    EXPECT_EQ(router.size(), 2u);
    const auto owners = router.ownersFor(7, 3);
    EXPECT_EQ(owners.size(), 2u);
    EXPECT_NE(owners[0], owners[1]);
}

// ---- recorded-artifact fixture -------------------------------------------

/** A small program saved as webslice-record artifacts (see
 *  test_service.cc for the full commentary). */
struct SavedProgram
{
    Machine machine;
    std::string prefix;
    std::vector<uint64_t> buffers;

    explicit SavedProgram(const std::string &stem, uint64_t salt = 0,
                          int chains = 4)
    {
        prefix = tempPath(stem);
        const auto t0 = machine.addThread("main");
        const auto t1 = machine.addThread("worker");
        const auto fn = machine.registerFunction("fleet::chain");

        for (int c = 0; c < chains; ++c)
            buffers.push_back(machine.alloc(64, "buf"));
        for (int c = 0; c < chains; ++c) {
            const uint64_t buffer = buffers[c];
            const uint64_t rounds = 2 + (c + salt) % 5;
            machine.post(c % 2 ? t1 : t0,
                         [fn, buffer, rounds, c](Ctx &ctx) {
                TracedScope scope(ctx, fn);
                Value acc = ctx.imm(static_cast<uint64_t>(c) + 1);
                Value i = ctx.imm(0);
                Value n = ctx.imm(rounds);
                while (true) {
                    Value more = ctx.ltu(i, n);
                    if (!ctx.branchIf(more))
                        break;
                    acc = ctx.add(acc, i);
                    i = ctx.addi(i, 1);
                }
                ctx.store(buffer, 8, acc);
                sim::sysWrite(ctx, buffer, 8);
            });
        }
        machine.post(t0, [this, chains](Ctx &ctx) {
            for (int c = 0; c < chains / 2; ++c) {
                const trace::MemRange ranges[] = {{buffers[c], 8}};
                ctx.marker(ranges);
            }
        });
        machine.run();

        trace::TraceWriter writer(prefix + ".trc", /*block_index=*/true);
        for (const auto &rec : machine.records())
            writer.append(rec);
        writer.close();
        machine.symtab().save(prefix + ".sym");
        machine.pixelCriteria().save(prefix + ".crit");
        std::ofstream meta(prefix + ".meta");
        meta << "benchmark router-test\n";
    }

    ~SavedProgram()
    {
        for (const char *ext : {".trc", ".sym", ".crit", ".meta"})
            std::remove((prefix + ext).c_str());
    }

    slicer::SliceResult
    directSlice(const slicer::SlicerOptions &options = {}) const
    {
        const auto cfgs =
            graph::buildCfgs(machine.records(), machine.symtab());
        const auto deps = graph::buildControlDeps(cfgs);
        return slicer::computeSlice(machine.records(), cfgs, deps,
                                    machine.pixelCriteria(), options);
    }
};

/** Two in-process shards plus the endpoint list a fleet client uses. */
struct TwoShardFleet
{
    std::unique_ptr<Server> shard[2];
    std::thread serving[2];
    std::vector<std::string> endpoints;

    explicit TwoShardFleet(const std::string &stem)
    {
        for (int s = 0; s < 2; ++s) {
            ServerOptions options;
            options.socketPath =
                tempPath(format("%s_%d.sock", stem.c_str(), s));
            options.workers = 1;
            options.shardId = format("shard-%d", s);
            options.shardEpoch = static_cast<uint64_t>(s) + 1;
            shard[s] = std::make_unique<Server>(options);
            endpoints.push_back(options.socketPath);
        }
        for (int s = 0; s < 2; ++s)
            serving[s] = std::thread([this, s] { shard[s]->run(); });
    }

    ~TwoShardFleet()
    {
        for (int s = 0; s < 2; ++s)
            shard[s]->requestShutdown();
        for (int s = 0; s < 2; ++s)
            serving[s].join();
    }

    /** The server whose socket path is `endpoint`. */
    Server &at(const std::string &endpoint)
    {
        return *(endpoints[0] == endpoint ? shard[0] : shard[1]);
    }

    std::string other(const std::string &endpoint) const
    {
        return endpoints[0] == endpoint ? endpoints[1] : endpoints[0];
    }
};

// ---- fleet client end to end ---------------------------------------------

TEST(FleetClient, RoutesByDigestAndAgreesAcrossClients)
{
    const SavedProgram program("fleet_route", /*salt=*/31);
    TwoShardFleet fleet("fleet_route");

    FleetClient one(fleet.endpoints);
    FleetClient two(fleet.endpoints);
    EXPECT_EQ(one.digestFor(program.prefix),
              two.digestFor(program.prefix));
    EXPECT_EQ(one.ownersFor(program.prefix),
              two.ownersFor(program.prefix));

    ServiceClient::BatchOutcome outcome;
    std::string error;
    ASSERT_TRUE(one.batch(program.prefix, {SliceQuery()}, outcome,
                          error))
        << error;
    ASSERT_EQ(outcome.ok, 1u);

    // The result must have been computed by the digest's primary.
    const auto owners = two.ownersFor(program.prefix);
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_EQ(outcome.results[0].shard,
              owners[0] == fleet.endpoints[0] ? "shard-0" : "shard-1");
    EXPECT_EQ(fleet.at(owners[0]).cache().stats().built, 1u);
    EXPECT_EQ(fleet.at(owners[1]).scheduler().stats().submitted, 0u);
    EXPECT_EQ(one.stats().failovers, 0u);
    EXPECT_EQ(one.stats().duplicates, 0u);
}

TEST(FleetClient, ShardDeathMidBatchLosesAndDuplicatesNothing)
{
    const SavedProgram program("fleet_kill", /*salt=*/32);
    TwoShardFleet fleet("fleet_kill");

    FleetClient fleet_client(fleet.endpoints);
    const auto owners = fleet_client.ownersFor(program.prefix);
    ASSERT_EQ(owners.size(), 2u);
    Server &primary = fleet.at(owners[0]);
    Server &replica = fleet.at(owners[1]);
    const std::string primary_id =
        owners[0] == fleet.endpoints[0] ? "shard-0" : "shard-1";

    // Six criteria on the primary's single worker: the first streams
    // back immediately, the rest hold the worker long enough for the
    // kill to land mid-batch. Distinct windows prevent dedup.
    std::vector<SliceQuery> queries(6);
    std::vector<slicer::SliceResult> oracle(6);
    for (size_t i = 0; i < queries.size(); ++i) {
        queries[i].endIndex = 60 - i;
        queries[i].debugSleepMs = i == 0 ? 0 : 400;
        slicer::SlicerOptions options;
        options.endIndex = queries[i].endIndex;
        oracle[i] = program.directSlice(options);
    }

    // The assassin: wait for the first result to be underway, then
    // hard-close every connection on the primary — what a crashed
    // shard looks like from the client's side.
    std::thread assassin([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        primary.beginDrain();
        primary.abortConnections();
    });

    ServiceClient::BatchOutcome outcome;
    std::string error;
    const bool ok = fleet_client.batch(program.prefix, queries, outcome,
                                       error);
    assassin.join();
    ASSERT_TRUE(ok) << error;

    // Every criterion answered exactly once — nothing lost to the dead
    // shard, nothing double-reported across the failover — and every
    // result bit-identical to the direct slicer.
    ASSERT_EQ(outcome.results.size(), queries.size());
    EXPECT_EQ(outcome.ok, queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(outcome.results[i].status, QueryResult::Status::Ok)
            << "query " << i << ": " << outcome.results[i].error;
        EXPECT_EQ(outcome.results[i].inSliceFnv1a,
                  fnv1a64(oracle[i].inSlice.data(),
                          oracle[i].inSlice.size()))
            << "query " << i;
    }

    const auto stats = fleet_client.stats();
    EXPECT_GE(stats.failovers, 1u);
    EXPECT_EQ(stats.duplicates, 0u);

    // The handoff is visible in the results' shard identities: the
    // early result came from the primary, the post-kill remainder
    // from the replica.
    EXPECT_EQ(outcome.results[0].shard, primary_id);
    std::set<std::string> shards;
    for (const auto &result : outcome.results)
        shards.insert(result.shard);
    EXPECT_EQ(shards.size(), 2u);
    EXPECT_GE(replica.scheduler().stats().submitted, 1u);

    // The primary computed-but-unread tail was cancelled, not burned:
    // jobs whose waiter vanished are abandoned at dequeue.
    primary.scheduler().drain();
    EXPECT_GE(primary.scheduler().stats().abandoned, 1u);
}

TEST(FleetClient, DrainingShardFailsOverBeforeAnyResult)
{
    const SavedProgram program("fleet_drain", /*salt=*/33);
    TwoShardFleet fleet("fleet_drain");

    FleetClient fleet_client(fleet.endpoints);
    const auto owners = fleet_client.ownersFor(program.prefix);
    ASSERT_EQ(owners.size(), 2u);
    fleet.at(owners[0]).beginDrain();

    std::vector<SliceQuery> queries(2);
    queries[1].endIndex = 50;
    ServiceClient::BatchOutcome outcome;
    std::string error;
    ASSERT_TRUE(fleet_client.batch(program.prefix, queries, outcome,
                                   error))
        << error;
    EXPECT_EQ(outcome.ok, 2u);

    const auto stats = fleet_client.stats();
    EXPECT_GE(stats.failovers, 1u);
    EXPECT_EQ(stats.duplicates, 0u);
    EXPECT_EQ(fleet.at(owners[0]).scheduler().stats().submitted, 0u);
    EXPECT_GE(fleet.at(owners[1]).scheduler().stats().submitted, 2u);

    // discover() sees the drained shard as down and the replica up.
    EXPECT_EQ(fleet_client.discover(), 1u);
    EXPECT_TRUE(fleet_client.router().isDown(owners[0]));
}

TEST(FleetClient, EveryShardDeadReportsTheUnansweredRemainder)
{
    const SavedProgram program("fleet_dead", /*salt=*/34);

    // Two endpoints nothing listens on: connects fail, the client
    // exhausts the ring, and the error names the unanswered count.
    FleetClient fleet_client({tempPath("fleet_dead_a.sock"),
                              tempPath("fleet_dead_b.sock")});
    std::vector<SliceQuery> queries(3);
    queries[1].endIndex = 50;
    queries[2].endIndex = 40;
    ServiceClient::BatchOutcome outcome;
    std::string error;
    EXPECT_FALSE(fleet_client.batch(program.prefix, queries, outcome,
                                    error));
    EXPECT_NE(error.find("3 of 3"), std::string::npos);
    EXPECT_GE(fleet_client.stats().failovers, 1u);
}

TEST(FleetClient, WarmAdvisoryLandsOnTheReplica)
{
    const SavedProgram program("fleet_warm", /*salt=*/35);
    TwoShardFleet fleet("fleet_warm");

    FleetClient fleet_client(fleet.endpoints);
    const auto owners = fleet_client.ownersFor(program.prefix);
    ASSERT_EQ(owners.size(), 2u);

    ServiceClient::BatchOutcome outcome;
    std::string error;
    ASSERT_TRUE(fleet_client.batch(program.prefix, {SliceQuery()},
                                   outcome, error))
        << error;
    EXPECT_EQ(fleet_client.stats().warmsSent, 1u);

    // The advisory build lands asynchronously on the replica: after
    // its pool drains, the replica holds the session without a single
    // slicing query having touched it.
    fleet.at(owners[1]).scheduler().drain();
    EXPECT_EQ(fleet.at(owners[1]).cache().stats().built, 1u);
    EXPECT_EQ(fleet.at(owners[1]).scheduler().stats().submitted, 0u);

    // A failover now lands hot: kill the primary, repeat the query
    // (new window so it is fresh work), and the replica answers from
    // its warmed cache.
    fleet.at(owners[0]).beginDrain();
    fleet.at(owners[0]).abortConnections();
    SliceQuery fresh;
    fresh.endIndex = 50;
    ASSERT_TRUE(fleet_client.batch(program.prefix, {fresh}, outcome,
                                   error))
        << error;
    ASSERT_EQ(outcome.ok, 1u);
    EXPECT_TRUE(outcome.results[0].cacheHit);
}

} // namespace
} // namespace service
} // namespace webslice
