/**
 * @file
 * Tests for the newer analysis pieces: per-function slice attribution
 * (merging, ordering), windowed categorization, and the progress series
 * against hand-computed references.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/categorize.hh"
#include "analysis/function_stats.hh"
#include "analysis/progress.hh"
#include "analysis/report.hh"
#include "graph/cfg.hh"
#include "sim/machine.hh"

namespace webslice {
namespace analysis {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;

struct TwoFunctionTrace
{
    Machine machine;
    graph::CfgSet cfgs;
    std::vector<uint8_t> verdicts;

    TwoFunctionTrace()
    {
        const auto tid = machine.addThread("main");
        const auto hot = machine.registerFunction("v8::hot");
        const auto cold = machine.registerFunction("debug::cold");
        Ctx ctx(machine, tid);
        {
            TracedScope scope(ctx, hot);
            for (int i = 0; i < 6; ++i) {
                Value v = ctx.imm(i);
                (void)v;
            }
        }
        {
            TracedScope scope(ctx, cold);
            Value v = ctx.imm(9);
            (void)v;
        }
        {
            // Second instance of the same name merges into one row.
            TracedScope scope(ctx, hot);
            Value v = ctx.imm(1);
            (void)v;
        }
        cfgs = graph::buildCfgs(machine.records(), machine.symtab());
        verdicts.assign(machine.records().size(), 0);
        // Mark the first three imm records of `hot` as in-slice.
        int marked = 0;
        for (size_t i = 0; i < machine.records().size() && marked < 3;
             ++i) {
            if (cfgs.funcOf[i] == hot &&
                machine.records()[i].kind ==
                    trace::RecordKind::LoadImm) {
                verdicts[i] = 1;
                ++marked;
            }
        }
    }
};

TEST(FunctionStats, MergesByNameAndSortsByVolume)
{
    TwoFunctionTrace trace;
    const auto stats = computeFunctionStats(
        trace.machine.records(), trace.verdicts, trace.cfgs,
        trace.machine.symtab());

    ASSERT_GE(stats.size(), 2u);
    EXPECT_EQ(stats[0].name, "v8::hot"); // most instructions first
    // hot: 2 calls + 2 rets + 7 imms = 7 imms + 2 rets attributed to it.
    EXPECT_GT(stats[0].totalInstructions,
              stats[1].totalInstructions);
    EXPECT_EQ(stats[0].sliceInstructions, 3u);
    for (size_t i = 1; i < stats.size(); ++i) {
        EXPECT_LE(stats[i].totalInstructions,
                  stats[i - 1].totalInstructions);
    }
}

TEST(FunctionStats, PercentAgainstOwnTotal)
{
    TwoFunctionTrace trace;
    const auto stats = computeFunctionStats(
        trace.machine.records(), trace.verdicts, trace.cfgs,
        trace.machine.symtab());
    for (const auto &row : stats) {
        EXPECT_GE(row.slicePercent(), 0.0);
        EXPECT_LE(row.slicePercent(), 100.0);
    }
}

TEST(Categorize, WindowLimitsTheExamination)
{
    TwoFunctionTrace trace;
    const auto categorizer = Categorizer::chromiumDefault();

    const auto full = categorizeUnnecessary(
        trace.machine.records(), trace.verdicts, trace.cfgs,
        trace.machine.symtab(), categorizer);
    const auto windowed = categorizeUnnecessary(
        trace.machine.records(), trace.verdicts, trace.cfgs,
        trace.machine.symtab(), categorizer, /*end_index=*/3);

    EXPECT_LT(windowed.totalUnnecessary, full.totalUnnecessary);
}

TEST(Progress, MatchesHandComputedCumulative)
{
    std::vector<trace::Record> records(6);
    std::vector<uint8_t> verdicts = {1, 0, 0, 1, 1, 0};
    const auto series = computeBackwardProgress(records, verdicts, 6);

    // Backwards: analyzed=1 -> 0/1; 2 -> 1/2; 3 -> 2/3; 4 -> 2/4;
    // 5 -> 2/5; 6 -> 3/6.
    ASSERT_EQ(series.size(), 6u);
    EXPECT_DOUBLE_EQ(series[0].slicePercent, 0.0);
    EXPECT_DOUBLE_EQ(series[1].slicePercent, 50.0);
    EXPECT_NEAR(series[2].slicePercent, 66.67, 0.01);
    EXPECT_DOUBLE_EQ(series[3].slicePercent, 50.0);
    EXPECT_DOUBLE_EQ(series[4].slicePercent, 40.0);
    EXPECT_DOUBLE_EQ(series[5].slicePercent, 50.0);
}

TEST(Progress, StrideCoversWholeTrace)
{
    std::vector<trace::Record> records(1000);
    std::vector<uint8_t> verdicts(1000, 0);
    for (size_t i = 0; i < 1000; i += 3)
        verdicts[i] = 1;
    const auto series = computeBackwardProgress(records, verdicts, 10);
    ASSERT_FALSE(series.empty());
    EXPECT_EQ(series.back().analyzed, 1000u);
    EXPECT_NEAR(series.back().slicePercent, 33.4, 0.1);
}

TEST(Report, RendersAllSections)
{
    TwoFunctionTrace trace;
    slicer::SliceResult slice;
    slice.inSlice = trace.verdicts;
    slice.sliceInstructions = 3;
    slice.instructionsAnalyzed = trace.machine.instructionCount();

    const std::string names[] = {"CrRendererMain"};
    ReportOptions options;
    options.threadNames = names;
    options.topFunctions = 5;

    std::ostringstream os;
    renderReport(os, trace.machine.records(), slice, trace.cfgs,
                 trace.machine.symtab(), options);
    const std::string text = os.str();
    EXPECT_NE(text.find("pixel slice:"), std::string::npos);
    EXPECT_NE(text.find("CrRendererMain"), std::string::npos);
    EXPECT_NE(text.find("categorizable"), std::string::npos);
    EXPECT_NE(text.find("v8::hot"), std::string::npos);
}

TEST(Report, TopFunctionsSectionCanBeDisabled)
{
    TwoFunctionTrace trace;
    slicer::SliceResult slice;
    slice.inSlice = trace.verdicts;
    slice.instructionsAnalyzed = trace.machine.instructionCount();

    ReportOptions options;
    options.topFunctions = 0;
    std::ostringstream os;
    renderReport(os, trace.machine.records(), slice, trace.cfgs,
                 trace.machine.symtab(), options);
    EXPECT_EQ(os.str().find("hottest functions"), std::string::npos);
}

} // namespace
} // namespace analysis
} // namespace webslice
