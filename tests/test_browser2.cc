/**
 * @file
 * Deeper browser-substrate tests: the traced heap, IPC channel, resource
 * loader, image decode, compositor behaviors (occlusion, scroll clamping,
 * damage tracking, prepaint budget), raster counters, layout positioning
 * schemes, and the JS engine's lazy/JIT paths.
 */

#include <gtest/gtest.h>

#include "browser/tab.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"

namespace webslice {
namespace browser {
namespace {

using sim::Ctx;
using sim::Machine;
using sim::Value;
using trace::RecordKind;

size_t
countKind(const Machine &machine, RecordKind kind)
{
    size_t count = 0;
    for (const auto &rec : machine.records())
        count += rec.kind == kind ? 1 : 0;
    return count;
}

// ---- TracedHeap --------------------------------------------------------------

TEST(TracedHeap, AllocFreeRoundTripEmitsRecords)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    TracedHeap heap(machine);

    const size_t before = machine.records().size();
    const uint64_t a = heap.alloc(ctx, 64, "x");
    const uint64_t b = heap.alloc(ctx, 64, "y");
    EXPECT_NE(a, b);
    heap.free(ctx, a);
    heap.free(ctx, b);
    EXPECT_GT(machine.records().size(), before + 10);
    EXPECT_EQ(heap.allocCount(), 2u);

    // Freed blocks are reused by the underlying allocator.
    const uint64_t c = heap.alloc(ctx, 64, "z");
    EXPECT_TRUE(c == a || c == b);
}

TEST(TracedHeap, SymbolsAreUncategorizable)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    TracedHeap heap(machine);
    heap.alloc(ctx, 16);

    bool found_malloc = false;
    for (const auto &sym : machine.symtab().symbols()) {
        if (sym.name == "malloc") {
            found_malloc = true;
            EXPECT_EQ(sym.name.find("::"), std::string::npos);
        }
    }
    EXPECT_TRUE(found_malloc);
}

// ---- IPC ---------------------------------------------------------------------

TEST(Ipc, SendSerializesAndHitsTheKernel)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    IpcChannel ipc(machine);

    const uint64_t payload[] = {7, 8, 9};
    ipc.send(ctx, IpcMessage::UpdateTitle, payload);
    EXPECT_EQ(ipc.messagesSent(), 1u);
    EXPECT_GT(ipc.bytesSent(), 3 * 8u);
    EXPECT_EQ(countKind(machine, RecordKind::Syscall), 1u);
    // The kernel read covers the serialized bytes.
    EXPECT_GE(countKind(machine, RecordKind::SyscallRead), 1u);
}

TEST(Ipc, SendValueCarriesTracedDependence)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    IpcChannel ipc(machine);

    Value metric = ctx.imm(4242);
    ipc.sendValue(ctx, IpcMessage::FrameSwapMetrics, metric);
    EXPECT_EQ(ipc.messagesSent(), 1u);
}

// ---- image decode --------------------------------------------------------------

TEST(Images, DecodeIsLazyAndCached)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    Ctx ctx(machine, tid);
    TraceLog log(machine);
    ImageStore store(machine, log, 16);

    Resource res;
    res.content = std::string(512, '\x5A');
    res.size = res.content.size();
    res.addr = machine.alloc(520, "img");
    machine.mem().writeBytes(res.addr, res.content.data(), res.size);
    res.loaded = true;

    store.addResource("x.img", &res, 64, 32);
    EXPECT_EQ(store.decodeCount(), 0u); // nothing decoded yet

    ImageEntry *first = store.decodedBitmap(ctx, "x.img");
    ASSERT_NE(first, nullptr);
    EXPECT_TRUE(first->decoded);
    EXPECT_EQ(first->widthCells, 4u);
    EXPECT_EQ(first->heightCells, 2u);
    EXPECT_EQ(store.decodeCount(), 1u);

    // Second lookup reuses the bitmap (no second decode).
    ImageEntry *second = store.decodedBitmap(ctx, "x.img");
    EXPECT_EQ(second, first);
    EXPECT_EQ(store.decodeCount(), 1u);

    EXPECT_EQ(store.decodedBitmap(ctx, "missing.img"), nullptr);
}

// ---- compositor behaviors -------------------------------------------------------

/** Run a site and return the tab + machine for compositor inspection. */
struct Session
{
    Machine machine;
    Tab tab;

    explicit Session(const SiteContent &site, BrowserConfig config = {},
                     uint64_t session_ms = 800)
        : tab(machine, config)
    {
        tab.setSessionMs(session_ms);
        tab.navigate(site);
    }
};

SiteContent
plainSite(int tall_divs)
{
    SiteContent site;
    site.url = "https://plain.example/";
    site.html = "<link href=m.css>";
    for (int i = 0; i < tall_divs; ++i)
        site.html += "<div class=tall id=d" + std::to_string(i) +
                     ">content</div>";
    site.resources["m.css"] = {ResourceType::Css,
                               ".tall{height:300;bg:1234}\n"};
    return site;
}

TEST(Compositor, ScrollClampsAtDocumentEdges)
{
    BrowserConfig config;
    config.viewportWidth = 512;
    config.viewportHeight = 256;
    Session session(plainSite(4), config, 2500);
    session.tab.scheduleScroll(600, -500); // before the top: clamps to 0
    session.tab.scheduleScroll(1200, 100000); // beyond the end
    session.machine.run();

    const int max_scroll = static_cast<int>(
        session.tab.layerTree().documentHeight) - 256;
    EXPECT_EQ(session.tab.compositor().scrollOffset(),
              std::max(0, max_scroll));
}

TEST(Compositor, DamageTrackingSkipsUnchangedContent)
{
    BrowserConfig config;
    config.viewportWidth = 512;
    config.viewportHeight = 256;
    Session session(plainSite(2), config, 2000);
    session.machine.run();

    // Everything rastered once; an unchanged repaint must not re-raster.
    const auto tiles_after_load =
        session.tab.compositor().rasterizer().tilesRastered();
    EXPECT_GT(tiles_after_load, 0u);
}

TEST(Compositor, OccludedLayerIsNotRastered)
{
    SiteContent site;
    site.url = "https://occlusion.example/";
    // A small z=1 badge fully covered by a z=9 opaque overlay.
    site.html = "<link href=m.css>"
                "<div id=badge class=badge>b</div>"
                "<div id=cover class=cover>c</div>";
    site.resources["m.css"] = {
        ResourceType::Css,
        ".badge{z:1;width:64;height:64;bg:111}\n"
        ".cover{position:1;z:9;width:512;height:512;bg:222}\n"};

    BrowserConfig config;
    config.viewportWidth = 512;
    config.viewportHeight = 512;
    Session session(site, config, 600);
    session.machine.run();

    const auto &layers = session.tab.layerTree().layers;
    const Layer *badge = nullptr;
    for (const auto &layer : layers) {
        if (layer->owner && layer->owner->idAttr == "badge")
            badge = layer.get();
    }
    ASSERT_NE(badge, nullptr);
    EXPECT_TRUE(badge->fullyOccluded);
}

TEST(Compositor, FramesAndTilesAccumulate)
{
    Session session(plainSite(2), {}, 600);
    session.machine.run();
    EXPECT_GT(session.tab.compositor().framesSubmitted(), 0u);
    EXPECT_GT(session.tab.compositor().commitsReceived(), 0u);
    EXPECT_GT(session.tab.compositor().rasterizer().cellsWritten(), 0u);
    EXPECT_EQ(session.machine.pixelCriteria().markerCount(),
              session.tab.compositor().rasterizer().tilesRastered());
}

// ---- layout positioning ----------------------------------------------------------

TEST(Layout, AbsoluteChildrenStack)
{
    SiteContent site;
    site.url = "https://stack.example/";
    site.html = "<link href=m.css><div id=roll class=roll>"
                "<div class=photo id=p0>a</div>"
                "<div class=photo id=p1>b</div></div>";
    site.resources["m.css"] = {
        ResourceType::Css,
        ".roll{height:200;bg:9}\n"
        ".photo{position:2;width:120;height:100;bg:5}\n"};
    Session session(site, {}, 500);
    session.machine.run();

    auto *doc = session.tab.document();
    Element *p0 = doc->byIdHash(hashString("p0"));
    Element *p1 = doc->byIdHash(hashString("p1"));
    const auto y0 = session.machine.mem().read(
        p0->layoutAddr + LayoutFields::kY, 4);
    const auto y1 = session.machine.mem().read(
        p1->layoutAddr + LayoutFields::kY, 4);
    EXPECT_EQ(y0, y1); // stacked, not flowed
}

TEST(Layout, FixedElementPinsToViewport)
{
    SiteContent site;
    site.url = "https://fixed.example/";
    site.html = "<link href=m.css><div class=tall id=t>x</div>"
                "<div id=pin class=pin>p</div>";
    site.resources["m.css"] = {ResourceType::Css,
                               ".tall{height:900;bg:3}\n"
                               ".pin{position:1;width:60;height:40;"
                               "bg:7}\n"};
    Session session(site, {}, 500);
    session.machine.run();

    Element *pin = session.tab.document()->byIdHash(hashString("pin"));
    const auto y = session.machine.mem().read(
        pin->layoutAddr + LayoutFields::kY, 4);
    EXPECT_LT(y, 16u); // viewport origin + margin, not below the tall div
}

// ---- JS engine paths ----------------------------------------------------------------

TEST(JsPaths, LazyAndEagerProduceTheSameDomState)
{
    const std::string hero = std::to_string(hashString("hero"));
    SiteContent site;
    site.url = "https://lazy.example/";
    site.html = "<link href=m.css><script src=a.js>"
                "<div id=hero class=card>x</div>";
    site.resources["m.css"] = {ResourceType::Css,
                               ".card{height:80;bg:2}\n"};
    site.resources["a.js"] = {
        ResourceType::Js,
        "function helper(a){return a * 3 + 1;}"
        "function unused(a){var q = a; while(q < 50){q = q + 7;} "
        "return q;}"
        "dom.set(" + hero + ", 1, helper(13));"};

    auto run = [&](bool lazy) {
        Machine machine;
        JsEngineConfig js_config;
        js_config.lazyCompile = lazy;
        BrowserConfig config;
        config.viewportWidth = 256;
        config.viewportHeight = 256;
        Tab tab(machine, config, js_config);
        tab.setSessionMs(300);
        tab.navigate(site);
        machine.run();
        Element *el = tab.document()->byIdHash(hashString("hero"));
        return std::make_pair(
            machine.mem().read(el->styleAddr + StyleFields::kColor, 4),
            machine.instructionCount());
    };

    const auto eager = run(false);
    const auto lazy = run(true);
    EXPECT_EQ(eager.first, lazy.first);   // same rendered result
    EXPECT_EQ(eager.first, 40u);          // helper(13) = 40
    EXPECT_LT(lazy.second, eager.second); // unused() never compiled
}

TEST(JsPaths, JitUpdatesTheDispatchTable)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    TraceLog log(machine);
    JsEngineConfig config;
    config.jitThreshold = 2;
    JsEngine engine(machine, log, config);

    Resource script;
    script.content = "function hot(a){return a + 1;}"
                     "g = hot(1) + hot(2) + hot(3);";
    script.size = script.content.size();
    script.addr = machine.alloc(script.size + 16, "js");
    machine.mem().writeBytes(script.addr, script.content.data(),
                             script.size);
    script.loaded = true;

    machine.post(tid, [&](Ctx &ctx) { engine.runScript(ctx, script); });
    machine.run();
    EXPECT_EQ(engine.optimizations(), 1u);
    EXPECT_GT(engine.bytecodeOpsExecuted(), 10u);
}

TEST(JsPaths, DomCreateGrowsTheTree)
{
    Machine machine;
    BrowserConfig config;
    config.viewportWidth = 256;
    config.viewportHeight = 256;
    Tab tab(machine, config);

    const std::string root_id = std::to_string(hashString("box"));
    SiteContent site;
    site.url = "https://create.example/";
    site.html = "<link href=m.css><script src=a.js>"
                "<div id=box class=box>x</div>";
    site.resources["m.css"] = {ResourceType::Css,
                               ".box{height:100;bg:6}\n"
                               ".tile{width:32;height:32;bg:8}\n"};
    site.resources["a.js"] = {
        ResourceType::Js,
        // dom.create(parentId, tag, classHash): three dynamic tiles.
        "g_i = 0;"
        "while(g_i < 3){dom.create(" + root_id + ", 2, " +
            std::to_string(hashString("tile")) + "); g_i = g_i + 1;}"};

    tab.setSessionMs(400);
    tab.navigate(site);
    machine.run();

    Element *box = tab.document()->byIdHash(hashString("box"));
    ASSERT_NE(box, nullptr);
    // 1 text node + 3 created tiles.
    EXPECT_EQ(box->children.size(), 4u);
}


TEST(JsPaths, HotFunctionsDeoptimizeOnceThenReoptimize)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    TraceLog log(machine);
    JsEngineConfig config;
    config.jitThreshold = 2;
    config.deoptAfter = 3;
    JsEngine engine(machine, log, config);

    Resource script;
    script.content = "function hot(a){return a + 1;}"
                     "g = 0; g_i = 0;"
                     "while(g_i < 10){g = g + hot(g_i); g_i = g_i + 1;}";
    script.size = script.content.size();
    script.addr = machine.alloc(script.size + 16, "js");
    machine.mem().writeBytes(script.addr, script.content.data(),
                             script.size);
    script.loaded = true;
    machine.post(tid, [&](Ctx &ctx) { engine.runScript(ctx, script); });
    machine.run();

    EXPECT_EQ(engine.deoptimizations(), 1u);
    EXPECT_EQ(engine.optimizations(), 2u); // optimize, bail out, re-opt
}

TEST(JsPaths, GarbageCollectionRunsUnderCallPressure)
{
    Machine machine;
    const auto tid = machine.addThread("main");
    TraceLog log(machine);
    JsEngineConfig config;
    config.gcEveryCalls = 8;
    JsEngine engine(machine, log, config);

    Resource script;
    script.content = "function f(a){return a;}"
                     "g_i = 0;"
                     "while(g_i < 30){g_i = g_i + 1; g = f(g_i);}";
    script.size = script.content.size();
    script.addr = machine.alloc(script.size + 16, "js");
    machine.mem().writeBytes(script.addr, script.content.data(),
                             script.size);
    script.loaded = true;
    machine.post(tid, [&](Ctx &ctx) { engine.runScript(ctx, script); });
    machine.run();

    EXPECT_GE(engine.gcPasses(), 3u);

    // GC work is attributed to v8::Heap::scavenge in the symbol table.
    bool found = false;
    for (const auto &sym : machine.symtab().symbols())
        found |= sym.name == "v8::Heap::scavenge";
    EXPECT_TRUE(found);
}
// ---- end-to-end slice sanity over a parameter sweep -----------------------------------

struct ViewportParams
{
    int width;
    int height;
    int cell_px;
};

class ViewportSweep : public ::testing::TestWithParam<ViewportParams>
{
};

TEST_P(ViewportSweep, SliceStaysInSaneBounds)
{
    const auto p = GetParam();
    BrowserConfig config;
    config.viewportWidth = p.width;
    config.viewportHeight = p.height;
    config.cellPx = p.cell_px;
    Machine machine;
    Tab tab(machine, config);
    tab.setSessionMs(400);
    tab.navigate(plainSite(3));
    machine.run();

    const auto cfgs = graph::buildCfgs(machine.records(),
                                       machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    const auto slice = slicer::computeSlice(
        machine.records(), cfgs, deps, machine.pixelCriteria());
    EXPECT_GT(slice.slicePercent(), 5.0);
    EXPECT_LT(slice.slicePercent(), 95.0);
}

INSTANTIATE_TEST_SUITE_P(
    Viewports, ViewportSweep,
    ::testing::Values(ViewportParams{1280, 720, 16},
                      ViewportParams{360, 640, 32},
                      ViewportParams{360, 640, 64},
                      ViewportParams{800, 600, 16},
                      ViewportParams{256, 256, 16}));

} // namespace
} // namespace browser
} // namespace webslice
