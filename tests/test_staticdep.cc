/**
 * @file
 * Tests of the static dependence analysis (staticdep/): fixpoint
 * termination and exact facts on hand-built looping and irreducible
 * CFGs, monotonicity of the model under window growth, the memory
 * widening cap, the containment invariant (dynamic ⊆ static) fuzzed
 * over random programs in every criteria mode and ablation, and the
 * containment checker's violation reporting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/containment.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"
#include "staticdep/dataflow.hh"
#include "staticdep/model.hh"
#include "staticdep/slice.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "trace/criteria.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace staticdep {
namespace {

using graph::buildCfgs;
using graph::buildControlDeps;
using graph::Cfg;
using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;
using trace::Record;
using trace::RecordKind;
using trace::RegId;

// ---- raw-record builders ---------------------------------------------------
//
// Hand-built record streams give full control over the reconstructed
// CFG shape (loops, irreducible regions) without going through the
// simulator's structured programs.

Record
alu(trace::Pc pc, RegId rw, RegId rr0, RegId rr1 = trace::kNoReg)
{
    Record r;
    r.pc = pc;
    r.kind = RecordKind::Alu;
    r.rw = rw;
    r.rr0 = rr0;
    r.rr1 = rr1;
    return r;
}

Record
imm(trace::Pc pc, RegId rw)
{
    Record r;
    r.pc = pc;
    r.kind = RecordKind::LoadImm;
    r.rw = rw;
    return r;
}

Record
branch(trace::Pc pc, RegId rr0, trace::Pc target, bool taken)
{
    Record r;
    r.pc = pc;
    r.kind = RecordKind::Branch;
    r.rr0 = rr0;
    r.addr = target;
    if (taken)
        r.flags = trace::kFlagTaken;
    return r;
}

/** Model + summaries for a raw record stream (single toplevel func). */
struct RawAnalysis
{
    trace::SymbolTable symtab;
    graph::CfgSet cfgs;
    StaticModel model;
    Summaries summaries;
    trace::FuncId func = trace::kNoFunc;

    explicit RawAnalysis(const std::vector<Record> &records,
                         const ModelOptions &options = {})
    {
        cfgs = buildCfgs(records, symtab);
        model = buildStaticModel(records, cfgs, options);
        summaries = computeSummaries(model);
        EXPECT_FALSE(model.order.empty());
        func = cfgs.funcOf.at(0);
    }
};

// ---- fixpoint termination and exact facts ----------------------------------

TEST(StaticDepDataflow, LoopingCfgTerminatesAndKillsAcrossIterations)
{
    // pc1: r1 <- imm    (loop preheader)
    // pc2: r1 <- imm    (loop header, redefines r1 every iteration)
    // pc3: r2 <- r1
    // pc4: branch r2 -> pc2 (back edge, then falls through and exits)
    const std::vector<Record> records = {
        imm(1, /*rw=*/1),
        imm(2, /*rw=*/1),
        alu(3, /*rw=*/2, /*rr0=*/1),
        branch(4, /*rr0=*/2, /*target=*/2, /*taken=*/true),
        imm(2, 1),
        alu(3, 2, 1),
        branch(4, 2, 2, /*taken=*/false),
    };
    RawAnalysis ra(records);

    const FuncDataflow df =
        computeReachingDefs(ra.model, ra.summaries, ra.func);
    EXPECT_FALSE(df.flowInsensitive);
    // Worklist converged (bounded well below pathological blowup).
    EXPECT_LT(df.iterations, 64);
    EXPECT_LT(ra.summaries.mayDefIterations, kSummaryIterationCap);
    EXPECT_LT(ra.summaries.livenessIterations, kSummaryIterationCap);
    EXPECT_FALSE(ra.summaries.widened);

    // At pc3's IN, only pc2's definition of r1 reaches: pc2 is a strong
    // def on every path into pc3 (preheader pc1's def and the Entry def
    // are killed), even around the back edge.
    const Cfg &cfg = ra.cfgs.byFunc.at(ra.func);
    const graph::NodeId use_node = cfg.findNode(3);
    ASSERT_NE(use_node, graph::kNoNode);
    std::vector<trace::Pc> reaching;
    df.forEachDefReaching(use_node, /*reg=*/1, [&](const auto &def) {
        reaching.push_back(def.src == FuncDataflow::DefSrc::Entry
                               ? trace::kNoPc
                               : cfg.nodePc[def.node]);
    });
    ASSERT_EQ(reaching.size(), 1u);
    EXPECT_EQ(reaching[0], 2u);
}

TEST(StaticDepDataflow, IrreducibleLoopTerminatesWithBothDefsReaching)
{
    // Walk pcs 1,2,3,2,1,3: the {2,3} loop is entered at 2 (from 1) and
    // at 3 (from 1's second visit) — a two-entry irreducible region.
    // Both pc1 and pc2 define r1; pc3 reads it.
    const std::vector<Record> records = {
        imm(1, 1), imm(2, 1),      alu(3, 9, 1), imm(2, 1),
        imm(1, 1), alu(3, 9, 1),
    };
    RawAnalysis ra(records);

    const FuncDataflow df =
        computeReachingDefs(ra.model, ra.summaries, ra.func);
    EXPECT_LT(df.iterations, 64);

    const Cfg &cfg = ra.cfgs.byFunc.at(ra.func);
    const graph::NodeId use_node = cfg.findNode(3);
    ASSERT_NE(use_node, graph::kNoNode);
    std::vector<trace::Pc> reaching;
    df.forEachDefReaching(use_node, 1, [&](const auto &def) {
        if (def.src == FuncDataflow::DefSrc::Instr)
            reaching.push_back(cfg.nodePc[def.node]);
    });
    std::sort(reaching.begin(), reaching.end());
    // Through edge 1->3 only pc1's def survives; through 2->3 only
    // pc2's. Both paths exist, so both defs must reach pc3.
    EXPECT_EQ(reaching, (std::vector<trace::Pc>{1, 2}));
}

TEST(StaticDepDataflow, ModelGrowsMonotonicallyWithTheWindow)
{
    std::vector<Record> records;
    for (trace::Pc pc = 1; pc <= 20; ++pc)
        records.push_back(imm(pc, static_cast<RegId>(pc % 5)));

    trace::SymbolTable symtab;
    const graph::CfgSet cfgs = buildCfgs(records, symtab);

    std::vector<RegId> prev_may_def;
    uint64_t prev_sites = 0;
    for (const size_t end : {5u, 10u, 20u}) {
        ModelOptions options;
        options.endIndex = end;
        const StaticModel model =
            buildStaticModel(records, cfgs, options);
        const Summaries summaries = computeSummaries(model);
        EXPECT_GE(model.siteCount, prev_sites);
        prev_sites = model.siteCount;

        const RegSummary &top = summaries.of(cfgs.funcOf.at(0));
        // Adding records never removes a may-def.
        for (const RegId r : prev_may_def)
            EXPECT_TRUE(top.mayDefine(r)) << "window " << end;
        prev_may_def = top.mayDef;
    }
}

// ---- memory widening cap ---------------------------------------------------

TEST(StaticDepModel, WideningCapTripsAndStaysContained)
{
    // One store site touching 8 distinct pages against a cap of 4 must
    // widen, and the widened footprint must still cover every page.
    Machine machine;
    const auto tid = machine.addThread("main");
    const uint64_t pixels = machine.alloc(16, "tile");
    const uint64_t heap = machine.alloc(8u << 12, "heap");
    machine.post(tid, [&](Ctx &ctx) {
        Value v = ctx.imm(7);
        for (int page = 0; page < 8; ++page)
            ctx.store(heap + (uint64_t(page) << 12), 4, v);
        Value copy = ctx.load(heap, 4);
        ctx.store(pixels, 4, copy);
        const trace::MemRange ranges[] = {{pixels, 4}};
        ctx.marker(ranges);
    });
    machine.run();

    const auto records = machine.records();
    const graph::CfgSet cfgs = buildCfgs(records, machine.symtab());
    graph::ControlDepMap deps = buildControlDeps(cfgs);

    ModelOptions options;
    options.pageCapPerSite = 4;
    const StaticAnalysis analysis =
        buildStaticAnalysis(records, cfgs, deps, options);
    EXPECT_GT(analysis.model.widenedSites, 0u);

    // A widened footprint answers "may touch" for every page.
    bool saw_widened_writer = false;
    for (const auto &[func, fm] : analysis.model.funcs) {
        for (const StaticInstr &instr : fm.instrs) {
            if (!instr.memWrites.widened)
                continue;
            saw_widened_writer = true;
            EXPECT_TRUE(instr.memWrites.covers(pageOf(heap)));
            EXPECT_TRUE(
                instr.memWrites.covers(pageOf(heap + (7u << 12))));
        }
    }
    EXPECT_TRUE(saw_widened_writer);

    // ...and the containment invariant survives the precision loss.
    const auto slice = slicer::computeSlice(records, cfgs, deps,
                                            machine.pixelCriteria(), {});
    const auto static_slice =
        computeStaticSlice(analysis, machine.pixelCriteria(), {});
    const auto containment = check::checkContainment(
        records, cfgs, machine.symtab(), slice, static_slice);
    EXPECT_TRUE(containment.ok());
    for (const auto &message : containment.findings.messages)
        ADD_FAILURE() << message;
}

// ---- containment fuzz ------------------------------------------------------

/** Random two-thread program (same shape as the epoch-slicer fuzz). */
Machine
randomProgram(uint64_t seed)
{
    Machine machine;
    const auto t0 = machine.addThread("a");
    const auto t1 = machine.addThread("b");
    const auto fn_a = machine.registerFunction("fuzz::alpha");
    const auto fn_b = machine.registerFunction("fuzz::beta");
    const uint64_t heap = machine.alloc(256, "heap");
    const uint64_t pixels = machine.alloc(64, "tile");
    const uint64_t net = machine.alloc(32, "net");

    auto program = [&, fn_a, fn_b](Ctx &ctx, uint64_t thread_seed) {
        Rng r(thread_seed);
        TracedScope top(ctx, fn_a);
        std::vector<Value> vals;
        vals.push_back(ctx.imm(r.below(1000)));
        const size_t steps = 30 + r.below(50);
        for (size_t i = 0; i < steps; ++i) {
            auto pick = [&]() -> Value & {
                return vals[r.below(vals.size())];
            };
            switch (r.below(9)) {
              case 0:
                vals.push_back(ctx.imm(r.below(1 << 20)));
                break;
              case 1:
                vals.push_back(ctx.add(pick(), pick()));
                break;
              case 2:
                vals.push_back(
                    ctx.addi(pick(), static_cast<int64_t>(r.below(9))));
                break;
              case 3:
                ctx.store(heap + 8 * r.below(30), 4, pick());
                break;
              case 4:
                vals.push_back(ctx.load(heap + 8 * r.below(30), 4));
                break;
              case 5:
                ctx.store(pixels + 4 * r.below(15), 4, pick());
                break;
              case 6: {
                TracedScope scope(ctx, fn_b);
                Value flag = ctx.imm(r.below(2));
                Value color = ctx.imm(r.below(256));
                if (ctx.branchIf(flag))
                    ctx.store(pixels + 4 * r.below(15), 4, color);
                break;
              }
              case 7:
                if (r.chance(0.5)) {
                    ctx.store(net, 4, pick());
                    (void)sim::sysSendto(ctx, net, 16);
                } else {
                    ctx.machine().mem().write(net, 4, r.next());
                    (void)sim::sysRecvfrom(ctx, net, 16);
                }
                break;
              case 8: {
                const trace::MemRange ranges[] = {{pixels, 64}};
                ctx.marker(ranges);
                break;
              }
            }
            if (vals.size() > 12)
                vals.erase(vals.begin(),
                           vals.begin() +
                               static_cast<long>(vals.size() - 6));
        }
        const trace::MemRange ranges[] = {{pixels, 64}};
        ctx.marker(ranges);
    };
    machine.post(t0, [&](Ctx &ctx) { program(ctx, seed * 2 + 1); });
    machine.post(t1, [&](Ctx &ctx) { program(ctx, seed * 2 + 2); });
    machine.run();
    return machine;
}

TEST(StaticDepContainment, FuzzDynamicSubsetOfStatic)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        const Machine machine = randomProgram(seed);
        const auto records = machine.records();
        const graph::CfgSet cfgs = buildCfgs(records, machine.symtab());
        graph::ControlDepMap deps = buildControlDeps(cfgs);
        const StaticAnalysis analysis =
            buildStaticAnalysis(records, cfgs, deps);
        Rng r(seed ^ 0xBEEF);

        for (const auto mode : {slicer::CriteriaMode::PixelBuffer,
                                slicer::CriteriaMode::Syscalls}) {
            slicer::SlicerOptions options;
            options.mode = mode;
            options.includeControlDeps = r.chance(0.8);
            options.includeRegisterDeps = r.chance(0.8);
            const auto slice = slicer::computeSlice(
                records, cfgs, deps, machine.pixelCriteria(), options);

            StaticSliceOptions static_options;
            static_options.mode = options.mode;
            static_options.includeControlDeps =
                options.includeControlDeps;
            static_options.includeRegisterDeps =
                options.includeRegisterDeps;
            const auto static_slice = computeStaticSlice(
                analysis, machine.pixelCriteria(), static_options);

            const auto containment = check::checkContainment(
                records, cfgs, machine.symtab(), slice, static_slice);
            EXPECT_TRUE(containment.ok())
                << "seed " << seed << " mode " << int(mode)
                << " control " << options.includeControlDeps
                << " registers " << options.includeRegisterDeps;
            for (const auto &message : containment.findings.messages)
                ADD_FAILURE() << message;
        }
    }
}

// ---- violation reporting ---------------------------------------------------

TEST(StaticDepContainment, ViolationNamesThePcAndEdgeChain)
{
    const Machine machine = randomProgram(1);
    const auto records = machine.records();
    const graph::CfgSet cfgs = buildCfgs(records, machine.symtab());
    graph::ControlDepMap deps = buildControlDeps(cfgs);
    const StaticAnalysis analysis =
        buildStaticAnalysis(records, cfgs, deps);
    const auto slice = slicer::computeSlice(records, cfgs, deps,
                                            machine.pixelCriteria(), {});
    StaticSliceResult static_slice =
        computeStaticSlice(analysis, machine.pixelCriteria(), {});

    // Sabotage: drop the site of the first in-slice record.
    size_t victim = SIZE_MAX;
    for (size_t i = 0; i < records.size(); ++i) {
        if (!records[i].isPseudo() && slice.inSlice[i]) {
            victim = i;
            break;
        }
    }
    ASSERT_NE(victim, SIZE_MAX);
    ASSERT_EQ(static_slice.byFuncPc.erase(StaticSliceResult::key(
                  cfgs.funcOf[victim], records[victim].pc)),
              1u);

    const auto containment = check::checkContainment(
        records, cfgs, machine.symtab(), slice, static_slice);
    EXPECT_FALSE(containment.ok());
    EXPECT_GE(containment.violations, 1u);
    ASSERT_FALSE(containment.findings.messages.empty());
    const std::string &message = containment.findings.messages[0];
    EXPECT_NE(message.find("missing from static slice"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find(format("pc=%u", records[victim].pc)),
              std::string::npos)
        << message;
}

// ---- deterministic function order ------------------------------------------

TEST(StaticDepModel, FunctionOrderIsSortedByEntryPc)
{
    const Machine machine = randomProgram(2);
    const graph::CfgSet cfgs =
        buildCfgs(machine.records(), machine.symtab());
    const auto order = cfgs.functionsByEntryPc();
    EXPECT_EQ(order.size(), cfgs.byFunc.size());
    for (size_t i = 1; i < order.size(); ++i) {
        const auto prev = std::make_pair(cfgs.entryPcOf(order[i - 1]),
                                         order[i - 1]);
        const auto cur =
            std::make_pair(cfgs.entryPcOf(order[i]), order[i]);
        EXPECT_LT(prev, cur) << "order must be strictly increasing";
    }
    // Same trace, second build: identical order.
    const graph::CfgSet again =
        buildCfgs(machine.records(), machine.symtab());
    EXPECT_EQ(again.functionsByEntryPc(), order);
}

} // namespace
} // namespace staticdep
} // namespace webslice
