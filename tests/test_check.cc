/**
 * @file
 * Tests of the verification layer: the graph linter must accept every
 * builder output and flag every mutation of one; the soundness oracle
 * must accept every slice the backward pass produces (in both criteria
 * modes, with and without a value log) and reject corrupted verdicts;
 * the race detector must respect futex and channel ordering; plus value
 * log persistence faults and the criteria overlap-merge regression.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "check/graph_lint.hh"
#include "check/race.hh"
#include "check/soundness.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"
#include "support/rng.hh"
#include "trace/criteria.hh"
#include "trace/run_meta.hh"
#include "trace/value_log.hh"

namespace webslice {
namespace check {
namespace {

using graph::buildCfgs;
using graph::buildControlDeps;
using sim::Ctx;
using sim::Machine;
using sim::TracedScope;
using sim::Value;
using trace::Record;
using trace::RecordKind;

std::string
tempPath(const std::string &stem)
{
    return std::string(::testing::TempDir()) + stem;
}

/**
 * The test_slicer_properties program family, with a value log and
 * optional per-chain syscalls so both criteria modes have criteria:
 * `chains` computation chains over `threads` threads, each storing to
 * its own buffer through data-dependent control flow; chain i is a
 * pixel criterion iff i < live_chains; with_syscalls additionally
 * writes every buffer out through sysWrite.
 */
struct ChainProgram
{
    Machine machine;
    std::vector<uint64_t> buffers;
    std::vector<trace::ThreadId> tids;

    ChainProgram(int chains, int threads, int live_chains, uint64_t seed,
                 bool with_syscalls = false)
    {
        machine.enableValueLog();
        Rng rng(seed);
        for (int t = 0; t < threads; ++t)
            tids.push_back(machine.addThread("t" + std::to_string(t)));
        const auto fn = machine.registerFunction("check::chain");

        for (int c = 0; c < chains; ++c)
            buffers.push_back(machine.alloc(64, "chain"));

        for (int c = 0; c < chains; ++c) {
            const uint64_t buffer = buffers[c];
            const uint64_t iterations = rng.below(6) + 2;
            const uint64_t toggle = rng.below(2);
            machine.post(tids[c % threads],
                         [fn, buffer, iterations, toggle, c,
                          with_syscalls](Ctx &ctx) {
                TracedScope scope(ctx, fn);
                Value acc = ctx.imm(static_cast<uint64_t>(c) + 1);
                Value i = ctx.imm(0);
                Value n = ctx.imm(iterations);
                while (true) {
                    Value more = ctx.ltu(i, n);
                    if (!ctx.branchIf(more))
                        break;
                    acc = ctx.add(acc, i);
                    i = ctx.addi(i, 1);
                }
                Value flag = ctx.imm(toggle);
                if (ctx.branchIf(flag))
                    acc = ctx.muli(acc, 3);
                ctx.store(buffer, 8, acc);
                if (with_syscalls)
                    sim::sysWrite(ctx, buffer, 8);
            });
        }
        machine.post(tids[0], [this, live_chains](Ctx &ctx) {
            for (int c = 0; c < live_chains; ++c) {
                const trace::MemRange ranges[] = {{buffers[c], 8}};
                ctx.marker(ranges);
            }
        });
        machine.run();
    }

    slicer::SliceResult
    slice(const slicer::SlicerOptions &options = {}) const
    {
        const auto cfgs = buildCfgs(machine.records(), machine.symtab());
        const auto deps = buildControlDeps(cfgs);
        return slicer::computeSlice(machine.records(), cfgs, deps,
                                    machine.pixelCriteria(), options);
    }
};

struct ChainParams
{
    int chains;
    int threads;
    int live;
    uint64_t seed;
};

class CheckSweep : public ::testing::TestWithParam<ChainParams>
{
};

// ---- graph linter --------------------------------------------------------

TEST_P(CheckSweep, LinterAcceptsBuilderOutput)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    const auto cfgs =
        buildCfgs(program.machine.records(), program.machine.symtab());
    const auto deps = buildControlDeps(cfgs);
    const auto lint = lintGraphs(program.machine.records(),
                                 program.machine.symtab(), cfgs, &deps);
    EXPECT_TRUE(lint.ok()) << (lint.findings.messages.empty()
                                   ? "?"
                                   : lint.findings.messages.front());
    EXPECT_GT(lint.cfgsChecked, 0u);
    EXPECT_GT(lint.edgesChecked, 0u);
    EXPECT_GT(lint.transitionsReplayed, 0u);
    EXPECT_GT(lint.postdomNodesDiffed, 0u);
    EXPECT_EQ(lint.postdomSkippedCfgs, 0u);
}

/** Mutation fixture: a known program's artifacts, ready to be damaged. */
class LinterMutations : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        program_ = std::make_unique<ChainProgram>(4, 2, 2, 11);
        cfgs_ = buildCfgs(program_->machine.records(),
                          program_->machine.symtab());
        deps_ = buildControlDeps(cfgs_);
    }

    GraphLintResult
    lint()
    {
        return lintGraphs(program_->machine.records(),
                          program_->machine.symtab(), cfgs_, &deps_);
    }

    /** Some CFG with at least one real pc node and edge. */
    graph::Cfg &
    victimCfg()
    {
        for (auto &kv : cfgs_.byFunc) {
            if (kv.second.nodeCount() > 3)
                return kv.second;
        }
        ADD_FAILURE() << "no victim cfg";
        return cfgs_.byFunc.begin()->second;
    }

    std::unique_ptr<ChainProgram> program_;
    graph::CfgSet cfgs_;
    graph::ControlDepMap deps_;
};

TEST_F(LinterMutations, RemovedEdgeFlagged)
{
    graph::Cfg &cfg = victimCfg();
    // Remove one real edge from both mirror lists so the structure stays
    // consistent; the dynamic-coverage diff must still catch it.
    for (size_t a = 2; a < cfg.nodeCount(); ++a) {
        if (cfg.succs[a].empty())
            continue;
        const graph::NodeId b = cfg.succs[a].front();
        cfg.succs[a].erase(cfg.succs[a].begin());
        auto &in = cfg.preds[b];
        in.erase(std::find(in.begin(), in.end(),
                           static_cast<graph::NodeId>(a)));
        break;
    }
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, BrokenPredMirrorFlagged)
{
    graph::Cfg &cfg = victimCfg();
    for (size_t a = 0; a < cfg.nodeCount(); ++a) {
        if (cfg.succs[a].empty())
            continue;
        const graph::NodeId b = cfg.succs[a].front();
        auto &in = cfg.preds[b];
        in.erase(std::find(in.begin(), in.end(),
                           static_cast<graph::NodeId>(a)));
        break;
    }
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, BogusEdgeFlagged)
{
    graph::Cfg &cfg = victimCfg();
    // A self-loop on the first pc node that the trace never executed.
    const graph::NodeId node = 2;
    if (std::find(cfg.succs[node].begin(), cfg.succs[node].end(), node) ==
        cfg.succs[node].end())
        cfg.addEdge(node, node);
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, FlippedBranchFlagFlagged)
{
    graph::Cfg &cfg = victimCfg();
    bool flipped = false;
    for (size_t node = 2; node < cfg.nodeCount() && !flipped; ++node) {
        if (cfg.isBranch[node]) {
            cfg.isBranch[node] = false;
            flipped = true;
        }
    }
    ASSERT_TRUE(flipped);
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, CorruptedAttributionFlagged)
{
    ASSERT_FALSE(cfgs_.funcOf.empty());
    cfgs_.funcOf[cfgs_.funcOf.size() / 2] ^= 1;
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, BogusDependencePairFlagged)
{
    // A pair naming a non-branch pc as the controller.
    const auto &cfg = victimCfg();
    deps_.add(cfg.func, cfg.nodePc[2], cfg.nodePc[2]);
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, DroppedDependencePairFlagged)
{
    ASSERT_GT(deps_.pairCount(), 0u);
    // Round-trip through the text format minus one line: the linter must
    // notice the dependence the walk expects but the map lost.
    const std::string path = tempPath("lint-drop.cdg");
    deps_.save(path);
    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    in.close();
    ASSERT_GT(lines.size(), 2u); // header + at least two entries
    lines.erase(lines.begin() + 1);
    std::ofstream out(path, std::ios::trunc);
    for (const auto &line : lines)
        out << line << '\n';
    out.close();
    deps_.load(path);
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, TamperedStatsFlagged)
{
    ++cfgs_.stats.framesOpened;
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

TEST_F(LinterMutations, SyntheticRenameFlagged)
{
    ASSERT_FALSE(cfgs_.syntheticNames.empty());
    cfgs_.syntheticNames.begin()->second = "<bogus>";
    const auto result = lint();
    EXPECT_FALSE(result.ok());
}

// ---- slice soundness -----------------------------------------------------

TEST_P(CheckSweep, SoundnessAcceptsPixelSlices)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    const auto slice = program.slice();

    SoundnessOptions options;
    options.mode = slicer::CriteriaMode::PixelBuffer;
    const auto sound = checkSliceSoundness(
        program.machine.records(), slice, program.machine.pixelCriteria(),
        program.machine.valueLog(), options);
    EXPECT_TRUE(sound.ok()) << (sound.findings.messages.empty()
                                    ? "?"
                                    : sound.findings.messages.front());
    EXPECT_EQ(sound.recordsReplayed, slice.analyzedWindowEnd);
    if (p.live > 0) {
        EXPECT_GT(sound.criteriaBytesChecked, 0u);
        EXPECT_GT(sound.valueBytesCompared, 0u);
    }
}

TEST_P(CheckSweep, SoundnessAcceptsSyscallSlices)
{
    const auto p = GetParam();
    ChainProgram program(p.chains, p.threads, p.live, p.seed,
                         /*with_syscalls=*/true);
    slicer::SlicerOptions slicer_options;
    slicer_options.mode = slicer::CriteriaMode::Syscalls;
    const auto slice = program.slice(slicer_options);

    SoundnessOptions options;
    options.mode = slicer::CriteriaMode::Syscalls;
    const auto sound = checkSliceSoundness(
        program.machine.records(), slice, program.machine.pixelCriteria(),
        program.machine.valueLog(), options);
    EXPECT_TRUE(sound.ok()) << (sound.findings.messages.empty()
                                    ? "?"
                                    : sound.findings.messages.front());
    EXPECT_GT(sound.criteriaBytesChecked, 0u);
}

TEST_P(CheckSweep, MinimalityProbesAllConfirm)
{
    const auto p = GetParam();
    if (p.live == 0)
        GTEST_SKIP() << "empty slice has nothing to probe";
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    const auto slice = program.slice();

    SoundnessOptions options;
    options.minimalityProbes = 16;
    const auto sound = checkSliceSoundness(
        program.machine.records(), slice, program.machine.pixelCriteria(),
        nullptr, options);
    EXPECT_TRUE(sound.ok()) << (sound.findings.messages.empty()
                                    ? "?"
                                    : sound.findings.messages.front());
    EXPECT_GT(sound.probesRun, 0u);
    EXPECT_EQ(sound.probesConfirmed, sound.probesRun);
}

TEST_P(CheckSweep, DroppedCriterionStoreRejected)
{
    const auto p = GetParam();
    if (p.live == 0)
        GTEST_SKIP() << "no criteria to corrupt";
    ChainProgram program(p.chains, p.threads, p.live, p.seed);
    auto slice = program.slice();

    // Kick the store that produces criterion buffer 0 out of the slice:
    // the criterion byte's provenance turns dirty.
    const auto &records = program.machine.records();
    bool corrupted = false;
    for (size_t i = 0; i < records.size() && !corrupted; ++i) {
        if (records[i].kind == RecordKind::Store &&
            records[i].addr == program.buffers[0] && slice.inSlice[i]) {
            slice.inSlice[i] = 0;
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted);

    const auto sound = checkSliceSoundness(
        program.machine.records(), slice, program.machine.pixelCriteria(),
        program.machine.valueLog(), {});
    EXPECT_FALSE(sound.ok());
    ASSERT_FALSE(sound.findings.messages.empty());
    EXPECT_NE(sound.findings.messages.front().find("not in the slice"),
              std::string::npos);
}

TEST(Soundness, MismatchedVerdictArrayRejected)
{
    ChainProgram program(2, 1, 1, 3);
    auto slice = program.slice();
    slice.inSlice.pop_back();
    const auto sound = checkSliceSoundness(
        program.machine.records(), slice, program.machine.pixelCriteria(),
        nullptr, {});
    EXPECT_FALSE(sound.ok());
}

TEST(Soundness, CorruptedValueLogRejected)
{
    ChainProgram program(2, 1, 2, 5);
    const auto slice = program.slice();

    // Flip a byte inside a marker's criterion snapshot: provenance still
    // holds, so only the value comparison can catch it.
    trace::ValueLog values = *program.machine.valueLog();
    const auto &records = program.machine.records();
    bool corrupted = false;
    for (size_t i = 0; i < records.size() && !corrupted; ++i) {
        if (records[i].kind != RecordKind::Marker)
            continue;
        auto it = values.blobs.find(i);
        if (it != values.blobs.end() && !it->second.empty()) {
            it->second.front() ^= 0xFF;
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted);

    const auto sound = checkSliceSoundness(
        records, slice, program.machine.pixelCriteria(), &values, {});
    EXPECT_FALSE(sound.ok());
}

// ---- race detector -------------------------------------------------------

Record
makeRecord(RecordKind kind, trace::ThreadId tid, trace::Pc pc,
           uint64_t addr = 0, uint32_t aux = 0)
{
    Record rec;
    rec.kind = kind;
    rec.tid = tid;
    rec.pc = pc;
    rec.addr = addr;
    rec.aux = aux;
    return rec;
}

TEST(RaceDetector, UnsynchronizedStoresRace)
{
    const uint64_t x = 0x1000;
    const std::vector<Record> records = {
        makeRecord(RecordKind::Store, 0, 10, x, 8),
        makeRecord(RecordKind::Store, 1, 20, x, 8),
    };
    const auto result = detectRaces(records);
    EXPECT_TRUE(result.anyRaces());
    EXPECT_EQ(result.writeWriteRaces, 1u);
    EXPECT_EQ(result.racyPcPairs, 1u);
    ASSERT_EQ(result.samples.size(), 1u);
    EXPECT_TRUE(result.ok());
}

TEST(RaceDetector, FutexOrdersConflictingStores)
{
    const uint64_t x = 0x1000, futex_word = 0x2000;
    const std::vector<Record> records = {
        makeRecord(RecordKind::Store, 0, 10, x, 8),
        makeRecord(RecordKind::Syscall, 0, 11, 0, 202),
        makeRecord(RecordKind::SyscallRead, 0, 11, futex_word, 4),
        makeRecord(RecordKind::Syscall, 1, 21, 0, 202),
        makeRecord(RecordKind::SyscallRead, 1, 21, futex_word, 4),
        makeRecord(RecordKind::Store, 1, 20, x, 8),
    };
    const auto result = detectRaces(records);
    EXPECT_FALSE(result.anyRaces());
    EXPECT_EQ(result.acquires, 2u);
    EXPECT_TRUE(result.ok());
}

TEST(RaceDetector, DistinctFutexWordsDoNotOrder)
{
    const uint64_t x = 0x1000;
    const std::vector<Record> records = {
        makeRecord(RecordKind::Store, 0, 10, x, 8),
        makeRecord(RecordKind::Syscall, 0, 11, 0, 202),
        makeRecord(RecordKind::SyscallRead, 0, 11, 0x2000, 4),
        makeRecord(RecordKind::Syscall, 1, 21, 0, 202),
        makeRecord(RecordKind::SyscallRead, 1, 21, 0x3000, 4),
        makeRecord(RecordKind::Store, 1, 20, x, 8),
    };
    const auto result = detectRaces(records);
    EXPECT_TRUE(result.anyRaces());
}

TEST(RaceDetector, ChannelOrdersSendBeforeReceive)
{
    const uint64_t x = 0x1000, buf = 0x4000;
    const std::vector<Record> records = {
        makeRecord(RecordKind::Store, 0, 10, x, 8),
        makeRecord(RecordKind::Syscall, 0, 11, 0, 44), // sendto
        makeRecord(RecordKind::SyscallRead, 0, 11, buf, 8),
        makeRecord(RecordKind::Syscall, 1, 21, 0, 45), // recvfrom
        makeRecord(RecordKind::SyscallWrite, 1, 21, buf + 64, 8),
        makeRecord(RecordKind::Load, 1, 20, x, 8),
    };
    const auto result = detectRaces(records);
    EXPECT_FALSE(result.anyRaces());
    EXPECT_EQ(result.releases, 1u);
    EXPECT_EQ(result.acquires, 1u);

    // Without the channel pair, the same accesses race.
    std::vector<Record> unsynced = {records[0], records[5]};
    EXPECT_TRUE(detectRaces(unsynced).anyRaces());
}

TEST(RaceDetector, SamplesDedupByPcPair)
{
    const uint64_t x = 0x1000;
    std::vector<Record> records;
    for (int i = 0; i < 10; ++i) {
        records.push_back(
            makeRecord(RecordKind::Store, 0, 10, x + 16 * i, 8));
        records.push_back(
            makeRecord(RecordKind::Store, 1, 20, x + 16 * i, 8));
    }
    const auto result = detectRaces(records);
    EXPECT_EQ(result.writeWriteRaces, 10u);
    EXPECT_EQ(result.racyPcPairs, 1u);
    EXPECT_EQ(result.samples.size(), 1u);
}

TEST(RaceDetector, WindowEndRespected)
{
    const uint64_t x = 0x1000;
    const std::vector<Record> records = {
        makeRecord(RecordKind::Store, 0, 10, x, 8),
        makeRecord(RecordKind::Store, 1, 20, x, 8),
    };
    RaceOptions options;
    options.windowEnd = 1;
    const auto result = detectRaces(records, options);
    EXPECT_FALSE(result.anyRaces());
    EXPECT_EQ(result.accessesChecked, 1u);
}

TEST(RaceDetector, OrphanPseudoRecordFlagged)
{
    const std::vector<Record> records = {
        makeRecord(RecordKind::SyscallRead, 0, 10, 0x1000, 4),
    };
    const auto result = detectRaces(records);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.findings.total, 1u);
}

TEST(RaceDetector, FutexCriticalSectionsOrderManyGranules)
{
    // Classic lock/unlock bracketing: each round a thread takes the
    // futex, mutates eight shared granules, and releases it. The unlock
    // after the stores is what publishes them to the next lock holder,
    // so the whole trace must come back race-free.
    const uint64_t base = 0x8000, futex_word = 0x9000;
    std::vector<Record> records;
    for (int round = 0; round < 4; ++round) {
        const trace::ThreadId t = round % 2;
        records.push_back(makeRecord(RecordKind::Syscall, t, 30 + t, 0,
                                     202)); // lock
        records.push_back(makeRecord(RecordKind::SyscallRead, t, 30 + t,
                                     futex_word, 4));
        for (int g = 0; g < 8; ++g) {
            records.push_back(makeRecord(RecordKind::Store, t, 40 + t,
                                         base + 8 * g, 8));
        }
        records.push_back(makeRecord(RecordKind::Syscall, t, 50 + t, 0,
                                     202)); // unlock
        records.push_back(makeRecord(RecordKind::SyscallRead, t, 50 + t,
                                     futex_word, 4));
    }
    const auto result = detectRaces(records);
    EXPECT_FALSE(result.anyRaces())
        << (result.samples.empty() ? "?" : result.samples.front());
    // 32 stores plus the 8 futex-word reads, which are accesses too.
    EXPECT_EQ(result.accessesChecked, 40u);
}

// ---- value log persistence ----------------------------------------------

TEST(ValueLog, SaveLoadRoundTrip)
{
    trace::ValueLog log;
    log.values = {1, 2, 3, 0xdeadbeef, 5};
    log.blobs[3] = {0xAA, 0xBB, 0xCC};
    log.blobs[0] = {};

    const std::string path = tempPath("roundtrip.val");
    log.save(path);

    trace::ValueLog loaded;
    loaded.load(path);
    EXPECT_EQ(loaded.values, log.values);
    EXPECT_EQ(loaded.blobs, log.blobs);
    EXPECT_EQ(loaded.valueAt(3), 0xdeadbeefull);
    ASSERT_NE(loaded.blobAt(3), nullptr);
    EXPECT_EQ(loaded.blobAt(1), nullptr);
}

TEST(ValueLogFaults, MissingFileFatal)
{
    trace::ValueLog log;
    EXPECT_EXIT(log.load(tempPath("no-such.val")),
                ::testing::ExitedWithCode(1), "cannot read value log");
}

TEST(ValueLogFaults, BadMagicFatal)
{
    const std::string path = tempPath("badmagic.val");
    std::ofstream(path, std::ios::binary) << "NOTAVLOG and then some";
    trace::ValueLog log;
    EXPECT_EXIT(log.load(path), ::testing::ExitedWithCode(1),
                "bad value log header");
}

TEST(ValueLogFaults, TruncatedFatal)
{
    trace::ValueLog log;
    log.values = {1, 2, 3};
    const std::string path = tempPath("trunc.val");
    log.save(path);
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 5));
    out.close();
    trace::ValueLog fresh;
    EXPECT_EXIT(fresh.load(path), ::testing::ExitedWithCode(1),
                "truncated value log");
}

TEST(ValueLogFaults, TrailingGarbageFatal)
{
    trace::ValueLog log;
    log.values = {7};
    const std::string path = tempPath("trailing.val");
    log.save(path);
    std::ofstream(path, std::ios::binary | std::ios::app) << "extra";
    trace::ValueLog fresh;
    EXPECT_EXIT(fresh.load(path), ::testing::ExitedWithCode(1),
                "trailing garbage");
}

TEST(ValueLogFaults, BlobBeyondRecordCountFatal)
{
    trace::ValueLog log;
    log.values = {1};
    log.blobs[5] = {0x11};
    const std::string path = tempPath("blobidx.val");
    log.save(path);
    trace::ValueLog fresh;
    EXPECT_EXIT(fresh.load(path), ::testing::ExitedWithCode(1),
                "beyond record count");
}

TEST(ValueLog, MachineRecordsValuesAndCriterionSnapshots)
{
    Machine machine;
    machine.enableValueLog();
    const auto tid = machine.addThread("t0");
    const uint64_t buffer = machine.alloc(16, "buf");
    machine.post(tid, [buffer](Ctx &ctx) {
        Value v = ctx.imm(0x1122334455667788ull);
        ctx.store(buffer, 8, v);
        const trace::MemRange ranges[] = {{buffer, 8}};
        ctx.marker(ranges);
    });
    machine.run();

    const trace::ValueLog *log = machine.valueLog();
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->values.size(), machine.records().size());

    const auto &records = machine.records();
    bool saw_marker = false;
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].kind == RecordKind::Store &&
            records[i].addr == buffer) {
            EXPECT_EQ(log->valueAt(i), 0x1122334455667788ull);
        }
        if (records[i].kind == RecordKind::Marker) {
            const auto *blob = log->blobAt(i);
            ASSERT_NE(blob, nullptr);
            ASSERT_EQ(blob->size(), 8u);
            EXPECT_EQ((*blob)[0], 0x88); // little-endian low byte
            saw_marker = true;
        }
    }
    EXPECT_TRUE(saw_marker);
}

// ---- criteria overlap handling (regression) ------------------------------

TEST(CriteriaMerge, OverlappingRangesAreCoalesced)
{
    trace::CriteriaSet criteria;
    criteria.add(1, 100, 8);
    criteria.add(1, 104, 8); // overlaps the tail of the first
    const auto &ranges = criteria.forMarker(1);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].addr, 100u);
    EXPECT_EQ(ranges[0].size, 12u);
    EXPECT_EQ(criteria.totalBytes(), 12u);
}

TEST(CriteriaMerge, DuplicateRangeIsCoalesced)
{
    trace::CriteriaSet criteria;
    criteria.add(2, 100, 8);
    criteria.add(2, 100, 8);
    EXPECT_EQ(criteria.forMarker(2).size(), 1u);
    EXPECT_EQ(criteria.totalBytes(), 8u);
}

TEST(CriteriaMerge, ContainedRangeIsAbsorbed)
{
    trace::CriteriaSet criteria;
    criteria.add(3, 100, 16);
    criteria.add(3, 104, 4);
    const auto &ranges = criteria.forMarker(3);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].addr, 100u);
    EXPECT_EQ(ranges[0].size, 16u);
}

TEST(CriteriaMerge, BridgingRangeMergesBothNeighbors)
{
    trace::CriteriaSet criteria;
    criteria.add(4, 100, 4);
    criteria.add(4, 110, 4);
    criteria.add(4, 102, 10); // overlaps both
    const auto &ranges = criteria.forMarker(4);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].addr, 100u);
    EXPECT_EQ(ranges[0].size, 14u);
}

TEST(CriteriaMerge, AdjacentRangesStaySeparate)
{
    trace::CriteriaSet criteria;
    criteria.add(5, 100, 4);
    criteria.add(5, 104, 4); // touches, does not overlap
    EXPECT_EQ(criteria.forMarker(5).size(), 2u);
    EXPECT_EQ(criteria.totalBytes(), 8u);
}

TEST(CriteriaMerge, EmptyRangeIsDropped)
{
    trace::CriteriaSet criteria;
    criteria.add(6, 100, 0);
    EXPECT_TRUE(criteria.forMarker(6).empty());
    EXPECT_EQ(criteria.markerCount(), 0u);
}

TEST(CriteriaMerge, SliceUnchangedByOverlappingCriteria)
{
    // Two programs with the same trace; one declares the criterion as
    // overlapping fragments, the other as one range. Slices must match.
    const auto build = [](bool fragmented) {
        auto program = std::make_unique<ChainProgram>(2, 1, 0, 9);
        auto &criteria = program->machine.pixelCriteria();
        if (fragmented) {
            criteria.add(0, program->buffers[0], 6);
            criteria.add(0, program->buffers[0] + 4, 4);
        } else {
            criteria.add(0, program->buffers[0], 8);
        }
        return program;
    };
    // Plant a marker record manually via criteria on ordinal 0: the
    // ChainProgram with live=0 emits no markers, so instead compare the
    // merged criteria directly.
    const auto a = build(true);
    const auto b = build(false);
    EXPECT_EQ(a->machine.pixelCriteria().forMarker(0),
              b->machine.pixelCriteria().forMarker(0));
}

// ---- run metadata --------------------------------------------------------

TEST(RunMeta, MissingFileYieldsDefaults)
{
    const auto meta = trace::loadRunMeta(tempPath("no-such.meta"));
    EXPECT_TRUE(meta.benchmark.empty());
    EXPECT_EQ(meta.loadCompleteIndex, SIZE_MAX);
    EXPECT_FALSE(meta.loadOnly);
}

TEST(RunMeta, ParsesAllKeys)
{
    const std::string path = tempPath("ok.meta");
    std::ofstream(path) << "benchmark Amazon Mobile\n"
                        << "loadCompleteIndex 1234\n"
                        << "loadOnly 1\n"
                        << "thread 0 main\n"
                        << "thread 2 raster\n";
    const auto meta = trace::loadRunMeta(path);
    EXPECT_EQ(meta.benchmark, "Amazon Mobile");
    EXPECT_EQ(meta.loadCompleteIndex, 1234u);
    EXPECT_TRUE(meta.loadOnly);
    ASSERT_EQ(meta.threadNames.size(), 3u);
    EXPECT_EQ(meta.threadNames[0], "main");
    EXPECT_EQ(meta.threadNames[2], "raster");
}

TEST(RunMeta, UnknownKeyFatal)
{
    const std::string path = tempPath("bad.meta");
    std::ofstream(path) << "bogus 1\n";
    EXPECT_EXIT(trace::loadRunMeta(path), ::testing::ExitedWithCode(1),
                "unknown key");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CheckSweep,
    ::testing::Values(ChainParams{1, 1, 1, 1}, ChainParams{4, 1, 2, 2},
                      ChainParams{4, 2, 2, 3}, ChainParams{6, 3, 3, 4},
                      ChainParams{8, 2, 0, 5}, ChainParams{8, 4, 8, 6},
                      ChainParams{5, 5, 1, 7}));

} // namespace
} // namespace check
} // namespace webslice
