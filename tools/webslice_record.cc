/**
 * @file
 * webslice-record: run a benchmark session and write its artifacts —
 * the trace, symbol table, criteria sidecar, and a metadata file — the
 * same hand-off the paper's Pin tool performs for the offline profiler.
 *
 *   webslice-record <benchmark> <output-prefix> [--values] [--format=F]
 *   webslice-record --list
 *
 *   benchmark: one of the built-in workloads (--list enumerates them,
 *   one id per line).
 *
 * Writes <prefix>.trc (records), <prefix>.sym (symbols), <prefix>.crit
 * (pixel criteria), <prefix>.meta (thread names + load-complete index).
 * With --values, also <prefix>.val — the value log (one written value
 * per record plus criterion snapshots) that lets webslice-check compare
 * slice replays bit-for-bit. --format selects the trace encoding: v1
 * (default) is the flat record array, v2 the columnar compressed format
 * (the value log follows suit). The trace is always published
 * atomically: written to <prefix>.trc.tmp and renamed into place after
 * an fsync, so a crash mid-record never leaves a loadable truncation.
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/strings.hh"
#include "trace/trace_file.hh"
#include "scenario/run.hh"
#include "workloads/sites.hh"

using namespace webslice;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <benchmark> <output-prefix> [--values] "
                 "[--format=v1|v2]\n"
                 "       %s --list\n"
                 "  benchmark: a built-in workload id (--list "
                 "enumerates them)\n"
                 "  --values: record the value log (<prefix>.val) for "
                 "webslice-check\n"
                 "  --format: trace encoding; v1 = flat records "
                 "(default), v2 = columnar compressed\n",
                 argv0, argv0);
}

int
listBuiltins()
{
    for (const auto &site : workloads::builtinSites())
        std::printf("%s\n", site.id);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--list") == 0)
        return listBuiltins();
    if (argc < 3) {
        usage(argv[0]);
        return 1;
    }
    bool capture_values = false;
    trace::TraceFormat format = trace::TraceFormat::V1;
    for (int a = 3; a < argc; ++a) {
        if (std::strcmp(argv[a], "--values") == 0) {
            capture_values = true;
        } else if (std::strcmp(argv[a], "--format=v1") == 0) {
            format = trace::TraceFormat::V1;
        } else if (std::strcmp(argv[a], "--format=v2") == 0) {
            format = trace::TraceFormat::V2;
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    const workloads::BuiltinSite *builtin =
        workloads::findBuiltinSite(argv[1]);
    if (!builtin) {
        std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n",
                     argv[1]);
        usage(argv[0]);
        return 1;
    }
    workloads::SiteSpec spec = builtin->factory();

    spec.captureValues = capture_values;
    std::fprintf(stderr, "recording '%s'...\n", spec.name.c_str());
    const auto run = scenario::runSite(spec);

    const std::string prefix = argv[2];
    {
        // Write through TraceWriter with the block index enabled so the
        // epoch-parallel slicer can plan equal-work epochs and seek
        // straight to epoch starts without scanning the file. Atomic
        // publication (temp file + fsync + rename) keeps a crashed
        // recording from leaving a half-written <prefix>.trc behind.
        trace::TraceWriter writer(prefix + ".trc", /*block_index=*/true,
                                  format, /*atomic=*/true);
        for (const auto &rec : run.records())
            writer.append(rec);
        writer.close();
    }
    run.machine->symtab().save(prefix + ".sym");
    run.machine->pixelCriteria().save(prefix + ".crit");
    if (capture_values) {
        const auto value_format = format == trace::TraceFormat::V2
                                      ? trace::ValueLogFormat::V2
                                      : trace::ValueLogFormat::V1;
        run.machine->valueLog()->save(prefix + ".val", value_format,
                                      run.records(),
                                      run.machine->pixelCriteria());
    }

    std::ofstream meta(prefix + ".meta");
    if (!meta) {
        std::fprintf(stderr, "cannot write %s.meta\n", prefix.c_str());
        return 1;
    }
    meta << "benchmark " << spec.name << '\n';
    meta << "loadCompleteIndex " << run.loadCompleteIndex << '\n';
    meta << "loadOnly "
         << (spec.actions.empty() && spec.lazyJsBytes == 0 ? 1 : 0)
         << '\n';
    const auto thread_names = run.threadNames();
    for (size_t t = 0; t < thread_names.size(); ++t)
        meta << "thread " << t << ' ' << thread_names[t] << '\n';

    std::fprintf(stderr,
                 "wrote %s.{trc,sym,crit,meta%s}: %s records, %zu "
                 "markers, load complete at index %s\n",
                 prefix.c_str(), capture_values ? ",val" : "",
                 withCommas(run.records().size()).c_str(),
                 run.machine->pixelCriteria().markerCount(),
                 withCommas(run.loadCompleteIndex).c_str());
    return 0;
}
