/**
 * @file
 * webslice-record: run a benchmark session and write its artifacts —
 * the trace, symbol table, criteria sidecar, and a metadata file — the
 * same hand-off the paper's Pin tool performs for the offline profiler.
 *
 *   webslice-record <benchmark> <output-prefix> [--values]
 *
 *   benchmark: amazon-desktop | amazon-mobile | maps | bing | fig2
 *
 * Writes <prefix>.trc (records), <prefix>.sym (symbols), <prefix>.crit
 * (pixel criteria), <prefix>.meta (thread names + load-complete index).
 * With --values, also <prefix>.val — the value log (one written value
 * per record plus criterion snapshots) that lets webslice-check compare
 * slice replays bit-for-bit.
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/strings.hh"
#include "trace/trace_file.hh"
#include "workloads/sites.hh"

using namespace webslice;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <benchmark> <output-prefix> [--values]\n"
                 "  benchmark: amazon-desktop | amazon-mobile | maps | "
                 "bing | fig2\n"
                 "  --values: record the value log (<prefix>.val) for "
                 "webslice-check\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3 && argc != 4) {
        usage(argv[0]);
        return 1;
    }
    bool capture_values = false;
    if (argc == 4) {
        if (std::strcmp(argv[3], "--values") != 0) {
            usage(argv[0]);
            return 1;
        }
        capture_values = true;
    }

    workloads::SiteSpec spec;
    const std::string name = argv[1];
    if (name == "amazon-desktop") {
        spec = workloads::amazonDesktopSpec();
    } else if (name == "amazon-mobile") {
        spec = workloads::amazonMobileSpec();
    } else if (name == "maps") {
        spec = workloads::googleMapsSpec();
    } else if (name == "bing") {
        spec = workloads::bingSpec();
    } else if (name == "fig2") {
        spec = workloads::amazonFigure2Spec();
    } else {
        usage(argv[0]);
        return 1;
    }

    spec.captureValues = capture_values;
    std::fprintf(stderr, "recording '%s'...\n", spec.name.c_str());
    const auto run = workloads::runSite(spec);

    const std::string prefix = argv[2];
    {
        // Write through TraceWriter with the block index enabled so the
        // epoch-parallel slicer can plan equal-work epochs and seek
        // straight to epoch starts without scanning the file.
        trace::TraceWriter writer(prefix + ".trc", /*block_index=*/true);
        for (const auto &rec : run.records())
            writer.append(rec);
        writer.close();
    }
    run.machine->symtab().save(prefix + ".sym");
    run.machine->pixelCriteria().save(prefix + ".crit");
    if (capture_values)
        run.machine->valueLog()->save(prefix + ".val");

    std::ofstream meta(prefix + ".meta");
    if (!meta) {
        std::fprintf(stderr, "cannot write %s.meta\n", prefix.c_str());
        return 1;
    }
    meta << "benchmark " << spec.name << '\n';
    meta << "loadCompleteIndex " << run.loadCompleteIndex << '\n';
    meta << "loadOnly " << (spec.actions.empty() ? 1 : 0) << '\n';
    for (size_t t = 0; t < run.threadNames().size(); ++t)
        meta << "thread " << t << ' ' << run.threadNames()[t] << '\n';

    std::fprintf(stderr,
                 "wrote %s.{trc,sym,crit,meta%s}: %s records, %zu "
                 "markers, load complete at index %s\n",
                 prefix.c_str(), capture_values ? ",val" : "",
                 withCommas(run.records().size()).c_str(),
                 run.machine->pixelCriteria().markerCount(),
                 withCommas(run.loadCompleteIndex).c_str());
    return 0;
}
