/**
 * @file
 * webslice-scenario: the scenario subsystem's command-line front end.
 *
 *   webslice-scenario describe
 *       Enumerate the built-in workloads (one id per line, with a
 *       summary) and the generator's knobs.
 *
 *   webslice-scenario generate --seed N [--knob key=value]... [-o F]
 *   webslice-scenario generate --builtin <id> [-o F]
 *       Deterministically synthesize a scenario (or export a built-in
 *       workload) and print/write its canonical .scn text. The same
 *       seed+knobs always emit the same bytes; the .scn ports of the
 *       paper benchmarks checked in under scenarios/ are --builtin
 *       exports verbatim.
 *
 *   webslice-scenario run <file.scn | builtin-id> <output-prefix>
 *                     [--values] [--format=v1|v2] [--metrics-json F]
 *       Record one scenario: writes <prefix>.trc/.sym/.crit/.meta (and
 *       .val with --values) exactly like webslice-record, so every
 *       downstream tool (webslice-profile, webslice-check,
 *       webslice-static, the service fleet) consumes the artifacts
 *       unchanged.
 *
 *   webslice-scenario sweep --seeds A..B [--knob key=v1,v2]...
 *                     --out-dir D [--values] [--metrics-json F]
 *       Cross-product of every knob value list against every seed; each
 *       member gets a .scn plus its recorded artifacts under D. The
 *       metrics report (schema webslice-scenario-v1) carries one entry
 *       per recording: record count, trace bytes + digest, load index.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "scenario/generator.hh"
#include "scenario/run.hh"
#include "scenario/scenario.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "trace/trace_file.hh"
#include "workloads/sites.hh"

using namespace webslice;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s describe\n"
        "       %s generate --seed N [--knob key=value]... [-o file]\n"
        "       %s generate --builtin <id> [-o file]\n"
        "       %s run <file.scn | builtin-id> <output-prefix>\n"
        "             [--values] [--format=v1|v2] [--metrics-json F]\n"
        "       %s sweep --seeds A..B [--knob key=v1,v2]... --out-dir D\n"
        "             [--values] [--format=v1|v2] [--metrics-json F]\n",
        argv0, argv0, argv0, argv0, argv0);
}

int
describe()
{
    std::printf("built-in sites (webslice-scenario run <id>, "
                "webslice-record <id>):\n");
    for (const auto &site : workloads::builtinSites())
        std::printf("%-16s %s\n", site.id, site.summary);
    std::printf("\ngenerator knobs (--knob key=value):\n%s",
                scenario::describeKnobs().c_str());
    return 0;
}

/** Per-recording stats destined for the metrics report. */
struct RecordingStats
{
    std::string name;
    std::string prefix;
    size_t records = 0;
    size_t loadCompleteIndex = 0;
    uint64_t traceBytes = 0;
    uint64_t traceDigest = 0;
    double recordSeconds = 0.0;
};

/**
 * Record one scenario and publish its artifacts under `prefix`,
 * mirroring webslice-record's hand-off byte for byte.
 */
RecordingStats
recordScenario(const scenario::Scenario &sc, const std::string &prefix,
               bool capture_values, trace::TraceFormat format)
{
    scenario::Scenario run_sc = sc;
    run_sc.site.captureValues = capture_values;

    const auto t0 = std::chrono::steady_clock::now();
    const auto run = scenario::runScenario(run_sc);
    const auto t1 = std::chrono::steady_clock::now();

    {
        trace::TraceWriter writer(prefix + ".trc", /*block_index=*/true,
                                  format, /*atomic=*/true);
        for (const auto &rec : run.records())
            writer.append(rec);
        writer.close();
    }
    run.machine->symtab().save(prefix + ".sym");
    run.machine->pixelCriteria().save(prefix + ".crit");
    if (capture_values) {
        const auto value_format = format == trace::TraceFormat::V2
                                      ? trace::ValueLogFormat::V2
                                      : trace::ValueLogFormat::V1;
        run.machine->valueLog()->save(prefix + ".val", value_format,
                                      run.records(),
                                      run.machine->pixelCriteria());
    }

    std::ofstream meta(prefix + ".meta");
    fatal_if(!meta, "cannot write ", prefix, ".meta");
    meta << "benchmark " << run.spec.name << '\n';
    meta << "loadCompleteIndex " << run.loadCompleteIndex << '\n';
    meta << "loadOnly " << (scenario::isLoadOnly(sc) ? 1 : 0) << '\n';
    const auto thread_names = run.threadNames();
    for (size_t t = 0; t < thread_names.size(); ++t)
        meta << "thread " << t << ' ' << thread_names[t] << '\n';

    RecordingStats stats;
    stats.name = sc.name;
    stats.prefix = prefix;
    stats.records = run.records().size();
    stats.loadCompleteIndex = run.loadCompleteIndex;
    const auto digest = digestFile(prefix + ".trc");
    stats.traceBytes = digest.bytes;
    stats.traceDigest = digest.fnv1a;
    stats.recordSeconds =
        std::chrono::duration<double>(t1 - t0).count();

    std::fprintf(stderr,
                 "recorded '%s' -> %s.{trc,sym,crit,meta%s}: %s "
                 "records\n",
                 sc.name.c_str(), prefix.c_str(),
                 capture_values ? ",val" : "",
                 withCommas(stats.records).c_str());
    return stats;
}

std::string
recordingsJson(const std::vector<RecordingStats> &all)
{
    std::string json = "[";
    for (size_t i = 0; i < all.size(); ++i) {
        const auto &r = all[i];
        json += format(
            "%s\n    {\"name\": \"%s\", \"prefix\": \"%s\", "
            "\"records\": %zu, \"load_complete_index\": %zu, "
            "\"trace_bytes\": %llu, \"trace_digest\": \"%016llx\", "
            "\"record_seconds\": %.3f}",
            i ? "," : "", jsonEscape(r.name).c_str(),
            jsonEscape(r.prefix).c_str(), r.records,
            r.loadCompleteIndex,
            static_cast<unsigned long long>(r.traceBytes),
            static_cast<unsigned long long>(r.traceDigest),
            r.recordSeconds);
    }
    json += "\n  ]";
    return json;
}

void
maybeWriteMetrics(const std::string &path,
                  const std::vector<RecordingStats> &all)
{
    if (path.empty())
        return;
    writeMetricsReport(path, MetricRegistry::global(),
                       "webslice-scenario",
                       {{"recordings", recordingsJson(all)}},
                       "webslice-scenario-v1");
}

/** Load a scenario from a .scn path or a built-in workload id. */
scenario::Scenario
loadScenario(const std::string &what)
{
    if (const auto *builtin = workloads::findBuiltinSite(what))
        return scenario::scenarioFromSpec(builtin->factory());
    return scenario::parseScenarioFile(what);
}

struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** "a,b,c" -> {a, b, c}. */
std::vector<std::string>
splitValues(const std::string &list)
{
    std::vector<std::string> values;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            values.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    values.push_back(cur);
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }
    const std::string cmd = argv[1];

    if (cmd == "describe")
        return describe();

    if (cmd == "generate") {
        uint64_t seed = 1;
        bool have_seed = false;
        scenario::Knobs knobs;
        std::string out_path, builtin_id;
        for (int a = 2; a < argc; ++a) {
            const std::string arg = argv[a];
            if (arg == "--seed" && a + 1 < argc) {
                seed = std::strtoull(argv[++a], nullptr, 0);
                have_seed = true;
            } else if (arg == "--builtin" && a + 1 < argc) {
                builtin_id = argv[++a];
            } else if (arg == "--knob" && a + 1 < argc) {
                const std::string kv = argv[++a];
                const size_t eq = kv.find('=');
                fatal_if(eq == std::string::npos,
                         "--knob needs key=value, got '", kv, "'");
                scenario::applyKnob(knobs, kv.substr(0, eq),
                                    kv.substr(eq + 1));
            } else if (arg == "-o" && a + 1 < argc) {
                out_path = argv[++a];
            } else {
                usage(argv[0]);
                return 1;
            }
        }
        if (have_seed == !builtin_id.empty()) { // exactly one source
            usage(argv[0]);
            return 1;
        }
        scenario::Scenario sc;
        if (!builtin_id.empty()) {
            const auto *builtin = workloads::findBuiltinSite(builtin_id);
            fatal_if(!builtin, "unknown built-in '", builtin_id,
                     "' (see describe)");
            sc = scenario::scenarioFromSpec(builtin->factory());
        } else {
            sc = scenario::generateScenario(seed, knobs);
        }
        const std::string text = scenario::serializeScenario(sc);
        if (out_path.empty()) {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(out_path);
            fatal_if(!out, "cannot write ", out_path);
            out << text;
        }
        return 0;
    }

    if (cmd == "run") {
        if (argc < 4) {
            usage(argv[0]);
            return 1;
        }
        bool capture_values = false;
        trace::TraceFormat trace_format = trace::TraceFormat::V1;
        std::string metrics_path;
        for (int a = 4; a < argc; ++a) {
            const std::string arg = argv[a];
            if (arg == "--values") {
                capture_values = true;
            } else if (arg == "--format=v1") {
                trace_format = trace::TraceFormat::V1;
            } else if (arg == "--format=v2") {
                trace_format = trace::TraceFormat::V2;
            } else if (arg == "--metrics-json" && a + 1 < argc) {
                metrics_path = argv[++a];
            } else {
                usage(argv[0]);
                return 1;
            }
        }
        const auto stats = recordScenario(loadScenario(argv[2]), argv[3],
                                          capture_values, trace_format);
        maybeWriteMetrics(metrics_path, {stats});
        return 0;
    }

    if (cmd == "sweep") {
        uint64_t seed_lo = 1, seed_hi = 0;
        std::vector<SweepAxis> axes;
        std::string out_dir, metrics_path;
        bool capture_values = false;
        trace::TraceFormat trace_format = trace::TraceFormat::V1;
        for (int a = 2; a < argc; ++a) {
            const std::string arg = argv[a];
            if (arg == "--seeds" && a + 1 < argc) {
                const std::string range = argv[++a];
                const size_t dots = range.find("..");
                fatal_if(dots == std::string::npos,
                         "--seeds needs A..B, got '", range, "'");
                seed_lo = std::strtoull(range.c_str(), nullptr, 0);
                seed_hi = std::strtoull(range.c_str() + dots + 2,
                                        nullptr, 0);
                fatal_if(seed_hi < seed_lo, "--seeds range '", range,
                         "' is empty");
            } else if (arg == "--knob" && a + 1 < argc) {
                const std::string kv = argv[++a];
                const size_t eq = kv.find('=');
                fatal_if(eq == std::string::npos,
                         "--knob needs key=v1[,v2...], got '", kv, "'");
                axes.push_back(
                    {kv.substr(0, eq), splitValues(kv.substr(eq + 1))});
            } else if (arg == "--out-dir" && a + 1 < argc) {
                out_dir = argv[++a];
            } else if (arg == "--values") {
                capture_values = true;
            } else if (arg == "--format=v1") {
                trace_format = trace::TraceFormat::V1;
            } else if (arg == "--format=v2") {
                trace_format = trace::TraceFormat::V2;
            } else if (arg == "--metrics-json" && a + 1 < argc) {
                metrics_path = argv[++a];
            } else {
                usage(argv[0]);
                return 1;
            }
        }
        if (out_dir.empty() || seed_hi < seed_lo) {
            usage(argv[0]);
            return 1;
        }

        // Cross-product of the knob value lists (one setting per axis).
        std::vector<scenario::Knobs> settings = {scenario::Knobs{}};
        for (const auto &axis : axes) {
            std::vector<scenario::Knobs> expanded;
            for (const auto &base : settings) {
                for (const auto &value : axis.values) {
                    scenario::Knobs next = base;
                    scenario::applyKnob(next, axis.key, value);
                    expanded.push_back(next);
                }
            }
            settings = std::move(expanded);
        }

        std::vector<RecordingStats> all;
        for (const auto &knobs : settings) {
            for (uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
                const auto sc = scenario::generateScenario(seed, knobs);
                const std::string prefix = format(
                    "%s/%s_seed%llu", out_dir.c_str(),
                    scenario::knobsLabel(knobs).c_str(),
                    static_cast<unsigned long long>(seed));
                {
                    std::ofstream scn(prefix + ".scn");
                    fatal_if(!scn, "cannot write ", prefix,
                             ".scn (does --out-dir exist?)");
                    scn << scenario::serializeScenario(sc);
                }
                all.push_back(recordScenario(
                    sc, prefix, capture_values, trace_format));
            }
        }
        maybeWriteMetrics(metrics_path, all);
        std::fprintf(stderr, "sweep complete: %zu recording(s) in %s\n",
                     all.size(), out_dir.c_str());
        return 0;
    }

    usage(argv[0]);
    return 1;
}
