/**
 * @file
 * webslice-served: the resident slicing service.
 *
 *   webslice-served --socket PATH [--tcp PORT] [--workers N]
 *                   [--queue N] [--cache-bytes N] [--forward-jobs N]
 *                   [--preload PREFIX]... [--metrics-json FILE]
 *
 * Holds parsed sessions (mmap'd trace, CFGs, postdominators, control
 * dependences) in an LRU cache keyed by the recording's artifact
 * digests, so repeated slicing queries against the same recording skip
 * the entire forward pass. Clients (webslice-client, or anything that
 * speaks webslice-serve-v1: 4-byte little-endian length prefix, one
 * JSON value per frame) submit batches of slicing criteria; the batch's
 * queries run concurrently on a bounded scheduler with request dedup,
 * per-query timeouts, and 429-style rejection when the queue is full.
 *
 * SIGTERM/SIGINT shut the daemon down gracefully: the accept loop
 * stops, in-flight requests drain, each connection's pending frames are
 * answered, and the socket file is removed. --metrics-json writes the
 * run report (schema webslice-metrics-v1; '-' for stdout) at exit, so
 * supervised deployments get cache and queue statistics per lifetime.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "service/server.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

using namespace webslice;

namespace {

constexpr char kUsage[] =
    "usage: %s --socket PATH [--tcp PORT] [--workers N] [--queue N]\n"
    "       [--cache-bytes N] [--forward-jobs N] [--no-plan-cache]\n"
    "       [--preload PREFIX] [--metrics-json FILE]\n"
    "       [--shard-id NAME] [--shard-epoch N]\n"
    "\n"
    "  --socket PATH         Unix-domain listening socket (required)\n"
    "  --tcp PORT            also listen on 127.0.0.1:PORT (0 = pick an\n"
    "                        ephemeral port, printed on startup)\n"
    "  --workers N           concurrent query workers (default 2)\n"
    "  --queue N             in-flight request ceiling before submissions\n"
    "                        are rejected (default 64)\n"
    "  --cache-bytes N       session-cache byte budget (default 2 GiB)\n"
    "  --forward-jobs N      threads for a session's forward pass;\n"
    "                        0 = all cores (default)\n"
    "  --no-plan-cache       do not cache epoch transcodes across\n"
    "                        criteria (every query pays the full\n"
    "                        backward pass; benchmarking baseline)\n"
    "  --preload PREFIX      build this recording's session before\n"
    "                        accepting connections (repeatable)\n"
    "  --metrics-json FILE   write the run report at exit ('-' = stdout)\n"
    "  --shard-id NAME       fleet identity stamped on every result and\n"
    "                        status frame (default: none, fields omitted)\n"
    "  --shard-epoch N       shard generation, bumped by the supervisor\n"
    "                        on each restart (default 1)\n";

uint64_t
parseCount(const char *flag, const char *text, uint64_t max_value)
{
    fatal_if(text[0] == '\0', "empty value for ", flag);
    fatal_if(text[0] == '-', "negative value for ", flag, ": '", text, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0', "non-numeric value for ", flag,
             ": '", text, "'");
    fatal_if(errno == ERANGE || value > max_value, "value for ", flag,
             " out of range: '", text, "' (max ", max_value, ")");
    return value;
}

// The signal handler may only do async-signal-safe work; writing one
// byte to the server's shutdown pipe is exactly that.
int g_shutdown_fd = -1;

void
onShutdownSignal(int)
{
    const char byte = 1;
    if (g_shutdown_fd >= 0)
        (void)!write(g_shutdown_fd, &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerOptions options;
    std::vector<std::string> preload;
    std::string metrics_json;
    for (int a = 1; a < argc; ++a) {
        const auto need_value = [&](const char *flag) -> const char * {
            fatal_if(a + 1 >= argc, flag, " requires a value");
            return argv[++a];
        };
        if (!std::strcmp(argv[a], "--socket")) {
            options.socketPath = need_value("--socket");
        } else if (!std::strcmp(argv[a], "--tcp")) {
            options.tcpPort = static_cast<int>(
                parseCount("--tcp", need_value("--tcp"), 65535));
        } else if (!std::strcmp(argv[a], "--workers")) {
            options.workers = static_cast<int>(parseCount(
                "--workers", need_value("--workers"), 1u << 10));
        } else if (!std::strcmp(argv[a], "--queue")) {
            options.maxQueue = static_cast<size_t>(parseCount(
                "--queue", need_value("--queue"), 1u << 20));
        } else if (!std::strcmp(argv[a], "--cache-bytes")) {
            options.cacheBytes = parseCount(
                "--cache-bytes", need_value("--cache-bytes"), UINT64_MAX);
        } else if (!std::strcmp(argv[a], "--forward-jobs")) {
            options.forwardJobs = static_cast<int>(
                parseCount("--forward-jobs",
                           need_value("--forward-jobs"), 1u << 16));
        } else if (!std::strcmp(argv[a], "--no-plan-cache")) {
            options.usePlans = false;
        } else if (!std::strcmp(argv[a], "--preload")) {
            preload.push_back(need_value("--preload"));
        } else if (!std::strcmp(argv[a], "--metrics-json")) {
            metrics_json = need_value("--metrics-json");
        } else if (!std::strcmp(argv[a], "--shard-id")) {
            options.shardId = need_value("--shard-id");
        } else if (!std::strcmp(argv[a], "--shard-epoch")) {
            options.shardEpoch = parseCount(
                "--shard-epoch", need_value("--shard-epoch"),
                UINT64_MAX);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         argv[a]);
            std::fprintf(stderr, kUsage, argv[0]);
            return 1;
        }
    }
    if (options.socketPath.empty()) {
        std::fprintf(stderr, "%s: --socket is required\n", argv[0]);
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
    }

    service::Server server(options);

    for (const std::string &prefix : preload) {
        std::fprintf(stderr, "webslice-served: preloading %s\n",
                     prefix.c_str());
        try {
            server.cache().acquire(prefix);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s: preload of %s failed: %s\n",
                         argv[0], prefix.c_str(), e.what());
            return 1;
        }
    }

    g_shutdown_fd = server.notifyShutdownFd();
    struct sigaction action {};
    action.sa_handler = onShutdownSignal;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    std::fprintf(stderr, "webslice-served: listening on %s",
                 options.socketPath.c_str());
    if (server.boundTcpPort() >= 0)
        std::fprintf(stderr, " and 127.0.0.1:%d", server.boundTcpPort());
    std::fprintf(stderr, "\n");

    server.run();

    std::fprintf(stderr, "webslice-served: drained, shutting down\n");
    if (!metrics_json.empty()) {
        writeMetricsReport(metrics_json, MetricRegistry::global(),
                           "webslice-served");
    }
    return 0;
}
