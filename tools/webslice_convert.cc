/**
 * @file
 * webslice-convert: transcode a recorded session between trace formats.
 *
 *   webslice-convert <input-prefix> <output-prefix> [--to=v1|v2]
 *                    [--verify]
 *
 * Reads <input-prefix>.trc (either format) and writes
 * <output-prefix>.trc in the requested format (default: the other
 * format from the input's). The value log, when present, is transcoded
 * to the matching sidecar format; the text sidecars (.sym, .crit,
 * .meta) are copied verbatim, so the converted prefix is a complete,
 * sliceable session. Output files are published atomically (temp file +
 * rename), and the record stream — and therefore every slice digest
 * computed from it — is preserved bit-identically.
 *
 * --verify reloads both prefixes after conversion and compares every
 * record and every value-log entry byte for byte, failing loudly on
 * the first difference.
 *
 * The tool prints the before/after trace sizes and the compression
 * ratio, which CI's trace-format job asserts against.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "support/logging.hh"
#include "support/strings.hh"
#include "trace/criteria.hh"
#include "trace/trace_file.hh"
#include "trace/value_log.hh"

using namespace webslice;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <input-prefix> <output-prefix> "
                 "[--to=v1|v2] [--verify]\n"
                 "  --to: target trace format; defaults to the format "
                 "the input is not\n"
                 "  --verify: reload both prefixes and compare "
                 "byte-for-byte\n",
                 argv0);
}

uint64_t
fileBytes(const std::string &path)
{
    struct stat st;
    fatal_if(::stat(path.c_str(), &st) != 0, "cannot stat ", path);
    return static_cast<uint64_t>(st.st_size);
}

bool
exists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** Copy a sidecar verbatim via a temp file + rename. */
void
copyFile(const std::string &from, const std::string &to)
{
    std::ifstream in(from, std::ios::binary);
    fatal_if(!in, "cannot read ", from);
    const std::string tmp = to + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        fatal_if(!out, "cannot write ", tmp);
        out << in.rdbuf();
        fatal_if(!out, "short write copying ", from, " to ", tmp);
    }
    fatal_if(std::rename(tmp.c_str(), to.c_str()) != 0,
             "cannot rename ", tmp, " into place as ", to);
}

bool
sameRecords(const trace::Record &a, const trace::Record &b)
{
    // Field-wise, not memcmp: the 32-byte Record carries 4 bytes of
    // struct padding whose content v1 files do not define.
    return a.addr == b.addr && a.pc == b.pc && a.aux == b.aux &&
           a.tid == b.tid && a.kind == b.kind && a.flags == b.flags &&
           a.rr0 == b.rr0 && a.rr1 == b.rr1 && a.rr2 == b.rr2 &&
           a.rw == b.rw;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage(argv[0]);
        return 1;
    }
    const std::string in_prefix = argv[1];
    const std::string out_prefix = argv[2];
    bool verify = false;
    bool to_set = false;
    trace::TraceFormat to = trace::TraceFormat::V2;
    for (int a = 3; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--verify")) {
            verify = true;
        } else if (!std::strcmp(argv[a], "--to=v1")) {
            to = trace::TraceFormat::V1;
            to_set = true;
        } else if (!std::strcmp(argv[a], "--to=v2")) {
            to = trace::TraceFormat::V2;
            to_set = true;
        } else {
            usage(argv[0]);
            return 1;
        }
    }
    fatal_if(in_prefix == out_prefix,
             "input and output prefixes must differ");

    const std::string in_trace = in_prefix + ".trc";
    const std::string out_trace = out_prefix + ".trc";
    const trace::TraceFormat from = trace::sniffTraceFormat(in_trace);
    if (!to_set) {
        to = from == trace::TraceFormat::V1 ? trace::TraceFormat::V2
                                            : trace::TraceFormat::V1;
    }

    // ---- trace ---------------------------------------------------------
    const std::vector<trace::Record> records = trace::loadTrace(in_trace);
    {
        // Block index on for v1 so the epoch planner keeps its seeks;
        // the v2 index is structural. Atomic: a crashed conversion
        // leaves no partial .trc under the output prefix.
        trace::TraceWriter writer(out_trace, /*block_index=*/true, to,
                                  /*atomic=*/true);
        for (const auto &rec : records)
            writer.append(rec);
        writer.close();
    }

    // ---- value log -----------------------------------------------------
    const std::string in_values = in_prefix + ".val";
    const bool have_values = exists(in_values);
    if (have_values) {
        trace::ValueLog values;
        values.load(in_values, records);
        trace::CriteriaSet criteria;
        fatal_if(!exists(in_prefix + ".crit"),
                 "value log present but no criteria sidecar at ",
                 in_prefix, ".crit; cannot transcode snapshots");
        criteria.load(in_prefix + ".crit");
        values.save(out_prefix + ".val",
                    to == trace::TraceFormat::V2
                        ? trace::ValueLogFormat::V2
                        : trace::ValueLogFormat::V1,
                    records, criteria);
    }

    // ---- text sidecars -------------------------------------------------
    for (const char *ext : {".sym", ".crit", ".meta"}) {
        if (exists(in_prefix + ext))
            copyFile(in_prefix + ext, out_prefix + ext);
    }

    // ---- verify --------------------------------------------------------
    if (verify) {
        const auto reloaded = trace::loadTrace(out_trace);
        fatal_if(reloaded.size() != records.size(), "verify failed: ",
                 out_trace, " holds ", reloaded.size(), " records, ",
                 in_trace, " holds ", records.size());
        for (size_t i = 0; i < records.size(); ++i) {
            fatal_if(!sameRecords(records[i], reloaded[i]),
                     "verify failed: record ", i, " differs between ",
                     in_trace, " and ", out_trace);
        }
        if (have_values) {
            trace::ValueLog a, b;
            a.load(in_values, records);
            b.load(out_prefix + ".val", reloaded);
            fatal_if(a.values != b.values, "verify failed: value "
                     "arrays differ between ", in_prefix, ".val and ",
                     out_prefix, ".val");
            fatal_if(a.blobs.size() != b.blobs.size(), "verify failed: "
                     "blob counts differ between ", in_prefix,
                     ".val and ", out_prefix, ".val");
            for (const auto &kv : a.blobs) {
                const auto *blob = b.blobAt(kv.first);
                fatal_if(!blob || *blob != kv.second, "verify failed: "
                         "blob at record ", kv.first, " differs "
                         "between ", in_prefix, ".val and ", out_prefix,
                         ".val");
            }
        }
        std::fprintf(stderr, "verify: records%s bit-identical\n",
                     have_values ? " and value log" : "");
    }

    const uint64_t in_bytes = fileBytes(in_trace);
    const uint64_t out_bytes = fileBytes(out_trace);
    std::printf("%s (v%d, %s bytes) -> %s (v%d, %s bytes), ratio "
                "%.2fx\n",
                in_trace.c_str(), static_cast<int>(from),
                withCommas(in_bytes).c_str(), out_trace.c_str(),
                static_cast<int>(to), withCommas(out_bytes).c_str(),
                out_bytes ? static_cast<double>(in_bytes) /
                                static_cast<double>(out_bytes)
                          : 0.0);
    if (have_values) {
        std::printf("%s.val (%s bytes) -> %s.val (%s bytes)\n",
                    in_prefix.c_str(),
                    withCommas(fileBytes(in_values)).c_str(),
                    out_prefix.c_str(),
                    withCommas(fileBytes(out_prefix + ".val")).c_str());
    }
    return 0;
}
