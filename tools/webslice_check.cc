/**
 * @file
 * webslice-check: the verification layer's front end.
 *
 *   webslice-check <prefix> [--syscalls] [--no-window] [--end N]
 *                  [--jobs N] [--probes N] [--fail-on-race]
 *                  [--cdg FILE] [--dump-cdg FILE] [--metrics-json FILE]
 *
 * Reads the artifacts recorded by webslice-record (<prefix>.trc/.sym/
 * .crit/.meta, plus <prefix>.val when present) and runs three independent
 * passes over them:
 *
 *  1. the graph linter — CFG well-formedness, an independent re-derivation
 *     of the forward pass diffed edge-by-edge, a naive postdominator
 *     reference diffed against the production algorithm, and a
 *     control-dependence cross-check;
 *  2. the slice soundness checker — a forward provenance replay proving
 *     that re-executing only in-slice instructions reproduces every
 *     criterion bit-identically, plus drop-one minimality probes;
 *  3. the trace race detector — vector-clock happens-before over the
 *     per-thread streams, reporting conflicting accesses not ordered by
 *     any futex or channel synchronization;
 *  4. the containment invariant — a full static dependence analysis over
 *     the same CFGs (staticdep/) whose backward slice must contain every
 *     dynamic-slice instruction; a violation names the offending pc and
 *     the dynamic edge chain the static analysis failed to cover.
 *
 * Verification findings exit 2 with pointed diagnostics; races are
 * reported as evidence (the simulated browser's spinning mutexes make
 * them expected) and only affect the exit code under --fail-on-race.
 * --metrics-json writes the machine-readable webslice-check-v1 report.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "check/containment.hh"
#include "check/graph_lint.hh"
#include "check/race.hh"
#include "check/soundness.hh"
#include "staticdep/slice.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"
#include "trace/artifacts.hh"
#include "trace/run_meta.hh"
#include "trace/trace_file.hh"
#include "trace/value_log.hh"

using namespace webslice;

namespace {

constexpr char kUsage[] =
    "usage: %s <prefix> [--syscalls] [--no-window] [--end N] [--jobs N]\n"
    "       [--backward-jobs N] [--probes N] [--fail-on-race] [--cdg FILE]\n"
    "       [--dump-cdg FILE]\n"
    "       [--metrics-json FILE]\n"
    "\n"
    "  --syscalls            verify the syscall-criteria slice instead of\n"
    "                        the pixel-buffer slice\n"
    "  --no-window           ignore the metadata load-complete window\n"
    "  --end N               analyze records [0, N) regardless of metadata\n"
    "  --jobs N              forward-pass worker threads; 0 = all cores\n"
    "  --backward-jobs N     backward-pass worker threads; >1 verifies the\n"
    "                        epoch-parallel slicer end to end\n"
    "  --probes N            drop-one minimality probes (default 2)\n"
    "  --fail-on-race        exit nonzero when data races are detected\n"
    "  --cdg FILE            audit this control-dependence map instead of\n"
    "                        recomputing one\n"
    "  --dump-cdg FILE       save the computed control-dependence map\n"
    "  --metrics-json FILE   write the webslice-check-v1 report\n";

/**
 * Parse a non-negative decimal integer flag value; anything else — empty,
 * negative, non-numeric, trailing garbage, or out of range — is a usage
 * error that exits 1.
 */
uint64_t
parseCount(const char *flag, const char *text, uint64_t max_value)
{
    fatal_if(text[0] == '\0', "empty value for ", flag);
    fatal_if(text[0] == '-', "negative value for ", flag, ": '", text, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0', "non-numeric value for ", flag,
             ": '", text, "'");
    fatal_if(errno == ERANGE || value > max_value, "value for ", flag,
             " out of range: '", text, "' (max ", max_value, ")");
    return value;
}

std::string
findingsJson(const check::Findings &findings)
{
    std::ostringstream out;
    out << "{\"total\": " << findings.total << ", \"messages\": [";
    for (size_t i = 0; i < findings.messages.size(); ++i) {
        if (i)
            out << ", ";
        out << "\"" << jsonEscape(findings.messages[i]) << "\"";
    }
    out << "]}";
    return out.str();
}

std::string
graphLintJson(const check::GraphLintResult &lint)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"ok\": " << (lint.ok() ? "true" : "false") << ",\n"
        << "    \"cfgs_checked\": " << lint.cfgsChecked << ",\n"
        << "    \"nodes_checked\": " << lint.nodesChecked << ",\n"
        << "    \"edges_checked\": " << lint.edgesChecked << ",\n"
        << "    \"transitions_replayed\": " << lint.transitionsReplayed
        << ",\n"
        << "    \"postdom_nodes_diffed\": " << lint.postdomNodesDiffed
        << ",\n"
        << "    \"postdom_skipped_cfgs\": " << lint.postdomSkippedCfgs
        << ",\n"
        << "    \"dep_pairs_checked\": " << lint.depPairsChecked << ",\n"
        << "    \"findings\": " << findingsJson(lint.findings) << "\n  }";
    return out.str();
}

std::string
soundnessJson(const check::SoundnessResult &sound, bool had_values)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"ok\": " << (sound.ok() ? "true" : "false") << ",\n"
        << "    \"records_replayed\": " << sound.recordsReplayed << ",\n"
        << "    \"in_slice_replayed\": " << sound.inSliceReplayed << ",\n"
        << "    \"criteria_bytes_checked\": " << sound.criteriaBytesChecked
        << ",\n"
        << "    \"criteria_bytes_pristine\": "
        << sound.criteriaBytesPristine << ",\n"
        << "    \"value_log_present\": " << (had_values ? "true" : "false")
        << ",\n"
        << "    \"value_bytes_compared\": " << sound.valueBytesCompared
        << ",\n"
        << "    \"probes_run\": " << sound.probesRun << ",\n"
        << "    \"probes_confirmed\": " << sound.probesConfirmed << ",\n"
        << "    \"findings\": " << findingsJson(sound.findings) << "\n  }";
    return out.str();
}

std::string
racesJson(const check::RaceResult &races)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"accesses_checked\": " << races.accessesChecked << ",\n"
        << "    \"granules_tracked\": " << races.granulesTracked << ",\n"
        << "    \"acquires\": " << races.acquires << ",\n"
        << "    \"releases\": " << races.releases << ",\n"
        << "    \"write_write_races\": " << races.writeWriteRaces << ",\n"
        << "    \"read_write_races\": " << races.readWriteRaces << ",\n"
        << "    \"racy_pc_pairs\": " << races.racyPcPairs << ",\n"
        << "    \"samples\": [";
    for (size_t i = 0; i < races.samples.size(); ++i) {
        if (i)
            out << ", ";
        out << "\"" << jsonEscape(races.samples[i]) << "\"";
    }
    out << "],\n"
        << "    \"findings\": " << findingsJson(races.findings) << "\n  }";
    return out.str();
}

std::string
containmentJson(const check::ContainmentResult &containment,
                const staticdep::StaticSliceResult &static_slice)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"ok\": " << (containment.ok() ? "true" : "false") << ",\n"
        << "    \"instructions_checked\": "
        << containment.instructionsChecked << ",\n"
        << "    \"in_slice_checked\": " << containment.inSliceChecked
        << ",\n"
        << "    \"violations\": " << containment.violations << ",\n"
        << "    \"static_sites\": " << static_slice.siteUniverse << ",\n"
        << "    \"static_included\": " << static_slice.includedSites
        << ",\n"
        << "    \"static_data_edges\": " << static_slice.dataEdges << ",\n"
        << "    \"static_control_edges\": " << static_slice.controlEdges
        << ",\n"
        << "    \"static_call_edges\": " << static_slice.callEdges << ",\n"
        << "    \"findings\": " << findingsJson(containment.findings)
        << "\n  }";
    return out.str();
}

void
printFindings(const check::Findings &findings)
{
    for (const std::string &message : findings.messages)
        std::printf("    %s\n", message.c_str());
    if (findings.total > findings.messages.size()) {
        std::printf("    ... and %llu more\n",
                    static_cast<unsigned long long>(
                        findings.total - findings.messages.size()));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
    }
    const std::string prefix = argv[1];
    if (!prefix.empty() && prefix[0] == '-') {
        std::fprintf(stderr, "%s: first argument must be the artifact "
                             "prefix, got flag '%s'\n",
                     argv[0], prefix.c_str());
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
    }

    slicer::SlicerOptions slice_options;
    bool use_window = true;
    bool fail_on_race = false;
    size_t end_override = SIZE_MAX;
    size_t probes = 2;
    std::string cdg_in, cdg_out, metrics_json;
    for (int a = 2; a < argc; ++a) {
        const auto need_value = [&](const char *flag) -> const char * {
            fatal_if(a + 1 >= argc, flag, " requires a value");
            return argv[++a];
        };
        if (!std::strcmp(argv[a], "--syscalls")) {
            slice_options.mode = slicer::CriteriaMode::Syscalls;
        } else if (!std::strcmp(argv[a], "--no-window")) {
            use_window = false;
        } else if (!std::strcmp(argv[a], "--end")) {
            end_override = static_cast<size_t>(
                parseCount("--end", need_value("--end"), SIZE_MAX));
        } else if (!std::strcmp(argv[a], "--jobs")) {
            slice_options.jobs = static_cast<int>(parseCount(
                "--jobs", need_value("--jobs"), 1u << 16));
        } else if (!std::strcmp(argv[a], "--backward-jobs")) {
            slice_options.backwardJobs = static_cast<int>(
                parseCount("--backward-jobs",
                           need_value("--backward-jobs"), 1u << 16));
        } else if (!std::strcmp(argv[a], "--probes")) {
            probes = static_cast<size_t>(parseCount(
                "--probes", need_value("--probes"), 1u << 20));
        } else if (!std::strcmp(argv[a], "--fail-on-race")) {
            fail_on_race = true;
        } else if (!std::strcmp(argv[a], "--cdg")) {
            cdg_in = need_value("--cdg");
        } else if (!std::strcmp(argv[a], "--dump-cdg")) {
            cdg_out = need_value("--dump-cdg");
        } else if (!std::strcmp(argv[a], "--metrics-json")) {
            metrics_json = need_value("--metrics-json");
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         argv[a]);
            std::fprintf(stderr, kUsage, argv[0]);
            return 1;
        }
    }

    // ---- load artifacts ----------------------------------------------------
    trace::ArtifactSidecars sidecars;
    trace::ValueLog values;
    bool have_values = false;
    std::unique_ptr<trace::MappedTrace> mapped;
    {
        ScopedPhase phase("load");
        sidecars = trace::loadArtifactSidecars(prefix);
        mapped = std::make_unique<trace::MappedTrace>(prefix + ".trc");
        const std::string value_path = prefix + ".val";
        if (std::ifstream(value_path).good()) {
            // The records overload handles both sidecar formats; v2
            // reconstructs marker snapshots by checkpointed replay.
            values.load(value_path, mapped->records());
            have_values = true;
        }
    }
    trace::SymbolTable &symtab = sidecars.symtab;
    trace::CriteriaSet &criteria = sidecars.criteria;
    trace::RunMeta &meta = sidecars.meta;
    const auto records = mapped->records();

    size_t window = records.size();
    if (use_window && meta.loadOnly && meta.loadCompleteIndex != SIZE_MAX)
        window = std::min(window, meta.loadCompleteIndex);
    if (end_override != SIZE_MAX)
        window = std::min(window, end_override);
    slice_options.endIndex = window;

    std::printf("%s: %s, %zu records, window %zu\n", prefix.c_str(),
                meta.benchmark.empty() ? "(no metadata)"
                                       : meta.benchmark.c_str(),
                records.size(), window);

    // ---- pass 1: graph linter ----------------------------------------------
    graph::CfgSet cfgs;
    graph::ControlDepMap deps;
    check::GraphLintResult lint;
    {
        ScopedPhase phase("graph-lint");
        cfgs = graph::buildCfgs(records, symtab, slice_options.jobs);
        if (cdg_in.empty())
            deps = graph::buildControlDeps(cfgs, slice_options.jobs);
        else
            deps.load(cdg_in);
        if (!cdg_out.empty())
            deps.save(cdg_out);
        lint = check::lintGraphs(records, symtab, cfgs, &deps);
    }
    std::printf("graph lint: %s — %llu cfgs, %llu edges, %llu "
                "transitions replayed, %llu postdom nodes diffed, %llu "
                "dependence pairs\n",
                lint.ok() ? "clean"
                          : format("%llu findings",
                                   static_cast<unsigned long long>(
                                       lint.findings.total))
                                .c_str(),
                static_cast<unsigned long long>(lint.cfgsChecked),
                static_cast<unsigned long long>(lint.edgesChecked),
                static_cast<unsigned long long>(lint.transitionsReplayed),
                static_cast<unsigned long long>(lint.postdomNodesDiffed),
                static_cast<unsigned long long>(lint.depPairsChecked));
    printFindings(lint.findings);

    // ---- pass 2: slice + soundness replay ----------------------------------
    slicer::SliceResult slice;
    {
        ScopedPhase phase("slice");
        slice = slicer::computeSlice(records, cfgs, deps, criteria,
                                     slice_options);
    }
    check::SoundnessResult sound;
    {
        ScopedPhase phase("soundness");
        check::SoundnessOptions sound_options;
        sound_options.mode = slice_options.mode;
        sound_options.minimalityProbes = probes;
        sound = check::checkSliceSoundness(
            records, slice, criteria, have_values ? &values : nullptr,
            sound_options);
    }
    std::printf("soundness (%s): %s — %llu in-slice of %llu replayed, "
                "%llu criterion bytes (%llu pristine), %llu value bytes "
                "compared, %llu/%llu probes confirmed\n",
                slice_options.mode == slicer::CriteriaMode::PixelBuffer
                    ? "pixel buffers"
                    : "system calls",
                sound.ok() ? "clean"
                           : format("%llu findings",
                                    static_cast<unsigned long long>(
                                        sound.findings.total))
                                 .c_str(),
                static_cast<unsigned long long>(sound.inSliceReplayed),
                static_cast<unsigned long long>(sound.recordsReplayed),
                static_cast<unsigned long long>(sound.criteriaBytesChecked),
                static_cast<unsigned long long>(
                    sound.criteriaBytesPristine),
                static_cast<unsigned long long>(sound.valueBytesCompared),
                static_cast<unsigned long long>(sound.probesConfirmed),
                static_cast<unsigned long long>(sound.probesRun));
    printFindings(sound.findings);

    // ---- pass 3: race detector ---------------------------------------------
    check::RaceResult races;
    {
        ScopedPhase phase("races");
        check::RaceOptions race_options;
        race_options.windowEnd = window;
        races = check::detectRaces(records, race_options);
    }
    std::printf("races: %llu write/write, %llu read/write across %llu pc "
                "pairs (%llu accesses, %llu granules, %llu acquires)%s\n",
                static_cast<unsigned long long>(races.writeWriteRaces),
                static_cast<unsigned long long>(races.readWriteRaces),
                static_cast<unsigned long long>(races.racyPcPairs),
                static_cast<unsigned long long>(races.accessesChecked),
                static_cast<unsigned long long>(races.granulesTracked),
                static_cast<unsigned long long>(races.acquires),
                races.anyRaces()
                    ? " — unordered conflicts are evidence for the "
                      "serialized-replay assumption"
                    : "");
    for (const std::string &sample : races.samples)
        std::printf("    %s\n", sample.c_str());
    printFindings(races.findings);

    // ---- pass 4: static slice containment ----------------------------------
    staticdep::StaticSliceResult static_slice;
    check::ContainmentResult containment;
    {
        ScopedPhase phase("containment");
        staticdep::ModelOptions model_options;
        model_options.endIndex = window;
        const staticdep::StaticAnalysis static_analysis =
            staticdep::buildStaticAnalysis(records, cfgs, deps,
                                           model_options);
        staticdep::StaticSliceOptions static_options;
        static_options.mode = slice_options.mode;
        static_options.includeControlDeps =
            slice_options.includeControlDeps;
        static_options.includeRegisterDeps =
            slice_options.includeRegisterDeps;
        static_slice = staticdep::computeStaticSlice(static_analysis,
                                                     criteria,
                                                     static_options);
        staticdep::publishStaticSliceMetrics(static_slice);
        containment = check::checkContainment(records, cfgs, symtab, slice,
                                              static_slice);
    }
    std::printf("containment: %s — %llu in-slice of %llu instructions "
                "inside a static slice of %llu/%llu sites (%.1f%%)\n",
                containment.ok()
                    ? "dynamic ⊆ static"
                    : format("%llu violations",
                             static_cast<unsigned long long>(
                                 containment.violations))
                          .c_str(),
                static_cast<unsigned long long>(
                    containment.inSliceChecked),
                static_cast<unsigned long long>(
                    containment.instructionsChecked),
                static_cast<unsigned long long>(
                    static_slice.includedSites),
                static_cast<unsigned long long>(static_slice.siteUniverse),
                static_slice.slicePercent());
    printFindings(containment.findings);

    if (!metrics_json.empty()) {
        const std::vector<std::pair<std::string, std::string>> extras = {
            {"graph_lint", graphLintJson(lint)},
            {"soundness", soundnessJson(sound, have_values)},
            {"races", racesJson(races)},
            {"containment", containmentJson(containment, static_slice)},
            {"artifacts",
             trace::artifactDigestsJson(prefix, /*include_values=*/true)},
        };
        writeMetricsReport(metrics_json, MetricRegistry::global(),
                           "webslice-check", extras,
                           "webslice-check-v1");
    }

    const uint64_t violations = lint.findings.total +
                                sound.findings.total +
                                races.findings.total +
                                containment.findings.total;
    if (violations > 0) {
        std::fprintf(stderr, "webslice-check: %llu violations\n",
                     static_cast<unsigned long long>(violations));
        return 2;
    }
    if (fail_on_race && races.anyRaces()) {
        std::fprintf(stderr, "webslice-check: data races detected and "
                             "--fail-on-race given\n");
        return 2;
    }
    std::printf("webslice-check: all invariants hold\n");
    return 0;
}
