/**
 * @file
 * webslice-static: static dependence analysis over recorded artifacts.
 *
 *   webslice-static <prefix> [--criteria pixel|syscalls] [--no-window]
 *                   [--end N] [--jobs N] [--backward-jobs N]
 *                   [--dump-pdg FILE] [--metrics-json FILE] [--progress]
 *
 * Reads <prefix>.trc/.sym/.crit/.meta, builds the forward-pass CFGs and
 * control dependences, then runs BOTH slicers over the same analyzed
 * window: the dynamic backward slicer (bit-identical to webslice-profile
 * for the same flags) and the static PDG walk (staticdep/). The report
 * prints the static slice size, asserts the containment invariant
 * (dynamic ⊆ static; any violation exits 2 with the offending pc and
 * the dynamic edge chain the static analysis failed to cover), and
 * renders the Figure-5-style contrast that splits non-slice work into
 * statically-removable vs dynamically-only-unnecessary, each with
 * data/control sub-counts.
 *
 * --dump-pdg FILE writes the static PDG node table (deterministic
 * order, slice membership flagged) for offline inspection.
 * --metrics-json FILE writes the machine-readable run report (schema
 * webslice-static-v1): phase spans, pipeline counters, the dynamic
 * slice statistics (including the in_slice FNV-1a digest so CI can
 * assert bit-identity against webslice-profile), the static slice and
 * containment sections, and the contrast breakdown.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "analysis/categorize.hh"
#include "analysis/report.hh"
#include "check/containment.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "staticdep/slice.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"
#include "trace/artifacts.hh"
#include "trace/run_meta.hh"
#include "trace/trace_file.hh"

using namespace webslice;

namespace {

constexpr char kUsage[] =
    "usage: %s <prefix> [--criteria pixel|syscalls] [--no-window]\n"
    "       [--end N] [--jobs N] [--backward-jobs N] [--dump-pdg FILE]\n"
    "       [--metrics-json FILE] [--progress]\n"
    "\n"
    "  --criteria MODE       slicing criteria: 'pixel' (pixel buffers,\n"
    "                        the default) or 'syscalls'\n"
    "  --no-window           ignore the metadata load-complete window\n"
    "  --end N               analyze only records [0, N) (after the\n"
    "                        window clamp)\n"
    "  --jobs N              forward-pass worker threads; 0 = all cores\n"
    "  --backward-jobs N     dynamic backward-pass worker threads\n"
    "  --dump-pdg FILE       write the static PDG node table\n"
    "  --metrics-json FILE   write the machine-readable run report\n"
    "                        (schema webslice-static-v1; FILE of '-'\n"
    "                        writes it to stdout and moves the\n"
    "                        human-readable report to stderr)\n"
    "  --progress            phase notices on stderr\n";

/** Parse a non-negative decimal integer flag value (exit 1 otherwise). */
uint64_t
parseCount(const char *flag, const char *text, uint64_t max_value)
{
    fatal_if(text[0] == '\0', "empty value for ", flag);
    fatal_if(text[0] == '-', "negative value for ", flag, ": '", text, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0', "non-numeric value for ", flag,
             ": '", text, "'");
    fatal_if(errno == ERANGE || value > max_value, "value for ", flag,
             " out of range: '", text, "' (max ", max_value, ")");
    return value;
}

void
phaseNotice(bool progress, const char *phase)
{
    if (progress)
        std::fprintf(stderr, "progress: phase %s\n", phase);
}

/** Dynamic-slice statistics (shared schema with webslice-profile). */
std::string
sliceStatsJson(const slicer::SliceResult &slice, const trace::RunMeta &meta,
               const slicer::SlicerOptions &options)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"benchmark\": \"" << jsonEscape(meta.benchmark) << "\",\n"
        << "    \"criteria\": \""
        << (options.mode == slicer::CriteriaMode::PixelBuffer
                ? "pixel-buffer"
                : "syscalls")
        << "\",\n"
        << "    \"instructions_analyzed\": " << slice.instructionsAnalyzed
        << ",\n"
        << "    \"slice_instructions\": " << slice.sliceInstructions
        << ",\n"
        << "    \"slice_percent\": " << std::fixed << std::setprecision(4)
        << slice.slicePercent() << ",\n"
        << "    \"in_slice_fnv1a\": \"0x" << std::hex << std::setw(16)
        << std::setfill('0')
        << fnv1a64(slice.inSlice.data(), slice.inSlice.size()) << std::dec
        << std::setfill(' ') << "\"\n  }";
    return out.str();
}

std::string
staticSliceJson(const staticdep::StaticSliceResult &s, uint64_t widened,
                uint64_t rd_fallbacks)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"site_universe\": " << s.siteUniverse << ",\n"
        << "    \"included_sites\": " << s.includedSites << ",\n"
        << "    \"slice_percent\": " << std::fixed << std::setprecision(4)
        << s.slicePercent() << ",\n"
        << "    \"data_edges\": " << s.dataEdges << ",\n"
        << "    \"control_edges\": " << s.controlEdges << ",\n"
        << "    \"call_edges\": " << s.callEdges << ",\n"
        << "    \"needed_pages\": " << s.neededPages << ",\n"
        << "    \"needed_widened\": " << (s.neededWidened ? "true" : "false")
        << ",\n"
        << "    \"widened_sites\": " << widened << ",\n"
        << "    \"rd_fallbacks\": " << rd_fallbacks << ",\n"
        << "    \"rd_queries\": " << s.rdQueries << ",\n"
        << "    \"entry_propagations\": " << s.entryPropagations << ",\n"
        << "    \"exit_queries\": " << s.exitQueries << "\n  }";
    return out.str();
}

std::string
findingsJson(const check::Findings &findings)
{
    std::ostringstream out;
    out << "{ \"total\": " << findings.total << ", \"messages\": [";
    for (size_t i = 0; i < findings.messages.size(); ++i) {
        if (i)
            out << ", ";
        out << '"' << jsonEscape(findings.messages[i]) << '"';
    }
    out << "] }";
    return out.str();
}

std::string
containmentJson(const check::ContainmentResult &containment)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"ok\": " << (containment.ok() ? "true" : "false") << ",\n"
        << "    \"instructions_checked\": "
        << containment.instructionsChecked << ",\n"
        << "    \"in_slice_checked\": " << containment.inSliceChecked
        << ",\n"
        << "    \"violations\": " << containment.violations << ",\n"
        << "    \"findings\": " << findingsJson(containment.findings)
        << "\n  }";
    return out.str();
}

std::string
contrastJson(const analysis::ContrastBreakdown &c)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"analyzed\": " << c.analyzed << ",\n"
        << "    \"necessary\": " << c.necessary << ",\n"
        << "    \"necessary_data_only\": " << c.necessaryDataOnly << ",\n"
        << "    \"necessary_via_control\": " << c.necessaryViaControl
        << ",\n"
        << "    \"dynamic_only\": " << c.dynamicOnly << ",\n"
        << "    \"dynamic_only_data_only\": " << c.dynamicOnlyDataOnly
        << ",\n"
        << "    \"dynamic_only_via_control\": " << c.dynamicOnlyViaControl
        << ",\n"
        << "    \"statically_removable\": " << c.staticallyRemovable
        << ",\n"
        << "    \"removable_data_kind\": " << c.removableDataKind << ",\n"
        << "    \"removable_control_kind\": " << c.removableControlKind
        << ",\n"
        << "    \"containment_violations\": " << c.containmentViolations
        << "\n  }";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
    }
    const std::string prefix = argv[1];
    if (!prefix.empty() && prefix[0] == '-') {
        std::fprintf(stderr, "%s: first argument must be the artifact "
                             "prefix, got flag '%s'\n",
                     argv[0], prefix.c_str());
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
    }

    slicer::SlicerOptions options;
    bool use_window = true;
    bool progress = false;
    size_t end_cap = SIZE_MAX;
    std::string dump_pdg;
    std::string metrics_json;
    for (int a = 2; a < argc; ++a) {
        const auto need_value = [&](const char *flag) -> const char * {
            fatal_if(a + 1 >= argc, flag, " requires a value");
            return argv[++a];
        };
        if (!std::strcmp(argv[a], "--criteria")) {
            const char *mode = need_value("--criteria");
            if (!std::strcmp(mode, "pixel")) {
                options.mode = slicer::CriteriaMode::PixelBuffer;
            } else if (!std::strcmp(mode, "syscalls")) {
                options.mode = slicer::CriteriaMode::Syscalls;
            } else {
                std::fprintf(stderr, "%s: --criteria must be 'pixel' or "
                                     "'syscalls', got '%s'\n",
                             argv[0], mode);
                return 1;
            }
        } else if (!std::strcmp(argv[a], "--no-window")) {
            use_window = false;
        } else if (!std::strcmp(argv[a], "--end")) {
            end_cap = static_cast<size_t>(
                parseCount("--end", need_value("--end"), SIZE_MAX));
        } else if (!std::strcmp(argv[a], "--jobs")) {
            options.jobs = static_cast<int>(parseCount(
                "--jobs", need_value("--jobs"), 1u << 16));
        } else if (!std::strcmp(argv[a], "--backward-jobs")) {
            options.backwardJobs = static_cast<int>(
                parseCount("--backward-jobs",
                           need_value("--backward-jobs"), 1u << 16));
        } else if (!std::strcmp(argv[a], "--dump-pdg")) {
            dump_pdg = need_value("--dump-pdg");
        } else if (!std::strcmp(argv[a], "--metrics-json")) {
            metrics_json = need_value("--metrics-json");
        } else if (!std::strcmp(argv[a], "--progress")) {
            progress = true;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         argv[a]);
            std::fprintf(stderr, kUsage, argv[0]);
            return 1;
        }
    }

    // ---- load artifacts ----------------------------------------------------
    trace::ArtifactSidecars sidecars;
    {
        phaseNotice(progress, "load");
        ScopedPhase phase("load");
        sidecars = trace::loadArtifactSidecars(prefix);
    }
    trace::SymbolTable &symtab = sidecars.symtab;
    trace::CriteriaSet &criteria = sidecars.criteria;
    trace::RunMeta &meta = sidecars.meta;

    // ---- forward pass ------------------------------------------------------
    graph::CfgSet cfgs;
    {
        phaseNotice(progress, "forward");
        ScopedPhase phase("forward");
        cfgs = graph::buildCfgsFromFile(prefix + ".trc", symtab,
                                        options.jobs);
    }
    graph::ControlDepMap deps;
    {
        phaseNotice(progress, "postdom-cdg");
        ScopedPhase phase("postdom-cdg");
        deps = graph::buildControlDeps(cfgs, options.jobs);
    }

    if (use_window && meta.loadOnly && meta.loadCompleteIndex != SIZE_MAX)
        options.endIndex = meta.loadCompleteIndex;
    options.endIndex = std::min(options.endIndex, end_cap);

    // ---- dynamic backward pass ---------------------------------------------
    slicer::SliceResult slice;
    {
        phaseNotice(progress, "backward");
        ScopedPhase phase("backward");
        slice = slicer::computeSliceFromFile(prefix + ".trc", cfgs, deps,
                                             criteria, options);
    }

    FILE *report = metrics_json == "-" ? stderr : stdout;
    std::fprintf(report, "%s: %s\n", prefix.c_str(),
                 meta.benchmark.empty() ? "(no metadata)"
                                        : meta.benchmark.c_str());
    std::fprintf(report,
                 "criteria: %s, dynamic slice %s of %s instructions "
                 "(%.1f%%)\n",
                 options.mode == slicer::CriteriaMode::PixelBuffer
                     ? "pixel buffers"
                     : "system calls",
                 withCommas(slice.sliceInstructions).c_str(),
                 withCommas(slice.instructionsAnalyzed).c_str(),
                 slice.slicePercent());

    // ---- static analysis + walk --------------------------------------------
    const trace::MappedTrace mapped(prefix + ".trc");
    const auto records = mapped.records();
    const size_t window = std::min(options.endIndex, records.size());

    staticdep::StaticAnalysis static_analysis;
    {
        phaseNotice(progress, "static-analysis");
        staticdep::ModelOptions model_options;
        model_options.endIndex = window;
        static_analysis = staticdep::buildStaticAnalysis(
            records, cfgs, deps, model_options);
    }
    staticdep::StaticSliceResult static_slice;
    {
        phaseNotice(progress, "static-walk");
        ScopedPhase phase("static-walk");
        staticdep::StaticSliceOptions static_options;
        static_options.mode = options.mode;
        static_options.includeControlDeps = options.includeControlDeps;
        static_options.includeRegisterDeps = options.includeRegisterDeps;
        static_slice = staticdep::computeStaticSlice(static_analysis,
                                                     criteria,
                                                     static_options);
        staticdep::publishStaticSliceMetrics(static_slice);
    }
    std::fprintf(report,
                 "static slice: %s of %s sites (%.1f%%), edges: %s data, "
                 "%s control (%s call)\n",
                 withCommas(static_slice.includedSites).c_str(),
                 withCommas(static_slice.siteUniverse).c_str(),
                 static_slice.slicePercent(),
                 withCommas(static_slice.dataEdges).c_str(),
                 withCommas(static_slice.controlEdges).c_str(),
                 withCommas(static_slice.callEdges).c_str());

    // ---- containment invariant ---------------------------------------------
    check::ContainmentResult containment;
    {
        phaseNotice(progress, "containment");
        containment = check::checkContainment(records, cfgs, symtab, slice,
                                              static_slice);
    }
    std::fprintf(report, "containment: %s (%llu in-slice of %llu checked)\n",
                 containment.ok()
                     ? "dynamic ⊆ static"
                     : format("%llu VIOLATIONS",
                              static_cast<unsigned long long>(
                                  containment.violations))
                           .c_str(),
                 static_cast<unsigned long long>(
                     containment.inSliceChecked),
                 static_cast<unsigned long long>(
                     containment.instructionsChecked));
    for (const auto &message : containment.findings.messages)
        if (!message.empty())
            std::fprintf(report, "    %s\n", message.c_str());

    // ---- contrast report ---------------------------------------------------
    analysis::ContrastBreakdown contrast;
    {
        phaseNotice(progress, "contrast");
        ScopedPhase phase("contrast");
        contrast = analysis::contrastSlices(
            records, slice.inSlice, static_slice, cfgs, symtab,
            analysis::Categorizer::chromiumDefault(), window);
        std::ostringstream os;
        analysis::renderContrast(os, contrast);
        std::fprintf(report, "\n%s", os.str().c_str());
    }

    // ---- PDG dump ----------------------------------------------------------
    if (!dump_pdg.empty()) {
        phaseNotice(progress, "dump-pdg");
        std::ofstream os(dump_pdg);
        fatal_if(!os, "cannot open --dump-pdg file ", dump_pdg);
        staticdep::dumpPdg(os, static_analysis, symtab, &static_slice);
        fatal_if(!os.good(), "write failure on --dump-pdg file ",
                 dump_pdg);
        std::fprintf(report, "\nstatic PDG written to %s\n",
                     dump_pdg.c_str());
    }

    if (!metrics_json.empty()) {
        const std::vector<std::pair<std::string, std::string>> extras = {
            {"slice", sliceStatsJson(slice, meta, options)},
            {"static_slice",
             staticSliceJson(static_slice,
                             static_analysis.model.widenedSites,
                             static_analysis.rdFallbacks)},
            {"containment", containmentJson(containment)},
            {"contrast", contrastJson(contrast)},
            {"artifacts", trace::artifactDigestsJson(prefix)},
        };
        writeMetricsReport(metrics_json, MetricRegistry::global(),
                           "webslice-static", extras,
                           "webslice-static-v1");
    }

    if (!containment.ok()) {
        std::fprintf(stderr, "webslice-static: %llu containment "
                             "violations\n",
                     static_cast<unsigned long long>(
                         containment.violations));
        return 2;
    }
    return 0;
}
