/**
 * @file
 * webslice-client: command-line front end for webslice-served.
 *
 *   webslice-client [--socket PATH | --tcp PORT | --fleet LIST] ping
 *   webslice-client [--socket PATH | --tcp PORT | --fleet LIST] stats
 *   webslice-client [--socket PATH | --tcp PORT | --fleet LIST] shutdown
 *   webslice-client --fleet LIST route <prefix>
 *   webslice-client [... connection flags ...] batch <prefix>
 *                   --query SPEC [--query SPEC]... [--timeout-ms N]
 *                   [--metrics-json FILE]
 *
 * `--fleet LIST` is a comma-separated list of shard endpoints — Unix
 * socket paths, or host:port for TCP — and switches every command to
 * fleet mode: batches are routed to the shard owning the recording's
 * artifact digest (consistent hashing, see service/router.hh) with
 * automatic failover to the next replica when a shard is dead or
 * draining; ping/stats/shutdown fan out to every endpoint, printing one
 * JSON line per shard; `route` prints the digest and owner ordering for
 * a prefix without running anything.
 *
 * A query SPEC is `pixel` or `syscalls`, optionally extended with
 * colon-separated modifiers:
 *
 *   pixel                       pixel-buffer criteria, metadata window
 *   syscalls:no-window          syscall criteria, whole trace
 *   pixel:end=100000            window capped at record 100000
 *   pixel:backward-jobs=4       epoch-parallel backward pass, 4 threads
 *   pixel:sleep=250             hold the query 250 ms at run start (a
 *                               failover-testing hook; maps to the
 *                               protocol's debug_sleep_ms)
 *
 * `--query @criteria.txt` expands a spec file: one SPEC per line, blank
 * lines and `#` comments ignored. This is the convenient way to run
 * many criteria against one session (the daemon transcodes the epochs
 * once and answers every further criterion from the cached plan).
 *
 * Result frames are printed as JSON lines as they stream in, so a batch
 * behaves well in a pipeline; a fleet batch closes the stream with one
 * {"op":"fleet_done",...} summary carrying failover counters.
 * --metrics-json (a file path or '-') additionally writes a
 * webslice-metrics-v1 report whose `batch` (and, in fleet mode,
 * `fleet`) sections summarize the round trip.
 *
 * Exit status: 0 when every query succeeded, 1 for usage errors or a
 * connection that dropped before batch_done (the unanswered criteria
 * are named on stderr), 2 when the round trip completed but any query
 * reported an error, rejection, or timeout (each is named on stderr),
 * or a single-op response carried status != "ok".
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "service/client.hh"
#include "service/router.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

using namespace webslice;

namespace {

constexpr char kUsage[] =
    "usage: %s [--socket PATH | --tcp PORT | --fleet LIST] <command>\n"
    "\n"
    "commands:\n"
    "  ping                  round-trip check; prints the daemon's reply\n"
    "                        (fleet mode: one line per endpoint)\n"
    "  stats                 print cache, scheduler, and metric counters\n"
    "                        (fleet mode: one line per endpoint)\n"
    "  shutdown              ask the daemon(s) to drain and exit\n"
    "  route <prefix>        fleet mode only: print the recording's\n"
    "                        artifact digest and owning shards\n"
    "  batch <prefix> --query SPEC [--query SPEC]... [--timeout-ms N]\n"
    "                        [--metrics-json FILE]\n"
    "                        run slicing queries against one recording\n"
    "\n"
    "query SPEC grammar: (pixel|syscalls)[:no-window][:end=N]\n"
    "                    [:backward-jobs=N][:sleep=MS]\n"
    "                    or @FILE with one SPEC per line ('#' comments\n"
    "                    and blank lines ignored)\n"
    "\n"
    "--fleet LIST is comma-separated shard endpoints (Unix socket paths\n"
    "or host:port); batches route by artifact digest and fail over to\n"
    "the next replica when the owning shard is dead or draining.\n";

/** Parse one --query SPEC; exits 1 with a diagnostic on bad grammar. */
bool
parseQuerySpec(const std::string &spec, service::SliceQuery &query,
               std::string &error)
{
    query = service::SliceQuery();
    std::stringstream parts(spec);
    std::string part;
    bool first = true;
    while (std::getline(parts, part, ':')) {
        if (first) {
            first = false;
            if (part == "pixel" || part == "pixel-buffer") {
                query.mode = slicer::CriteriaMode::PixelBuffer;
            } else if (part == "syscalls") {
                query.mode = slicer::CriteriaMode::Syscalls;
            } else {
                error = format("query must start with 'pixel' or "
                               "'syscalls', got '%s'",
                               part.c_str());
                return false;
            }
            continue;
        }
        if (part == "no-window") {
            query.noWindow = true;
        } else if (part.rfind("end=", 0) == 0) {
            char *end = nullptr;
            const char *text = part.c_str() + 4;
            query.endIndex = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0') {
                error = format("bad end= value in '%s'", spec.c_str());
                return false;
            }
        } else if (part.rfind("backward-jobs=", 0) == 0) {
            char *end = nullptr;
            const char *text = part.c_str() + 14;
            query.backwardJobs =
                static_cast<int>(std::strtoul(text, &end, 10));
            if (end == text || *end != '\0') {
                error = format("bad backward-jobs= value in '%s'",
                               spec.c_str());
                return false;
            }
        } else if (part.rfind("sleep=", 0) == 0) {
            char *end = nullptr;
            const char *text = part.c_str() + 6;
            query.debugSleepMs = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0') {
                error = format("bad sleep= value in '%s'", spec.c_str());
                return false;
            }
        } else {
            error = format("unknown query modifier '%s' in '%s'",
                           part.c_str(), spec.c_str());
            return false;
        }
    }
    if (first) {
        error = "empty query spec";
        return false;
    }
    return true;
}

/**
 * Expand one --query argument into specs: `@FILE` reads one spec per
 * line (blank lines and lines whose first non-space byte is '#' are
 * skipped); anything else is a single spec passed through verbatim.
 */
bool
expandQueryArg(const std::string &arg, std::vector<std::string> &specs,
               std::string &error)
{
    if (arg.empty() || arg[0] != '@') {
        specs.push_back(arg);
        return true;
    }
    const std::string path = arg.substr(1);
    std::FILE *file = std::fopen(path.c_str(), "r");
    if (!file) {
        error = format("cannot open query file '%s': %s", path.c_str(),
                       std::strerror(errno));
        return false;
    }
    char line[4096];
    const size_t before = specs.size();
    while (std::fgets(line, sizeof(line), file)) {
        std::string spec(line);
        const size_t begin = spec.find_first_not_of(" \t\r\n");
        if (begin == std::string::npos || spec[begin] == '#')
            continue;
        const size_t end = spec.find_last_not_of(" \t\r\n");
        specs.push_back(spec.substr(begin, end - begin + 1));
    }
    std::fclose(file);
    if (specs.size() == before) {
        error = format("query file '%s' contains no specs", path.c_str());
        return false;
    }
    return true;
}

int
usageError(const char *argv0, const char *message)
{
    std::fprintf(stderr, "%s: %s\n", argv0, message);
    std::fprintf(stderr, kUsage, argv0);
    return 1;
}

std::vector<std::string>
splitFleetList(const std::string &list)
{
    std::vector<std::string> endpoints;
    std::stringstream parts(list);
    std::string part;
    while (std::getline(parts, part, ','))
        if (!part.empty())
            endpoints.push_back(part);
    return endpoints;
}

/**
 * Report every non-Ok result on stderr, naming the criterion by its
 * spec string, and every criterion that never got an answer at all.
 * Returns the exit code: 0 all ok, 1 unanswered criteria, 2 answered
 * failures only.
 */
int
reportBatchFailures(const char *argv0,
                    const std::vector<std::string> &specs,
                    const service::ServiceClient::BatchOutcome &outcome,
                    const std::vector<bool> &answered)
{
    int code = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
        if (!answered[i]) {
            std::fprintf(stderr,
                         "%s: query %zu (%s): no result (connection "
                         "lost before batch_done)\n",
                         argv0, i, specs[i].c_str());
            code = 1;
            continue;
        }
        const service::QueryResult &result = outcome.results[i];
        if (result.status == service::QueryResult::Status::Ok)
            continue;
        std::fprintf(
            stderr, "%s: query %zu (%s) %s: %s\n", argv0, i,
            specs[i].c_str(),
            service::QueryResult::statusName(result.status),
            result.error.empty() ? "(no detail)" : result.error.c_str());
        if (code == 0)
            code = 2;
    }
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = "/tmp/webslice-served.sock";
    int tcp_port = -1;
    std::vector<std::string> fleet;
    int a = 1;
    for (; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--socket")) {
            if (a + 1 >= argc)
                return usageError(argv[0], "--socket requires a value");
            socket_path = argv[++a];
        } else if (!std::strcmp(argv[a], "--tcp")) {
            if (a + 1 >= argc)
                return usageError(argv[0], "--tcp requires a value");
            tcp_port = std::atoi(argv[++a]);
        } else if (!std::strcmp(argv[a], "--fleet")) {
            if (a + 1 >= argc)
                return usageError(argv[0], "--fleet requires a value");
            fleet = splitFleetList(argv[++a]);
            if (fleet.empty())
                return usageError(argv[0],
                                  "--fleet needs at least one endpoint");
        } else {
            break;
        }
    }
    if (a >= argc)
        return usageError(argv[0], "missing command");
    const std::string command = argv[a++];

    std::string error;

    // ---- Fleet mode ----------------------------------------------
    if (!fleet.empty()) {
        service::FleetClient fleet_client(fleet);

        if (command == "ping" || command == "stats" ||
            command == "shutdown") {
            // Fan out to every endpoint; one JSON line per shard with
            // the endpoint annotated, unreachable ones reported
            // in-band so a partially-dead fleet still prints.
            service::Json request = service::Json::object();
            request.set("op", service::Json::string(command));
            int code = 0;
            for (const auto &endpoint : fleet_client.router()
                                            .endpoints()) {
                service::Json response;
                if (!fleet_client.callOn(endpoint, request, response,
                                         error)) {
                    response = service::Json::object();
                    response.set("status",
                                 service::Json::string("unreachable"));
                    response.set("error",
                                 service::Json::string(error));
                    code = 2;
                }
                response.set("endpoint",
                             service::Json::string(endpoint));
                std::printf("%s\n", response.dump().c_str());
            }
            return code;
        }

        if (command == "route") {
            if (a >= argc)
                return usageError(argv[0],
                                  "route requires an artifact prefix");
            const std::string prefix = argv[a++];
            const uint64_t digest = fleet_client.digestFor(prefix);
            service::Json j = service::Json::object();
            j.set("op", service::Json::string("route"));
            j.set("prefix", service::Json::string(prefix));
            j.set("digest",
                  service::Json::string(format(
                      "0x%016llx",
                      static_cast<unsigned long long>(digest))));
            service::Json owners = service::Json::array();
            for (const auto &owner : fleet_client.ownersFor(prefix))
                owners.push(service::Json::string(owner));
            j.set("owners", std::move(owners));
            std::printf("%s\n", j.dump().c_str());
            return 0;
        }

        if (command != "batch")
            return usageError(
                argv[0],
                format("unknown command '%s'", command.c_str())
                    .c_str());
    } else if (command != "ping" && command != "stats" &&
               command != "shutdown" && command != "batch") {
        if (command == "route")
            return usageError(argv[0], "route requires --fleet");
        return usageError(
            argv[0],
            format("unknown command '%s'", command.c_str()).c_str());
    }

    // ---- Single-daemon simple ops --------------------------------
    if (fleet.empty() && command != "batch") {
        service::ServiceClient client;
        const bool connected =
            tcp_port >= 0
                ? client.connectTcp("127.0.0.1", tcp_port, error)
                : client.connectUnix(socket_path, error);
        if (!connected) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return 1;
        }
        service::Json request = service::Json::object();
        request.set("op", service::Json::string(command));
        service::Json response;
        if (!client.call(request, response, error)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return 1;
        }
        std::printf("%s\n", response.dump().c_str());
        const service::Json *status = response.find("status");
        if (status == nullptr || status->asString() != "ok") {
            std::fprintf(stderr, "%s: %s returned status '%s'\n",
                         argv[0], command.c_str(),
                         status != nullptr
                             ? status->asString().c_str()
                             : "(missing)");
            return 2;
        }
        return 0;
    }

    // ---- batch (single daemon or fleet) --------------------------
    if (a >= argc)
        return usageError(argv[0], "batch requires an artifact prefix");
    const std::string prefix = argv[a++];

    std::vector<service::SliceQuery> queries;
    std::vector<std::string> specs;
    uint64_t timeout_ms = 0;
    std::string metrics_json;
    for (; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--query")) {
            if (a + 1 >= argc)
                return usageError(argv[0], "--query requires a value");
            std::vector<std::string> expanded;
            if (!expandQueryArg(argv[++a], expanded, error))
                return usageError(argv[0], error.c_str());
            for (const std::string &spec : expanded) {
                service::SliceQuery query;
                if (!parseQuerySpec(spec, query, error))
                    return usageError(argv[0], error.c_str());
                queries.push_back(query);
                specs.push_back(spec);
            }
        } else if (!std::strcmp(argv[a], "--timeout-ms")) {
            if (a + 1 >= argc)
                return usageError(argv[0],
                                  "--timeout-ms requires a value");
            timeout_ms = std::strtoull(argv[++a], nullptr, 10);
        } else if (!std::strcmp(argv[a], "--metrics-json")) {
            if (a + 1 >= argc)
                return usageError(argv[0],
                                  "--metrics-json requires a value");
            metrics_json = argv[++a];
        } else {
            return usageError(
                argv[0],
                format("unknown batch flag '%s'", argv[a]).c_str());
        }
    }
    if (queries.empty())
        return usageError(argv[0], "batch requires at least one --query");
    for (auto &query : queries)
        query.timeoutMs = timeout_ms;

    // Track which caller ids actually produced a result frame, so a
    // dropped connection names exactly the criteria left hanging.
    std::vector<bool> answered(queries.size(), false);
    const auto print_frame = [&](const service::Json &frame) {
        const service::Json *op = frame.find("op");
        const service::Json *id = frame.find("id");
        if (op != nullptr && op->asString() == "result" &&
            id != nullptr && id->isInt()) {
            const size_t i = static_cast<size_t>(id->asInt());
            if (i < answered.size())
                answered[i] = true;
        }
        std::printf("%s\n", frame.dump().c_str());
        std::fflush(stdout);
    };

    service::ServiceClient::BatchOutcome outcome;
    bool transport_ok = false;
    service::FleetClient::Stats fleet_stats;

    if (!fleet.empty()) {
        service::FleetClient fleet_client(fleet);
        transport_ok = fleet_client.batch(prefix, queries, outcome,
                                          error, print_frame);
        fleet_stats = fleet_client.stats();

        // Close the jsonl stream with the fleet-level summary a
        // single daemon's batch_done would otherwise carry.
        service::Json done = service::Json::object();
        done.set("schema", service::Json::string(service::kServeSchema));
        done.set("op", service::Json::string("fleet_done"));
        done.set("status",
                 service::Json::string(transport_ok ? "ok" : "error"));
        done.set("results", service::Json::integer(
                                static_cast<int64_t>(queries.size())));
        done.set("ok", service::Json::integer(
                           static_cast<int64_t>(outcome.ok)));
        done.set("errors", service::Json::integer(
                               static_cast<int64_t>(outcome.errors)));
        done.set("rejected",
                 service::Json::integer(
                     static_cast<int64_t>(outcome.rejected)));
        done.set("timeouts",
                 service::Json::integer(
                     static_cast<int64_t>(outcome.timeouts)));
        done.set("failovers",
                 service::Json::integer(
                     static_cast<int64_t>(fleet_stats.failovers)));
        done.set("duplicates",
                 service::Json::integer(
                     static_cast<int64_t>(fleet_stats.duplicates)));
        done.set("live_shards",
                 service::Json::integer(static_cast<int64_t>(
                     fleet_client.router().liveCount())));
        std::printf("%s\n", done.dump().c_str());
        std::fflush(stdout);
        if (!transport_ok)
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    } else {
        service::ServiceClient client;
        const bool connected =
            tcp_port >= 0
                ? client.connectTcp("127.0.0.1", tcp_port, error)
                : client.connectUnix(socket_path, error);
        if (!connected) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return 1;
        }
        transport_ok = client.batch(prefix, queries, outcome, error,
                                    print_frame);
        if (!transport_ok)
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    }

    if (!metrics_json.empty()) {
        std::ostringstream batch;
        batch << "{\n"
              << "    \"prefix\": \"" << jsonEscape(prefix) << "\",\n"
              << "    \"queries\": " << queries.size() << ",\n"
              << "    \"ok\": " << outcome.ok << ",\n"
              << "    \"errors\": " << outcome.errors << ",\n"
              << "    \"rejected\": " << outcome.rejected << ",\n"
              << "    \"timeouts\": " << outcome.timeouts << "\n  }";
        std::vector<std::pair<std::string, std::string>> extra = {
            {"batch", batch.str()}};
        if (!fleet.empty()) {
            std::ostringstream fj;
            fj << "{\n"
               << "    \"endpoints\": " << fleet.size() << ",\n"
               << "    \"batches\": " << fleet_stats.batches << ",\n"
               << "    \"failovers\": " << fleet_stats.failovers
               << ",\n"
               << "    \"duplicates\": " << fleet_stats.duplicates
               << ",\n"
               << "    \"warms_sent\": " << fleet_stats.warmsSent
               << "\n  }";
            extra.emplace_back("fleet", fj.str());
        }
        writeMetricsReport(metrics_json, MetricRegistry::global(),
                           "webslice-client", extra);
    }

    const int code =
        reportBatchFailures(argv[0], specs, outcome, answered);
    if (!transport_ok && code == 0)
        return 1; // Transport failed even though results all landed.
    return code;
}
