/**
 * @file
 * webslice-client: command-line front end for webslice-served.
 *
 *   webslice-client [--socket PATH | --tcp PORT] ping
 *   webslice-client [--socket PATH | --tcp PORT] stats
 *   webslice-client [--socket PATH | --tcp PORT] shutdown
 *   webslice-client [--socket PATH | --tcp PORT] batch <prefix>
 *                   --query SPEC [--query SPEC]... [--timeout-ms N]
 *                   [--metrics-json FILE]
 *
 * A query SPEC is `pixel` or `syscalls`, optionally extended with
 * colon-separated modifiers:
 *
 *   pixel                       pixel-buffer criteria, metadata window
 *   syscalls:no-window          syscall criteria, whole trace
 *   pixel:end=100000            window capped at record 100000
 *   pixel:backward-jobs=4       epoch-parallel backward pass, 4 threads
 *
 * `--query @criteria.txt` expands a spec file: one SPEC per line, blank
 * lines and `#` comments ignored. This is the convenient way to run
 * many criteria against one session (the daemon transcodes the epochs
 * once and answers every further criterion from the cached plan).
 *
 * Result frames are printed as JSON lines as they stream in, so a batch
 * behaves well in a pipeline. --metrics-json (a file path or '-')
 * additionally writes a webslice-metrics-v1 report whose `batch`
 * section summarizes the round trip.
 *
 * Exit status: 0 when every query succeeded, 1 for usage or connection
 * errors, 2 when the batch completed but any query reported an error,
 * rejection, or timeout.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "service/client.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

using namespace webslice;

namespace {

constexpr char kUsage[] =
    "usage: %s [--socket PATH | --tcp PORT] <command>\n"
    "\n"
    "commands:\n"
    "  ping                  round-trip check; prints the daemon's reply\n"
    "  stats                 print cache, scheduler, and metric counters\n"
    "  shutdown              ask the daemon to drain and exit\n"
    "  batch <prefix> --query SPEC [--query SPEC]... [--timeout-ms N]\n"
    "                        [--metrics-json FILE]\n"
    "                        run slicing queries against one recording\n"
    "\n"
    "query SPEC grammar: (pixel|syscalls)[:no-window][:end=N]\n"
    "                    [:backward-jobs=N]\n"
    "                    or @FILE with one SPEC per line ('#' comments\n"
    "                    and blank lines ignored)\n";

/** Parse one --query SPEC; exits 1 with a diagnostic on bad grammar. */
bool
parseQuerySpec(const std::string &spec, service::SliceQuery &query,
               std::string &error)
{
    query = service::SliceQuery();
    std::stringstream parts(spec);
    std::string part;
    bool first = true;
    while (std::getline(parts, part, ':')) {
        if (first) {
            first = false;
            if (part == "pixel" || part == "pixel-buffer") {
                query.mode = slicer::CriteriaMode::PixelBuffer;
            } else if (part == "syscalls") {
                query.mode = slicer::CriteriaMode::Syscalls;
            } else {
                error = format("query must start with 'pixel' or "
                               "'syscalls', got '%s'",
                               part.c_str());
                return false;
            }
            continue;
        }
        if (part == "no-window") {
            query.noWindow = true;
        } else if (part.rfind("end=", 0) == 0) {
            char *end = nullptr;
            const char *text = part.c_str() + 4;
            query.endIndex = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0') {
                error = format("bad end= value in '%s'", spec.c_str());
                return false;
            }
        } else if (part.rfind("backward-jobs=", 0) == 0) {
            char *end = nullptr;
            const char *text = part.c_str() + 14;
            query.backwardJobs =
                static_cast<int>(std::strtoul(text, &end, 10));
            if (end == text || *end != '\0') {
                error = format("bad backward-jobs= value in '%s'",
                               spec.c_str());
                return false;
            }
        } else {
            error = format("unknown query modifier '%s' in '%s'",
                           part.c_str(), spec.c_str());
            return false;
        }
    }
    if (first) {
        error = "empty query spec";
        return false;
    }
    return true;
}

/**
 * Expand one --query argument into specs: `@FILE` reads one spec per
 * line (blank lines and lines whose first non-space byte is '#' are
 * skipped); anything else is a single spec passed through verbatim.
 */
bool
expandQueryArg(const std::string &arg, std::vector<std::string> &specs,
               std::string &error)
{
    if (arg.empty() || arg[0] != '@') {
        specs.push_back(arg);
        return true;
    }
    const std::string path = arg.substr(1);
    std::FILE *file = std::fopen(path.c_str(), "r");
    if (!file) {
        error = format("cannot open query file '%s': %s", path.c_str(),
                       std::strerror(errno));
        return false;
    }
    char line[4096];
    const size_t before = specs.size();
    while (std::fgets(line, sizeof(line), file)) {
        std::string spec(line);
        const size_t begin = spec.find_first_not_of(" \t\r\n");
        if (begin == std::string::npos || spec[begin] == '#')
            continue;
        const size_t end = spec.find_last_not_of(" \t\r\n");
        specs.push_back(spec.substr(begin, end - begin + 1));
    }
    std::fclose(file);
    if (specs.size() == before) {
        error = format("query file '%s' contains no specs", path.c_str());
        return false;
    }
    return true;
}

int
usageError(const char *argv0, const char *message)
{
    std::fprintf(stderr, "%s: %s\n", argv0, message);
    std::fprintf(stderr, kUsage, argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = "/tmp/webslice-served.sock";
    int tcp_port = -1;
    int a = 1;
    for (; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--socket")) {
            if (a + 1 >= argc)
                return usageError(argv[0], "--socket requires a value");
            socket_path = argv[++a];
        } else if (!std::strcmp(argv[a], "--tcp")) {
            if (a + 1 >= argc)
                return usageError(argv[0], "--tcp requires a value");
            tcp_port = std::atoi(argv[++a]);
        } else {
            break;
        }
    }
    if (a >= argc)
        return usageError(argv[0], "missing command");
    const std::string command = argv[a++];

    service::ServiceClient client;
    std::string error;
    const bool connected =
        tcp_port >= 0 ? client.connectTcp("127.0.0.1", tcp_port, error)
                      : client.connectUnix(socket_path, error);
    if (!connected) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        return 1;
    }

    if (command == "ping" || command == "stats" ||
        command == "shutdown") {
        service::Json request = service::Json::object();
        request.set("op", service::Json::string(command));
        service::Json response;
        if (!client.call(request, response, error)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return 1;
        }
        std::printf("%s\n", response.dump().c_str());
        return 0;
    }

    if (command != "batch")
        return usageError(
            argv[0],
            format("unknown command '%s'", command.c_str()).c_str());
    if (a >= argc)
        return usageError(argv[0], "batch requires an artifact prefix");
    const std::string prefix = argv[a++];

    std::vector<service::SliceQuery> queries;
    uint64_t timeout_ms = 0;
    std::string metrics_json;
    for (; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--query")) {
            if (a + 1 >= argc)
                return usageError(argv[0], "--query requires a value");
            std::vector<std::string> specs;
            if (!expandQueryArg(argv[++a], specs, error))
                return usageError(argv[0], error.c_str());
            for (const std::string &spec : specs) {
                service::SliceQuery query;
                if (!parseQuerySpec(spec, query, error))
                    return usageError(argv[0], error.c_str());
                queries.push_back(query);
            }
        } else if (!std::strcmp(argv[a], "--timeout-ms")) {
            if (a + 1 >= argc)
                return usageError(argv[0],
                                  "--timeout-ms requires a value");
            timeout_ms = std::strtoull(argv[++a], nullptr, 10);
        } else if (!std::strcmp(argv[a], "--metrics-json")) {
            if (a + 1 >= argc)
                return usageError(argv[0],
                                  "--metrics-json requires a value");
            metrics_json = argv[++a];
        } else {
            return usageError(
                argv[0],
                format("unknown batch flag '%s'", argv[a]).c_str());
        }
    }
    if (queries.empty())
        return usageError(argv[0], "batch requires at least one --query");
    for (auto &query : queries)
        query.timeoutMs = timeout_ms;

    service::ServiceClient::BatchOutcome outcome;
    const bool ok = client.batch(
        prefix, queries, outcome, error,
        [](const service::Json &frame) {
            std::printf("%s\n", frame.dump().c_str());
            std::fflush(stdout);
        });
    if (!ok) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        return 1;
    }

    if (!metrics_json.empty()) {
        std::ostringstream batch;
        batch << "{\n"
              << "    \"prefix\": \"" << jsonEscape(prefix) << "\",\n"
              << "    \"queries\": " << queries.size() << ",\n"
              << "    \"ok\": " << outcome.ok << ",\n"
              << "    \"errors\": " << outcome.errors << ",\n"
              << "    \"rejected\": " << outcome.rejected << ",\n"
              << "    \"timeouts\": " << outcome.timeouts << "\n  }";
        writeMetricsReport(metrics_json, MetricRegistry::global(),
                           "webslice-client",
                           {{"batch", batch.str()}});
    }

    return outcome.ok == queries.size() ? 0 : 2;
}
