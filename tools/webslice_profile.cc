/**
 * @file
 * webslice-profile: the offline profiler over recorded artifacts.
 *
 *   webslice-profile <prefix> [--syscalls] [--no-window] [--top N]
 *                    [--jobs N]
 *
 * Reads <prefix>.trc/.sym/.crit/.meta (as written by webslice-record),
 * runs the forward pass streamed from the file, runs the backward pass
 * streamed back-to-front (peak memory stays O(live set) + one byte per
 * record), and prints per-thread statistics, the waste categorization,
 * and the hottest functions with their slice shares.
 *
 * --jobs N parallelizes the forward pass's per-function work (CFG node
 * and edge construction, postdominators, control dependences) over N
 * threads; 0 means all hardware threads. Results are identical for any
 * value. The attribution arrays at the end use a zero-copy mmap view of
 * the trace instead of a second in-memory copy.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/categorize.hh"
#include "analysis/function_stats.hh"
#include "analysis/thread_stats.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "support/strings.hh"
#include "trace/trace_file.hh"

using namespace webslice;

namespace {

struct Meta
{
    std::string benchmark;
    size_t loadCompleteIndex = SIZE_MAX;
    bool loadOnly = false;
    std::vector<std::string> threadNames;
};

Meta
loadMeta(const std::string &path)
{
    Meta meta;
    std::ifstream in(path);
    if (!in)
        return meta;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "benchmark") {
            std::getline(fields, meta.benchmark);
            meta.benchmark = std::string(trim(meta.benchmark));
        } else if (key == "loadCompleteIndex") {
            fields >> meta.loadCompleteIndex;
        } else if (key == "loadOnly") {
            int flag = 0;
            fields >> flag;
            meta.loadOnly = flag != 0;
        } else if (key == "thread") {
            size_t tid;
            std::string name;
            fields >> tid >> name;
            if (meta.threadNames.size() <= tid)
                meta.threadNames.resize(tid + 1);
            meta.threadNames[tid] = name;
        }
    }
    return meta;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <prefix> [--syscalls] [--no-window] "
                     "[--top N] [--jobs N]\n",
                     argv[0]);
        return 1;
    }
    const std::string prefix = argv[1];
    slicer::SlicerOptions options;
    bool use_window = true;
    size_t top = 12;
    for (int a = 2; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--syscalls")) {
            options.mode = slicer::CriteriaMode::Syscalls;
        } else if (!std::strcmp(argv[a], "--no-window")) {
            use_window = false;
        } else if (!std::strcmp(argv[a], "--top") && a + 1 < argc) {
            top = static_cast<size_t>(std::atoi(argv[++a]));
        } else if (!std::strcmp(argv[a], "--jobs") && a + 1 < argc) {
            options.jobs = std::atoi(argv[++a]);
        }
    }

    // ---- load artifacts -----------------------------------------------------
    trace::SymbolTable symtab;
    symtab.load(prefix + ".sym");
    trace::CriteriaSet criteria;
    criteria.load(prefix + ".crit");
    const Meta meta = loadMeta(prefix + ".meta");

    // ---- forward pass (streamed) ----------------------------------------------
    const auto cfgs = graph::buildCfgsFromFile(prefix + ".trc", symtab,
                                               options.jobs);
    const auto deps = graph::buildControlDeps(cfgs, options.jobs);

    if (use_window && meta.loadOnly &&
        meta.loadCompleteIndex != SIZE_MAX) {
        options.endIndex = meta.loadCompleteIndex;
    }

    // ---- backward pass (streamed) ----------------------------------------------
    const auto slice = slicer::computeSliceFromFile(
        prefix + ".trc", cfgs, deps, criteria, options);

    std::printf("%s: %s\n", prefix.c_str(),
                meta.benchmark.empty() ? "(no metadata)"
                                       : meta.benchmark.c_str());
    std::printf("criteria: %s, slice %s of %s instructions (%.1f%%)\n\n",
                options.mode == slicer::CriteriaMode::PixelBuffer
                    ? "pixel buffers"
                    : "system calls",
                withCommas(slice.sliceInstructions).c_str(),
                withCommas(slice.instructionsAnalyzed).c_str(),
                slice.slicePercent());

    // The per-record arrays need the records once more for attribution;
    // the mmap view pages them in without a second in-memory copy.
    const trace::MappedTrace mapped(prefix + ".trc");
    const auto records = mapped.records();
    const size_t window = std::min(options.endIndex, records.size());

    const auto stats = analysis::computeThreadStats(
        records, slice.inSlice, meta.threadNames, window);
    std::printf("per thread:\n");
    for (const auto &thread : stats.perThread) {
        if (thread.totalInstructions == 0)
            continue;
        std::printf("  %-26s %12s instr  %5.1f%% in slice\n",
                    thread.name.empty()
                        ? format("tid%u", thread.tid).c_str()
                        : thread.name.c_str(),
                    withCommas(thread.totalInstructions).c_str(),
                    thread.slicePercent());
    }

    const auto dist = analysis::categorizeUnnecessary(
        records, slice.inSlice, cfgs, symtab,
        analysis::Categorizer::chromiumDefault(), window);
    std::printf("\nunnecessary-computation categories (%.0f%% "
                "categorizable):\n",
                dist.coveragePercent());
    for (const auto &category :
         analysis::Categorizer::reportOrder()) {
        const double share = dist.sharePercent(category);
        if (share >= 0.05)
            std::printf("  %-16s %5.1f%%\n", category.c_str(), share);
    }

    const auto functions = analysis::computeFunctionStats(
        {records.data(), window}, {slice.inSlice.data(), window}, cfgs,
        symtab);
    std::printf("\nhottest functions:\n");
    for (size_t i = 0; i < functions.size() && i < top; ++i) {
        std::printf("  %-48s %10s instr  %5.1f%% in slice\n",
                    functions[i].name.c_str(),
                    withCommas(functions[i].totalInstructions).c_str(),
                    functions[i].slicePercent());
    }
    return 0;
}
