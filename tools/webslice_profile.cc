/**
 * @file
 * webslice-profile: the offline profiler over recorded artifacts.
 *
 *   webslice-profile <prefix> [--syscalls] [--no-window] [--top N]
 *                    [--jobs N] [--metrics-json FILE] [--progress]
 *
 * Reads <prefix>.trc/.sym/.crit/.meta (as written by webslice-record),
 * runs the forward pass streamed from the file, runs the backward pass
 * streamed back-to-front (peak memory stays O(live set) + one byte per
 * record), and prints per-thread statistics, the waste categorization,
 * and the hottest functions with their slice shares.
 *
 * --jobs N parallelizes the forward pass's per-function work (CFG node
 * and edge construction, postdominators, control dependences) over N
 * threads; 0 means all hardware threads. Results are identical for any
 * value. The attribution arrays at the end use a zero-copy mmap view of
 * the trace instead of a second in-memory copy.
 *
 * --metrics-json FILE writes the machine-readable run report (schema
 * webslice-metrics-v1): phase spans with wall time and peak RSS,
 * pipeline counters and gauges, slice statistics, and size + FNV-1a-64
 * digests of the four input artifacts. --progress prints phase-start
 * notices and a heartbeat during the reverse walk (records done,
 * records/sec, ETA) to stderr.
 *
 * Unknown flags, missing flag values, and non-numeric --top/--jobs
 * arguments are rejected with a diagnostic and exit code 1.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "analysis/categorize.hh"
#include "analysis/function_stats.hh"
#include "analysis/report.hh"
#include "analysis/thread_stats.hh"
#include "check/containment.hh"
#include "check/graph_lint.hh"
#include "check/soundness.hh"
#include "staticdep/slice.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"
#include "trace/artifacts.hh"
#include "trace/run_meta.hh"
#include "trace/trace_file.hh"

using namespace webslice;

namespace {

constexpr char kUsage[] =
    "usage: %s <prefix> [--syscalls] [--no-window] [--top N] [--jobs N]\n"
    "       [--backward-jobs N] [--metrics-json FILE] [--progress]\n"
    "       [--verify] [--static-compare]\n"
    "\n"
    "  --syscalls            slice on syscall-read values instead of pixel\n"
    "                        buffers\n"
    "  --no-window           ignore the metadata load-complete window\n"
    "  --top N               show the N hottest functions (default 12)\n"
    "  --jobs N              forward-pass worker threads; 0 = all cores\n"
    "  --backward-jobs N     backward-pass worker threads; 1 = sequential\n"
    "                        oracle, 0 = all cores (epoch-parallel slicer,\n"
    "                        bit-identical output)\n"
    "  --metrics-json FILE   write the machine-readable run report\n"
    "                        (FILE of '-' writes it to stdout and moves\n"
    "                        the human-readable report to stderr)\n"
    "  --progress            phase notices and a reverse-walk heartbeat on\n"
    "                        stderr\n"
    "  --verify              run the graph linter and the slice soundness\n"
    "                        replay after slicing; exit 2 on violation\n"
    "  --static-compare      run the static dependence analysis over the\n"
    "                        same window, assert dynamic ⊆ static, and\n"
    "                        print the static-vs-dynamic contrast; exit 2\n"
    "                        on a containment violation\n";

/**
 * Parse a non-negative decimal integer flag value; anything else — empty,
 * negative, non-numeric, trailing garbage, or out of range — is a usage
 * error that exits 1.
 */
uint64_t
parseCount(const char *flag, const char *text, uint64_t max_value)
{
    fatal_if(text[0] == '\0', "empty value for ", flag);
    fatal_if(text[0] == '-', "negative value for ", flag, ": '", text, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0', "non-numeric value for ", flag,
             ": '", text, "'");
    fatal_if(errno == ERANGE || value > max_value, "value for ", flag,
             " out of range: '", text, "' (max ", max_value, ")");
    return value;
}

void
phaseNotice(bool progress, const char *phase)
{
    if (progress)
        std::fprintf(stderr, "progress: phase %s\n", phase);
}

/** JSON object with the slice statistics (raw JSON for the report). */
std::string
sliceStatsJson(const slicer::SliceResult &slice, const trace::RunMeta &meta,
               const slicer::SlicerOptions &options)
{
    std::ostringstream out;
    out << "{\n"
        << "    \"benchmark\": \"" << jsonEscape(meta.benchmark) << "\",\n"
        << "    \"criteria\": \""
        << (options.mode == slicer::CriteriaMode::PixelBuffer
                ? "pixel-buffer"
                : "syscalls")
        << "\",\n"
        << "    \"records_fed\": " << slice.recordsFed << ",\n"
        << "    \"instructions_analyzed\": " << slice.instructionsAnalyzed
        << ",\n"
        << "    \"slice_instructions\": " << slice.sliceInstructions
        << ",\n"
        << "    \"slice_percent\": " << std::fixed << std::setprecision(4)
        << slice.slicePercent() << ",\n"
        << "    \"criteria_bytes_seeded\": " << slice.criteriaBytesSeeded
        << ",\n"
        << "    \"peak_live_mem_bytes\": " << slice.peakLiveMemBytes
        << ",\n"
        << "    \"peak_pending_branches\": " << slice.peakPendingBranches
        << ",\n"
        << "    \"in_slice_fnv1a\": \"0x" << std::hex << std::setw(16)
        << std::setfill('0')
        << fnv1a64(slice.inSlice.data(), slice.inSlice.size()) << std::dec
        << std::setfill(' ') << "\"\n  }";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
    }
    const std::string prefix = argv[1];
    if (!prefix.empty() && prefix[0] == '-') {
        std::fprintf(stderr, "%s: first argument must be the artifact "
                             "prefix, got flag '%s'\n",
                     argv[0], prefix.c_str());
        std::fprintf(stderr, kUsage, argv[0]);
        return 1;
    }

    slicer::SlicerOptions options;
    bool use_window = true;
    bool progress = false;
    bool verify = false;
    bool static_compare = false;
    size_t top = 12;
    std::string metrics_json;
    for (int a = 2; a < argc; ++a) {
        const auto need_value = [&](const char *flag) -> const char * {
            fatal_if(a + 1 >= argc, flag, " requires a value");
            return argv[++a];
        };
        if (!std::strcmp(argv[a], "--syscalls")) {
            options.mode = slicer::CriteriaMode::Syscalls;
        } else if (!std::strcmp(argv[a], "--no-window")) {
            use_window = false;
        } else if (!std::strcmp(argv[a], "--top")) {
            top = static_cast<size_t>(
                parseCount("--top", need_value("--top"), SIZE_MAX));
        } else if (!std::strcmp(argv[a], "--jobs")) {
            options.jobs = static_cast<int>(parseCount(
                "--jobs", need_value("--jobs"), 1u << 16));
        } else if (!std::strcmp(argv[a], "--backward-jobs")) {
            options.backwardJobs = static_cast<int>(
                parseCount("--backward-jobs",
                           need_value("--backward-jobs"), 1u << 16));
        } else if (!std::strcmp(argv[a], "--metrics-json")) {
            metrics_json = need_value("--metrics-json");
        } else if (!std::strcmp(argv[a], "--progress")) {
            progress = true;
            options.progressIntervalSeconds = 2.0;
        } else if (!std::strcmp(argv[a], "--verify")) {
            verify = true;
        } else if (!std::strcmp(argv[a], "--static-compare")) {
            static_compare = true;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         argv[a]);
            std::fprintf(stderr, kUsage, argv[0]);
            return 1;
        }
    }

    // ---- load artifacts ----------------------------------------------------
    trace::ArtifactSidecars sidecars;
    {
        phaseNotice(progress, "load");
        ScopedPhase phase("load");
        sidecars = trace::loadArtifactSidecars(prefix);
    }
    trace::SymbolTable &symtab = sidecars.symtab;
    trace::CriteriaSet &criteria = sidecars.criteria;
    trace::RunMeta &meta = sidecars.meta;

    // ---- forward pass (streamed) -------------------------------------------
    graph::CfgSet cfgs;
    {
        phaseNotice(progress, "forward");
        ScopedPhase phase("forward");
        cfgs = graph::buildCfgsFromFile(prefix + ".trc", symtab,
                                        options.jobs);
    }
    graph::ControlDepMap deps;
    {
        phaseNotice(progress, "postdom-cdg");
        ScopedPhase phase("postdom-cdg");
        deps = graph::buildControlDeps(cfgs, options.jobs);
    }

    if (use_window && meta.loadOnly &&
        meta.loadCompleteIndex != SIZE_MAX) {
        options.endIndex = meta.loadCompleteIndex;
    }

    // ---- backward pass (streamed) ------------------------------------------
    slicer::SliceResult slice;
    {
        phaseNotice(progress, "backward");
        ScopedPhase phase("backward");
        slice = slicer::computeSliceFromFile(prefix + ".trc", cfgs, deps,
                                             criteria, options);
    }

    // With --metrics-json - the machine-readable report owns stdout;
    // the human-readable report moves to stderr so the JSON stays clean.
    FILE *report = metrics_json == "-" ? stderr : stdout;

    std::fprintf(report, "%s: %s\n", prefix.c_str(),
                meta.benchmark.empty() ? "(no metadata)"
                                       : meta.benchmark.c_str());
    std::fprintf(report, "criteria: %s, slice %s of %s instructions (%.1f%%)\n\n",
                options.mode == slicer::CriteriaMode::PixelBuffer
                    ? "pixel buffers"
                    : "system calls",
                withCommas(slice.sliceInstructions).c_str(),
                withCommas(slice.instructionsAnalyzed).c_str(),
                slice.slicePercent());

    {
        phaseNotice(progress, "attribution");
        ScopedPhase phase("attribution");

        // The per-record arrays need the records once more for
        // attribution; the mmap view pages them in without a second
        // in-memory copy.
        const trace::MappedTrace mapped(prefix + ".trc");
        const auto records = mapped.records();
        const size_t window = std::min(options.endIndex, records.size());

        const auto stats = analysis::computeThreadStats(
            records, slice.inSlice, meta.threadNames, window);
        std::fprintf(report, "per thread:\n");
        for (const auto &thread : stats.perThread) {
            if (thread.totalInstructions == 0)
                continue;
            std::fprintf(report, "  %-26s %12s instr  %5.1f%% in slice\n",
                        thread.name.empty()
                            ? format("tid%u", thread.tid).c_str()
                            : thread.name.c_str(),
                        withCommas(thread.totalInstructions).c_str(),
                        thread.slicePercent());
        }

        const auto dist = analysis::categorizeUnnecessary(
            records, slice.inSlice, cfgs, symtab,
            analysis::Categorizer::chromiumDefault(), window);
        std::fprintf(report, "\nunnecessary-computation categories (%.0f%% "
                    "categorizable):\n",
                    dist.coveragePercent());
        for (const auto &category :
             analysis::Categorizer::reportOrder()) {
            const double share = dist.sharePercent(category);
            if (share >= 0.05)
                std::fprintf(report, "  %-16s %5.1f%%\n", category.c_str(), share);
        }

        const auto functions = analysis::computeFunctionStats(
            {records.data(), window}, {slice.inSlice.data(), window}, cfgs,
            symtab);
        std::fprintf(report, "\nhottest functions:\n");
        for (size_t i = 0; i < functions.size() && i < top; ++i) {
            std::fprintf(report, "  %-48s %10s instr  %5.1f%% in slice\n",
                        functions[i].name.c_str(),
                        withCommas(functions[i].totalInstructions).c_str(),
                        functions[i].slicePercent());
        }
    }

    // ---- static contrast (--static-compare) --------------------------------
    uint64_t containment_violations = 0;
    std::string static_compare_json;
    if (static_compare) {
        phaseNotice(progress, "static-compare");
        const trace::MappedTrace mapped(prefix + ".trc");
        const auto records = mapped.records();
        const size_t window = std::min(options.endIndex, records.size());

        staticdep::ModelOptions model_options;
        model_options.endIndex = window;
        const staticdep::StaticAnalysis static_analysis =
            staticdep::buildStaticAnalysis(records, cfgs, deps,
                                           model_options);
        staticdep::StaticSliceOptions static_options;
        static_options.mode = options.mode;
        static_options.includeControlDeps = options.includeControlDeps;
        static_options.includeRegisterDeps = options.includeRegisterDeps;
        const staticdep::StaticSliceResult static_slice =
            staticdep::computeStaticSlice(static_analysis, criteria,
                                          static_options);
        staticdep::publishStaticSliceMetrics(static_slice);

        check::ContainmentResult containment;
        {
            ScopedPhase phase("static-compare");
            containment = check::checkContainment(
                records, cfgs, symtab, slice, static_slice);
        }
        containment_violations = containment.findings.total;

        const auto contrast = analysis::contrastSlices(
            records, slice.inSlice, static_slice, cfgs, symtab,
            analysis::Categorizer::chromiumDefault(), window);
        std::ostringstream contrast_os;
        analysis::renderContrast(contrast_os, contrast);
        std::fprintf(report,
                     "\nstatic slice: %s of %s sites (%.1f%%), "
                     "containment %s\n%s",
                     withCommas(static_slice.includedSites).c_str(),
                     withCommas(static_slice.siteUniverse).c_str(),
                     static_slice.slicePercent(),
                     containment.ok()
                         ? "dynamic ⊆ static"
                         : format("%llu VIOLATIONS",
                                  static_cast<unsigned long long>(
                                      containment.violations))
                               .c_str(),
                     contrast_os.str().c_str());
        for (const auto &message : containment.findings.messages)
            if (!message.empty())
                std::fprintf(report, "    %s\n", message.c_str());

        std::ostringstream json;
        json << "{\n"
             << "    \"static_sites\": " << static_slice.siteUniverse
             << ",\n"
             << "    \"static_included\": " << static_slice.includedSites
             << ",\n"
             << "    \"static_data_edges\": " << static_slice.dataEdges
             << ",\n"
             << "    \"static_control_edges\": "
             << static_slice.controlEdges << ",\n"
             << "    \"containment_ok\": "
             << (containment.ok() ? "true" : "false") << ",\n"
             << "    \"containment_violations\": "
             << containment.violations << ",\n"
             << "    \"statically_removable\": "
             << contrast.staticallyRemovable << ",\n"
             << "    \"dynamic_only\": " << contrast.dynamicOnly
             << "\n  }";
        static_compare_json = json.str();
    }

    // ---- inline verification (--verify) ------------------------------------
    uint64_t verify_violations = 0;
    if (verify) {
        phaseNotice(progress, "verify");
        ScopedPhase phase("verify");
        const trace::MappedTrace mapped(prefix + ".trc");
        const auto records = mapped.records();

        const auto lint =
            check::lintGraphs(records, symtab, cfgs, &deps);
        check::SoundnessOptions sound_options;
        sound_options.mode = options.mode;
        sound_options.minimalityProbes = 2;
        const auto sound = check::checkSliceSoundness(
            records, slice, criteria, nullptr, sound_options);

        std::fprintf(report, "\nverify: graph lint %s, soundness %s "
                    "(%llu criterion bytes, %llu/%llu probes)\n",
                    lint.ok() ? "clean"
                              : format("%llu findings",
                                       static_cast<unsigned long long>(
                                           lint.findings.total))
                                    .c_str(),
                    sound.ok() ? "clean"
                               : format("%llu findings",
                                        static_cast<unsigned long long>(
                                            sound.findings.total))
                                     .c_str(),
                    static_cast<unsigned long long>(
                        sound.criteriaBytesChecked),
                    static_cast<unsigned long long>(
                        sound.probesConfirmed),
                    static_cast<unsigned long long>(sound.probesRun));
        for (const auto &message : lint.findings.messages)
            std::fprintf(report, "    %s\n", message.c_str());
        for (const auto &message : sound.findings.messages)
            std::fprintf(report, "    %s\n", message.c_str());
        verify_violations = lint.findings.total + sound.findings.total;
    }

    if (!metrics_json.empty()) {
        std::vector<std::pair<std::string, std::string>> extras = {
            {"slice", sliceStatsJson(slice, meta, options)},
            {"artifacts", trace::artifactDigestsJson(prefix)},
        };
        if (!static_compare_json.empty())
            extras.emplace_back("static_compare", static_compare_json);
        writeMetricsReport(metrics_json, MetricRegistry::global(),
                           "webslice-profile", extras);
        if (progress)
            std::fprintf(stderr, "progress: metrics report written to %s\n",
                         metrics_json.c_str());
    }
    if (verify_violations + containment_violations > 0) {
        std::fprintf(stderr, "webslice-profile: %llu verification "
                             "violations\n",
                     static_cast<unsigned long long>(
                         verify_violations + containment_violations));
        return 2;
    }
    return 0;
}
