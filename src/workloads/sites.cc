#include "workloads/sites.hh"

namespace webslice {
namespace workloads {

using browser::BrowserConfig;
using browser::ResourceType;
using browser::SiteContent;

namespace {

uint64_t
scaled(double paper_bytes)
{
    return static_cast<uint64_t>(paper_bytes * kContentScale);
}

} // namespace

SiteSpec
amazonDesktopSpec()
{
    SiteSpec spec;
    spec.name = "Amazon (desktop view): Load";
    spec.url = "https://amazon.example/";
    spec.seed = 0xA31;

    spec.browser.viewportWidth = 1280;
    spec.browser.viewportHeight = 720;
    spec.browser.rasterThreads = 3; // the paper saw 3 rasterizers here
    spec.browser.mobile = false;

    spec.page.sections = 5;
    spec.page.itemsPerSection = 4;
    spec.page.hiddenMenus = 3;
    spec.page.wordsPerParagraph = 36;
    spec.page.carousel = true;
    spec.page.adBanner = true; // animated deal/ad box
    spec.page.fixedHeader = true;

    // Paper Table I: Amazon 1.6 MB JS+CSS, 58% unused after load,
    // 54% unused after browsing.
    spec.js.targetBytes = scaled(1.2e6);
    spec.js.loadFraction = 0.40;
    spec.js.handlerFraction = 0.07;
    spec.css.targetBytes = scaled(0.4e6);
    spec.css.usedFraction = 0.50;

    // Load-only benchmark: the trace the paper collects ends when the
    // page is completely loaded, so keep only a short settle tail.
    spec.sessionMs = 400;
    return spec;
}

SiteSpec
amazonMobileSpec()
{
    SiteSpec spec = amazonDesktopSpec();
    spec.name = "Amazon (mobile view): Load";
    spec.seed = 0xA32;

    spec.browser.viewportWidth = 360; // emulated mobile display
    spec.browser.viewportHeight = 640;
    spec.browser.rasterThreads = 2;
    spec.browser.mobile = true;

    // The site serves the same DOM and scripts; what shrinks is the
    // display — so display lists stay long while the rastered output is
    // tiny, which is exactly why the paper's mobile rasterizer slice
    // collapses to 13-14%. The coarser cell granularity models the small
    // emulated display's pixel count, and the mobile view swaps the
    // heavy ad banner for a small progress spinner.
    spec.browser.cellPx = 64;
    spec.page.adBanner = false;
    spec.page.spinner = true;

    spec.js.targetBytes = scaled(0.75e6);
    spec.js.loadFraction = 0.42;
    spec.css.targetBytes = scaled(0.25e6);
    spec.sessionMs = 400;
    return spec;
}

SiteSpec
googleMapsSpec()
{
    SiteSpec spec;
    spec.name = "Google Maps: Load";
    spec.url = "https://maps.example/";
    spec.seed = 0x6A5;

    spec.browser.viewportWidth = 1280;
    spec.browser.viewportHeight = 720;
    spec.browser.rasterThreads = 2;

    spec.page.sections = 1; // a results sidebar, not a shopping page
    spec.page.itemsPerSection = 4;
    spec.page.hiddenMenus = 2;
    spec.page.mapCanvas = true;
    spec.page.bigMapImage = true; // the viewport-filling map raster
    spec.page.mapTiles = 4;
    spec.page.adBanner = true;    // sponsored-pin/ad overlay
    spec.page.fixedHeader = true;

    // Paper Table I: Google Maps 3.9 MB, 49% unused after load.
    spec.js.targetBytes = scaled(3.0e6);
    spec.js.loadFraction = 0.50;
    spec.js.handlerFraction = 0.05;
    spec.css.targetBytes = scaled(0.9e6);
    spec.css.usedFraction = 0.52;

    spec.imageBytes = 2048;
    spec.sessionMs = 400;
    return spec;
}

SiteSpec
bingSpec()
{
    SiteSpec spec;
    spec.name = "Bing: Load + Browse";
    spec.url = "https://bing.example/";
    spec.seed = 0xB16;

    spec.browser.viewportWidth = 1280;
    spec.browser.viewportHeight = 720;
    spec.browser.rasterThreads = 2;

    spec.page.sections = 4;
    spec.page.itemsPerSection = 4;
    spec.page.hiddenMenus = 1;
    spec.page.newsPane = true;
    spec.page.searchBox = true;
    spec.page.adBanner = true; // animated news/ad widget
    spec.page.fixedHeader = true;

    // Paper Table I: Bing 199 KB at load (52% unused), growing to
    // 206 KB while browsing (40% unused).
    spec.js.targetBytes = scaled(150e3);
    spec.js.loadFraction = 0.44;
    spec.js.handlerFraction = 0.20;
    spec.css.targetBytes = scaled(49e3);
    spec.css.usedFraction = 0.55;

    // The browse session (the paper's: open+close the top-right menu,
    // roll the news pane, type a search term).
    spec.sessionMs = 9000;
    spec.actions = {
        {UserAction::Kind::Click, 2000, 0, "btn-menu"},
        {UserAction::Kind::Click, 3200, 0, "btn-menu"},
        {UserAction::Kind::Click, 4400, 0, "btn-roll"},
        {UserAction::Kind::Key, 5600, 0, "searchbox"},
        {UserAction::Kind::Key, 6000, 0, "searchbox"},
        {UserAction::Kind::Key, 6400, 0, "searchbox"},
        {UserAction::Kind::Key, 6800, 0, "searchbox"},
    };
    spec.lazyJsBytes = scaled(7e3);
    spec.lazyJsAtMs = 3600;
    return spec;
}

SiteSpec
amazonFigure2Spec()
{
    // The Figure 2 session: amazon.com loaded, scrolled down and up a
    // little, two photo-roll clicks, and a menu open.
    SiteSpec spec = amazonDesktopSpec();
    spec.name = "amazon.com browsing session (Figure 2)";
    spec.sessionMs = 11000;
    spec.actions = {
        {UserAction::Kind::Scroll, 3000, 400, ""},
        {UserAction::Kind::Scroll, 3800, 300, ""},
        {UserAction::Kind::Scroll, 4800, -500, ""},
        {UserAction::Kind::Click, 6200, 0, "btn-roll"},
        {UserAction::Kind::Click, 7400, 0, "btn-roll"},
        {UserAction::Kind::Click, 9000, 0, "btn-menu"},
    };
    return spec;
}

std::vector<SiteSpec>
paperBenchmarks()
{
    return {amazonDesktopSpec(), amazonMobileSpec(), googleMapsSpec(),
            bingSpec()};
}

const std::vector<BuiltinSite> &
builtinSites()
{
    static const std::vector<BuiltinSite> sites = {
        {"amazon-desktop",
         "Amazon desktop view, load only (seed 0xa31, 3 rasterizers)",
         amazonDesktopSpec},
        {"amazon-mobile",
         "Amazon emulated mobile view 360x640, load only (seed 0xa32)",
         amazonMobileSpec},
        {"maps",
         "Google Maps, load only; the largest JS+CSS payload (seed 0x6a5)",
         googleMapsSpec},
        {"bing",
         "Bing, load + browse session with menu/roll/typing (seed 0xb16)",
         bingSpec},
        {"fig2",
         "Figure 2 session: amazon.com with scrolls, photo clicks, menu",
         amazonFigure2Spec},
    };
    return sites;
}

const BuiltinSite *
findBuiltinSite(const std::string &id)
{
    for (const auto &site : builtinSites()) {
        if (id == site.id)
            return &site;
    }
    return nullptr;
}

SiteSpec
withBrowseSession(SiteSpec spec)
{
    if (!spec.actions.empty())
        return spec; // already a browse benchmark

    spec.name += " + Browse";
    spec.sessionMs = 9000;
    // Typical-browse script: open and close the menu, roll the photos,
    // scroll around.
    spec.actions = {
        {UserAction::Kind::Click, 2500, 0, "btn-menu"},
        {UserAction::Kind::Scroll, 3400, 350, ""},
        {UserAction::Kind::Click, 4400, 0, "btn-roll"},
        {UserAction::Kind::Click, 5600, 0, "btn-roll"},
        {UserAction::Kind::Scroll, 6500, -350, ""},
        {UserAction::Kind::Click, 7400, 0, "btn-menu"},
    };
    if (spec.page.mapCanvas) {
        // Google Maps keeps downloading code while browsed (Table I's
        // total grows from 3.9 MB to 4.6 MB, partially used).
        spec.lazyJsBytes = static_cast<uint64_t>(0.7e6 * kContentScale);
        spec.lazyJsAtMs = 4000;
        spec.lazyJsLoadFraction = 0.75;
    }
    return spec;
}

SiteSpec
withoutBrowseSession(SiteSpec spec)
{
    spec.name = "Bing: Load";
    spec.actions.clear();
    spec.lazyJsBytes = 0;
    spec.sessionMs = 400;
    return spec;
}

SiteContent
buildSiteContent(const SiteSpec &spec)
{
    Rng rng(spec.seed);

    SiteContent site;
    site.url = spec.url;

    // The parser supplies the body root itself; the document references
    // its stylesheet and script from the head.
    const PageContent page = generatePage(rng, spec.page);
    site.html = page.html;

    site.resources["main.css"] = {ResourceType::Css,
                                  generateCss(rng, spec.css, page)};
    site.resources["app.js"] = {ResourceType::Js,
                                generateJs(rng, spec.js, page)};
    for (const auto &url : page.imageUrls) {
        site.resources[url] = {ResourceType::Image,
                               generateImageBytes(rng, spec.imageBytes)};
    }
    site.html = "<link href=main.css><script src=app.js>" + site.html;
    return site;
}

} // namespace workloads
} // namespace webslice
