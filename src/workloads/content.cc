#include "workloads/content.hh"

#include "browser/dom.hh"
#include "support/strings.hh"

namespace webslice {
namespace workloads {

namespace {

const char *const kWords[] = {
    "prime",  "deal",   "fresh",  "save",   "today", "offer",  "best",
    "ship",   "review", "star",   "cart",   "shop",  "visit",  "local",
    "route",  "search", "trend",  "news",   "world", "sport",  "photo",
    "video",  "score",  "market", "stock",  "media", "story",  "daily",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

std::string
words(Rng &rng, int count)
{
    std::string out;
    for (int i = 0; i < count; ++i) {
        if (i)
            out.push_back(' ');
        out += kWords[rng.below(kWordCount)];
    }
    return out;
}

} // namespace

std::string
idHashLiteral(const std::string &id)
{
    return std::to_string(browser::hashString(id));
}

PageContent
generatePage(Rng &rng, const PageSpec &spec)
{
    PageContent page;
    std::string &html = page.html;
    auto useClass = [&](const std::string &name) {
        for (const auto &existing : page.usedClasses) {
            if (existing == name)
                return name;
        }
        page.usedClasses.push_back(name);
        return name;
    };

    // ---- header + nav ------------------------------------------------------
    html += spec.fixedHeader ? "<header id=hdr class=hdr>"
                             : "<header id=hdr class=hdrflow>";
    useClass(spec.fixedHeader ? "hdr" : "hdrflow");
    html += words(rng, 2);
    html += "<nav class=nav>";
    useClass("nav");
    if (spec.hiddenMenus > 0) {
        page.menuButtonId = "btn-menu";
        html += "<button id=btn-menu class=btn>menu</button>";
        useClass("btn");
        page.buttonIds.push_back("btn-menu");
    }
    if (spec.searchBox) {
        page.searchBoxId = "searchbox";
        html += "<input id=searchbox class=search>";
        useClass("search");
        html += words(rng, 1);
    }
    html += "</nav></header>";
    page.visibleTargetIds.push_back("hdr");

    // ---- hidden overlay menus ----------------------------------------------
    for (int m = 0; m < spec.hiddenMenus; ++m) {
        const std::string id = format("menu-%d", m);
        if (m == 0)
            page.firstMenuId = id;
        html += format("<div id=%s class=menu hidden>", id.c_str());
        useClass("menu");
        html += "<ul class=mlist>";
        useClass("mlist");
        for (int e = 0; e < spec.menuEntries; ++e) {
            html += format("<li class=mitem id=mi-%d-%d>", m, e);
            useClass("mitem");
            html += words(rng, 3);
            html += "</li>";
            page.hiddenTargetIds.push_back(format("mi-%d-%d", m, e));
        }
        html += "</ul></div>";
        page.hiddenTargetIds.push_back(id);
    }

    // ---- animated carousel (photo roll) ------------------------------------
    if (spec.carousel) {
        page.carouselId = "carousel";
        html += "<div id=carousel class=carousel>";
        useClass("carousel");
        // The photos are absolutely positioned on top of each other (a
        // real photo roll): all but the top one are pure overdraw.
        for (int p = 0; p < spec.carouselPhotos; ++p) {
            const std::string url = format("carousel-%d.img", p);
            html += format("<img id=car-%d class=cphoto src=%s w=300 "
                           "h=180>",
                           p, url.c_str());
            useClass("cphoto");
            page.imageUrls.push_back(url);
            page.visibleTargetIds.push_back(format("car-%d", p));
        }
        page.rollButtonId = "btn-roll";
        html += "<button id=btn-roll class=btn>next</button>";
        useClass("btn");
        page.buttonIds.push_back("btn-roll");
        html += "</div>";
    }

    // ---- spinner / progress indicator ----------------------------------------
    if (spec.spinner) {
        html += "<div id=spinner class=spin>";
        html += words(rng, 1);
        html += "</div>";
        useClass("spin");
        page.visibleTargetIds.push_back("spinner");
    }

    // ---- animated ad banner -----------------------------------------------------
    if (spec.adBanner) {
        html += "<div id=ad class=adbox>";
        useClass("adbox");
        html += "<img id=ad-img src=ad.img w=280 h=200>";
        page.imageUrls.push_back("ad.img");
        html += "<p>";
        html += words(rng, 4);
        html += "</p></div>";
        page.visibleTargetIds.push_back("ad");
    }

    // ---- news pane (Bing) ---------------------------------------------------
    if (spec.newsPane) {
        page.newsPaneId = "news";
        html += "<div id=news class=news>";
        useClass("news");
        for (int n = 0; n < 6; ++n) {
            const std::string id = format("ncard-%d", n);
            html += format("<div id=%s class=ncard><p>", id.c_str());
            useClass("ncard");
            html += words(rng, spec.wordsPerParagraph);
            html += "</p></div>";
            page.visibleTargetIds.push_back(id);
        }
        if (page.rollButtonId.empty()) {
            page.rollButtonId = "btn-roll";
            html += "<button id=btn-roll class=btn>roll</button>";
            useClass("btn");
            page.buttonIds.push_back("btn-roll");
        }
        html += "</div>";
    }

    // ---- map canvas (Google Maps) -------------------------------------------
    if (spec.mapCanvas) {
        page.mapCanvasId = "map";
        html += "<div id=map class=mapc>";
        useClass("mapc");
        if (spec.bigMapImage) {
            html += "<img id=bigmap src=bigmap.img w=1240 h=650>";
            page.imageUrls.push_back("bigmap.img");
        }
        for (int t = 0; t < spec.mapTiles; ++t) {
            const std::string url = format("maptile-%d.img", t);
            html += format("<img id=mt-%d src=%s w=128 h=128>", t,
                           url.c_str());
            page.imageUrls.push_back(url);
        }
        html += "</div>";
        page.visibleTargetIds.push_back("map");
    }

    // ---- content sections ----------------------------------------------------
    for (int s = 0; s < spec.sections; ++s) {
        html += format("<section class=sec id=sec-%d>", s);
        useClass("sec");
        html += "<h1>";
        html += words(rng, 4);
        html += "</h1>";
        page.visibleTargetIds.push_back(format("sec-%d", s));
        for (int d = 0; d < spec.nestingDepth; ++d) {
            html += format("<div class=nest id=ns-%d-%d>", s, d);
            useClass("nest");
            page.visibleTargetIds.push_back(format("ns-%d-%d", s, d));
        }
        for (int i = 0; i < spec.itemsPerSection; ++i) {
            const std::string card = format("card-%d-%d", s, i);
            html += format("<div class=card id=%s>", card.c_str());
            useClass("card");
            const std::string url = format("img-%d-%d.img", s, i);
            html += format("<img src=%s w=300 h=200>", url.c_str());
            page.imageUrls.push_back(url);
            html += "<p>";
            html += words(rng, spec.wordsPerParagraph);
            html += "</p>";
            const std::string button = format("btn-%d-%d", s, i);
            html += format("<button id=%s class=btn>", button.c_str());
            html += words(rng, 2);
            html += "</button>";
            page.buttonIds.push_back(button);
            html += "</div>";
            page.visibleTargetIds.push_back(card);
        }
        for (int d = 0; d < spec.nestingDepth; ++d)
            html += "</div>";
        html += "</section>";
    }

    // ---- footer ---------------------------------------------------------------
    html += "<footer class=ftr id=ftr>";
    useClass("ftr");
    for (int l = 0; l < 8; ++l) {
        html += format("<a class=flink id=fl-%d>", l);
        useClass("flink");
        html += words(rng, 2);
        html += "</a>";
    }
    html += "</footer>";
    page.visibleTargetIds.push_back("ftr");

    return page;
}

std::string
generateCss(Rng &rng, const CssSpec &spec, const PageContent &page)
{
    std::string css;

    auto color = [&]() { return std::to_string(rng.below(0xFFFFFF) + 1); };

    // ---- structural rules the page depends on --------------------------------
    css += "body{bg:" + color() + "}\n";
    css += "div{margin:2}\n";
    css += "p{font:13;margin:2}\n";
    css += "h1{font:22;margin:6;color:" + color() + "}\n";
    css += ".hdr{position:1;z:6;height:56;bg:" + color() + "}\n";
    css += ".hdrflow{height:56;bg:" + color() + "}\n";
    css += ".nav{height:40}\n";
    css += ".btn{width:88;height:28;bg:" + color() + "}\n";
    css += ".menu{position:2;z:9;width:280;height:360;bg:" + color() +
           "}\n";
    css += ".mlist{margin:4}\n.mitem{height:24;color:" + color() + "}\n";
    // The carousel rotates slowly (anim value = frames per step); the
    // spinner animates at full frame rate. The spinner's margin keeps it
    // out from under the fixed header.
    css += ".carousel{anim:32;height:200;bg:" + color() + "}\n";
    css += ".cphoto{position:2}\n";
    css += ".spin{anim:1;width:64;height:64;margin:100;bg:" + color() +
           "}\n";
    css += ".adbox{anim:8;width:300;height:250;margin:120;bg:" +
           color() + "}\n";
    css += ".news{height:260;bg:" + color() + "}\n";
    css += ".ncard{height:36;bg:" + color() + ";margin:3}\n";
    css += ".search{width:320;height:30;bg:" + color() + "}\n";
    css += ".mapc{height:520;bg:" + color() + "}\n";
    css += ".sec{margin:10;padding:6}\n";
    css += ".card{height:230;width:880;bg:" + color() + ";margin:6;padding:4}\n";
    css += ".ftr{height:120;bg:" + color() + "}\n";
    css += ".flink{color:" + color() + "}\n";
    css += ".tile{width:64;height:64;bg:" + color() + "}\n";

    // ---- additional used rules (cascade refinements) ---------------------------
    // Only content classes take refinements: layering/animation classes
    // (spin, carousel, cphoto, hdr, menu) must keep their structural
    // geometry. Half of the refinements target specific element ids, so
    // their declarations spread across elements instead of piling
    // overrides onto one class.
    std::vector<std::string> refine_classes;
    for (const auto &cls : page.usedClasses) {
        if (cls == "spin" || cls == "adbox" || cls == "carousel" ||
            cls == "cphoto" || cls == "hdr" || cls == "hdrflow" ||
            cls == "menu" || cls == "mapc" || cls == "search") {
            continue;
        }
        refine_classes.push_back(cls);
    }
    const uint64_t used_target = static_cast<uint64_t>(
        static_cast<double>(spec.targetBytes) * spec.usedFraction);
    size_t class_cursor = 0;
    size_t id_cursor = 0;
    while (css.size() < used_target &&
           (!refine_classes.empty() || !page.visibleTargetIds.empty())) {
        const bool by_id = rng.chance(0.5) &&
                           !page.visibleTargetIds.empty();
        if (by_id) {
            const std::string &id = page.visibleTargetIds[
                id_cursor++ % page.visibleTargetIds.size()];
            css += "#" + id + "{";
        } else if (!refine_classes.empty()) {
            const std::string &cls = refine_classes[
                class_cursor++ % refine_classes.size()];
            css += "." + cls + "{";
        } else {
            continue;
        }
        const int props = static_cast<int>(rng.range(1, 3));
        for (int p = 0; p < props; ++p) {
            if (p)
                css += ";";
            switch (rng.below(4)) {
              case 0: css += "color:" + color(); break;
              case 1: css += "font:" + std::to_string(rng.range(10, 24));
                      break;
              case 2: css += "padding:" + std::to_string(rng.range(0, 8));
                      break;
              default: css += "margin:" + std::to_string(rng.range(2, 9));
                      break;
            }
        }
        css += "}\n";
    }

    // ---- unused filler rules (never match anything) -----------------------------
    int unused_index = 0;
    while (css.size() < spec.targetBytes) {
        switch (rng.below(3)) {
          case 0:
            css += format(".u-%d-%d{", unused_index,
                          static_cast<int>(rng.below(1000)));
            break;
          case 1:
            css += format("#nope-%d{", unused_index);
            break;
          default:
            css += format("canvas.v-%d{", unused_index);
            break;
        }
        const int props = static_cast<int>(rng.range(2, 5));
        for (int p = 0; p < props; ++p) {
            if (p)
                css += ";";
            switch (rng.below(5)) {
              case 0: css += "color:" + color(); break;
              case 1: css += "bg:" + color(); break;
              case 2: css += "width:" + std::to_string(rng.range(10, 900));
                      break;
              case 3: css += "height:" +
                             std::to_string(rng.range(10, 600));
                      break;
              default: css += "opacity:" +
                              std::to_string(rng.range(0, 100));
                      break;
            }
        }
        css += "}\n";
        ++unused_index;
    }
    return css;
}

namespace {

/** Emits one synthetic function body (statements of the JS dialect). */
std::string
functionBody(Rng &rng, const JsSpec &spec, const PageContent &page,
             bool touch_dom, const std::vector<std::string> &callees)
{
    std::string body;
    const int statements = static_cast<int>(
        rng.range(spec.statementsPerFunctionMin,
                  spec.statementsPerFunctionMax));
    int locals = 0;
    body += format("var t%d = %d;", locals,
                   static_cast<int>(rng.below(97) + 1));
    ++locals;

    for (int s = 0; s < statements; ++s) {
        switch (rng.below(8)) {
          case 0:
            body += format("var t%d = t%d * %d + %d;", locals,
                           static_cast<int>(rng.below(locals)),
                           static_cast<int>(rng.below(13) + 1),
                           static_cast<int>(rng.below(31)));
            ++locals;
            break;
          case 1: {
            const int a = static_cast<int>(rng.below(locals));
            body += format("if(t%d < %d){t%d = t%d + %d;}else{t%d = "
                           "t%d ^ %d;}",
                           a, static_cast<int>(rng.below(200)), a, a,
                           static_cast<int>(rng.below(9) + 1), a, a,
                           static_cast<int>(rng.below(255)));
            break;
          }
          case 2: {
            const int a = static_cast<int>(rng.below(locals));
            const int bound = static_cast<int>(rng.below(32) + 8);
            body += format("var t%d = 0;", locals);
            body += format("while(t%d < %d){t%d = t%d + 1; t%d = t%d "
                           "+ t%d * 3;}",
                           locals, bound, locals, locals, a, a, locals);
            ++locals;
            break;
          }
          case 3: {
            if (!callees.empty()) {
                const auto &callee =
                    callees[rng.below(callees.size())];
                body += format("var t%d = %s(t%d);", locals,
                               callee.c_str(),
                               static_cast<int>(rng.below(locals)));
                ++locals;
                break;
            }
            [[fallthrough]];
          }
          case 4: {
            if (touch_dom && !page.visibleTargetIds.empty()) {
                const auto &id = page.visibleTargetIds[rng.below(
                    page.visibleTargetIds.size())];
                // color or background, data-dependent value
                body += format("dom.set(%s, %d, t%d * 7919 + %d);",
                               idHashLiteral(id).c_str(),
                               rng.chance(0.5) ? 1 : 2,
                               static_cast<int>(rng.below(locals)),
                               static_cast<int>(rng.below(0xFFFF)));
                break;
            }
            [[fallthrough]];
          }
          case 5: {
            if (touch_dom && !page.hiddenTargetIds.empty()) {
                // Imperceptible: style a hidden menu entry.
                const auto &id = page.hiddenTargetIds[rng.below(
                    page.hiddenTargetIds.size())];
                body += format("dom.set(%s, 1, t%d + %d);",
                               idHashLiteral(id).c_str(),
                               static_cast<int>(rng.below(locals)),
                               static_cast<int>(rng.below(0xFFFF)));
                break;
            }
            [[fallthrough]];
          }
          case 6: {
            if (touch_dom && !page.visibleTargetIds.empty() &&
                rng.chance(0.3)) {
                const auto &id = page.visibleTargetIds[rng.below(
                    page.visibleTargetIds.size())];
                body += format("var t%d = dom.get(%s, 1) + t%d;", locals,
                               idHashLiteral(id).c_str(),
                               static_cast<int>(rng.below(locals)));
                ++locals;
                break;
            }
            [[fallthrough]];
          }
          default: {
            const int a = static_cast<int>(rng.below(locals));
            body += format("t%d = t%d & %d | %d;", a, a,
                           static_cast<int>(rng.below(0xFFFF)),
                           static_cast<int>(rng.below(0xFF)));
            break;
          }
        }
    }
    body += format("return t%d;", static_cast<int>(rng.below(locals)));
    return body;
}

} // namespace

std::string
generateJs(Rng &rng, const JsSpec &spec, const PageContent &page)
{
    std::string js;
    std::vector<std::string> load_functions;
    std::vector<std::string> helper_functions;
    int counter = 0;

    const uint64_t load_target = static_cast<uint64_t>(
        static_cast<double>(spec.targetBytes) * spec.loadFraction);
    const uint64_t handler_target = static_cast<uint64_t>(
        static_cast<double>(spec.targetBytes) * spec.handlerFraction);

    // ---- helpers shared by the load path (executed) ---------------------------
    for (int h = 0; h < 3; ++h) {
        const std::string name =
            format("%sutil%d", spec.namePrefix.c_str(), counter++);
        js += format("function %s(a){", name.c_str());
        js += "var r = a * 2 + 3; if(r < 50){r = r + a;} return r;";
        js += "}\n";
        helper_functions.push_back(name);
    }

    // ---- load-time functions (invoked from the top level) ---------------------
    while (js.size() < load_target) {
        const std::string name =
            format("%sinit%d", spec.namePrefix.c_str(), counter++);
        js += format("function %s(a){", name.c_str());
        js += functionBody(rng, spec, page, /*touch_dom=*/true,
                           helper_functions);
        js += "}\n";
        load_functions.push_back(name);
    }

    // ---- browse handlers (menu toggle, roll, typing) ---------------------------
    // Support functions reachable only from the fired handlers: these
    // bytes become "used" exactly when the user browses — the Table I
    // load-vs-browse delta.
    std::vector<std::string> browse_helpers;
    const uint64_t fired_target =
        js.size() + static_cast<uint64_t>(0.6 * handler_target);
    while (js.size() < fired_target) {
        const std::string name =
            format("%sbrowse%d", spec.namePrefix.c_str(), counter++);
        js += format("function %s(a){", name.c_str());
        js += functionBody(rng, spec, page, /*touch_dom=*/true,
                           helper_functions);
        js += "}\n";
        browse_helpers.push_back(name);
    }
    size_t browse_cursor = 0;
    auto callBrowseHelpers = [&](int count) {
        std::string calls;
        for (int i = 0; i < count && !browse_helpers.empty(); ++i) {
            calls += format(
                "g_b = %s(g_b);",
                browse_helpers[(browse_cursor++) %
                               browse_helpers.size()].c_str());
        }
        return calls;
    };

    std::string handlers_registration;
    if (!page.menuButtonId.empty() && !page.firstMenuId.empty()) {
        js += format("function %sonMenuToggle(){",
                     spec.namePrefix.c_str());
        js += callBrowseHelpers(static_cast<int>(
            browse_helpers.size() / 3 + 1));
        js += format("if(g_menu == 0){dom.show(%s); g_menu = 1;}"
                     "else{dom.hide(%s); g_menu = 0;}",
                     idHashLiteral(page.firstMenuId).c_str(),
                     idHashLiteral(page.firstMenuId).c_str());
        // Menu-open also styles the entries (work only visible when
        // the menu is).
        for (size_t e = 0; e < page.hiddenTargetIds.size() && e < 4;
             ++e) {
            js += format("dom.set(%s, 1, g_menu * 5003 + %zu);",
                         idHashLiteral(page.hiddenTargetIds[e]).c_str(),
                         e);
        }
        js += "}\n";
        handlers_registration += format(
            "dom.listen(%s, 0, %sonMenuToggle);",
            idHashLiteral(page.menuButtonId).c_str(),
            spec.namePrefix.c_str());
    }
    if (!page.rollButtonId.empty()) {
        js += format("function %sonRoll(){g_roll = g_roll + 1;",
                     spec.namePrefix.c_str());
        js += callBrowseHelpers(static_cast<int>(
            browse_helpers.size() / 3 + 1));
        const auto &targets = page.newsPaneId.empty()
                                  ? page.visibleTargetIds
                                  : page.visibleTargetIds;
        for (size_t n = 0; n < targets.size() && n < 6; ++n) {
            js += format("dom.set(%s, 2, g_roll * 7129 + %zu);",
                         idHashLiteral(targets[n]).c_str(), n);
        }
        js += "}\n";
        handlers_registration +=
            format("dom.listen(%s, 0, %sonRoll);",
                   idHashLiteral(page.rollButtonId).c_str(),
                   spec.namePrefix.c_str());
    }
    if (!page.searchBoxId.empty()) {
        js += format("function %sonKey(){g_q = g_q * 31 + 7;",
                     spec.namePrefix.c_str());
        js += callBrowseHelpers(static_cast<int>(
            browse_helpers.size() -
            2 * (browse_helpers.size() / 3 + 1)));
        js += format("dom.text(%s, g_q);",
                     idHashLiteral(page.searchBoxId).c_str());
        js += "}\n";
        handlers_registration +=
            format("dom.listen(%s, 1, %sonKey);",
                   idHashLiteral(page.searchBoxId).c_str(),
                   spec.namePrefix.c_str());
    }

    // Pad the browse-handler pool to its byte budget with handlers wired
    // to buttons that the sessions may or may not press.
    size_t button_cursor = 0;
    while (js.size() < load_target + handler_target &&
           button_cursor < page.buttonIds.size()) {
        const std::string name =
            format("%sonButton%d", spec.namePrefix.c_str(), counter++);
        js += format("function %s(){", name.c_str());
        js += functionBody(rng, spec, page, /*touch_dom=*/true,
                           helper_functions);
        js += "}\n";
        handlers_registration += format(
            "dom.listen(%s, 0, %s);",
            idHashLiteral(page.buttonIds[button_cursor]).c_str(),
            name.c_str());
        ++button_cursor;
    }

    // ---- hotness knobs: extra listeners + timed ticks (scenario gen) ------------
    for (int e = 0;
         e < spec.extraHandlers && !page.visibleTargetIds.empty(); ++e) {
        const std::string name =
            format("%sonExtra%d", spec.namePrefix.c_str(), counter++);
        js += format("function %s(){", name.c_str());
        js += functionBody(rng, spec, page, /*touch_dom=*/true,
                           helper_functions);
        js += "}\n";
        handlers_registration += format(
            "dom.listen(%s, 0, %s);",
            idHashLiteral(page.visibleTargetIds[
                              e % page.visibleTargetIds.size()])
                .c_str(),
            name.c_str());
    }
    std::string timer_arming;
    for (int t = 0; t < spec.timerCount; ++t) {
        const std::string name =
            format("%stick%d", spec.namePrefix.c_str(), t);
        js += format("function %s(){g_b = g_b * 3 + %d;", name.c_str(),
                     t + 1);
        if (!page.visibleTargetIds.empty()) {
            js += format("dom.set(%s, 2, g_b);",
                         idHashLiteral(page.visibleTargetIds[
                                           t % page.visibleTargetIds
                                                   .size()])
                             .c_str());
        }
        js += "}\n";
        timer_arming += format("timer(%llu, %s);",
                               static_cast<unsigned long long>(
                                   spec.timerMs * (t + 1)),
                               name.c_str());
    }

    // ---- dead weight: parsed + compiled, never run ------------------------------
    std::vector<std::string> dead_functions;
    while (js.size() < spec.targetBytes) {
        const std::string name =
            format("%slib%d", spec.namePrefix.c_str(), counter++);
        js += format("function %s(a){", name.c_str());
        js += functionBody(rng, spec, page, /*touch_dom=*/false,
                           dead_functions);
        js += "}\n";
        dead_functions.push_back(name);
        if (dead_functions.size() > 12)
            dead_functions.erase(dead_functions.begin());
    }

    // ---- top level ---------------------------------------------------------------
    // Globals (assignments, so handlers and the top level share slots).
    js += "g_menu = 0; g_roll = 0; g_q = 0; g_b = 1;\n";
    for (const auto &name : load_functions)
        js += name + "(3);";
    js += "\n";
    js += handlers_registration;
    js += timer_arming;
    js += "\n";
    return js;
}

std::string
generateImageBytes(Rng &rng, size_t bytes)
{
    std::string out;
    out.reserve(bytes);
    for (size_t i = 0; i < bytes; ++i)
        out.push_back(static_cast<char>(rng.below(256)));
    return out;
}

} // namespace workloads
} // namespace webslice
