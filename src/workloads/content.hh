/**
 * @file
 * Content synthesizers for the benchmark websites.
 *
 * These build the HTML/CSS/JS payloads that the browser substrate
 * downloads and processes. The key workload properties come straight from
 * the paper's measurements: 40-60% of JS+CSS bytes are never used after
 * load (Table I), some code only runs once the user browses, real sites
 * split into header/nav/menus/sections/footer with hidden overlays and
 * below-the-fold content, and JS registers the event handlers that the
 * browse sessions fire.
 */

#ifndef WEBSLICE_WORKLOADS_CONTENT_HH
#define WEBSLICE_WORKLOADS_CONTENT_HH

#include <string>
#include <vector>

#include "support/rng.hh"

namespace webslice {
namespace workloads {

/** Declarative description of the page structure to synthesize. */
struct PageSpec
{
    int sections = 6;          ///< Content sections below the header.
    int itemsPerSection = 4;   ///< Cards per section.
    int hiddenMenus = 2;       ///< display:none overlay menus.
    int menuEntries = 6;       ///< Items inside each menu.
    bool fixedHeader = true;   ///< position:fixed header layer.
    bool carousel = false;     ///< Animated photo-roll layer.
    int carouselPhotos = 6;    ///< Absolutely stacked photos in the roll.
    bool spinner = false;      ///< Small always-animated layer.
    bool adBanner = false;     ///< 300x250 animated ad (image + text).
    bool bigMapImage = false;  ///< One viewport-wide map image.
    bool newsPane = false;     ///< Bing-style news pane + roll button.
    bool searchBox = false;    ///< Search input wired to key handlers.
    bool mapCanvas = false;    ///< Google-Maps-style tile canvas.
    int mapTiles = 0;          ///< Image tiles inside the canvas.
    int wordsPerParagraph = 12;

    /**
     * Extra DOM depth: each section's cards are wrapped in this many
     * nested container divs (the scenario generator's dom_depth knob).
     * 0 keeps the historical flat markup byte-for-byte.
     */
    int nestingDepth = 0;
};

/** Synthesized page: the HTML plus everything the generators learned. */
struct PageContent
{
    std::string html;
    std::vector<std::string> imageUrls;

    /** Class names that actually appear in the HTML (for used CSS). */
    std::vector<std::string> usedClasses;

    /** Element ids that scripts are allowed to touch. */
    std::vector<std::string> visibleTargetIds;
    std::vector<std::string> hiddenTargetIds; ///< menus/overlays
    std::vector<std::string> buttonIds;

    std::string menuButtonId;  ///< "" when there is no menu.
    std::string firstMenuId;
    std::string rollButtonId;  ///< news-pane / carousel roll control.
    std::string newsPaneId;
    std::string searchBoxId;
    std::string carouselId;
    std::string mapCanvasId;
};

/** Build the page HTML (deterministic for a given rng state). */
PageContent generatePage(Rng &rng, const PageSpec &spec);

/** CSS generation parameters. */
struct CssSpec
{
    uint64_t targetBytes = 40000;
    /** Fraction of rule bytes that must match real page content. */
    double usedFraction = 0.5;
};

/** Generate a stylesheet; used rules target the page's real selectors. */
std::string generateCss(Rng &rng, const CssSpec &spec,
                        const PageContent &page);

/** JS generation parameters. */
struct JsSpec
{
    uint64_t targetBytes = 200000;
    /** Fraction of function bytes executed during load (top-level). */
    double loadFraction = 0.35;
    /** Fraction of function bytes only reachable via event handlers. */
    double handlerFraction = 0.08;
    int statementsPerFunctionMin = 4;
    int statementsPerFunctionMax = 18;

    /**
     * Prefix for every generated function name. Scripts loaded into the
     * same engine share one function namespace, so a second bundle
     * (lazy/browse-time download) must not collide with the first.
     */
    std::string namePrefix;

    // ---- scenario-generator hotness knobs (0 = historical output) ----------

    /**
     * One-shot timers armed from the top level: timer k fires a
     * DOM-touching tick function at (k+1) * timerMs. Models sites that
     * keep doing timed work after load.
     */
    int timerCount = 0;
    uint64_t timerMs = 400;

    /**
     * Additional click handlers wired to visible page targets beyond
     * the standard menu/roll/key set (the js_hotness listener knob).
     */
    int extraHandlers = 0;
};

/**
 * Generate a script. Load-time functions touch visible and hidden
 * targets and are invoked from the top level; handler functions are
 * registered with dom.listen on the page's interactive elements; the
 * rest is dead weight (parsed + compiled, never run).
 */
std::string generateJs(Rng &rng, const JsSpec &spec,
                       const PageContent &page);

/** Opaque image payload of roughly the requested size. */
std::string generateImageBytes(Rng &rng, size_t bytes);

/** FNV-1a hash rendered as a decimal literal for embedding in JS. */
std::string idHashLiteral(const std::string &id);

} // namespace workloads
} // namespace webslice

#endif // WEBSLICE_WORKLOADS_CONTENT_HH
