/**
 * @file
 * The paper's four benchmarks as site specifications, plus the runner
 * that executes one benchmark end to end on a fresh simulated machine.
 *
 * Benchmarks (Section IV-B):
 *   - Amazon, desktop view — load only; 3 rasterizer threads.
 *   - Amazon, emulated mobile view (360x640) — load only; much simpler
 *     first view, hence a much shorter trace.
 *   - Google Maps — load only; the largest JS+CSS payload.
 *   - Bing — load + ~30 s browse: open/close the top-right menu, click
 *     the news-pane roll button, type a term in the search bar.
 *
 * Figure 2 uses a fifth session: amazon.com loaded, scrolled down and
 * up, two photo-roll clicks, then a menu open.
 *
 * Byte volumes are the paper's Table I values scaled by contentScale
 * (default 1/8) so that traces stay benchmark-sized; all reported
 * percentages are scale-invariant.
 */

#ifndef WEBSLICE_WORKLOADS_SITES_HH
#define WEBSLICE_WORKLOADS_SITES_HH

#include <memory>
#include <string>
#include <vector>

#include "browser/js.hh"
#include "browser/tab.hh"
#include "browser/user_action.hh"
#include "sim/machine.hh"
#include "workloads/content.hh"

namespace webslice {
namespace workloads {

/**
 * The one scripted-action representation, shared with the scenario DSL
 * and browser::Tab::scheduleAction (historically workloads had its own
 * three-verb copy of this enum).
 */
using UserAction = browser::UserAction;

/** Everything needed to run one benchmark. */
struct SiteSpec
{
    std::string name;
    std::string url;
    uint64_t seed = 1;

    browser::BrowserConfig browser;
    PageSpec page;
    CssSpec css;
    JsSpec js;

    /** Session length (drives vsync ticks and idle tail). */
    uint64_t sessionMs = 2500;

    /** Scripted interactions (empty for load-only benchmarks). */
    std::vector<UserAction> actions;

    /** Extra script fetched mid-session (Bing/Maps grow while browsed). */
    uint64_t lazyJsBytes = 0;
    uint64_t lazyJsAtMs = 0;
    double lazyJsLoadFraction = 0.95; ///< Share of the lazy bytes used.

    /** Bytes of each image payload. */
    size_t imageBytes = 3072;

    /**
     * Record a value log alongside the trace (one written value per
     * record plus criterion snapshots) so the verification layer can
     * compare slice replays bit-for-bit. Off by default: the log costs
     * 8 bytes per record.
     */
    bool captureValues = false;
};

/** Content-volume scale relative to the paper's Table I byte counts. */
constexpr double kContentScale = 0.125;

SiteSpec amazonDesktopSpec();
SiteSpec amazonMobileSpec();
SiteSpec googleMapsSpec();
SiteSpec bingSpec();

/** The Figure 2 session (amazon.com with scrolls, photo clicks, menu). */
SiteSpec amazonFigure2Spec();

/**
 * Derive the Table I "Load and Browse" variant of a load-only spec: a
 * ~30s-equivalent session of typical interactions (menu open/close,
 * photo-roll clicks, scrolls), plus the extra script Maps/Bing download
 * while being browsed.
 */
SiteSpec withBrowseSession(SiteSpec spec);

/** Strip the browse session (Table I "Only Load" variant of Bing). */
SiteSpec withoutBrowseSession(SiteSpec spec);

/** All four Table II benchmarks in paper order. */
std::vector<SiteSpec> paperBenchmarks();

/** One enumerable built-in workload (webslice-record --list, describe). */
struct BuiltinSite
{
    const char *id;      ///< CLI name, e.g. "amazon-desktop".
    const char *summary; ///< One-line description for listings.
    SiteSpec (*factory)();
};

/** Registry of the named built-in workloads, in CLI/paper order. */
const std::vector<BuiltinSite> &builtinSites();

/** Look up a built-in by CLI id; nullptr when unknown. */
const BuiltinSite *findBuiltinSite(const std::string &id);

/** Result of one end-to-end benchmark run. */
struct RunResult
{
    SiteSpec spec;
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<browser::Tab> tab;

    /** Secondary tabs of a multi-tab scenario (scenario engine only). */
    std::vector<std::unique_ptr<browser::Tab>> extraTabs;

    size_t loadCompleteIndex = 0;
    uint64_t jsTotalBytes = 0;
    uint64_t jsUsedBytes = 0;
    uint64_t cssTotalBytes = 0;
    uint64_t cssUsedBytes = 0;

    const std::vector<trace::Record> &records() const
    {
        return machine->records();
    }

    /**
     * Every simulated thread by id — derived from the machine rather
     * than the tab's browser thread set so dedicated workers (and any
     * other threads a scenario adds) are included.
     */
    std::vector<std::string>
    threadNames() const
    {
        std::vector<std::string> names;
        names.reserve(machine->threadCount());
        for (size_t t = 0; t < machine->threadCount(); ++t)
            names.push_back(
                machine->threadName(static_cast<trace::ThreadId>(t)));
        return names;
    }

    uint64_t
    unusedBytes() const
    {
        return (jsTotalBytes - jsUsedBytes) +
               (cssTotalBytes - cssUsedBytes);
    }

    uint64_t totalBytes() const { return jsTotalBytes + cssTotalBytes; }
};

/** Build the SiteContent payloads for a spec (deterministic). */
browser::SiteContent buildSiteContent(const SiteSpec &spec);

// The end-to-end runner lives in scenario/run.hh (scenario::runSite):
// specs are compiled into a Scenario and executed by the one scenario
// engine, so hard-coded benchmarks and .scn files share every code path.

} // namespace workloads
} // namespace webslice

#endif // WEBSLICE_WORKLOADS_SITES_HH
