#include "support/metrics.hh"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define WEBSLICE_HAVE_RUSAGE 1
#endif

#include "support/logging.hh"

namespace webslice {

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

void
MetricRegistry::addSpan(PhaseSpan span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    spans_.clear();
}

std::vector<std::pair<std::string, uint64_t>>
MetricRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.emplace_back(kv.first, kv.second->value());
    return out;
}

std::vector<std::pair<std::string, uint64_t>>
MetricRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(gauges_.size());
    for (const auto &kv : gauges_)
        out.emplace_back(kv.first, kv.second->value());
    return out;
}

std::vector<PhaseSpan>
MetricRegistry::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
metricsReportJson(
    const MetricRegistry &reg, std::string_view tool,
    const std::vector<std::pair<std::string, std::string>> &extras,
    std::string_view schema)
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"" + jsonEscape(schema) + "\",\n";
    out += "  \"tool\": \"" + jsonEscape(tool) + "\",\n";

    out += "  \"phases\": [\n";
    const auto spans = reg.spans();
    for (size_t i = 0; i < spans.size(); ++i) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                      "\"peak_rss_bytes\": %llu}%s\n",
                      jsonEscape(spans[i].name).c_str(),
                      spans[i].wallSeconds,
                      static_cast<unsigned long long>(spans[i].peakRssBytes),
                      i + 1 < spans.size() ? "," : "");
        out += buf;
    }
    out += "  ],\n";

    const auto emitMap =
        [&out](const char *key,
               const std::vector<std::pair<std::string, uint64_t>> &vals) {
            out += "  \"";
            out += key;
            out += "\": {\n";
            for (size_t i = 0; i < vals.size(); ++i) {
                char buf[256];
                std::snprintf(buf, sizeof(buf), "    \"%s\": %llu%s\n",
                              jsonEscape(vals[i].first).c_str(),
                              static_cast<unsigned long long>(
                                  vals[i].second),
                              i + 1 < vals.size() ? "," : "");
                out += buf;
            }
            out += "  }";
        };

    emitMap("counters", reg.counterValues());
    out += ",\n";
    emitMap("gauges", reg.gaugeValues());

    for (const auto &extra : extras) {
        out += ",\n  \"" + jsonEscape(extra.first) + "\": ";
        out += extra.second;
    }
    out += "\n}\n";
    return out;
}

void
writeMetricsReport(
    const std::string &path, const MetricRegistry &reg,
    std::string_view tool,
    const std::vector<std::pair<std::string, std::string>> &extras,
    std::string_view schema)
{
    const std::string json = metricsReportJson(reg, tool, extras, schema);
    if (path == "-") {
        // Stdout mode: the report is the tool's pipeable output.
        fatal_if(std::fwrite(json.data(), 1, json.size(), stdout) !=
                     json.size(),
                 "short write of metrics report to stdout");
        std::fputc('\n', stdout);
        std::fflush(stdout);
        return;
    }
    std::FILE *file = std::fopen(path.c_str(), "w");
    fatal_if(!file, "cannot write metrics report ", path);
    fatal_if(std::fwrite(json.data(), 1, json.size(), file) != json.size(),
             "short write to metrics report ", path);
    std::fclose(file);
}

uint64_t
currentRssBytes()
{
#if defined(__linux__)
    // /proc/self/statm: size resident shared ... in pages.
    std::FILE *statm = std::fopen("/proc/self/statm", "r");
    if (!statm)
        return 0;
    unsigned long long size = 0, resident = 0;
    const int got = std::fscanf(statm, "%llu %llu", &size, &resident);
    std::fclose(statm);
    if (got != 2)
        return 0;
    return resident * 4096ull;
#else
    return 0;
#endif
}

uint64_t
peakRssBytes()
{
#ifdef WEBSLICE_HAVE_RUSAGE
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<uint64_t>(usage.ru_maxrss); // bytes on macOS
#else
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024ull; // KiB on Linux
#endif
#else
    return 0;
#endif
}

FileDigest
digestFile(const std::string &path)
{
    FileDigest digest;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return digest;

    uint64_t hash = kFnv1a64Offset;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
        hash = fnv1a64(buf, got, hash);
        digest.bytes += got;
    }
    digest.fnv1a = hash;
    digest.ok = std::ferror(file) == 0;
    std::fclose(file);
    return digest;
}

uint64_t
fnv1a64(const void *data, size_t bytes, uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull; // FNV-1a prime
    }
    return hash;
}

} // namespace webslice
