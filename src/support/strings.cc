#include "support/strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace webslice {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
               text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
               text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::string_view
topNamespace(std::string_view symbol)
{
    const size_t pos = symbol.find("::");
    if (pos == std::string_view::npos)
        return {};
    return symbol.substr(0, pos);
}

std::string
namespacePath(std::string_view symbol, int depth)
{
    size_t pos = 0;
    int seen = 0;
    while (seen < depth) {
        const size_t next = symbol.find("::", pos);
        if (next == std::string_view::npos) {
            // Fewer components than requested: the last component is the
            // function name itself, not a namespace; drop it.
            if (seen == 0)
                return {};
            return std::string(symbol.substr(0, pos - 2));
        }
        pos = next + 2;
        ++seen;
    }
    return std::string(symbol.substr(0, pos - 2));
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
humanBytes(uint64_t bytes)
{
    if (bytes >= 1024ull * 1024 * 1024) {
        return format("%.1f GB",
                      static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
    }
    if (bytes >= 1024ull * 1024) {
        return format("%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024));
    }
    if (bytes >= 1024) {
        return format("%.0f KB", static_cast<double>(bytes) / 1024.0);
    }
    return format("%llu B", static_cast<unsigned long long>(bytes));
}

std::string
humanMillions(uint64_t count)
{
    const uint64_t millions = count / 1000000ull;
    if (millions > 0)
        return withCommas(millions) + " M";
    return withCommas(count / 1000ull) + " K";
}

std::string
withCommas(uint64_t value)
{
    std::string raw = std::to_string(value);
    std::string out;
    const size_t n = raw.size();
    for (size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0)
            out.push_back(',');
        out.push_back(raw[i]);
    }
    return out;
}

} // namespace webslice
