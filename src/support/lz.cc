#include "support/lz.hh"

#include <cstring>

namespace webslice {

namespace {

// Stream shape (LZ4-flavoured): a sequence of
//   token byte: (literalLen:4 | matchLen:4)
//   [literalLen extension bytes of 255 while the nibble is 15]
//   literal bytes
//   2-byte LE match offset (absent after the final literals)
//   [matchLen extension bytes of 255 while the nibble is 15]
// Match length nibble encodes (length - kMinMatch).
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 0xFFFF;
constexpr unsigned kHashBits = 13;

uint32_t
hash4(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
putLength(size_t len, std::vector<uint8_t> &out)
{
    while (len >= 255) {
        out.push_back(255);
        len -= 255;
    }
    out.push_back(static_cast<uint8_t>(len));
}

void
emitSequence(const uint8_t *literals, size_t literal_len, size_t offset,
             size_t match_len, std::vector<uint8_t> &out)
{
    const uint8_t lit_nibble =
        static_cast<uint8_t>(literal_len < 15 ? literal_len : 15);
    size_t match_code = 0;
    uint8_t match_nibble = 0;
    if (match_len) {
        match_code = match_len - kMinMatch;
        match_nibble =
            static_cast<uint8_t>(match_code < 15 ? match_code : 15);
    }
    out.push_back(static_cast<uint8_t>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15)
        putLength(literal_len - 15, out);
    out.insert(out.end(), literals, literals + literal_len);
    if (!match_len)
        return; // final literal run: no offset, no match extension
    out.push_back(static_cast<uint8_t>(offset & 0xFF));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (match_nibble == 15)
        putLength(match_code - 15, out);
}

} // namespace

void
lzCompress(const uint8_t *src, size_t size, std::vector<uint8_t> &out)
{
    // Final-literals convention: the stream always ends with a
    // match-less token, so empty input encodes as a single zero token.
    uint32_t table[1u << kHashBits];
    std::memset(table, 0xFF, sizeof(table)); // 0xFFFFFFFF = empty slot

    size_t pos = 0;
    size_t literal_start = 0;
    // Stop matching kMinMatch short of the end so hash4 stays in range.
    const size_t match_limit = size >= kMinMatch ? size - kMinMatch + 1 : 0;
    while (pos < match_limit) {
        const uint32_t h = hash4(src + pos);
        const uint32_t candidate = table[h];
        table[h] = static_cast<uint32_t>(pos);
        if (candidate != 0xFFFFFFFFu && pos - candidate <= kMaxOffset &&
            std::memcmp(src + candidate, src + pos, kMinMatch) == 0) {
            size_t len = kMinMatch;
            while (pos + len < size && src[candidate + len] == src[pos + len])
                ++len;
            emitSequence(src + literal_start, pos - literal_start,
                         pos - candidate, len, out);
            // Seed the table inside the match so the next search can
            // find overlapping repetitions (cheap, big win on the
            // near-periodic delta columns).
            const size_t end = pos + len;
            pos += 1;
            while (pos < end && pos < match_limit) {
                table[hash4(src + pos)] = static_cast<uint32_t>(pos);
                pos += 2;
            }
            pos = end;
            literal_start = pos;
        } else {
            ++pos;
        }
    }
    emitSequence(src + literal_start, size - literal_start, 0, 0, out);
}

namespace {

/** Read a 255-extended length; false on truncation. */
bool
readLength(const uint8_t *&p, const uint8_t *end, size_t &len)
{
    while (true) {
        if (p >= end)
            return false;
        const uint8_t b = *p++;
        len += b;
        if (b != 255)
            return true;
    }
}

} // namespace

bool
lzDecompress(const uint8_t *src, size_t src_size, uint8_t *dst,
             size_t dst_size)
{
    const uint8_t *p = src;
    const uint8_t *const src_end = src + src_size;
    size_t out = 0;
    while (true) {
        if (p >= src_end)
            return false; // stream ended without a final-literals token
        const uint8_t token = *p++;
        size_t literal_len = token >> 4;
        if (literal_len == 15 && !readLength(p, src_end, literal_len))
            return false;
        if (literal_len > static_cast<size_t>(src_end - p) ||
            literal_len > dst_size - out)
            return false;
        std::memcpy(dst + out, p, literal_len);
        p += literal_len;
        out += literal_len;

        if (p == src_end) {
            // Stream end is only legal on a match-less final token.
            return (token & 0x0F) == 0 && out == dst_size;
        }
        if (src_end - p < 2)
            return false;
        const size_t offset = static_cast<size_t>(p[0]) |
                              (static_cast<size_t>(p[1]) << 8);
        p += 2;
        size_t match_len = (token & 0x0F);
        if (match_len == 15 && !readLength(p, src_end, match_len))
            return false;
        match_len += kMinMatch;
        if (offset == 0 || offset > out || match_len > dst_size - out)
            return false;
        // Overlapping copy (offset < match_len) must replay bytes as
        // they are produced: copy strictly forward.
        const uint8_t *from = dst + out - offset;
        uint8_t *to = dst + out;
        for (size_t i = 0; i < match_len; ++i)
            to[i] = from[i];
        out += match_len;
    }
}

} // namespace webslice
