#include "support/logging.hh"

#include <cstdio>

namespace webslice {

namespace {

/** Nesting depth of ScopedFatalCapture scopes on this thread. */
thread_local int tl_fatal_capture_depth = 0;

} // namespace

ScopedFatalCapture::ScopedFatalCapture() { ++tl_fatal_capture_depth; }

ScopedFatalCapture::~ScopedFatalCapture() { --tl_fatal_capture_depth; }

bool
ScopedFatalCapture::active()
{
    return tl_fatal_capture_depth > 0;
}

namespace detail {

void
logMessage(const char *prefix, const std::string &msg,
           const char *file, int line)
{
    if (file) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(),
                     file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    }
    std::fflush(stderr);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    logMessage("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    if (ScopedFatalCapture::active()) {
        std::ostringstream os;
        os << msg << " (" << file << ":" << line << ")";
        throw FatalError(os.str());
    }
    logMessage("fatal", msg, file, line);
    std::exit(1);
}

} // namespace detail
} // namespace webslice
