#include "support/logging.hh"

#include <cstdio>

namespace webslice {
namespace detail {

void
logMessage(const char *prefix, const std::string &msg,
           const char *file, int line)
{
    if (file) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(),
                     file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    }
    std::fflush(stderr);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    logMessage("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    logMessage("fatal", msg, file, line);
    std::exit(1);
}

} // namespace detail
} // namespace webslice
