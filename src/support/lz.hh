/**
 * @file
 * Small self-contained LZ block codec (LZ4-style byte stream).
 *
 * The columnar trace format compresses each column-encoded block with
 * this codec before it hits disk. The format is a classic
 * token/literals/match sequence stream: greedy matching against a
 * single-entry hash table, 16-bit match offsets (64 KiB window), and a
 * 4-byte minimum match. That is deliberately the simple end of the LZ
 * family — decode is a tight copy loop with no entropy stage, so the
 * decode path (the hot side: every block seek pays it) runs at memcpy
 * order of magnitude, while the repetitive delta-varint columns the
 * trace encoder produces still compress by several x.
 *
 * The codec is format-stable: compressed blocks are persisted in .trc
 * v2 files, so the byte stream below must not change shape.
 */

#ifndef WEBSLICE_SUPPORT_LZ_HH
#define WEBSLICE_SUPPORT_LZ_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace webslice {

/**
 * Compress `size` bytes at `src` into `out` (appended; `out` is not
 * cleared). Always succeeds; incompressible input degrades to literal
 * runs with a bounded overhead of ~1/255 plus a few bytes.
 */
void lzCompress(const uint8_t *src, size_t size, std::vector<uint8_t> &out);

/**
 * Decompress a stream produced by lzCompress into exactly `dst_size`
 * bytes at `dst`.
 * @retval false when the stream is malformed or does not decode to
 *         exactly dst_size bytes (truncated/corrupt input); the caller
 *         owns the loud failure path with file context.
 */
bool lzDecompress(const uint8_t *src, size_t src_size, uint8_t *dst,
                  size_t dst_size);

} // namespace webslice

#endif // WEBSLICE_SUPPORT_LZ_HH
