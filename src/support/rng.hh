/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in the workload generators and the browser
 * substrate draw from this generator so that traces — and therefore every
 * reported number — are reproducible run to run.
 */

#ifndef WEBSLICE_SUPPORT_RNG_HH
#define WEBSLICE_SUPPORT_RNG_HH

#include <cstdint>

namespace webslice {

/**
 * SplitMix64-seeded xoshiro256** generator. Small, fast, and completely
 * deterministic for a given seed; no global state.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the four state words.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound == 0 yields 0. */
    uint64_t
    below(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        if (hi <= lo)
            return lo;
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** True with probability p. */
    bool chance(double p) { return real() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_RNG_HH
