/**
 * @file
 * String helpers shared across the library: splitting, prefix tests,
 * namespace extraction from C++-style mangled-readable symbol names, and
 * printf-style formatting into std::string.
 */

#ifndef WEBSLICE_SUPPORT_STRINGS_HH
#define WEBSLICE_SUPPORT_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace webslice {

/** Split on a single character delimiter; empty fields are kept. */
std::vector<std::string> split(std::string_view text, char delim);

/** True if text begins with prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if text ends with suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/**
 * Extract the top-level namespace of a qualified symbol name:
 * "v8::Parser::parseFunction" -> "v8"; names without "::" yield "".
 */
std::string_view topNamespace(std::string_view symbol);

/**
 * Extract the leading namespace path up to depth components:
 * namespacePath("base::threading::MutexLock", 2) -> "base::threading".
 */
std::string namespacePath(std::string_view symbol, int depth);

/** printf into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Render a byte count with a binary-unit suffix ("1.6 MB"). */
std::string humanBytes(uint64_t bytes);

/** Render an instruction count the way the paper does ("6,217 M"). */
std::string humanMillions(uint64_t count);

/** Insert thousands separators ("1234567" -> "1,234,567"). */
std::string withCommas(uint64_t value);

} // namespace webslice

#endif // WEBSLICE_SUPPORT_STRINGS_HH
