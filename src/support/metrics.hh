/**
 * @file
 * Process-wide metrics for the profiler pipeline.
 *
 * The paper's profiler runs for hours on a single trace; this registry is
 * what makes such a run observable instead of a black box. Three metric
 * kinds cover the pipeline's needs:
 *
 *  - Counter: a monotonically increasing total (records fed, transitions
 *    filtered, prefetch hits). Hot paths accumulate into local variables
 *    and publish once per phase, so metrics collection stays off the
 *    per-record critical path.
 *  - Gauge: a sampled value where the maximum is usually what matters
 *    (live-memory chunk high-water mark, pending-branch peak).
 *  - PhaseSpan: one wall-clock interval per pipeline phase (load, forward
 *    feed, postdom+CDG, backward pass, attribution) with the process's
 *    peak RSS sampled at phase end.
 *
 * MetricRegistry::global() is the process-wide instance every layer
 * publishes into; local instances exist for tests. metricsReportJson()
 * renders a registry (plus tool-specific extra sections) into the
 * machine-readable run report behind `webslice-profile --metrics-json`
 * and bench/pipeline_scaling's BENCH_profiler.json.
 */

#ifndef WEBSLICE_SUPPORT_METRICS_HH
#define WEBSLICE_SUPPORT_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace webslice {

/** Monotonically increasing event total. */
class Counter
{
  public:
    void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Sampled value; setMax keeps the high-water mark. */
class Gauge
{
  public:
    void set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

    void
    setMax(uint64_t v)
    {
        uint64_t cur = value_.load(std::memory_order_relaxed);
        while (cur < v &&
               !value_.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed)) {
        }
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** One completed pipeline phase. */
struct PhaseSpan
{
    std::string name;
    double wallSeconds = 0.0;
    /** Process peak RSS sampled when the phase closed (0 if unknown). */
    uint64_t peakRssBytes = 0;
};

/**
 * Named counters, gauges, and phase spans. Registration is mutex
 * protected; the returned Counter/Gauge references are stable for the
 * registry's lifetime, so hot code looks a metric up once and keeps the
 * reference.
 */
class MetricRegistry
{
  public:
    /** The process-wide registry every pipeline layer publishes into. */
    static MetricRegistry &global();

    /** Find-or-create a counter. */
    Counter &counter(const std::string &name);

    /** Find-or-create a gauge. */
    Gauge &gauge(const std::string &name);

    /** Record one completed phase (spans keep insertion order). */
    void addSpan(PhaseSpan span);

    /** Drop every metric; for tests and repeated benchmark sections. */
    void reset();

    /** Sorted (name, value) snapshots. */
    std::vector<std::pair<std::string, uint64_t>> counterValues() const;
    std::vector<std::pair<std::string, uint64_t>> gaugeValues() const;
    std::vector<PhaseSpan> spans() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::vector<PhaseSpan> spans_;
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Render the machine-readable run report: schema tag, tool name, phase
 * spans, counters, and gauges from `reg`, followed by tool-specific
 * sections given as (key, raw JSON value) pairs, in order. Tools with
 * their own report contract (webslice-check) pass their own schema tag.
 */
std::string metricsReportJson(
    const MetricRegistry &reg, std::string_view tool,
    const std::vector<std::pair<std::string, std::string>> &extras = {},
    std::string_view schema = "webslice-metrics-v1");

/**
 * Write metricsReportJson() to a file; fatal on I/O failure. The path
 * "-" writes the report to stdout instead (followed by a newline), so
 * callers can pipe `--metrics-json -` straight into a consumer.
 */
void writeMetricsReport(
    const std::string &path, const MetricRegistry &reg,
    std::string_view tool,
    const std::vector<std::pair<std::string, std::string>> &extras = {},
    std::string_view schema = "webslice-metrics-v1");

/** Current resident set size in bytes (0 when the platform hides it). */
uint64_t currentRssBytes();

/** Process-lifetime peak resident set size in bytes (0 if unknown). */
uint64_t peakRssBytes();

/** Size and FNV-1a-64 content digest of an artifact file. */
struct FileDigest
{
    bool ok = false;
    uint64_t bytes = 0;
    uint64_t fnv1a = 0;
};

/** Digest a file's contents (streamed; ok=false when unreadable). */
FileDigest digestFile(const std::string &path);

/** FNV-1a-64 offset basis (the seed digestFile starts from). */
constexpr uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;

/**
 * FNV-1a-64 over an in-memory buffer, chainable via `seed`. Matches
 * digestFile byte for byte, so an in-memory hash of a file's contents
 * equals the file's digest.
 */
uint64_t fnv1a64(const void *data, size_t bytes,
                 uint64_t seed = kFnv1a64Offset);

} // namespace webslice

#endif // WEBSLICE_SUPPORT_METRICS_HH
