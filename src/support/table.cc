#include "support/table.hh"

#include <algorithm>

namespace webslice {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    Row row;
    row.cells = std::move(cells);
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    Row row;
    row.separator = true;
    rows_.push_back(std::move(row));
}

void
TextTable::render(std::ostream &os) const
{
    size_t columns = header_.size();
    for (const auto &row : rows_)
        columns = std::max(columns, row.cells.size());

    std::vector<size_t> widths(columns, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    measure(header_);
    for (const auto &row : rows_) {
        if (!row.separator)
            measure(row.cells);
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < columns; ++i) {
            const std::string cell = i < cells.size() ? cells[i] : "";
            os << cell;
            if (i + 1 < columns) {
                os << std::string(widths[i] - cell.size() + 2, ' ');
            }
        }
        os << '\n';
    };

    size_t total = 0;
    for (size_t i = 0; i < columns; ++i)
        total += widths[i] + (i + 1 < columns ? 2 : 0);

    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.separator) {
            os << std::string(total, '-') << '\n';
        } else {
            emit(row.cells);
        }
    }
}

} // namespace webslice
