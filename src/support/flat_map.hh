/**
 * @file
 * Open-addressing hash containers for the profiler's hottest probes.
 *
 * FlatMap64 maps uint64_t keys to uint64_t values in two flat,
 * power-of-two-sized arrays with linear probing and backward-shift
 * deletion (no tombstones, so probe chains never rot). Compared to
 * std::unordered_map this removes one pointer chase and one allocation
 * per entry, which is what the backward slicing pass spends most of its
 * time on: every trace record probes the live-memory chunk map, and
 * every in-slice record probes the pending-branch set.
 *
 * The key ~0ull is reserved as the empty-slot marker. Both of the
 * profiler's key domains stay clear of it: live-set chunk bases are
 * addr >> 6 (max 2^58 - 1) and branch pcs are 32-bit.
 */

#ifndef WEBSLICE_SUPPORT_FLAT_MAP_HH
#define WEBSLICE_SUPPORT_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace webslice {

class FlatMap64
{
  public:
    /** Reserved key marking an empty slot. */
    static constexpr uint64_t kEmptyKey = ~0ull;

    FlatMap64() = default;

    /** Value slot for key, or nullptr when absent. */
    const uint64_t *
    find(uint64_t key) const
    {
        if (size_ == 0)
            return nullptr;
        const size_t slot = probe(key);
        return keys_[slot] == key ? &vals_[slot] : nullptr;
    }

    uint64_t *
    find(uint64_t key)
    {
        return const_cast<uint64_t *>(
            static_cast<const FlatMap64 *>(this)->find(key));
    }

    /**
     * Value slot for key, inserting a zero-initialized entry when absent.
     * The returned reference is invalidated by the next rehash or erase.
     */
    uint64_t &
    findOrInsert(uint64_t key)
    {
        if (capacity() == 0 || (size_ + 1) * 4 > capacity() * 3)
            grow();
        size_t slot = probe(key);
        if (keys_[slot] != key) {
            keys_[slot] = key;
            vals_[slot] = 0;
            ++size_;
        }
        return vals_[slot];
    }

    /** Remove key; true if it was present. */
    bool
    erase(uint64_t key)
    {
        if (size_ == 0)
            return false;
        size_t slot = probe(key);
        if (keys_[slot] != key)
            return false;

        // Backward-shift deletion: slide later entries of the probe chain
        // into the hole so lookups never need tombstones.
        const size_t mask = capacity() - 1;
        size_t hole = slot;
        size_t cursor = slot;
        while (true) {
            cursor = (cursor + 1) & mask;
            if (keys_[cursor] == kEmptyKey)
                break;
            const size_t ideal = mix(keys_[cursor]) & mask;
            if (((cursor - ideal) & mask) >= ((cursor - hole) & mask)) {
                keys_[hole] = keys_[cursor];
                vals_[hole] = vals_[cursor];
                hole = cursor;
            }
        }
        keys_[hole] = kEmptyKey;
        --size_;
        ++generation_;
        return true;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return keys_.size(); }

    void
    clear()
    {
        keys_.assign(keys_.size(), kEmptyKey);
        // vals_ left as-is: slots are re-zeroed on insert.
        size_ = 0;
        ++generation_;
    }

    /** Pre-size so `n` entries fit without rehashing. */
    void
    reserve(size_t n)
    {
        size_t cap = capacity() ? capacity() : kMinCapacity;
        while (n * 4 > cap * 3)
            cap <<= 1;
        if (cap != capacity())
            rehash(cap);
    }

    /**
     * Bumped whenever existing entries may have moved (rehash, erase,
     * clear); lets callers keep one-entry caches of value pointers.
     */
    uint32_t generation() const { return generation_; }

    /** Invoke fn(key, value) for every entry (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmptyKey)
                fn(keys_[i], vals_[i]);
        }
    }

    /** Bytes of heap storage currently held (diagnostics). */
    size_t
    heapBytes() const
    {
        return (keys_.capacity() + vals_.capacity()) * sizeof(uint64_t);
    }

    /** Total probe() calls over this map's lifetime (diagnostics). */
    uint64_t probeCount() const { return probes_; }

    /** Total rehashes (growth + reserve) over this map's lifetime. */
    uint64_t resizeCount() const { return resizes_; }

  private:
    static constexpr size_t kMinCapacity = 16;

    /** splitmix64 finalizer: full-avalanche 64-bit mix. */
    static uint64_t
    mix(uint64_t x)
    {
        x += 0x9E3779B97F4A7C15ull;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        return x ^ (x >> 31);
    }

    /** Slot holding key, or the empty slot where it would be inserted. */
    size_t
    probe(uint64_t key) const
    {
        ++probes_;
        const size_t mask = capacity() - 1;
        size_t slot = mix(key) & mask;
        while (keys_[slot] != kEmptyKey && keys_[slot] != key)
            slot = (slot + 1) & mask;
        return slot;
    }

    void
    grow()
    {
        rehash(capacity() ? capacity() * 2 : kMinCapacity);
    }

    void
    rehash(size_t new_capacity)
    {
        ++resizes_;
        std::vector<uint64_t> old_keys = std::move(keys_);
        std::vector<uint64_t> old_vals = std::move(vals_);
        keys_.assign(new_capacity, kEmptyKey);
        vals_.assign(new_capacity, 0);
        const size_t mask = new_capacity - 1;
        for (size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmptyKey)
                continue;
            size_t slot = mix(old_keys[i]) & mask;
            while (keys_[slot] != kEmptyKey)
                slot = (slot + 1) & mask;
            keys_[slot] = old_keys[i];
            vals_[slot] = old_vals[i];
        }
        ++generation_;
    }

    std::vector<uint64_t> keys_;
    std::vector<uint64_t> vals_;
    size_t size_ = 0;
    uint32_t generation_ = 0;
    mutable uint64_t probes_ = 0;
    uint64_t resizes_ = 0;
};

/** Set of uint64_t keys on top of FlatMap64 (values unused). */
class FlatSet64
{
  public:
    /** Insert key; true if it was newly added. */
    bool
    insert(uint64_t key)
    {
        const size_t before = map_.size();
        map_.findOrInsert(key);
        return map_.size() != before;
    }

    bool contains(uint64_t key) const { return map_.find(key) != nullptr; }

    /** Remove key; true if it was present. */
    bool erase(uint64_t key) { return map_.erase(key); }

    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }
    void reserve(size_t n) { map_.reserve(n); }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        map_.forEach([&fn](uint64_t key, uint64_t) { fn(key); });
    }

    uint64_t probeCount() const { return map_.probeCount(); }
    uint64_t resizeCount() const { return map_.resizeCount(); }

  private:
    FlatMap64 map_;
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_FLAT_MAP_HH
