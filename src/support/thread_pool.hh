/**
 * @file
 * A fixed pool of worker threads with a shared task queue.
 *
 * The profiler's forward pass decomposes into per-function units
 * (postdominators and control dependences are computed per CFG), so the
 * only primitive the pipeline needs is a blocking parallelFor over an
 * index range. The calling thread participates in the loop, so a pool of
 * W workers applies W+1 threads to the work; a pool of 0 workers degrades
 * to a plain serial loop with no synchronization.
 */

#ifndef WEBSLICE_SUPPORT_THREAD_POOL_HH
#define WEBSLICE_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace webslice {

/**
 * Tracks a set of tasks posted to a ThreadPool so a producer can block
 * until all of them have run. The epoch-parallel slicer posts per-epoch
 * transcode and resolve tasks against one group while its stitch phase
 * keeps running on the calling thread; the first exception thrown by any
 * task is captured and rethrown from wait().
 */
class TaskGroup
{
  public:
    /** Block until every task posted against this group has finished;
     *  rethrows the first captured task exception. */
    void wait();

    /** Tasks posted but not yet finished (racy; diagnostics only). */
    size_t outstanding() const;

  private:
    friend class ThreadPool;

    void finishOne(std::exception_ptr error);

    mutable std::mutex mutex_;
    std::condition_variable done_;
    size_t outstanding_ = 0;
    std::exception_ptr error_;
};

class ThreadPool
{
  public:
    /** Start `workers` background threads (0 is valid: serial fallback). */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Background threads in the pool (excludes the calling thread). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run body(i) for every i in [begin, end), distributing indices
     * dynamically over the workers and the calling thread. Blocks until
     * every index has been processed. The first exception thrown by any
     * body is rethrown on the caller; remaining indices are abandoned.
     *
     * Not reentrant: body must not call parallelFor on the same pool.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

    /**
     * Enqueue one task against `group`. Returns immediately; the task
     * runs on a worker thread (or inside a drain() call). With zero
     * workers the task runs inline before post() returns, so callers
     * need no special serial path.
     */
    void post(TaskGroup &group, std::function<void()> task);

    /**
     * Let the calling thread execute queued tasks until `group` has no
     * outstanding work, then return (rethrowing the group's first task
     * exception). Tasks from other groups encountered in the queue are
     * executed too — work is work. This is how the epoch driver's
     * calling thread joins the resolve phase after its stitch finishes.
     */
    void drain(TaskGroup &group);

    /**
     * Translate a user-facing --jobs value into a thread count: values
     * <= 0 mean "all hardware threads", anything else is taken as-is.
     */
    static unsigned resolveJobs(int jobs);

  private:
    void workerLoop();

    /** Run a group task, routing its exception into the group. */
    static void runGroupTask(TaskGroup &group,
                             const std::function<void()> &task);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> tasks_;
    bool stop_ = false;
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_THREAD_POOL_HH
