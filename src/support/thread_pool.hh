/**
 * @file
 * A fixed pool of worker threads with a shared task queue.
 *
 * The profiler's forward pass decomposes into per-function units
 * (postdominators and control dependences are computed per CFG), so the
 * only primitive the pipeline needs is a blocking parallelFor over an
 * index range. The calling thread participates in the loop, so a pool of
 * W workers applies W+1 threads to the work; a pool of 0 workers degrades
 * to a plain serial loop with no synchronization.
 */

#ifndef WEBSLICE_SUPPORT_THREAD_POOL_HH
#define WEBSLICE_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace webslice {

class ThreadPool
{
  public:
    /** Start `workers` background threads (0 is valid: serial fallback). */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Background threads in the pool (excludes the calling thread). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run body(i) for every i in [begin, end), distributing indices
     * dynamically over the workers and the calling thread. Blocks until
     * every index has been processed. The first exception thrown by any
     * body is rethrown on the caller; remaining indices are abandoned.
     *
     * Not reentrant: body must not call parallelFor on the same pool.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

    /**
     * Translate a user-facing --jobs value into a thread count: values
     * <= 0 mean "all hardware threads", anything else is taken as-is.
     */
    static unsigned resolveJobs(int jobs);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> tasks_;
    bool stop_ = false;
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_THREAD_POOL_HH
