/**
 * @file
 * Monotonic wall-clock timing for the pipeline's phase spans.
 *
 * Stopwatch is a plain monotonic timer (steady_clock); ScopedPhase is the
 * RAII front end the pipeline layers use: construct it when a phase
 * begins, and on destruction it records a PhaseSpan — wall seconds plus
 * the process's peak RSS sampled at phase end — into a MetricRegistry
 * (the process-wide one by default).
 */

#ifndef WEBSLICE_SUPPORT_STOPWATCH_HH
#define WEBSLICE_SUPPORT_STOPWATCH_HH

#include <chrono>
#include <string>

#include "support/metrics.hh"

namespace webslice {

/** Monotonic wall-clock timer. */
class Stopwatch
{
  public:
    Stopwatch() : start_(now()) {}

    /** Seconds since construction or the last reset(). */
    double seconds() const { return now() - start_; }

    void reset() { start_ = now(); }

    /** Monotonic seconds since an arbitrary epoch. */
    static double
    now()
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

  private:
    double start_;
};

/**
 * RAII phase span: records {name, wall seconds, peak RSS at phase end}
 * into the registry when destroyed. Since peak RSS is monotone over the
 * process lifetime, the per-phase value reads as "the peak as of this
 * phase's end" — the phase where it first jumps is the phase that paid
 * for it.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(std::string name,
                         MetricRegistry *registry = nullptr)
        : name_(std::move(name)),
          registry_(registry ? registry : &MetricRegistry::global())
    {
    }

    ~ScopedPhase()
    {
        registry_->addSpan(
            PhaseSpan{std::move(name_), watch_.seconds(), peakRssBytes()});
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    /** Seconds elapsed so far in this phase. */
    double seconds() const { return watch_.seconds(); }

  private:
    std::string name_;
    MetricRegistry *registry_;
    Stopwatch watch_;
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_STOPWATCH_HH
