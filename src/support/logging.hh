/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the condition is the caller's/user's fault (bad file, bad
 *            configuration); exits with status 1.
 * warn()   — something works, but not as well as it should.
 * inform() — plain status output.
 */

#ifndef WEBSLICE_SUPPORT_LOGGING_HH
#define WEBSLICE_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace webslice {

namespace detail {

/** Sink shared by all message helpers; writes to stderr with a prefix. */
void logMessage(const char *prefix, const std::string &msg,
                const char *file, int line);

/** Fold a variadic argument pack into a string via operator<<. */
template <typename... Args>
std::string
foldToString(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

} // namespace detail

} // namespace webslice

#define panic(...)                                                          \
    ::webslice::detail::panicImpl(                                          \
        ::webslice::detail::foldToString(__VA_ARGS__), __FILE__, __LINE__)

#define fatal(...)                                                          \
    ::webslice::detail::fatalImpl(                                          \
        ::webslice::detail::foldToString(__VA_ARGS__), __FILE__, __LINE__)

#define warn(...)                                                           \
    ::webslice::detail::logMessage(                                         \
        "warn", ::webslice::detail::foldToString(__VA_ARGS__),              \
        __FILE__, __LINE__)

#define inform(...)                                                         \
    ::webslice::detail::logMessage(                                         \
        "info", ::webslice::detail::foldToString(__VA_ARGS__),              \
        nullptr, 0)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic("condition '" #cond "' hit: ", __VA_ARGS__);              \
        }                                                                   \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal("condition '" #cond "' hit: ", __VA_ARGS__);              \
        }                                                                   \
    } while (0)

#endif // WEBSLICE_SUPPORT_LOGGING_HH
