/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the condition is the caller's/user's fault (bad file, bad
 *            configuration); exits with status 1.
 * warn()   — something works, but not as well as it should.
 * inform() — plain status output.
 */

#ifndef WEBSLICE_SUPPORT_LOGGING_HH
#define WEBSLICE_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace webslice {

/**
 * The exception fatal() raises while a ScopedFatalCapture is active on
 * the calling thread. what() carries the fully formatted diagnostic
 * (including the file:line suffix the stderr path would have printed),
 * so a server can hand a loader's loud truncation/offset message to a
 * remote client verbatim.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * While alive, fatal() on this thread throws FatalError instead of
 * exiting the process. Long-lived processes (webslice-served) wrap
 * request-scoped artifact loading in one of these: a malformed trace
 * must fail that one request loudly, not take the daemon down. Nests
 * safely; capture ends when the outermost scope dies.
 */
class ScopedFatalCapture
{
  public:
    ScopedFatalCapture();
    ~ScopedFatalCapture();

    ScopedFatalCapture(const ScopedFatalCapture &) = delete;
    ScopedFatalCapture &operator=(const ScopedFatalCapture &) = delete;

    /** True when a capture scope is active on the calling thread. */
    static bool active();
};

namespace detail {

/** Sink shared by all message helpers; writes to stderr with a prefix. */
void logMessage(const char *prefix, const std::string &msg,
                const char *file, int line);

/** Fold a variadic argument pack into a string via operator<<. */
template <typename... Args>
std::string
foldToString(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

} // namespace detail

} // namespace webslice

#define panic(...)                                                          \
    ::webslice::detail::panicImpl(                                          \
        ::webslice::detail::foldToString(__VA_ARGS__), __FILE__, __LINE__)

#define fatal(...)                                                          \
    ::webslice::detail::fatalImpl(                                          \
        ::webslice::detail::foldToString(__VA_ARGS__), __FILE__, __LINE__)

#define warn(...)                                                           \
    ::webslice::detail::logMessage(                                         \
        "warn", ::webslice::detail::foldToString(__VA_ARGS__),              \
        __FILE__, __LINE__)

#define inform(...)                                                         \
    ::webslice::detail::logMessage(                                         \
        "info", ::webslice::detail::foldToString(__VA_ARGS__),              \
        nullptr, 0)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic("condition '" #cond "' hit: ", __VA_ARGS__);              \
        }                                                                   \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal("condition '" #cond "' hit: ", __VA_ARGS__);              \
        }                                                                   \
    } while (0)

#endif // WEBSLICE_SUPPORT_LOGGING_HH
