/**
 * @file
 * A sparse set of bytes over a 64-bit address space.
 *
 * This is the data structure behind the slicer's live-memory set: byte
 * granular (the trace records exact access addresses and sizes, which is
 * what lets the profiler sidestep memory aliasing), hash-chunked so that
 * memory use is proportional to the number of live bytes, not to the
 * address-space span.
 *
 * The chunk index is pluggable: the default SparseByteSet stores chunks
 * in an open-addressing FlatMap64 (the backward pass probes this map once
 * or twice per trace record, making it the profiler's hottest structure),
 * while LegacySparseByteSet keeps the original std::unordered_map interior
 * as the measured baseline for benchmarks and ablations. A one-entry
 * last-chunk cache short-circuits the common case of consecutive records
 * touching the same 64-byte chunk.
 */

#ifndef WEBSLICE_SUPPORT_SPARSE_BYTE_SET_HH
#define WEBSLICE_SUPPORT_SPARSE_BYTE_SET_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "support/flat_map.hh"

namespace webslice {

/**
 * Adapter giving std::unordered_map the same chunk-index interface as
 * FlatMap64. Kept as the pre-flat-hash baseline (benchmarks compare the
 * two; the slicer's legacy mode uses it).
 */
class StdChunkMap
{
  public:
    const uint64_t *
    find(uint64_t key) const
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    uint64_t *
    find(uint64_t key)
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    uint64_t &findOrInsert(uint64_t key) { return map_[key]; }

    bool
    erase(uint64_t key)
    {
        if (map_.erase(key) == 0)
            return false;
        ++generation_;
        return true;
    }

    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    void
    clear()
    {
        map_.clear();
        ++generation_;
    }

    uint32_t generation() const { return generation_; }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : map_)
            fn(kv.first, kv.second);
    }

    size_t
    heapBytes() const
    {
        // Approximation: one node (key + value + next pointer) per entry
        // plus the bucket array.
        return map_.size() * (sizeof(uint64_t) * 3) +
               map_.bucket_count() * sizeof(void *);
    }

    /** std::unordered_map hides its probing; report zero. */
    uint64_t probeCount() const { return 0; }
    uint64_t resizeCount() const { return 0; }

  private:
    std::unordered_map<uint64_t, uint64_t> map_;
    uint32_t generation_ = 0;
};

/**
 * Set of individual byte addresses, stored as 64-byte chunks with one
 * presence bit per byte. ChunkMap supplies the chunk-base -> bitmask
 * index (FlatMap64 or StdChunkMap). kCacheLastChunk enables the
 * one-entry last-chunk cache; the legacy baseline disables it so
 * benchmarks measure the seed's uncached lookups.
 */
template <typename ChunkMap, bool kCacheLastChunk = true>
class BasicSparseByteSet
{
  public:
    BasicSparseByteSet() = default;

    // Copies reset the last-chunk cache: the cached slot pointer aims
    // into the *source* set's chunk storage, and the copied generation
    // counter would make it look valid. The epoch-parallel slicer
    // snapshots live sets at epoch boundaries, so copies must be safe.
    BasicSparseByteSet(const BasicSparseByteSet &other)
        : chunks_(other.chunks_), population_(other.population_)
    {
    }

    BasicSparseByteSet &
    operator=(const BasicSparseByteSet &other)
    {
        if (this != &other) {
            chunks_ = other.chunks_;
            population_ = other.population_;
            cacheBase_ = kNoBase;
            cachePtr_ = nullptr;
            cacheGen_ = 0;
        }
        return *this;
    }

    /** Insert the byte range [addr, addr + size). */
    void
    insert(uint64_t addr, uint64_t size)
    {
        forEachChunk(addr, size, [this](uint64_t base, uint64_t mask) {
            uint64_t &bits = chunkFor(base);
            population_ += popcount(mask & ~bits);
            bits |= mask;
        });
    }

    /** Remove the byte range [addr, addr + size). */
    void
    erase(uint64_t addr, uint64_t size)
    {
        forEachChunk(addr, size, [this](uint64_t base, uint64_t mask) {
            uint64_t *bits = chunks_.find(base);
            if (!bits)
                return;
            population_ -= popcount(*bits & mask);
            *bits &= ~mask;
            if (*bits == 0)
                chunks_.erase(base);
        });
    }

    /** True if any byte of [addr, addr + size) is present. */
    bool
    intersects(uint64_t addr, uint64_t size) const
    {
        bool hit = false;
        forEachChunk(addr, size, [this, &hit](uint64_t base, uint64_t mask) {
            if (hit)
                return;
            const uint64_t *bits = findChunk(base);
            if (bits && (*bits & mask) != 0)
                hit = true;
        });
        return hit;
    }

    /**
     * Atomically test-and-erase: remove any present bytes of the range and
     * report whether at least one was present. This is the slicer's "kill"
     * step for a store into live memory.
     */
    bool
    testAndErase(uint64_t addr, uint64_t size)
    {
        bool hit = false;
        forEachChunk(addr, size, [this, &hit](uint64_t base, uint64_t mask) {
            uint64_t *bits = chunks_.find(base);
            if (!bits)
                return;
            const uint64_t present = *bits & mask;
            if (present) {
                hit = true;
                population_ -= popcount(present);
                *bits &= ~mask;
                if (*bits == 0)
                    chunks_.erase(base);
            }
        });
        return hit;
    }

    /** True if the single byte at addr is present. */
    bool
    contains(uint64_t addr) const
    {
        const uint64_t *bits = findChunk(addr >> 6);
        if (!bits)
            return false;
        return (*bits >> (addr & 63)) & 1;
    }

    /** Number of bytes in the set. */
    size_t size() const { return population_; }

    bool empty() const { return population_ == 0; }

    void
    clear()
    {
        chunks_.clear();
        population_ = 0;
    }

    /** Number of 64-byte chunks currently allocated (for diagnostics). */
    size_t chunkCount() const { return chunks_.size(); }

    /** Bytes of heap storage held by the chunk index (diagnostics). */
    size_t heapBytes() const { return chunks_.heapBytes(); }

    /** Chunk-index probe total (0 for the legacy interior). */
    uint64_t probeCount() const { return chunks_.probeCount(); }

    /** Chunk-index rehash total (0 for the legacy interior). */
    uint64_t resizeCount() const { return chunks_.resizeCount(); }

  private:
    static int
    popcount(uint64_t x)
    {
        return __builtin_popcountll(x);
    }

    /** Impossible chunk base (real bases are addr >> 6, max 2^58 - 1). */
    static constexpr uint64_t kNoBase = ~0ull;

    /**
     * Chunk slot for base, creating it when absent, via the one-entry
     * cache. The cache key is (base, map generation): any operation that
     * can move entries bumps the generation and so invalidates the
     * cached pointer.
     */
    uint64_t &
    chunkFor(uint64_t base)
    {
        if constexpr (kCacheLastChunk) {
            if (cacheBase_ == base && cacheGen_ == chunks_.generation())
                return *cachePtr_;
        }
        uint64_t &bits = chunks_.findOrInsert(base);
        if constexpr (kCacheLastChunk) {
            cacheBase_ = base;
            cachePtr_ = &bits;
            cacheGen_ = chunks_.generation();
        }
        return bits;
    }

    /** Cache-aware lookup; nullptr when the chunk is absent. */
    const uint64_t *
    findChunk(uint64_t base) const
    {
        if constexpr (kCacheLastChunk) {
            if (cacheBase_ == base && cacheGen_ == chunks_.generation())
                return cachePtr_;
        }
        const uint64_t *bits = chunks_.find(base);
        if constexpr (kCacheLastChunk) {
            if (bits) {
                cacheBase_ = base;
                cachePtr_ = const_cast<uint64_t *>(bits);
                cacheGen_ = chunks_.generation();
            }
        }
        return bits;
    }

    /**
     * Decompose [addr, addr + size) into (chunk base, bit mask) pieces and
     * invoke fn for each. A chunk covers 64 consecutive bytes.
     */
    template <typename Fn>
    static void
    forEachChunk(uint64_t addr, uint64_t size, Fn &&fn)
    {
        while (size > 0) {
            const uint64_t base = addr >> 6;
            const unsigned offset = addr & 63;
            const uint64_t span = std::min<uint64_t>(size, 64 - offset);
            uint64_t mask;
            if (span == 64) {
                mask = ~0ull;
            } else {
                mask = ((1ull << span) - 1) << offset;
            }
            fn(base, mask);
            addr += span;
            size -= span;
        }
    }

    ChunkMap chunks_;
    size_t population_ = 0;

    mutable uint64_t cacheBase_ = kNoBase;
    mutable uint64_t *cachePtr_ = nullptr;
    mutable uint32_t cacheGen_ = 0;
};

/** The profiler's live-memory set (flat-hash interior, cached). */
using SparseByteSet = BasicSparseByteSet<FlatMap64, true>;

/** Pre-flat-hash baseline, for benchmarks and the slicer's legacy mode:
 *  node-based interior, no last-chunk cache — the seed's behavior. */
using LegacySparseByteSet = BasicSparseByteSet<StdChunkMap, false>;

} // namespace webslice

#endif // WEBSLICE_SUPPORT_SPARSE_BYTE_SET_HH
