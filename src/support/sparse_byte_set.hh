/**
 * @file
 * A sparse set of bytes over a 64-bit address space.
 *
 * This is the data structure behind the slicer's live-memory set: byte
 * granular (the trace records exact access addresses and sizes, which is
 * what lets the profiler sidestep memory aliasing), hash-chunked so that
 * memory use is proportional to the number of live bytes, not to the
 * address-space span.
 */

#ifndef WEBSLICE_SUPPORT_SPARSE_BYTE_SET_HH
#define WEBSLICE_SUPPORT_SPARSE_BYTE_SET_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace webslice {

/**
 * Set of individual byte addresses, stored as 64-byte chunks with one
 * presence bit per byte.
 */
class SparseByteSet
{
  public:
    /** Insert the byte range [addr, addr + size). */
    void
    insert(uint64_t addr, uint64_t size)
    {
        forEachChunk(addr, size, [this](uint64_t base, uint64_t mask) {
            uint64_t &bits = chunks_[base];
            population_ += popcount(mask & ~bits);
            bits |= mask;
        });
    }

    /** Remove the byte range [addr, addr + size). */
    void
    erase(uint64_t addr, uint64_t size)
    {
        forEachChunk(addr, size, [this](uint64_t base, uint64_t mask) {
            auto it = chunks_.find(base);
            if (it == chunks_.end())
                return;
            population_ -= popcount(it->second & mask);
            it->second &= ~mask;
            if (it->second == 0)
                chunks_.erase(it);
        });
    }

    /** True if any byte of [addr, addr + size) is present. */
    bool
    intersects(uint64_t addr, uint64_t size) const
    {
        bool hit = false;
        forEachChunk(addr, size, [this, &hit](uint64_t base, uint64_t mask) {
            if (hit)
                return;
            auto it = chunks_.find(base);
            if (it != chunks_.end() && (it->second & mask) != 0)
                hit = true;
        });
        return hit;
    }

    /**
     * Atomically test-and-erase: remove any present bytes of the range and
     * report whether at least one was present. This is the slicer's "kill"
     * step for a store into live memory.
     */
    bool
    testAndErase(uint64_t addr, uint64_t size)
    {
        bool hit = false;
        forEachChunk(addr, size, [this, &hit](uint64_t base, uint64_t mask) {
            auto it = chunks_.find(base);
            if (it == chunks_.end())
                return;
            const uint64_t present = it->second & mask;
            if (present) {
                hit = true;
                population_ -= popcount(present);
                it->second &= ~mask;
                if (it->second == 0)
                    chunks_.erase(it);
            }
        });
        return hit;
    }

    /** True if the single byte at addr is present. */
    bool
    contains(uint64_t addr) const
    {
        auto it = chunks_.find(addr >> 6);
        if (it == chunks_.end())
            return false;
        return (it->second >> (addr & 63)) & 1;
    }

    /** Number of bytes in the set. */
    size_t size() const { return population_; }

    bool empty() const { return population_ == 0; }

    void
    clear()
    {
        chunks_.clear();
        population_ = 0;
    }

    /** Number of 64-byte chunks currently allocated (for diagnostics). */
    size_t chunkCount() const { return chunks_.size(); }

  private:
    static int
    popcount(uint64_t x)
    {
        return __builtin_popcountll(x);
    }

    /**
     * Decompose [addr, addr + size) into (chunk base, bit mask) pieces and
     * invoke fn for each. A chunk covers 64 consecutive bytes.
     */
    template <typename Fn>
    static void
    forEachChunk(uint64_t addr, uint64_t size, Fn &&fn)
    {
        while (size > 0) {
            const uint64_t base = addr >> 6;
            const unsigned offset = addr & 63;
            const uint64_t span = std::min<uint64_t>(size, 64 - offset);
            uint64_t mask;
            if (span == 64) {
                mask = ~0ull;
            } else {
                mask = ((1ull << span) - 1) << offset;
            }
            fn(base, mask);
            addr += span;
            size -= span;
        }
    }

    std::unordered_map<uint64_t, uint64_t> chunks_;
    size_t population_ = 0;
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_SPARSE_BYTE_SET_HH
