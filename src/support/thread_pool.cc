#include "support/thread_pool.hh"

#include <atomic>
#include <exception>
#include <memory>

namespace webslice {

ThreadPool::ThreadPool(unsigned workers)
{
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

namespace {

/** Shared state of one parallelFor invocation. */
struct LoopState
{
    std::atomic<size_t> next;
    size_t end;
    const std::function<void(size_t)> *body;

    std::mutex mutex;
    std::condition_variable done;
    size_t outstanding = 0; ///< Driver tasks not yet finished.
    std::exception_ptr error;

    void
    run()
    {
        while (true) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end)
                break;
            try {
                (*body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!error)
                    error = std::current_exception();
                // Abandon the remaining indices.
                next.store(end, std::memory_order_relaxed);
                break;
            }
        }
    }
};

} // namespace

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &body)
{
    if (begin >= end)
        return;

    const size_t span = end - begin;
    if (workers_.empty() || span == 1) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    auto state = std::make_shared<LoopState>();
    state->next.store(begin, std::memory_order_relaxed);
    state->end = end;
    state->body = &body;

    // One driver per worker (capped by the amount of work); the caller
    // acts as one more driver below.
    const size_t drivers =
        std::min<size_t>(workers_.size(), span > 1 ? span - 1 : 1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t d = 0; d < drivers; ++d) {
            ++state->outstanding;
            tasks_.push([state] {
                state->run();
                {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    --state->outstanding;
                }
                state->done.notify_one();
            });
        }
    }
    cv_.notify_all();

    state->run();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->outstanding == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return outstanding_ == 0; });
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

size_t
TaskGroup::outstanding() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outstanding_;
}

void
TaskGroup::finishOne(std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --outstanding_;
        if (error && !error_)
            error_ = error;
    }
    done_.notify_all();
}

void
ThreadPool::runGroupTask(TaskGroup &group,
                         const std::function<void()> &task)
{
    std::exception_ptr error;
    try {
        task();
    } catch (...) {
        error = std::current_exception();
    }
    group.finishOne(error);
}

void
ThreadPool::post(TaskGroup &group, std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(group.mutex_);
        ++group.outstanding_;
    }
    if (workers_.empty()) {
        runGroupTask(group, task);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push([&group, task = std::move(task)] {
            runGroupTask(group, task);
        });
    }
    cv_.notify_one();
}

void
ThreadPool::drain(TaskGroup &group)
{
    while (true) {
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (tasks_.empty())
                break;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
    group.wait();
}

unsigned
ThreadPool::resolveJobs(int jobs)
{
    if (jobs > 0)
        return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace webslice
