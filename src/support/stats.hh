/**
 * @file
 * Small statistics toolkit: named counters, bucketed time series, and a
 * scalar summary (min/max/mean) — enough to back the analysis layer and the
 * benchmark reports without pulling in a full stats framework.
 */

#ifndef WEBSLICE_SUPPORT_STATS_HH
#define WEBSLICE_SUPPORT_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace webslice {

/** Map of named monotonically growing counters. */
class CounterSet
{
  public:
    void add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (const auto &kv : counters_)
            sum += kv.second;
        return sum;
    }

    const std::map<std::string, uint64_t> &entries() const
    {
        return counters_;
    }

    void clear() { counters_.clear(); }

  private:
    std::map<std::string, uint64_t> counters_;
};

/**
 * A value series sampled against a monotonically increasing position
 * (virtual time or trace progress), bucketed into fixed-width bins.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(uint64_t bucket_width = 1)
        : bucketWidth_(bucket_width ? bucket_width : 1)
    {}

    /** Accumulate a value into the bucket that covers the position. */
    void
    add(uint64_t position, double value)
    {
        const size_t idx = position / bucketWidth_;
        if (idx >= sums_.size()) {
            sums_.resize(idx + 1, 0.0);
            counts_.resize(idx + 1, 0);
        }
        sums_[idx] += value;
        counts_[idx] += 1;
    }

    size_t bucketCount() const { return sums_.size(); }

    uint64_t bucketWidth() const { return bucketWidth_; }

    /** Sum of the values accumulated into bucket idx. */
    double
    sum(size_t idx) const
    {
        return idx < sums_.size() ? sums_[idx] : 0.0;
    }

    /** Number of samples in bucket idx. */
    uint64_t
    count(size_t idx) const
    {
        return idx < counts_.size() ? counts_[idx] : 0;
    }

    /** Mean of bucket idx, or 0 when empty. */
    double
    mean(size_t idx) const
    {
        const uint64_t n = count(idx);
        return n ? sum(idx) / static_cast<double>(n) : 0.0;
    }

  private:
    uint64_t bucketWidth_;
    std::vector<double> sums_;
    std::vector<uint64_t> counts_;
};

/** Running scalar summary. */
class Summary
{
  public:
    void
    add(double v)
    {
        if (n_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        ++n_;
    }

    uint64_t count() const { return n_; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_STATS_HH
