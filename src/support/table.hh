/**
 * @file
 * Fixed-width ASCII table renderer used by the benchmark harnesses to print
 * the paper's tables and figure data series in a diff-friendly layout.
 */

#ifndef WEBSLICE_SUPPORT_TABLE_HH
#define WEBSLICE_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace webslice {

/** A text table with a header row and uniform column padding. */
class TextTable
{
  public:
    /** Set the header row; defines the column count. */
    void setHeader(std::vector<std::string> cells);

    /** Append a body row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render to the stream with column alignment and a rule under the
     *  header. */
    void render(std::ostream &os) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace webslice

#endif // WEBSLICE_SUPPORT_TABLE_HH
