/**
 * @file
 * Inter-process communication with the browser main process (ipc::
 * namespace).
 *
 * Each Chromium tab is a separate process that reports navigation state,
 * paint metrics, favicon/title updates, and histogram data to the single
 * browser process over a pipe. From the tab process's point of view —
 * which is all the paper traces — this work serializes a message and
 * hands the bytes to the kernel (sendto). Under pixel-based criteria it is
 * therefore "unnecessary"; the paper explicitly flags the category as
 * needing receiver-side inspection, which bench/ipc_receiver revisits.
 */

#ifndef WEBSLICE_BROWSER_IPC_HH
#define WEBSLICE_BROWSER_IPC_HH

#include <span>

#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Well-known message types sent to the browser process. */
enum class IpcMessage : uint32_t
{
    NavigationStart = 1,
    DidCommitNavigation,
    DidFirstVisuallyNonEmptyPaint,
    UpdateTitle,
    ResourceLoadMetrics,
    FrameSwapMetrics,
    UserInteractionMetrics,
    HistogramFlush,
};

/** One endpoint of the tab-to-browser pipe. */
class IpcChannel
{
  public:
    explicit IpcChannel(sim::Machine &machine);

    /**
     * Serialize and send a message: header + payload words are written
     * into a staging buffer (traced stores), a checksum is computed over
     * the buffer, and the bytes leave the process via sendto.
     */
    void send(sim::Ctx &ctx, IpcMessage type,
              std::span<const uint64_t> payload);

    /** Convenience for metric-style messages carrying a traced value. */
    void sendValue(sim::Ctx &ctx, IpcMessage type, const sim::Value &value);

    uint64_t messagesSent() const { return sent_; }
    uint64_t bytesSent() const { return bytesSent_; }

  private:
    void finishSend(sim::Ctx &ctx, uint64_t total);

    trace::FuncId fnSend_;
    trace::FuncId fnWriteHeader_;
    trace::FuncId fnChecksum_;
    trace::FuncId fnRoute_;
    uint64_t stagingAddr_;
    uint64_t statsAddr_;
    uint64_t sent_ = 0;
    uint64_t bytesSent_ = 0;

    static constexpr uint64_t kStagingBytes = 512;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_IPC_HH
