#include "browser/lib.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

Lib::Lib(sim::Machine &machine)
    : fnHash_(machine.registerFunction("lib::hashBytes")),
      fnCopy_(machine.registerFunction("lib::memcpy")),
      fnFill_(machine.registerFunction("lib::memset32")),
      fnSum_(machine.registerFunction("lib::sum32"))
{
}

Value
Lib::hashBytes(Ctx &ctx, uint64_t addr, uint64_t len)
{
    TracedScope scope(ctx, fnHash_);
    Value hash = ctx.imm(0xcbf29ce484222325ull);
    Value cursor = ctx.imm(addr);
    Value end = ctx.imm(addr + len);
    while (true) {
        Value more = ctx.ltu(cursor, end);
        if (!ctx.branchIf(more))
            break;
        Value chunk = ctx.loadVia(cursor, 0, 8);
        hash = ctx.bxor(hash, chunk);
        hash = ctx.muli(hash, 0x100000001b3ull);
        cursor = ctx.addi(cursor, 8);
    }
    return hash;
}

void
Lib::copyBytes(Ctx &ctx, uint64_t dst, uint64_t src, uint64_t len)
{
    TracedScope scope(ctx, fnCopy_);
    Value src_cursor = ctx.imm(src);
    Value dst_cursor = ctx.imm(dst);
    Value end = ctx.imm(src + len);
    while (true) {
        Value more = ctx.ltu(src_cursor, end);
        if (!ctx.branchIf(more))
            break;
        Value chunk = ctx.loadVia(src_cursor, 0, 8);
        ctx.storeVia(dst_cursor, 0, 8, chunk);
        src_cursor = ctx.addi(src_cursor, 8);
        dst_cursor = ctx.addi(dst_cursor, 8);
    }
}

void
Lib::fillCells(Ctx &ctx, uint64_t addr, uint64_t count, const Value &value)
{
    TracedScope scope(ctx, fnFill_);
    Value cursor = ctx.imm(addr);
    Value end = ctx.imm(addr + count * 4);
    while (true) {
        Value more = ctx.ltu(cursor, end);
        if (!ctx.branchIf(more))
            break;
        ctx.storeVia(cursor, 0, 4, value);
        cursor = ctx.addi(cursor, 4);
    }
}

TracedHeap::TracedHeap(sim::Machine &machine)
    : machine_(machine),
      fnMalloc_(machine.registerFunction("malloc")),
      fnFree_(machine.registerFunction("free")),
      binsAddr_(machine.alloc(16 * 8, "heap-bins"))
{
}

uint64_t
TracedHeap::alloc(Ctx &ctx, uint64_t size, const char *tag)
{
    TracedScope scope(ctx, fnMalloc_);
    ++allocs_;
    // Size-class selection and freelist pop (all traced bookkeeping).
    Value req = ctx.imm(size);
    Value rounded = ctx.andi(ctx.addi(req, 15), ~15ull);
    Value bin = ctx.andi(ctx.shri(rounded, 4), 15);
    const uint64_t bin_addr = binsAddr_ + ((size >> 4) & 15) * 8;
    Value head = ctx.load(bin_addr, 8);
    Value is_empty = ctx.eqi(head, 0);
    ctx.branchIf(is_empty);
    Value next = ctx.add(head, rounded);
    ctx.store(bin_addr, 8, next);
    (void)bin;
    return machine_.alloc(size, tag);
}

void
TracedHeap::free(Ctx &ctx, uint64_t addr)
{
    TracedScope scope(ctx, fnFree_);
    const uint64_t bin_addr = binsAddr_ + ((addr >> 4) & 15) * 8;
    Value head = ctx.load(bin_addr, 8);
    Value block = ctx.imm(addr);
    Value new_head = ctx.bxor(ctx.add(head, block), head);
    ctx.store(bin_addr, 8, new_head);
    machine_.free(addr);
}

Value
Lib::sumCells(Ctx &ctx, uint64_t addr, uint64_t count)
{
    TracedScope scope(ctx, fnSum_);
    Value sum = ctx.imm(0);
    Value cursor = ctx.imm(addr);
    Value end = ctx.imm(addr + count * 4);
    while (true) {
        Value more = ctx.ltu(cursor, end);
        if (!ctx.branchIf(more))
            break;
        Value cell = ctx.loadVia(cursor, 0, 4);
        sum = ctx.add(sum, cell);
        cursor = ctx.addi(cursor, 4);
    }
    return sum;
}

} // namespace browser
} // namespace webslice
