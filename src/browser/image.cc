#include "browser/image.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

ImageStore::ImageStore(sim::Machine &machine, TraceLog &trace_log,
                       int cell_px)
    : machine_(machine), traceLog_(trace_log),
      fnDecode_(machine.registerFunction("gfx::ImageDecoder::decode")),
      cellPx_(cell_px > 0 ? cell_px : 16)
{
}

void
ImageStore::addResource(const std::string &url, Resource *resource,
                        uint32_t width_px, uint32_t height_px)
{
    ImageEntry entry;
    entry.resource = resource;
    entry.widthCells = std::max<uint32_t>(1, width_px / cellPx_);
    entry.heightCells = std::max<uint32_t>(1, height_px / cellPx_);
    images_[url] = entry;
}

ImageEntry *
ImageStore::decodedBitmap(Ctx &ctx, const std::string &url)
{
    auto it = images_.find(url);
    if (it == images_.end())
        return nullptr;
    ImageEntry &entry = it->second;
    if (!entry.resource || !entry.resource->loaded)
        return nullptr;
    if (entry.decoded)
        return &entry;

    // Decode: read the compressed bytes (traced, strided) and expand
    // them into bitmap cells the rasterizer samples.
    TracedScope scope(ctx, fnDecode_);
    traceLog_.addEvent(ctx, /*category=*/31);
    ++decodes_;

    const uint32_t cells = entry.widthCells * entry.heightCells;
    entry.bitmapAddr = machine_.alloc(cells * 4, "bitmap");

    const Resource &res = *entry.resource;
    Value state = ctx.imm(0x5bd1e995);
    for (uint32_t c = 0; c < cells; ++c) {
        // Sample a source chunk proportional to the cell index.
        const uint64_t off =
            res.size >= 8 ? (uint64_t{c} * 8) % (res.size - 7) : 0;
        Value chunk = ctx.load(res.addr + off, 8);
        state = ctx.bxor(state, chunk);
        state = ctx.muli(state, 0x9E3779B1u);
        Value pixel = ctx.andi(state, 0xFFFFFFu);
        ctx.store(entry.bitmapAddr + uint64_t{c} * 4, 4, pixel);
    }
    entry.decoded = true;
    return &entry;
}

} // namespace browser
} // namespace webslice
