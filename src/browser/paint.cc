#include "browser/paint.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

Layer *
LayerTree::layerFor(Element *element) const
{
    // Nearest ancestor (or self) that owns a layer.
    for (Element *walk = element; walk; walk = walk->parent) {
        for (const auto &layer : layers) {
            if (layer->owner == walk)
                return layer.get();
        }
    }
    return rootLayer();
}

PaintController::PaintController(sim::Machine &machine,
                                 TraceLog &trace_log, ImageStore &images)
    : machine_(machine), traceLog_(trace_log), images_(images),
      fnPaint_(machine.registerFunction("gfx::PaintController::paint")),
      fnPaintElement_(
          machine.registerFunction("gfx::PaintController::paintElement")),
      fnEmitItem_(machine.registerFunction("gfx::DisplayList::append"))
{
}

Layer *
PaintController::ensureLayer(LayerTree &tree, Element *owner, int z,
                             bool fixed, bool animated)
{
    for (const auto &layer : tree.layers) {
        if (layer->owner == owner) {
            layer->z = z;
            layer->fixed = fixed;
            layer->animated = animated;
            return layer.get();
        }
    }
    auto layer = std::make_unique<Layer>();
    layer->id = nextLayerId_++;
    layer->owner = owner;
    layer->z = z;
    layer->fixed = fixed;
    layer->animated = animated;
    tree.layers.push_back(std::move(layer));
    return tree.layers.back().get();
}

void
PaintController::emitItem(Ctx &ctx, Layer &layer, DisplayItem item,
                          const Value &x, const Value &y, const Value &w,
                          const Value &h, const Value &color)
{
    TracedScope scope(ctx, fnEmitItem_);
    ++itemsEmitted_;

    // Item arrays are sized once per paint from the document-size hint;
    // lists are always rebuilt from index 0 on repaint.
    const size_t index = layer.items.size();
    if (index >= layer.itemsCapacity) {
        panic_if(index != 0,
                 "display list exceeded its capacity mid-paint");
        const size_t new_capacity = std::max<size_t>(64, capacityHint_);
        const uint64_t new_addr = machine_.alloc(
            new_capacity * ItemFields::kRecordBytes, "display-list");
        if (layer.itemsAddr)
            machine_.free(layer.itemsAddr);
        layer.itemsAddr = new_addr;
        layer.itemsCapacity = new_capacity;
    }

    const uint64_t rec =
        layer.itemsAddr + index * ItemFields::kRecordBytes;
    Value type = ctx.imm(item.type);
    ctx.store(rec + ItemFields::kType, 4, type);
    // Layer-local coordinates: subtract the layer origin (traced).
    Value layer_x = ctx.imm(static_cast<uint64_t>(layer.x));
    Value layer_y = ctx.imm(static_cast<uint64_t>(layer.y));
    Value local_x = ctx.sub(x, layer_x);
    Value local_y = ctx.sub(y, layer_y);
    ctx.store(rec + ItemFields::kX, 4, local_x);
    ctx.store(rec + ItemFields::kY, 4, local_y);
    ctx.store(rec + ItemFields::kW, 4, w);
    ctx.store(rec + ItemFields::kH, 4, h);
    ctx.store(rec + ItemFields::kColor, 4, color);
    Value payload = ctx.imm(item.payloadAddr);
    ctx.store(rec + ItemFields::kPayloadAddr, 8, payload);
    Value payload_len = ctx.imm(item.payloadLen);
    ctx.store(rec + ItemFields::kPayloadLen, 4, payload_len);

    item.x = static_cast<int32_t>(local_x.get());
    item.y = static_cast<int32_t>(local_y.get());
    item.w = static_cast<int32_t>(w.get());
    item.h = static_cast<int32_t>(h.get());
    item.color = static_cast<uint32_t>(color.get());
    layer.items.push_back(item);
}

void
PaintController::paintElement(Ctx &ctx, Element &element, LayerTree &tree,
                              Layer *current)
{
    TracedScope scope(ctx, fnPaintElement_);

    const uint64_t style = element.styleAddr;
    const uint64_t box = element.layoutAddr;

    // Skip invisible subtrees (traced branch).
    Value display = ctx.load(style + StyleFields::kDisplay, 4);
    Value visible = ctx.ne(display, ctx.imm(kDisplayNone));
    if (!ctx.branchIf(visible))
        return;

    // Promote to an own layer when there is a compositing trigger.
    Value position = ctx.load(style + StyleFields::kPosition, 4);
    Value animated = ctx.load(style + StyleFields::kAnimated, 4);
    Value zindex = ctx.load(style + StyleFields::kZIndex, 4);
    const bool promote =
        position.get() == kPositionFixed || animated.get() != 0 ||
        zindex.get() > 0;
    Value promote_v = ctx.bor(
        ctx.eqi(position, kPositionFixed),
        ctx.bor(ctx.ne(animated, ctx.imm(0)),
                ctx.gtu(zindex, ctx.imm(0))));
    ctx.branchIf(promote_v);

    Value x = ctx.load(box + LayoutFields::kX, 4);
    Value y = ctx.load(box + LayoutFields::kY, 4);
    Value w = ctx.load(box + LayoutFields::kWidth, 4);
    Value h = ctx.load(box + LayoutFields::kHeight, 4);

    Layer *layer = current;
    if (promote) {
        layer = ensureLayer(tree, &element,
                            static_cast<int>(zindex.get()),
                            position.get() == kPositionFixed,
                            animated.get() != 0);
        layer->animCadence =
            std::max(1, static_cast<int>(animated.get()));
        layer->x = static_cast<int>(x.get());
        layer->y = static_cast<int>(y.get());
        layer->w = std::max(1, static_cast<int>(w.get()));
        layer->h = std::max(1, static_cast<int>(h.get()));
    }

    if (element.isText()) {
        Value color = ctx.load(style + StyleFields::kColor, 4);
        // Fold the shaped-glyph hash (computed while parsing, or set by
        // dom.text) into the run's paint: the rendered pixels depend on
        // the text content through shaping, not just the raw bytes.
        Value shaped =
            ctx.load(element.addr + ElementFields::kClassHash, 4);
        Value run_color = ctx.bxor(color, shaped);
        DisplayItem item;
        item.type = DisplayItem::Text;
        item.payloadAddr = element.textAddr;
        item.payloadLen = element.textLen;
        emitItem(ctx, *layer, item, x, y, w, h, run_color);
        return;
    }

    // Background fill when the element has one.
    Value bg = ctx.load(style + StyleFields::kBackground, 4);
    Value has_bg = ctx.ne(bg, ctx.imm(0));
    if (ctx.branchIf(has_bg)) {
        DisplayItem item;
        item.type = DisplayItem::Rect;
        emitItem(ctx, *layer, item, x, y, w, h, bg);
    }

    if (element.tag == Tag::Img && !element.src.empty()) {
        ImageEntry *image = images_.decodedBitmap(ctx, element.src);
        if (image) {
            DisplayItem item;
            item.type = DisplayItem::Image;
            item.payloadAddr = image->bitmapAddr;
            item.payloadLen = image->widthCells;
            // Large media (ads, carousel photos) is opaque; content
            // thumbnails carry alpha and blend.
            item.opaque = startsWith(element.src, "carousel") ||
                          startsWith(element.src, "ad.");
            Value color = ctx.imm(0);
            emitItem(ctx, *layer, item, x, y, w, h, color);
        }
    }

    for (Element *child : element.children)
        paintElement(ctx, *child, tree, layer);
}

uint64_t
PaintController::itemsFingerprint(const Layer &layer)
{
    uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](uint64_t v) {
        hash = (hash ^ v) * 1099511628211ull;
    };
    mix(static_cast<uint64_t>(layer.x) << 32 |
        static_cast<uint32_t>(layer.y));
    for (const auto &item : layer.items) {
        mix(item.type);
        mix(static_cast<uint64_t>(static_cast<uint32_t>(item.x)) << 32 |
            static_cast<uint32_t>(item.y));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(item.w)) << 32 |
            static_cast<uint32_t>(item.h));
        mix(item.color);
        mix(item.payloadAddr);
        mix(item.payloadLen);
    }
    return hash;
}

void
PaintController::finishLayer(Ctx &ctx, Layer &layer)
{
    if (!layer.recordAddr) {
        layer.recordAddr =
            machine_.alloc(LayerFields::kRecordBytes, "layer");
    }
    Value x = ctx.imm(static_cast<uint64_t>(layer.x));
    ctx.store(layer.recordAddr + LayerFields::kX, 4, x);
    Value y = ctx.imm(static_cast<uint64_t>(layer.y));
    ctx.store(layer.recordAddr + LayerFields::kY, 4, y);
    Value w = ctx.imm(static_cast<uint64_t>(layer.w));
    ctx.store(layer.recordAddr + LayerFields::kW, 4, w);
    Value h = ctx.imm(static_cast<uint64_t>(layer.h));
    ctx.store(layer.recordAddr + LayerFields::kH, 4, h);
    Value z = ctx.imm(static_cast<uint64_t>(layer.z));
    ctx.store(layer.recordAddr + LayerFields::kZ, 4, z);
    Value flags = ctx.imm((layer.fixed ? 1u : 0u) |
                          (layer.animated ? 2u : 0u));
    ctx.store(layer.recordAddr + LayerFields::kFlags, 4, flags);
    Value count = ctx.imm(layer.items.size());
    ctx.store(layer.recordAddr + LayerFields::kItemCount, 4, count);
    Value items = ctx.imm(layer.itemsAddr);
    ctx.store(layer.recordAddr + LayerFields::kItemsAddr, 8, items);

    // Paint invalidation: only layers whose display list actually
    // changed get a new generation (and therefore a re-raster) — real
    // engines damage-track exactly this way.
    const uint64_t fingerprint = itemsFingerprint(layer);
    if (fingerprint != layer.lastFingerprint) {
        layer.lastFingerprint = fingerprint;
        ++layer.paintGeneration;
    }
}

void
PaintController::paintDocument(Ctx &ctx, Document &doc, LayerTree &tree,
                               int viewport_width, int viewport_height,
                               uint32_t document_height)
{
    TracedScope scope(ctx, fnPaint_);
    traceLog_.addEvent(ctx, /*category=*/32);
    capacityHint_ = doc.elementCount() * 2 + 32;

    // Drop stale item arrays that this paint would outgrow.
    for (auto &layer : tree.layers) {
        if (layer->itemsCapacity < capacityHint_ && layer->itemsAddr) {
            machine_.free(layer->itemsAddr);
            layer->itemsAddr = 0;
            layer->itemsCapacity = 0;
        }
    }

    // Root layer covers the whole document.
    Layer *root = ensureLayer(tree, nullptr, 0, false, false);
    root->x = 0;
    root->y = 0;
    root->w = viewport_width;
    root->h = std::max<int>(viewport_height,
                            static_cast<int>(document_height));

    // Rebuild every display list from scratch.
    for (auto &layer : tree.layers)
        layer->items.clear();

    paintElement(ctx, *doc.root(), tree, root);

    for (auto &layer : tree.layers)
        finishLayer(ctx, *layer);
    ++tree.generation;
    tree.documentHeight = document_height;
}

} // namespace browser
} // namespace webslice
