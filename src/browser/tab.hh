/**
 * @file
 * The tab process orchestrator.
 *
 * Wires the full Figure-1 pipeline together on the simulated machine:
 * navigation fetches the HTML, parsing discovers subresources, CSS and JS
 * arrive and are processed (JS may mutate the DOM), style + layout +
 * paint run on the main thread, commits hop to the compositor thread,
 * raster tasks fan out to the tile workers (planting pixel criteria), and
 * frames leave through the submit syscall. User input (scrolls handled on
 * the compositor; clicks/keys forwarded to the main thread and dispatched
 * into JS) drives the load+browse sessions of the paper's benchmarks.
 */

#ifndef WEBSLICE_BROWSER_TAB_HH
#define WEBSLICE_BROWSER_TAB_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "browser/common.hh"
#include "browser/compositor.hh"
#include "browser/css.hh"
#include "browser/debugging.hh"
#include "browser/dom.hh"
#include "browser/html_parser.hh"
#include "browser/image.hh"
#include "browser/ipc.hh"
#include "browser/js.hh"
#include "browser/layout.hh"
#include "browser/lib.hh"
#include "browser/net.hh"
#include "browser/paint.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** A website's content: the main document plus subresource payloads. */
struct SiteContent
{
    std::string url;
    std::string html;
    /** url -> (type, payload). */
    std::map<std::string, std::pair<ResourceType, std::string>> resources;
};

/** One Chromium-style tab running on a simulated machine. */
class Tab
{
  public:
    Tab(sim::Machine &machine, BrowserConfig config,
        JsEngineConfig js_config = {});

    /** Start loading a site; drives everything once machine.run() runs. */
    void navigate(const SiteContent &site);

    // ---- scripted user input (the paper's browse sessions) ---------------

    void scheduleScroll(uint64_t at_ms, int dy);
    void scheduleClick(uint64_t at_ms, const std::string &element_id);
    void scheduleKey(uint64_t at_ms, const std::string &element_id);

    /** Fetch and execute an additional script mid-session (the extra
     *  bytes Bing/Google Maps download while being browsed). */
    void scheduleScriptFetch(uint64_t at_ms, const std::string &url,
                             std::string content);

    /** Keep vsync/BeginFrame ticks alive until this session time. */
    void setSessionMs(uint64_t ms) { sessionMs_ = ms; }

    // ---- results ----------------------------------------------------------

    /** Trace index recorded when the page finished loading. */
    size_t loadCompleteIndex() const { return loadCompleteIndex_; }

    /** Virtual time (ms) when the page finished loading. */
    uint64_t loadCompleteMs() const { return loadCompleteMs_; }

    bool loadComplete() const { return loadCompleteIndex_ != SIZE_MAX; }

    const BrowserThreads &threads() const { return threads_; }
    JsEngine &js() { return *js_; }
    Compositor &compositor() { return *compositor_; }
    Document *document() { return document_.get(); }
    ImageStore &images() { return *images_; }
    const LayerTree &layerTree() const { return layerTree_; }

    /** CSS coverage over all sheets (Table I). */
    uint64_t cssTotalBytes() const;
    uint64_t cssUsedBytes() const;

    uint64_t pipelineUpdates() const { return pipelineUpdates_; }

  private:
    void onHtmlLoaded(sim::Ctx &ctx, Resource &res);
    void onCssLoaded(sim::Ctx &ctx, Resource &res);
    void onJsLoaded(sim::Ctx &ctx, Resource &res);
    void onImageLoaded(sim::Ctx &ctx, Resource &res);
    void resourceDone(sim::Ctx &ctx);
    void scheduleUpdate(sim::Ctx &ctx);
    void updateRendering(sim::Ctx &ctx);
    void maybeMarkLoadComplete(sim::Ctx &ctx);
    void handleForwardedInput(sim::Ctx &main_ctx, uint32_t id_hash,
                              uint32_t kind);
    std::vector<StyleSheet *> sheetPointers() const;

    sim::Machine &machine_;
    BrowserConfig config_;
    BrowserThreads threads_;

    std::unique_ptr<TraceLog> traceLog_;
    std::unique_ptr<Lib> lib_;
    std::unique_ptr<TracedHeap> heap_;
    std::unique_ptr<IpcChannel> ipc_;
    std::unique_ptr<ResourceLoader> loader_;
    std::unique_ptr<HtmlParser> htmlParser_;
    std::unique_ptr<CssParser> cssParser_;
    std::unique_ptr<StyleResolver> styleResolver_;
    std::unique_ptr<LayoutEngine> layout_;
    std::unique_ptr<ImageStore> images_;
    std::unique_ptr<PaintController> paint_;
    std::unique_ptr<JsEngine> js_;
    std::unique_ptr<Compositor> compositor_;
    std::unique_ptr<TaskChannel> inputToMain_;

    trace::FuncId fnNavigate_;
    trace::FuncId fnHitTest_;
    trace::FuncId fnUpdate_;

    std::vector<std::unique_ptr<Resource>> resources_;
    std::unique_ptr<Document> document_;
    std::vector<std::unique_ptr<StyleSheet>> sheets_;
    LayerTree layerTree_;

    std::map<std::string, std::pair<ResourceType, std::string>>
        sitePayloads_;

    size_t outstandingCritical_ = 0; ///< html + css + js still in flight
    size_t outstandingImages_ = 0;
    bool initialRenderDone_ = false;
    bool updateScheduled_ = false;
    bool needsLayout_ = false;
    size_t loadCompleteIndex_ = SIZE_MAX;
    uint64_t loadCompleteMs_ = 0;
    uint64_t sessionMs_ = 3000;
    uint64_t pipelineUpdates_ = 0;
    uint32_t documentHeight_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_TAB_HH
