/**
 * @file
 * The tab process orchestrator.
 *
 * Wires the full Figure-1 pipeline together on the simulated machine:
 * navigation fetches the HTML, parsing discovers subresources, CSS and JS
 * arrive and are processed (JS may mutate the DOM), style + layout +
 * paint run on the main thread, commits hop to the compositor thread,
 * raster tasks fan out to the tile workers (planting pixel criteria), and
 * frames leave through the submit syscall. User input (scrolls handled on
 * the compositor; clicks/keys forwarded to the main thread and dispatched
 * into JS) drives the load+browse sessions of the paper's benchmarks.
 */

#ifndef WEBSLICE_BROWSER_TAB_HH
#define WEBSLICE_BROWSER_TAB_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "browser/common.hh"
#include "browser/compositor.hh"
#include "browser/css.hh"
#include "browser/debugging.hh"
#include "browser/dom.hh"
#include "browser/html_parser.hh"
#include "browser/image.hh"
#include "browser/ipc.hh"
#include "browser/js.hh"
#include "browser/layout.hh"
#include "browser/lib.hh"
#include "browser/net.hh"
#include "browser/paint.hh"
#include "browser/user_action.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** A website's content: the main document plus subresource payloads. */
struct SiteContent
{
    std::string url;
    std::string html;
    /** url -> (type, payload). */
    std::map<std::string, std::pair<ResourceType, std::string>> resources;
};

/** One Chromium-style tab running on a simulated machine. */
class Tab
{
  public:
    /**
     * @param shared_threads  When non-null, run this tab on an existing
     *     browser thread set instead of creating one — the multi-tab
     *     configuration where several tabs share one compositor and one
     *     raster pool.
     */
    Tab(sim::Machine &machine, BrowserConfig config,
        JsEngineConfig js_config = {},
        const BrowserThreads *shared_threads = nullptr);

    /** Start loading a site; drives everything once machine.run() runs. */
    void navigate(const SiteContent &site);

    // ---- scripted user input (the paper's browse sessions) ---------------

    /**
     * Schedule one declarative action. This is the single dispatch point
     * shared by the scenario engine and the hard-coded benchmark specs;
     * payload-bearing actions (ScriptFetch, PartialNav) must arrive with
     * their payload fields already resolved.
     */
    void scheduleAction(const UserAction &action);

    void scheduleScroll(uint64_t at_ms, int dy);
    void scheduleClick(uint64_t at_ms, const std::string &element_id);
    void scheduleKey(uint64_t at_ms, const std::string &element_id);

    /** Fetch and execute an additional script mid-session (the extra
     *  bytes Bing/Google Maps download while being browsed). */
    void scheduleScriptFetch(uint64_t at_ms, const std::string &url,
                             std::string content);

    /**
     * SPA-style partial navigation: fetch `fragment_html` as a document
     * fragment and swap it in as the new subtree of `target_id` — style
     * resolution, layout, and paint rerun without a full load. Returns
     * the navigation's ordinal, which names the fragment-<n>.html
     * resource (and the companion fragment-<n>.js, when one rides
     * along).
     */
    size_t schedulePartialNav(uint64_t at_ms,
                              const std::string &target_id,
                              std::string fragment_html);

    /**
     * requestAnimationFrame-style loop: starting at at_ms, call the JS
     * function `fn_name` once per vsync interval for duration_ms.
     */
    void scheduleRafLoop(uint64_t at_ms, uint64_t duration_ms,
                         const std::string &fn_name);

    /**
     * Create a dedicated worker thread (before machine.run()). Returns
     * the worker's index for scheduleWorkerTask.
     */
    int addWorker();

    /**
     * Post a traced compute burst of `units` steps to worker `index` at
     * at_ms; the result value hops back to the main thread through a
     * task channel (a real cross-thread data dependence).
     */
    void scheduleWorkerTask(uint64_t at_ms, int index, uint64_t units);

    /** Keep vsync/BeginFrame ticks alive until this session time. */
    void setSessionMs(uint64_t ms) { sessionMs_ = ms; }

    // ---- results ----------------------------------------------------------

    /** Trace index recorded when the page finished loading. */
    size_t loadCompleteIndex() const { return loadCompleteIndex_; }

    /** Virtual time (ms) when the page finished loading. */
    uint64_t loadCompleteMs() const { return loadCompleteMs_; }

    bool loadComplete() const { return loadCompleteIndex_ != SIZE_MAX; }

    const BrowserThreads &threads() const { return threads_; }
    JsEngine &js() { return *js_; }
    Compositor &compositor() { return *compositor_; }
    Document *document() { return document_.get(); }
    ImageStore &images() { return *images_; }
    const LayerTree &layerTree() const { return layerTree_; }

    /** CSS coverage over all sheets (Table I). */
    uint64_t cssTotalBytes() const;
    uint64_t cssUsedBytes() const;

    uint64_t pipelineUpdates() const { return pipelineUpdates_; }

    size_t workerCount() const { return workers_.size(); }
    uint64_t workerTasksCompleted() const { return workerTasksDone_; }
    uint64_t rafTicksFired() const { return rafTicks_; }
    size_t partialNavsCompleted() const { return partialNavsDone_; }

  private:
    void onHtmlLoaded(sim::Ctx &ctx, Resource &res);
    void onCssLoaded(sim::Ctx &ctx, Resource &res);
    void onJsLoaded(sim::Ctx &ctx, Resource &res);
    void onImageLoaded(sim::Ctx &ctx, Resource &res);
    void resourceDone(sim::Ctx &ctx);
    void scheduleUpdate(sim::Ctx &ctx);
    void updateRendering(sim::Ctx &ctx);
    void maybeMarkLoadComplete(sim::Ctx &ctx);
    void handleForwardedInput(sim::Ctx &main_ctx, uint32_t id_hash,
                              uint32_t kind);
    std::vector<StyleSheet *> sheetPointers() const;
    void scheduleRafTick(uint64_t delay_ms, uint64_t interval_ms,
                         std::shared_ptr<uint64_t> ticks_left,
                         std::string fn_name);
    void runWorkerBurst(sim::Ctx &ctx, int index,
                        const sim::Value &units_cell, uint64_t units);

    sim::Machine &machine_;
    BrowserConfig config_;
    BrowserThreads threads_;

    std::unique_ptr<TraceLog> traceLog_;
    std::unique_ptr<Lib> lib_;
    std::unique_ptr<TracedHeap> heap_;
    std::unique_ptr<IpcChannel> ipc_;
    std::unique_ptr<ResourceLoader> loader_;
    std::unique_ptr<HtmlParser> htmlParser_;
    std::unique_ptr<CssParser> cssParser_;
    std::unique_ptr<StyleResolver> styleResolver_;
    std::unique_ptr<LayoutEngine> layout_;
    std::unique_ptr<ImageStore> images_;
    std::unique_ptr<PaintController> paint_;
    std::unique_ptr<JsEngine> js_;
    std::unique_ptr<Compositor> compositor_;
    std::unique_ptr<TaskChannel> inputToMain_;

    trace::FuncId fnNavigate_;
    trace::FuncId fnHitTest_;
    trace::FuncId fnUpdate_;
    trace::FuncId fnPartialNav_;
    trace::FuncId fnRaf_;
    trace::FuncId fnWorkerPost_;
    trace::FuncId fnWorkerRun_;
    trace::FuncId fnWorkerReply_;

    std::vector<std::unique_ptr<Resource>> resources_;
    std::unique_ptr<Document> document_;
    std::vector<std::unique_ptr<StyleSheet>> sheets_;
    LayerTree layerTree_;

    std::map<std::string, std::pair<ResourceType, std::string>>
        sitePayloads_;

    /** One dedicated worker: its thread, inbox, and scratch cells. */
    struct Worker
    {
        trace::ThreadId tid = 0;
        std::unique_ptr<TaskChannel> inbox;
        uint64_t unitsAddr = 0;  ///< Main writes the burst size here.
        uint64_t resultAddr = 0; ///< Worker writes its result here.
    };
    std::vector<Worker> workers_;
    std::unique_ptr<TaskChannel> workerToMain_;
    uint64_t workerAccumAddr_ = 0; ///< Main-side sum of worker results.
    uint64_t workerTasksDone_ = 0;
    uint64_t rafTicks_ = 0;
    size_t partialNavs_ = 0;     ///< Scheduled (names fragment urls).
    size_t partialNavsDone_ = 0; ///< Completed subtree swaps.

    size_t outstandingCritical_ = 0; ///< html + css + js still in flight
    size_t outstandingImages_ = 0;
    bool initialRenderDone_ = false;
    bool updateScheduled_ = false;
    bool needsLayout_ = false;
    size_t loadCompleteIndex_ = SIZE_MAX;
    uint64_t loadCompleteMs_ = 0;
    uint64_t sessionMs_ = 3000;
    uint64_t pipelineUpdates_ = 0;
    uint32_t documentHeight_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_TAB_HH
