#include "browser/tab.hh"

#include "support/logging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

Tab::Tab(sim::Machine &machine, BrowserConfig config,
         JsEngineConfig js_config)
    : machine_(machine), config_(config),
      threads_(makeBrowserThreads(machine, config)),
      fnNavigate_(machine.registerFunction("html::Frame::navigate")),
      fnHitTest_(machine.registerFunction("html::EventHandler::hitTest")),
      fnUpdate_(
          machine.registerFunction("html::Frame::updateLifecycle"))
{
    traceLog_ = std::make_unique<TraceLog>(machine);
    lib_ = std::make_unique<Lib>(machine);
    heap_ = std::make_unique<TracedHeap>(machine);
    ipc_ = std::make_unique<IpcChannel>(machine);
    loader_ = std::make_unique<ResourceLoader>(machine, config_, threads_,
                                               *traceLog_, *ipc_);
    htmlParser_ = std::make_unique<HtmlParser>(machine, *traceLog_);
    cssParser_ = std::make_unique<CssParser>(machine, *traceLog_);
    styleResolver_ = std::make_unique<StyleResolver>(machine, *traceLog_);
    layout_ = std::make_unique<LayoutEngine>(machine, *traceLog_);
    images_ = std::make_unique<ImageStore>(machine, *traceLog_,
                                           config_.cellPx);
    paint_ = std::make_unique<PaintController>(machine, *traceLog_,
                                               *images_);
    js_config.cyclesPerMs = config_.cyclesPerMs;
    js_ = std::make_unique<JsEngine>(machine, *traceLog_, js_config);
    js_->setHeap(heap_.get());
    compositor_ = std::make_unique<Compositor>(machine, config_, threads_,
                                               *traceLog_, *ipc_);
    compositor_->setLayerTree(&layerTree_);
    inputToMain_ = std::make_unique<TaskChannel>(machine, threads_.main,
                                                 "input-main");

    compositor_->setInputForwarder(
        [this](Ctx &cctx, uint32_t id_hash, uint32_t kind) {
            // Hop from the compositor to the main thread.
            inputToMain_->post(cctx, id_hash,
                               [this, id_hash, kind](Ctx &mctx, Value) {
                                   handleForwardedInput(mctx, id_hash,
                                                        kind);
                               });
        });

    compositor_->setFrameHook([this](Ctx &ctx) {
        maybeMarkLoadComplete(ctx);
    });

    JsHooks hooks;
    hooks.onStyleMutation = [this](Ctx &ctx, Element *element) {
        (void)element;
        // Style changes can alter geometry (display/width/height), so a
        // mutated frame re-flows before repainting.
        needsLayout_ = true;
        scheduleUpdate(ctx);
    };
    hooks.onStructuralMutation = [this](Ctx &ctx, Element *element) {
        styleResolver_->resolveSubtree(ctx, element, sheetPointers());
        needsLayout_ = true;
        scheduleUpdate(ctx);
    };
    js_->setHooks(std::move(hooks));
}

std::vector<StyleSheet *>
Tab::sheetPointers() const
{
    std::vector<StyleSheet *> out;
    out.reserve(sheets_.size());
    for (const auto &sheet : sheets_)
        out.push_back(sheet.get());
    return out;
}

void
Tab::navigate(const SiteContent &site)
{
    sitePayloads_ = site.resources;

    auto html = std::make_unique<Resource>();
    html->url = site.url;
    html->type = ResourceType::Html;
    html->content = site.html;
    Resource *html_ptr = html.get();
    resources_.push_back(std::move(html));
    ++outstandingCritical_;

    machine_.post(threads_.main, [this, html_ptr](Ctx &ctx) {
        TracedScope scope(ctx, fnNavigate_);
        const uint64_t payload[] = {1};
        ipc_->send(ctx, IpcMessage::NavigationStart, payload);
        loader_->fetch(ctx, *html_ptr, [this](Ctx &cb_ctx, Resource &res) {
            onHtmlLoaded(cb_ctx, res);
        });
    });

    compositor_->startVsync(sessionMs_);
}

void
Tab::onHtmlLoaded(Ctx &ctx, Resource &res)
{
    document_ = htmlParser_->parse(ctx, res);
    js_->setDocument(document_.get());

    // Kick off every discovered subresource.
    auto fetch = [&](const std::string &url, ResourceType type,
                     auto callback, bool critical) {
        auto it = sitePayloads_.find(url);
        if (it == sitePayloads_.end()) {
            warn("site has no payload for ", url);
            return;
        }
        auto resource = std::make_unique<Resource>();
        resource->url = url;
        resource->type = type;
        resource->content = it->second.second;
        Resource *ptr = resource.get();
        resources_.push_back(std::move(resource));
        if (critical)
            ++outstandingCritical_;
        loader_->fetch(ctx, *ptr, callback);
    };

    for (const auto &url : document_->cssUrls) {
        fetch(url, ResourceType::Css,
              [this](Ctx &c, Resource &r) { onCssLoaded(c, r); }, true);
    }
    for (const auto &url : document_->jsUrls) {
        fetch(url, ResourceType::Js,
              [this](Ctx &c, Resource &r) { onJsLoaded(c, r); }, true);
    }
    for (const auto &url : document_->imageUrls) {
        ++outstandingImages_;
        fetch(url, ResourceType::Image,
              [this](Ctx &c, Resource &r) { onImageLoaded(c, r); },
              false);
    }

    resourceDone(ctx); // the HTML itself
}

void
Tab::onCssLoaded(Ctx &ctx, Resource &res)
{
    sheets_.push_back(cssParser_->parse(ctx, res));
    resourceDone(ctx);
}

void
Tab::onJsLoaded(Ctx &ctx, Resource &res)
{
    js_->runScript(ctx, res);
    resourceDone(ctx);
}

void
Tab::onImageLoaded(Ctx &ctx, Resource &res)
{
    // Register for lazy decode; images repaint the page when they land.
    for (const auto &element : document_->elements()) {
        if (element->tag == Tag::Img && element->src == res.url) {
            images_->addResource(res.url, &res, element->attrWidth,
                                 element->attrHeight);
            break;
        }
    }
    panic_if(outstandingImages_ == 0, "image accounting underflow");
    --outstandingImages_;
    scheduleUpdate(ctx);
}

void
Tab::resourceDone(Ctx &ctx)
{
    panic_if(outstandingCritical_ == 0, "resource accounting underflow");
    --outstandingCritical_;
    if (outstandingCritical_ == 0)
        scheduleUpdate(ctx);
}

void
Tab::scheduleUpdate(Ctx &ctx)
{
    (void)ctx;
    if (updateScheduled_)
        return;
    updateScheduled_ = true;
    machine_.post(threads_.main, [this](Ctx &main_ctx) {
        updateScheduled_ = false;
        updateRendering(main_ctx);
    });
}

void
Tab::updateRendering(Ctx &ctx)
{
    if (!document_ || outstandingCritical_ > 0)
        return;
    TracedScope scope(ctx, fnUpdate_);
    ++pipelineUpdates_;

    if (!initialRenderDone_) {
        styleResolver_->resolveAll(ctx, *document_, sheetPointers());
        needsLayout_ = true;
    }
    if (needsLayout_ || !initialRenderDone_) {
        documentHeight_ = layout_->layoutDocument(
            ctx, *document_, config_.viewportWidth,
            config_.viewportHeight);
        needsLayout_ = false;
    }
    paint_->paintDocument(ctx, *document_, layerTree_,
                          config_.viewportWidth, config_.viewportHeight,
                          documentHeight_);
    compositor_->commit(ctx);

    if (!initialRenderDone_) {
        initialRenderDone_ = true;
        Value metric = ctx.imm(machine_.now());
        ipc_->sendValue(ctx, IpcMessage::DidFirstVisuallyNonEmptyPaint,
                        metric);
    }
}

void
Tab::maybeMarkLoadComplete(Ctx &ctx)
{
    // "Completely loaded" = every resource (images included) has
    // arrived, the initial render ran, and the frame containing it has
    // been submitted (this hook fires after each submission).
    if (loadCompleteIndex_ != SIZE_MAX)
        return;
    if (!initialRenderDone_ || outstandingCritical_ > 0 ||
        outstandingImages_ > 0) {
        return;
    }
    loadCompleteIndex_ = machine_.records().size();
    loadCompleteMs_ = machine_.now() / config_.cyclesPerMs;
    Value metric = ctx.imm(loadCompleteMs_);
    ipc_->sendValue(ctx, IpcMessage::DidCommitNavigation, metric);
    // The session clock starts at load: keep vsync ticking through the
    // scripted browse window (or the post-load settle for load-only
    // benchmarks).
    compositor_->startVsync(sessionMs_);
}

void
Tab::handleForwardedInput(Ctx &ctx, uint32_t id_hash, uint32_t kind)
{
    // Main-thread hit test: probe element records until the target is
    // found (traced compares over the id hashes).
    {
        TracedScope scope(ctx, fnHitTest_);
        Value needle = ctx.imm(id_hash);
        size_t probes = 0;
        for (const auto &element : document_->elements()) {
            if (element->isText())
                continue;
            if (++probes > 64)
                break;
            Value candidate =
                ctx.load(element->addr + ElementFields::kIdHash, 4);
            Value hit = ctx.eq(candidate, needle);
            if (ctx.branchIf(hit))
                break;
        }
    }

    const JsEvent event = kind == 1 ? JsEvent::Key : JsEvent::Click;
    js_->fireEvent(ctx, id_hash, event);
    ipc_->sendValue(ctx, IpcMessage::UserInteractionMetrics,
                    ctx.imm(id_hash));
}

void
Tab::scheduleScroll(uint64_t at_ms, int dy)
{
    machine_.postDelayed(threads_.compositor, config_.msToCycles(at_ms),
                         [this, dy](Ctx &ctx) {
                             compositor_->postScroll(ctx, dy);
                         });
}

void
Tab::scheduleClick(uint64_t at_ms, const std::string &element_id)
{
    const uint32_t hash = hashString(element_id);
    machine_.postDelayed(threads_.compositor, config_.msToCycles(at_ms),
                         [this, hash](Ctx &ctx) {
                             compositor_->postInput(ctx, hash, 0);
                         });
}

void
Tab::scheduleKey(uint64_t at_ms, const std::string &element_id)
{
    const uint32_t hash = hashString(element_id);
    machine_.postDelayed(threads_.compositor, config_.msToCycles(at_ms),
                         [this, hash](Ctx &ctx) {
                             compositor_->postInput(ctx, hash, 1);
                         });
}

void
Tab::scheduleScriptFetch(uint64_t at_ms, const std::string &url,
                         std::string content)
{
    sitePayloads_[url] = {ResourceType::Js, std::move(content)};
    machine_.postDelayed(
        threads_.main, config_.msToCycles(at_ms),
        [this, url](Ctx &ctx) {
            auto resource = std::make_unique<Resource>();
            resource->url = url;
            resource->type = ResourceType::Js;
            resource->content = sitePayloads_[url].second;
            Resource *ptr = resource.get();
            resources_.push_back(std::move(resource));
            loader_->fetch(ctx, *ptr, [this](Ctx &c, Resource &r) {
                js_->runScript(c, r);
                scheduleUpdate(c);
            });
        });
}

uint64_t
Tab::cssTotalBytes() const
{
    uint64_t total = 0;
    for (const auto &sheet : sheets_)
        total += sheet->totalBytes;
    return total;
}

uint64_t
Tab::cssUsedBytes() const
{
    uint64_t used = 0;
    for (const auto &sheet : sheets_)
        used += sheet->usedBytes();
    return used;
}

} // namespace browser
} // namespace webslice
