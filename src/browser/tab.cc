#include "browser/tab.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

Tab::Tab(sim::Machine &machine, BrowserConfig config,
         JsEngineConfig js_config, const BrowserThreads *shared_threads)
    : machine_(machine), config_(config),
      threads_(shared_threads ? *shared_threads
                              : makeBrowserThreads(machine, config)),
      fnNavigate_(machine.registerFunction("html::Frame::navigate")),
      fnHitTest_(machine.registerFunction("html::EventHandler::hitTest")),
      fnUpdate_(
          machine.registerFunction("html::Frame::updateLifecycle")),
      fnPartialNav_(
          machine.registerFunction("html::Frame::partialNavigate")),
      fnRaf_(machine.registerFunction(
          "html::Frame::rafCallback")),
      fnWorkerPost_(machine.registerFunction(
          "worker::DedicatedWorker::postTask")),
      fnWorkerRun_(machine.registerFunction(
          "worker::WorkerThread::runTask")),
      fnWorkerReply_(machine.registerFunction(
          "worker::DedicatedWorker::onMessage"))
{
    traceLog_ = std::make_unique<TraceLog>(machine);
    lib_ = std::make_unique<Lib>(machine);
    heap_ = std::make_unique<TracedHeap>(machine);
    ipc_ = std::make_unique<IpcChannel>(machine);
    loader_ = std::make_unique<ResourceLoader>(machine, config_, threads_,
                                               *traceLog_, *ipc_);
    htmlParser_ = std::make_unique<HtmlParser>(machine, *traceLog_);
    cssParser_ = std::make_unique<CssParser>(machine, *traceLog_);
    styleResolver_ = std::make_unique<StyleResolver>(machine, *traceLog_);
    layout_ = std::make_unique<LayoutEngine>(machine, *traceLog_);
    images_ = std::make_unique<ImageStore>(machine, *traceLog_,
                                           config_.cellPx);
    paint_ = std::make_unique<PaintController>(machine, *traceLog_,
                                               *images_);
    js_config.cyclesPerMs = config_.cyclesPerMs;
    js_ = std::make_unique<JsEngine>(machine, *traceLog_, js_config);
    js_->setHeap(heap_.get());
    compositor_ = std::make_unique<Compositor>(machine, config_, threads_,
                                               *traceLog_, *ipc_);
    compositor_->setLayerTree(&layerTree_);
    inputToMain_ = std::make_unique<TaskChannel>(machine, threads_.main,
                                                 "input-main");

    compositor_->setInputForwarder(
        [this](Ctx &cctx, uint32_t id_hash, uint32_t kind) {
            // Hop from the compositor to the main thread.
            inputToMain_->post(cctx, id_hash,
                               [this, id_hash, kind](Ctx &mctx, Value) {
                                   handleForwardedInput(mctx, id_hash,
                                                        kind);
                               });
        });

    compositor_->setFrameHook([this](Ctx &ctx) {
        maybeMarkLoadComplete(ctx);
    });

    JsHooks hooks;
    hooks.onStyleMutation = [this](Ctx &ctx, Element *element) {
        (void)element;
        // Style changes can alter geometry (display/width/height), so a
        // mutated frame re-flows before repainting.
        needsLayout_ = true;
        scheduleUpdate(ctx);
    };
    hooks.onStructuralMutation = [this](Ctx &ctx, Element *element) {
        styleResolver_->resolveSubtree(ctx, element, sheetPointers());
        needsLayout_ = true;
        scheduleUpdate(ctx);
    };
    js_->setHooks(std::move(hooks));
}

std::vector<StyleSheet *>
Tab::sheetPointers() const
{
    std::vector<StyleSheet *> out;
    out.reserve(sheets_.size());
    for (const auto &sheet : sheets_)
        out.push_back(sheet.get());
    return out;
}

void
Tab::navigate(const SiteContent &site)
{
    sitePayloads_ = site.resources;

    auto html = std::make_unique<Resource>();
    html->url = site.url;
    html->type = ResourceType::Html;
    html->content = site.html;
    Resource *html_ptr = html.get();
    resources_.push_back(std::move(html));
    ++outstandingCritical_;

    machine_.post(threads_.main, [this, html_ptr](Ctx &ctx) {
        TracedScope scope(ctx, fnNavigate_);
        const uint64_t payload[] = {1};
        ipc_->send(ctx, IpcMessage::NavigationStart, payload);
        loader_->fetch(ctx, *html_ptr, [this](Ctx &cb_ctx, Resource &res) {
            onHtmlLoaded(cb_ctx, res);
        });
    });

    compositor_->startVsync(sessionMs_);
}

void
Tab::onHtmlLoaded(Ctx &ctx, Resource &res)
{
    document_ = htmlParser_->parse(ctx, res);
    js_->setDocument(document_.get());

    // Kick off every discovered subresource.
    auto fetch = [&](const std::string &url, ResourceType type,
                     auto callback, bool critical) {
        auto it = sitePayloads_.find(url);
        if (it == sitePayloads_.end()) {
            warn("site has no payload for ", url);
            return;
        }
        auto resource = std::make_unique<Resource>();
        resource->url = url;
        resource->type = type;
        resource->content = it->second.second;
        Resource *ptr = resource.get();
        resources_.push_back(std::move(resource));
        if (critical)
            ++outstandingCritical_;
        loader_->fetch(ctx, *ptr, callback);
    };

    for (const auto &url : document_->cssUrls) {
        fetch(url, ResourceType::Css,
              [this](Ctx &c, Resource &r) { onCssLoaded(c, r); }, true);
    }
    for (const auto &url : document_->jsUrls) {
        fetch(url, ResourceType::Js,
              [this](Ctx &c, Resource &r) { onJsLoaded(c, r); }, true);
    }
    for (const auto &url : document_->imageUrls) {
        ++outstandingImages_;
        fetch(url, ResourceType::Image,
              [this](Ctx &c, Resource &r) { onImageLoaded(c, r); },
              false);
    }

    resourceDone(ctx); // the HTML itself
}

void
Tab::onCssLoaded(Ctx &ctx, Resource &res)
{
    sheets_.push_back(cssParser_->parse(ctx, res));
    resourceDone(ctx);
}

void
Tab::onJsLoaded(Ctx &ctx, Resource &res)
{
    js_->runScript(ctx, res);
    resourceDone(ctx);
}

void
Tab::onImageLoaded(Ctx &ctx, Resource &res)
{
    // Register for lazy decode; images repaint the page when they land.
    for (const auto &element : document_->elements()) {
        if (element->tag == Tag::Img && element->src == res.url) {
            images_->addResource(res.url, &res, element->attrWidth,
                                 element->attrHeight);
            break;
        }
    }
    panic_if(outstandingImages_ == 0, "image accounting underflow");
    --outstandingImages_;
    scheduleUpdate(ctx);
}

void
Tab::resourceDone(Ctx &ctx)
{
    panic_if(outstandingCritical_ == 0, "resource accounting underflow");
    --outstandingCritical_;
    if (outstandingCritical_ == 0)
        scheduleUpdate(ctx);
}

void
Tab::scheduleUpdate(Ctx &ctx)
{
    (void)ctx;
    if (updateScheduled_)
        return;
    updateScheduled_ = true;
    machine_.post(threads_.main, [this](Ctx &main_ctx) {
        updateScheduled_ = false;
        updateRendering(main_ctx);
    });
}

void
Tab::updateRendering(Ctx &ctx)
{
    if (!document_ || outstandingCritical_ > 0)
        return;
    TracedScope scope(ctx, fnUpdate_);
    ++pipelineUpdates_;

    if (!initialRenderDone_) {
        styleResolver_->resolveAll(ctx, *document_, sheetPointers());
        needsLayout_ = true;
    }
    if (needsLayout_ || !initialRenderDone_) {
        documentHeight_ = layout_->layoutDocument(
            ctx, *document_, config_.viewportWidth,
            config_.viewportHeight);
        needsLayout_ = false;
    }
    paint_->paintDocument(ctx, *document_, layerTree_,
                          config_.viewportWidth, config_.viewportHeight,
                          documentHeight_);
    compositor_->commit(ctx);

    if (!initialRenderDone_) {
        initialRenderDone_ = true;
        Value metric = ctx.imm(machine_.now());
        ipc_->sendValue(ctx, IpcMessage::DidFirstVisuallyNonEmptyPaint,
                        metric);
    }
}

void
Tab::maybeMarkLoadComplete(Ctx &ctx)
{
    // "Completely loaded" = every resource (images included) has
    // arrived, the initial render ran, and the frame containing it has
    // been submitted (this hook fires after each submission).
    if (loadCompleteIndex_ != SIZE_MAX)
        return;
    if (!initialRenderDone_ || outstandingCritical_ > 0 ||
        outstandingImages_ > 0) {
        return;
    }
    loadCompleteIndex_ = machine_.records().size();
    loadCompleteMs_ = machine_.now() / config_.cyclesPerMs;
    Value metric = ctx.imm(loadCompleteMs_);
    ipc_->sendValue(ctx, IpcMessage::DidCommitNavigation, metric);
    // The session clock starts at load: keep vsync ticking through the
    // scripted browse window (or the post-load settle for load-only
    // benchmarks).
    compositor_->startVsync(sessionMs_);
}

void
Tab::handleForwardedInput(Ctx &ctx, uint32_t id_hash, uint32_t kind)
{
    // Main-thread hit test: probe element records until the target is
    // found (traced compares over the id hashes).
    {
        TracedScope scope(ctx, fnHitTest_);
        Value needle = ctx.imm(id_hash);
        size_t probes = 0;
        for (const auto &element : document_->elements()) {
            if (element->isText())
                continue;
            if (++probes > 64)
                break;
            Value candidate =
                ctx.load(element->addr + ElementFields::kIdHash, 4);
            Value hit = ctx.eq(candidate, needle);
            if (ctx.branchIf(hit))
                break;
        }
    }

    const JsEvent event = kind == 1 ? JsEvent::Key : JsEvent::Click;
    js_->fireEvent(ctx, id_hash, event);
    ipc_->sendValue(ctx, IpcMessage::UserInteractionMetrics,
                    ctx.imm(id_hash));
}

void
Tab::scheduleScroll(uint64_t at_ms, int dy)
{
    machine_.postDelayed(threads_.compositor, config_.msToCycles(at_ms),
                         [this, dy](Ctx &ctx) {
                             compositor_->postScroll(ctx, dy);
                         });
}

void
Tab::scheduleClick(uint64_t at_ms, const std::string &element_id)
{
    const uint32_t hash = hashString(element_id);
    machine_.postDelayed(threads_.compositor, config_.msToCycles(at_ms),
                         [this, hash](Ctx &ctx) {
                             compositor_->postInput(ctx, hash, 0);
                         });
}

void
Tab::scheduleKey(uint64_t at_ms, const std::string &element_id)
{
    const uint32_t hash = hashString(element_id);
    machine_.postDelayed(threads_.compositor, config_.msToCycles(at_ms),
                         [this, hash](Ctx &ctx) {
                             compositor_->postInput(ctx, hash, 1);
                         });
}

void
Tab::scheduleScriptFetch(uint64_t at_ms, const std::string &url,
                         std::string content)
{
    sitePayloads_[url] = {ResourceType::Js, std::move(content)};
    machine_.postDelayed(
        threads_.main, config_.msToCycles(at_ms),
        [this, url](Ctx &ctx) {
            auto resource = std::make_unique<Resource>();
            resource->url = url;
            resource->type = ResourceType::Js;
            resource->content = sitePayloads_[url].second;
            Resource *ptr = resource.get();
            resources_.push_back(std::move(resource));
            loader_->fetch(ctx, *ptr, [this](Ctx &c, Resource &r) {
                js_->runScript(c, r);
                scheduleUpdate(c);
            });
        });
}

void
Tab::scheduleAction(const UserAction &action)
{
    switch (action.kind) {
      case UserAction::Kind::Scroll:
        scheduleScroll(action.atMs, action.scrollDy);
        break;
      case UserAction::Kind::Click:
        scheduleClick(action.atMs, action.targetId);
        break;
      case UserAction::Kind::Key:
        scheduleKey(action.atMs, action.targetId);
        break;
      case UserAction::Kind::Type:
        // A typing burst is a train of key events on one target.
        for (int k = 0; k < action.count; ++k) {
            scheduleKey(action.atMs +
                            static_cast<uint64_t>(k) * action.intervalMs,
                        action.targetId);
        }
        break;
      case UserAction::Kind::ScriptFetch:
        scheduleScriptFetch(action.atMs, action.url, action.payload);
        break;
      case UserAction::Kind::PartialNav: {
        const size_t nav =
            schedulePartialNav(action.atMs, action.targetId,
                               action.payload);
        if (!action.scriptPayload.empty()) {
            scheduleScriptFetch(action.atMs,
                                format("fragment-%zu.js", nav),
                                action.scriptPayload);
        }
        break;
      }
      case UserAction::Kind::RafLoop:
        scheduleRafLoop(action.atMs, action.durationMs, action.fnName);
        break;
      case UserAction::Kind::WorkerTask:
        scheduleWorkerTask(action.atMs, action.workerIndex, action.units);
        break;
    }
}

size_t
Tab::schedulePartialNav(uint64_t at_ms, const std::string &target_id,
                        std::string fragment_html)
{
    const size_t nav = partialNavs_++;
    const std::string url = format("fragment-%zu.html", nav);
    sitePayloads_[url] = {ResourceType::Html, std::move(fragment_html)};
    machine_.postDelayed(
        threads_.main, config_.msToCycles(at_ms),
        [this, url, target_id](Ctx &ctx) {
            auto resource = std::make_unique<Resource>();
            resource->url = url;
            resource->type = ResourceType::Html;
            resource->content = sitePayloads_[url].second;
            Resource *ptr = resource.get();
            resources_.push_back(std::move(resource));
            loader_->fetch(ctx, *ptr, [this, target_id](Ctx &cb_ctx,
                                                        Resource &res) {
                TracedScope scope(cb_ctx, fnPartialNav_);
                Element *target =
                    document_ ? document_->byIdHash(hashString(target_id))
                              : nullptr;
                if (!target || target->isText()) {
                    warn("partial navigation target '", target_id,
                         "' not found; fragment dropped");
                    return;
                }
                // The old subtree is unlinked natively; its records stay
                // allocated (a real engine would GC them later) but the
                // tree walk no longer reaches them.
                target->children.clear();
                htmlParser_->parseFragment(cb_ctx, res, *document_,
                                           target);
                styleResolver_->resolveSubtree(cb_ctx, target,
                                               sheetPointers());
                needsLayout_ = true;
                ++partialNavsDone_;
                scheduleUpdate(cb_ctx);
            });
        });
    return nav;
}

void
Tab::scheduleRafLoop(uint64_t at_ms, uint64_t duration_ms,
                     const std::string &fn_name)
{
    const uint64_t interval = config_.vsyncMs ? config_.vsyncMs : 16;
    auto ticks = std::make_shared<uint64_t>(
        duration_ms / interval + (duration_ms % interval ? 1 : 0));
    if (*ticks == 0)
        return;
    scheduleRafTick(at_ms, interval, std::move(ticks), fn_name);
}

void
Tab::scheduleRafTick(uint64_t delay_ms, uint64_t interval_ms,
                     std::shared_ptr<uint64_t> ticks_left,
                     std::string fn_name)
{
    machine_.postDelayed(
        threads_.main, config_.msToCycles(delay_ms),
        [this, interval_ms, ticks_left = std::move(ticks_left),
         fn_name = std::move(fn_name)](Ctx &ctx) mutable {
            {
                TracedScope scope(ctx, fnRaf_);
                if (!js_->callByName(ctx, fn_name)) {
                    warn("raf loop callee '", fn_name,
                         "' is not a script function");
                    return; // don't keep warning every vsync
                }
            }
            ++rafTicks_;
            if (--*ticks_left > 0) {
                scheduleRafTick(interval_ms, interval_ms,
                                std::move(ticks_left),
                                std::move(fn_name));
            }
        });
}

int
Tab::addWorker()
{
    const int index = static_cast<int>(workers_.size());
    Worker worker;
    worker.tid = machine_.addThread(
        format("DedicatedWorker thread %d", index));
    worker.inbox = std::make_unique<TaskChannel>(machine_, worker.tid,
                                                 "to-worker");
    worker.unitsAddr = machine_.alloc(8, "worker-units");
    worker.resultAddr = machine_.alloc(8, "worker-result");
    if (!workerToMain_) {
        workerToMain_ = std::make_unique<TaskChannel>(
            machine_, threads_.main, "worker-main");
        workerAccumAddr_ = machine_.alloc(8, "worker-accum");
    }
    workers_.push_back(std::move(worker));
    return index;
}

void
Tab::runWorkerBurst(Ctx &ctx, int index, const sim::Value &units_cell,
                    uint64_t units)
{
    Worker &worker = workers_[static_cast<size_t>(index)];
    // Traced compute kernel: every step folds the (traced) burst size
    // into the accumulator, so the result — and therefore whatever the
    // main thread renders from it — is data-dependent on the posted task.
    Value acc = ctx.loadVia(units_cell, 0, 8);
    for (uint64_t step = 0; step < units; ++step) {
        acc = ctx.muli(acc, 6364136223846793005ull);
        acc = ctx.addi(acc, 1442695040888963407ll);
        Value more = ctx.imm(step + 1 < units ? 1 : 0);
        if (!ctx.branchIf(more))
            break;
    }
    ctx.store(worker.resultAddr, 8, acc);
    // Hop the result back to the main thread, which folds it into the
    // tab-wide accumulator (the consumer a real page would render from).
    workerToMain_->post(ctx, worker.resultAddr,
                        [this](Ctx &mctx, Value payload) {
                            TracedScope scope(mctx, fnWorkerReply_);
                            Value result = mctx.loadVia(payload, 0, 8);
                            Value sum = mctx.load(workerAccumAddr_, 8);
                            Value next = mctx.add(sum, result);
                            mctx.store(workerAccumAddr_, 8, next);
                            ++workerTasksDone_;
                        });
}

void
Tab::scheduleWorkerTask(uint64_t at_ms, int index, uint64_t units)
{
    fatal_if(index < 0 ||
                 static_cast<size_t>(index) >= workers_.size(),
             "worker index ", index, " out of range (", workers_.size(),
             " workers)");
    Worker &worker = workers_[static_cast<size_t>(index)];
    const uint64_t units_addr = worker.unitsAddr;
    TaskChannel *inbox = worker.inbox.get();
    machine_.postDelayed(
        threads_.main, config_.msToCycles(at_ms),
        [this, index, units, units_addr, inbox](Ctx &ctx) {
            TracedScope scope(ctx, fnWorkerPost_);
            Value burst = ctx.imm(units);
            ctx.store(units_addr, 8, burst);
            inbox->post(ctx, units_addr,
                        [this, index, units](Ctx &wctx, Value payload) {
                            TracedScope run(wctx, fnWorkerRun_);
                            runWorkerBurst(wctx, index, payload, units);
                        });
        });
}

uint64_t
Tab::cssTotalBytes() const
{
    uint64_t total = 0;
    for (const auto &sheet : sheets_)
        total += sheet->totalBytes;
    return total;
}

uint64_t
Tab::cssUsedBytes() const
{
    uint64_t used = 0;
    for (const auto &sheet : sheets_)
        used += sheet->usedBytes();
    return used;
}

} // namespace browser
} // namespace webslice
