#include "browser/compositor.hh"

#include <algorithm>

#include "sim/syscalls.hh"
#include "support/logging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

namespace {

/** Layer impl record: screen rect + occlusion + animation phase. */
struct ImplFields
{
    static constexpr uint64_t kScreenX = 0;
    static constexpr uint64_t kScreenY = 4;
    static constexpr uint64_t kW = 8;
    static constexpr uint64_t kH = 12;
    static constexpr uint64_t kOccluded = 16;
    static constexpr uint64_t kZ = 20;
    static constexpr uint64_t kAnimPhase = 24;
    static constexpr uint64_t kDrawHash = 32;
    static constexpr uint64_t kRecordBytes = 40;
};

} // namespace

Compositor::Compositor(sim::Machine &machine, const BrowserConfig &config,
                       const BrowserThreads &threads, TraceLog &trace_log,
                       IpcChannel &ipc)
    : machine_(machine), config_(config), threads_(threads),
      traceLog_(trace_log), ipc_(ipc),
      raster_(machine, trace_log, config),
      fnCommit_(machine.registerFunction("cc::LayerTreeHost::commit")),
      fnPropertyTrees_(
          machine.registerFunction("cc::PropertyTrees::update")),
      fnOcclusion_(machine.registerFunction("cc::OcclusionTracker::compute")),
      fnTileManager_(
          machine.registerFunction("cc::TileManager::prepareTiles")),
      fnSubmit_(machine.registerFunction("cc::Display::submitFrame")),
      fnScroll_(machine.registerFunction("cc::InputHandler::scrollBy")),
      fnInput_(machine.registerFunction("cc::InputHandler::routeEvent")),
      fnBeginFrame_(machine.registerFunction("cc::Scheduler::beginFrame")),
      fnAnimate_(machine.registerFunction("cc::AnimationHost::tick")),
      fnDrawProps_(machine.registerFunction(
          "cc::DrawPropertiesCalculator::compute")),
      fnDraw_(machine.registerFunction("cc::Display::drawFrame"))
{
    toCompositor_ = std::make_unique<TaskChannel>(
        machine, threads.compositor, "cc-commit");
    for (size_t i = 0; i < threads.raster.size(); ++i) {
        toRaster_.push_back(std::make_unique<TaskChannel>(
            machine, threads.raster[i], "cc-raster"));
    }
    rasterDone_ = std::make_unique<TaskChannel>(
        machine, threads.compositor, "cc-rasterdone");
    scrollAddr_ = machine.alloc(8, "cc-scroll");
    commitRecordAddr_ = machine.alloc(16, "cc-commitrec");
    frameRecordAddr_ = machine.alloc(4096, "cc-frame");
    budgetAddr_ = machine.alloc(4, "cc-budget");
    // Software-composited output target (sampled blit per frame).
    const uint64_t fb_cells =
        static_cast<uint64_t>(config.viewportWidth / config.cellPx + 1) *
        (config.viewportHeight / config.cellPx + 1);
    framebufferAddr_ = machine.alloc(fb_cells * 4, "cc-framebuffer");
}

uint64_t
Compositor::implRecordFor(Layer &layer)
{
    auto it = implRecords_.find(layer.id);
    if (it != implRecords_.end())
        return it->second;
    const uint64_t addr =
        machine_.alloc(ImplFields::kRecordBytes, "cc-impl");
    implRecords_[layer.id] = addr;
    return addr;
}

void
Compositor::ensureBacking(Ctx &ctx, Layer &layer)
{
    const int tile_px = config_.tilePx;
    const int tiles_x = std::max(1, (layer.w + tile_px - 1) / tile_px);
    const int tiles_y = std::max(1, (layer.h + tile_px - 1) / tile_px);
    if (layer.backingAddr && layer.tilesX == tiles_x &&
        layer.tilesY == tiles_y) {
        return;
    }
    // (Re)allocate the layer's backing store: one contiguous cell block
    // per tile. Old stores are freed; the memory-cost-of-every-layer
    // behaviour the paper criticizes is preserved because allocation
    // happens for every layer that ever becomes visible, and is never
    // dropped when the layer is later occluded.
    if (layer.backingAddr)
        machine_.free(layer.backingAddr);
    if (layer.dirtyMapAddr)
        machine_.free(layer.dirtyMapAddr);
    const uint64_t tile_bytes = static_cast<uint64_t>(
        config_.cellsPerTile() * config_.cellsPerTile() * 4);
    layer.backingAddr = machine_.alloc(
        static_cast<uint64_t>(tiles_x) * tiles_y * tile_bytes,
        "cc-backing");
    layer.dirtyMapAddr = machine_.alloc(
        static_cast<uint64_t>(tiles_x) * tiles_y, "cc-dirtymap");
    layer.tilesX = tiles_x;
    layer.tilesY = tiles_y;
    layer.tileDirty.assign(static_cast<size_t>(tiles_x) * tiles_y, 1);
    invalidateTiles(ctx, layer);
}

void
Compositor::invalidateTiles(Ctx &ctx, Layer &layer, const Value *damage)
{
    if (!layer.dirtyMapAddr)
        return;
    // The dirty bytes carry the damage source's value (generation or
    // animation phase), so raster scheduling is data-dependent on what
    // caused the invalidation.
    Value mark = damage ? ctx.bor(ctx.andi(*damage, 0x7F), ctx.imm(1))
                        : ctx.imm(1);
    const size_t tiles = layer.tileDirty.size();
    for (size_t t = 0; t < tiles; ++t) {
        layer.tileDirty[t] = 1;
        ctx.store(layer.dirtyMapAddr + t, 1, mark);
    }
    layer.dirtyCount = static_cast<int>(tiles);
}

void
Compositor::commit(Ctx &main_ctx)
{
    panic_if(!tree_, "commit without a layer tree");
    ++commits_;
    Value generation = main_ctx.imm(tree_->generation);
    main_ctx.store(commitRecordAddr_, 8, generation);
    toCompositor_->post(main_ctx, commitRecordAddr_,
                        [this](Ctx &ctx, Value) { onCommit(ctx); });
}

void
Compositor::onCommit(Ctx &ctx)
{
    TracedScope scope(ctx, fnCommit_);
    traceLog_.addEvent(ctx, /*category=*/40);

    Value generation = ctx.load(commitRecordAddr_, 8);
    Value sane = ctx.gtu(generation, ctx.imm(0));
    ctx.branchIf(sane);

    updatePropertyTrees(ctx);
    computeOcclusion(ctx);

    // Invalidate repainted layers (traced dirty-map stores: the raster
    // scheduling decisions become control/data dependent on the commit).
    for (auto &layer : tree_->layers) {
        auto &committed = committedGeneration_[layer->id];
        if (committed != layer->paintGeneration) {
            committed = layer->paintGeneration;
            ensureBacking(ctx, *layer);
            invalidateTiles(ctx, *layer, &generation);
        }
    }

    scheduleTiles(ctx, /*prepaint=*/true);
    frameRequested_ = true;
    if (pendingRasters_ == 0)
        submitFrame(ctx);
}

void
Compositor::updatePropertyTrees(Ctx &ctx)
{
    TracedScope scope(ctx, fnPropertyTrees_);
    Value scroll = ctx.load(scrollAddr_, 8);
    for (auto &layer : tree_->layers) {
        const uint64_t impl = implRecordFor(*layer);
        Value x = ctx.load(layer->recordAddr + LayerFields::kX, 4);
        Value y = ctx.load(layer->recordAddr + LayerFields::kY, 4);
        Value w = ctx.load(layer->recordAddr + LayerFields::kW, 4);
        Value h = ctx.load(layer->recordAddr + LayerFields::kH, 4);
        Value z = ctx.load(layer->recordAddr + LayerFields::kZ, 4);
        Value flags = ctx.load(layer->recordAddr + LayerFields::kFlags, 4);

        // Fixed layers ignore scroll; others translate by -scroll.
        Value is_fixed = ctx.andi(flags, 1);
        Value scrolled_y = ctx.sub(y, scroll);
        Value fixed_y = ctx.copy(y);
        Value screen_y = ctx.select(is_fixed, fixed_y, scrolled_y);

        ctx.store(impl + ImplFields::kScreenX, 4, x);
        ctx.store(impl + ImplFields::kScreenY, 4, screen_y);
        ctx.store(impl + ImplFields::kW, 4, w);
        ctx.store(impl + ImplFields::kH, 4, h);
        ctx.store(impl + ImplFields::kZ, 4, z);
    }
}

void
Compositor::computeDrawProperties(Ctx &ctx)
{
    // The per-frame walk cc really pays: transform/clip/effect/scroll
    // subpasses over every layer impl, producing draw-space rects that
    // only the frame submission consumes. Most of this is exactly the
    // compositor overhead the paper's Table II shows as non-slice.
    TracedScope scope(ctx, fnDrawProps_);
    Value scroll = ctx.load(scrollAddr_, 8);
    for (auto &layer : tree_->layers) {
        const uint64_t impl = implRecordFor(*layer);
        Value acc = ctx.imm(0x41);
        for (int subpass = 0; subpass < 1; ++subpass) {
            Value x = ctx.load(impl + ImplFields::kScreenX, 4);
            Value y = ctx.load(impl + ImplFields::kScreenY, 4);
            Value w = ctx.load(impl + ImplFields::kW, 4);
            Value h = ctx.load(impl + ImplFields::kH, 4);
            Value m0 = ctx.add(ctx.mul(x, w), ctx.mul(y, h));
            Value m1 = ctx.bxor(m0, scroll);
            Value m2 = ctx.add(ctx.shri(m1, 3), ctx.shli(m1, 2));
            Value clip_lo = ctx.ltu(y, ctx.imm(0x7FFFFFFF));
            Value clip = ctx.select(clip_lo, m2, m1);
            acc = ctx.add(acc, clip);
        }
        ctx.store(impl + ImplFields::kDrawHash, 8, acc);
    }
}

void
Compositor::computeOcclusion(Ctx &ctx)
{
    TracedScope scope(ctx, fnOcclusion_);
    // Front-to-back pairwise containment: a layer fully inside a
    // higher-z layer's screen rect is occluded and need not raster.
    for (auto &layer : tree_->layers) {
        if (!layer->owner) {
            layer->fullyOccluded = false;
            continue;
        }
        const uint64_t impl = implRecordFor(*layer);
        bool occluded = false;
        Value occluded_v = ctx.imm(0);
        for (auto &other : tree_->layers) {
            if (other.get() == layer.get() || other->z <= layer->z)
                continue;
            if (other->w <= 0 || other->h <= 0)
                continue;
            const uint64_t other_impl = implRecordFor(*other);
            Value ax = ctx.load(impl + ImplFields::kScreenX, 4);
            Value ay = ctx.load(impl + ImplFields::kScreenY, 4);
            Value aw = ctx.load(impl + ImplFields::kW, 4);
            Value ah = ctx.load(impl + ImplFields::kH, 4);
            Value bx = ctx.load(other_impl + ImplFields::kScreenX, 4);
            Value by = ctx.load(other_impl + ImplFields::kScreenY, 4);
            Value bw = ctx.load(other_impl + ImplFields::kW, 4);
            Value bh = ctx.load(other_impl + ImplFields::kH, 4);

            Value left = ctx.geu(ax, bx);
            Value top = ctx.geu(ay, by);
            Value right =
                ctx.leu(ctx.add(ax, aw), ctx.add(bx, bw));
            Value bottom =
                ctx.leu(ctx.add(ay, ah), ctx.add(by, bh));
            Value contained =
                ctx.band(ctx.band(left, right), ctx.band(top, bottom));
            occluded_v = ctx.bor(occluded_v, contained);
            // Native mirror of the traced predicate.
            const bool c =
                layer->x >= other->x && layer->y >= other->y &&
                layer->x + layer->w <= other->x + other->w &&
                layer->y + layer->h <= other->y + other->h;
            occluded = occluded || c;
        }
        ctx.store(impl + ImplFields::kOccluded, 4, occluded_v);
        layer->fullyOccluded = occluded;
    }
}

void
Compositor::scheduleTiles(Ctx &ctx, bool prepaint)
{
    TracedScope scope(ctx, fnTileManager_);
    traceLog_.addEvent(ctx, /*category=*/41);

    const int tile_px = config_.tilePx;
    const int margin = prepaint ? tile_px : 0;

    Value scroll = ctx.load(scrollAddr_, 8);
    (void)scroll;

    for (auto &layer : tree_->layers) {
        if (layer->fullyOccluded || layer->w <= 0 || layer->h <= 0 ||
            layer->items.empty()) {
            continue;
        }
        ensureBacking(ctx, *layer);
        if (layer->dirtyCount == 0)
            continue; // nothing to raster on this layer

        // Visible range of the layer in layer-local px, computed from
        // the property-tree output (traced): which tiles raster depends
        // on the scroll offset and the layer's committed geometry.
        const uint64_t impl = implRecordFor(*layer);
        Value layer_y = ctx.load(impl + ImplFields::kScreenY, 4);
        Value viewport = ctx.imm(
            static_cast<uint64_t>(config_.viewportHeight + margin));
        Value top_v = ctx.sub(ctx.imm(static_cast<uint64_t>(margin)),
                              layer_y);
        Value bottom_v = ctx.sub(viewport, layer_y);
        (void)top_v;

        int top, bottom;
        if (layer->fixed) {
            top = 0;
            bottom = layer->h;
        } else {
            top = scrollY_ - layer->y - margin;
            bottom = scrollY_ + config_.viewportHeight - layer->y +
                     margin;
        }
        top = std::max(0, top);
        bottom = std::min(layer->h, bottom);
        if (top >= bottom)
            continue;

        const int ty0 = top / tile_px;
        const int ty1 = std::min(layer->tilesY - 1,
                                 (bottom - 1) / tile_px);
        // Traced tile-row cursor derived from the visible range; the
        // dispatched task's coordinates chain back to it.
        Value ty_cursor = ctx.alu1(bottom_v, static_cast<uint64_t>(ty0));
        for (int ty = ty0; ty <= ty1; ++ty) {
            Value tx_cursor = ctx.imm(0);
            for (int tx = 0; tx < layer->tilesX; ++tx) {
                const size_t index =
                    static_cast<size_t>(ty) * layer->tilesX + tx;
                // Traced dirty test: the raster dispatch is control-
                // dependent on this branch, whose condition chains back
                // to whatever invalidated the tile.
                Value dirty = ctx.load(layer->dirtyMapAddr + index, 1);
                Value needs = ctx.ne(dirty, ctx.imm(0));
                if (ctx.branchIf(needs) && layer->tileDirty[index]) {
                    // Tile priority: prepaint tiles (outside the strict
                    // viewport) only raster while the memory budget
                    // holds; the traced budget branch is observed both
                    // ways, so dispatched work is control-dependent on
                    // the priority decision.
                    const bool prepaint_tile =
                        !layer->fixed &&
                        (ty * tile_px + tile_px <=
                             scrollY_ - layer->y ||
                         ty * tile_px >=
                             scrollY_ + config_.viewportHeight -
                                 layer->y);
                    Value budget = ctx.load(budgetAddr_, 4);
                    Value spent = ctx.addi(budget, 1);
                    ctx.store(budgetAddr_, 4, spent);
                    Value affordable = ctx.ltui(budget, 9999999);
                    if (prepaint_tile) {
                        Value deferred = ctx.andi(budget, 1);
                        affordable = ctx.bxor(
                            ctx.imm(1), ctx.andi(deferred, 1));
                    }
                    if (!ctx.branchIf(affordable)) {
                        continue; // deferred to a later PrepareTiles
                    }
                    layer->tileDirty[index] = 0;
                    --layer->dirtyCount;
                    Value zero = ctx.imm(0);
                    ctx.store(layer->dirtyMapAddr + index, 1, zero);
                    dispatchRasterTask(ctx, *layer, tx, ty, tx_cursor,
                                       ty_cursor);
                }
                tx_cursor = ctx.addi(tx_cursor, 1);
            }
            ty_cursor = ctx.addi(ty_cursor, 1);
        }
    }
}

void
Compositor::dispatchRasterTask(Ctx &ctx, Layer &layer, int tx, int ty,
                               const Value &tx_cursor,
                               const Value &ty_cursor)
{
    ++tilesScheduled_;
    ++pendingRasters_;

    const uint64_t tile_bytes = static_cast<uint64_t>(
        config_.cellsPerTile() * config_.cellsPerTile() * 4);
    const uint64_t tile_addr =
        layer.backingAddr +
        (static_cast<uint64_t>(ty) * layer.tilesX + tx) * tile_bytes;

    const uint64_t task =
        machine_.alloc(RasterTaskFields::kRecordBytes, "raster-task");
    Value layer_rec = ctx.imm(layer.recordAddr);
    ctx.store(task + RasterTaskFields::kLayerRecord, 8, layer_rec);
    // Tile coordinates come from the traced scheduling cursors, so the
    // rasterizer's geometry chains back into the tile-manager decisions.
    Value txv = ctx.alu1(tx_cursor, static_cast<uint64_t>(tx));
    ctx.store(task + RasterTaskFields::kTileX, 4, txv);
    Value tyv = ctx.alu1(ty_cursor, static_cast<uint64_t>(ty));
    ctx.store(task + RasterTaskFields::kTileY, 4, tyv);
    Value backing = ctx.imm(tile_addr);
    ctx.store(task + RasterTaskFields::kBackingTile, 8, backing);
    // The animation phase flows from the impl record into the pixels.
    const uint64_t impl = implRecordFor(layer);
    Value phase = ctx.load(impl + ImplFields::kAnimPhase, 4);
    ctx.store(task + RasterTaskFields::kPhase, 4, phase);

    Layer *layer_ptr = &layer;
    auto &channel = toRaster_[nextRasterThread_];
    nextRasterThread_ = (nextRasterThread_ + 1) % toRaster_.size();
    channel->post(ctx, task, [this, layer_ptr, task](Ctx &rctx,
                                                     Value payload) {
        raster_.rasterizeTile(rctx, *layer_ptr, payload);
        machine_.free(task);
        rasterDone_->post(rctx, frameRecordAddr_,
                          [this](Ctx &cctx, Value) { onRasterDone(cctx); });
    });
}

void
Compositor::onRasterDone(Ctx &ctx)
{
    panic_if(pendingRasters_ == 0, "raster completion underflow");
    --pendingRasters_;
    if (pendingRasters_ == 0 && frameRequested_)
        submitFrame(ctx);
}

void
Compositor::drawFrame(Ctx &ctx)
{
    // Assemble the frame from the visible tiles: per tile, verify the
    // resource (one sampled read) and append its quad to the frame
    // target. Under the paper's pixel criteria (markers at raster
    // output) this pass is downstream of the criteria and counts as
    // compositor overhead — the backing-store/compositing cost the
    // paper calls out.
    TracedScope scope(ctx, fnDraw_);
    const uint64_t tile_bytes = static_cast<uint64_t>(
        config_.cellsPerTile() * config_.cellsPerTile() * 4);
    const int tile_px = config_.tilePx;

    uint64_t fb_cursor = 0;
    for (auto &layer : tree_->layers) {
        if (layer->fullyOccluded || !layer->backingAddr ||
            layer->items.empty()) {
            continue;
        }
        int top, bottom;
        if (layer->fixed) {
            top = 0;
            bottom = layer->h;
        } else {
            top = std::max(0, scrollY_ - layer->y);
            bottom = std::min<int>(
                layer->h,
                scrollY_ + config_.viewportHeight - layer->y);
        }
        if (top >= bottom)
            continue;
        const int ty0 = top / tile_px;
        const int ty1 =
            std::min(layer->tilesY - 1, (bottom - 1) / tile_px);
        // One quad per layer: verify the first visible tile's resource
        // and append the quad to the frame target.
        const uint64_t tile_addr =
            layer->backingAddr +
            static_cast<uint64_t>(ty0) * layer->tilesX * tile_bytes;
        Value sample = ctx.load(tile_addr, 4);
        Value quad = ctx.addi(sample, 1);
        ctx.store(framebufferAddr_ + (fb_cursor % 4096), 4, quad);
        fb_cursor += 4;
        (void)ty1;
    }
}

void
Compositor::submitFrame(Ctx &ctx)
{
    TracedScope scope(ctx, fnSubmit_);
    traceLog_.addEvent(ctx, /*category=*/42);
    frameRequested_ = false;
    ++frames_;
    drawFrame(ctx);

    // Build the quad list: one quad per visible layer, from impl records.
    std::vector<trace::MemRange> reads;
    uint64_t quad_offset = 16;
    Value frame_id = ctx.imm(frames_);
    ctx.store(frameRecordAddr_, 8, frame_id);

    const uint64_t tile_bytes = static_cast<uint64_t>(
        config_.cellsPerTile() * config_.cellsPerTile() * 4);
    const int tile_px = config_.tilePx;

    for (auto &layer : tree_->layers) {
        if (layer->fullyOccluded || !layer->backingAddr ||
            layer->items.empty()) {
            continue;
        }
        const uint64_t impl = implRecordFor(*layer);
        Value sx = ctx.load(impl + ImplFields::kScreenX, 4);
        Value sy = ctx.load(impl + ImplFields::kScreenY, 4);
        ctx.store(frameRecordAddr_ + quad_offset, 4, sx);
        ctx.store(frameRecordAddr_ + quad_offset + 4, 4, sy);
        Value backing = ctx.imm(layer->backingAddr);
        ctx.store(frameRecordAddr_ + quad_offset + 8, 8, backing);
        quad_offset += 16;
        if (quad_offset + 16 > 4096)
            break;

        // The drawn tiles' bytes ride along to the GPU process: visible
        // rows only.
        int top, bottom;
        if (layer->fixed) {
            top = 0;
            bottom = layer->h;
        } else {
            top = std::max(0, scrollY_ - layer->y);
            bottom = std::min<int>(layer->h,
                                   scrollY_ + config_.viewportHeight -
                                       layer->y);
        }
        if (top >= bottom)
            continue;
        const int ty0 = top / tile_px;
        const int ty1 =
            std::min(layer->tilesY - 1, (bottom - 1) / tile_px);
        for (int ty = ty0; ty <= ty1; ++ty) {
            for (int tx = 0; tx < layer->tilesX; ++tx) {
                const uint64_t tile_addr =
                    layer->backingAddr +
                    (static_cast<uint64_t>(ty) * layer->tilesX + tx) *
                        tile_bytes;
                reads.push_back(trace::MemRange{tile_addr, tile_bytes});
            }
        }
    }
    reads.push_back(trace::MemRange{frameRecordAddr_, quad_offset});

    Value rc = ctx.syscall(sim::kSysSendmsg, frames_, reads, {});
    (void)rc;

    // Frame-swap metrics to the browser process (IPC category traffic).
    if (frames_ % 8 == 1) {
        Value metric = ctx.imm(frames_);
        ipc_.sendValue(ctx, IpcMessage::FrameSwapMetrics, metric);
    }

    if (frameHook_)
        frameHook_(ctx);
}

void
Compositor::postScroll(Ctx &ctx, int dy)
{
    toCompositor_->post(ctx, scrollAddr_, [this, dy](Ctx &cctx, Value) {
        TracedScope scope(cctx, fnScroll_);
        traceLog_.addEvent(cctx, /*category=*/43);
        Value current = cctx.load(scrollAddr_, 8);
        Value delta = cctx.imm(static_cast<uint64_t>(
            static_cast<int64_t>(dy)));
        Value moved = cctx.add(current, delta);
        // Clamp to [0, docHeight - viewport] (native mirror + select).
        const int64_t max_scroll = std::max<int64_t>(
            0, static_cast<int64_t>(tree_->documentHeight) -
                   config_.viewportHeight);
        int64_t target = scrollY_ + dy;
        target = std::max<int64_t>(0, std::min(max_scroll, target));
        Value clamped = cctx.alu1(moved, static_cast<uint64_t>(target));
        cctx.store(scrollAddr_, 8, clamped);
        scrollY_ = static_cast<int>(target);

        updatePropertyTrees(cctx);
        scheduleTiles(cctx, /*prepaint=*/true);
        frameRequested_ = true;
        if (pendingRasters_ == 0)
            submitFrame(cctx);
    });
}

void
Compositor::postInput(Ctx &ctx, uint32_t id_hash, uint32_t kind)
{
    toCompositor_->post(ctx, scrollAddr_,
                        [this, id_hash, kind](Ctx &cctx, Value) {
        TracedScope scope(cctx, fnInput_);
        traceLog_.addEvent(cctx, /*category=*/44);
        // The compositor cannot handle non-scroll input: wrap it and
        // forward to the main thread (traced event record).
        Value id = cctx.imm(id_hash);
        Value k = cctx.imm(kind);
        Value tagged = cctx.bor(cctx.shl(id, cctx.imm(8)), k);
        cctx.branchIf(cctx.ne(tagged, cctx.imm(0)));
        if (forwardInput_)
            forwardInput_(cctx, id_hash, kind);
    });
}

void
Compositor::startVsync(uint64_t duration_ms)
{
    vsyncDeadline_ = machine_.now() + config_.msToCycles(duration_ms);
    if (vsyncActive_)
        return;
    vsyncActive_ = true;
    machine_.postDelayed(threads_.compositor,
                         config_.msToCycles(config_.vsyncMs),
                         [this](Ctx &ctx) { onVsync(ctx); });
}

void
Compositor::onVsync(Ctx &ctx)
{
    TracedScope scope(ctx, fnBeginFrame_);
    ++ticks_;

    // Idle frames are cheap: when no animation is due, the scheduler
    // only advances its state machine and re-arms (real cc suppresses
    // BeginFrames it does not need).
    bool any_due = false;
    if (tree_) {
        for (auto &layer : tree_->layers) {
            if (layer->animated && !layer->fullyOccluded &&
                ticks_ % static_cast<uint64_t>(layer->animCadence) == 0) {
                any_due = true;
            }
        }
    }
    if (!any_due) {
        Value state = ctx.load(scrollAddr_, 8);
        Value next_state = ctx.addi(state, 0);
        ctx.branchIf(ctx.geu(next_state, ctx.imm(0)));
    }

    if (tree_ && any_due) {
        updatePropertyTrees(ctx);

        bool any_animation = false;
        for (auto &layer : tree_->layers) {
            if (!layer->animated || layer->fullyOccluded)
                continue;
            // Slow animations (carousel rotations) only invalidate every
            // animCadence-th frame.
            if (ticks_ % static_cast<uint64_t>(layer->animCadence) != 0)
                continue;
            any_animation = true;
            TracedScope anim(ctx, fnAnimate_);
            const uint64_t impl = implRecordFor(*layer);
            Value phase = ctx.load(impl + ImplFields::kAnimPhase, 4);
            // Cubic easing-curve evaluation: the interpolated phase is
            // what the re-raster folds into the pixels.
            Value t = ctx.andi(phase, 63);
            Value t2 = ctx.mul(t, t);
            Value t3 = ctx.mul(t2, t);
            Value eased = ctx.add(ctx.muli(t2, 3),
                                  ctx.sub(ctx.imm(1 << 18), t3));
            Value next = ctx.add(ctx.addi(phase, 1),
                                 ctx.andi(eased, 0));
            // Invalidate the layer's tiles for re-raster; the damage
            // marks carry the eased phase.
            invalidateTiles(ctx, *layer, &next);
            ctx.store(impl + ImplFields::kAnimPhase, 4, next);
        }
        if (any_animation) {
            scheduleTiles(ctx, /*prepaint=*/false);
            frameRequested_ = true;
            if (pendingRasters_ == 0)
                submitFrame(ctx);
        }
    }

    if (machine_.now() < vsyncDeadline_) {
        machine_.postDelayed(threads_.compositor,
                             config_.msToCycles(config_.vsyncMs),
                             [this](Ctx &c) { onVsync(c); });
    } else {
        vsyncActive_ = false;
    }
}

} // namespace browser
} // namespace webslice
