#include "browser/threading.hh"

#include "sim/syscalls.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

// ---- Mutex -----------------------------------------------------------------

Mutex::Mutex(sim::Machine &machine, const char *tag)
    : fnLock_(machine.registerFunction(
          std::string("base::threading::Mutex::lock#") + tag)),
      fnUnlock_(machine.registerFunction(
          std::string("base::threading::Mutex::unlock#") + tag)),
      wordAddr_(machine.alloc(4, "mutex"))
{
}

void
Mutex::lock(Ctx &ctx)
{
    TracedScope scope(ctx, fnLock_);
    // Uncontended fast path: load the lock word, verify it is free, mark
    // it held. The cooperative scheduler never preempts inside a task, so
    // contention cannot occur; the traffic itself is the point.
    Value word = ctx.load(wordAddr_, 4);
    Value free = ctx.isZero(word);
    if (ctx.branchIf(free)) {
        Value held = ctx.imm(1);
        ctx.store(wordAddr_, 4, held);
    }
}

void
Mutex::unlock(Ctx &ctx)
{
    TracedScope scope(ctx, fnUnlock_);
    Value zero = ctx.imm(0);
    ctx.store(wordAddr_, 4, zero);
    // Periodically wake a (hypothetical) waiter, mirroring the futex
    // syscalls visible in real pthread traffic.
    if (++unlockCount_ % 16 == 0)
        sim::sysFutex(ctx, wordAddr_);
}

// ---- TaskChannel -----------------------------------------------------------

TaskChannel::TaskChannel(sim::Machine &machine, trace::ThreadId target,
                         const char *tag)
    : machine_(machine), target_(target),
      fnPost_(machine.registerFunction(
          std::string("scheduler::TaskQueue::post#") + tag)),
      fnRun_(machine.registerFunction(
          std::string("scheduler::MessageLoop::runTask#") + tag)),
      mutex_(machine, tag),
      ringAddr_(machine.alloc(kRingSlots * 8, "task-ring")),
      headAddr_(machine.alloc(8, "task-head")),
      tailAddr_(machine.alloc(8, "task-tail"))
{
}

void
TaskChannel::enqueue(Ctx &sender, uint64_t payload_addr)
{
    TracedScope scope(sender, fnPost_);
    mutex_.lock(sender);
    Value head = sender.load(headAddr_, 8);
    Value slot = sender.umod(head, sender.imm(kRingSlots));
    Value entry = sender.add(sender.imm(ringAddr_), sender.muli(slot, 8));
    Value payload = sender.imm(payload_addr);
    sender.storeVia(entry, 0, 8, payload);
    Value next = sender.addi(head, 1);
    sender.store(headAddr_, 8, next);
    mutex_.unlock(sender);
}

void
TaskChannel::runReceiverSide(Ctx &ctx, const Handler &handler)
{
    Value payload;
    {
        TracedScope scope(ctx, fnRun_);
        mutex_.lock(ctx);
        Value tail = ctx.load(tailAddr_, 8);
        Value slot = ctx.umod(tail, ctx.imm(kRingSlots));
        Value entry = ctx.add(ctx.imm(ringAddr_), ctx.muli(slot, 8));
        payload = ctx.loadVia(entry, 0, 8);
        Value next = ctx.addi(tail, 1);
        ctx.store(tailAddr_, 8, next);
        mutex_.unlock(ctx);
    }
    ++delivered_;
    handler(ctx, std::move(payload));
}

void
TaskChannel::post(Ctx &sender, uint64_t payload_addr, Handler handler)
{
    enqueue(sender, payload_addr);
    machine_.post(target_, [this, handler = std::move(handler)](Ctx &ctx) {
        runReceiverSide(ctx, handler);
    });
}

void
TaskChannel::postDelayed(Ctx &sender, uint64_t payload_addr,
                         uint64_t delay_cycles, Handler handler)
{
    enqueue(sender, payload_addr);
    machine_.postDelayed(
        target_, delay_cycles,
        [this, handler = std::move(handler)](Ctx &ctx) {
            runReceiverSide(ctx, handler);
        });
}

} // namespace browser
} // namespace webslice
