/**
 * @file
 * The JavaScript engine (v8:: namespace) — the pipeline stage the paper
 * finds to be the largest source of unnecessary computation.
 *
 * Scripts are lexed with traced byte reads, compiled in a single pass to a
 * bytecode stored in simulated memory (traced stores), and executed by a
 * stack interpreter whose operand stack, locals, globals, and dispatch all
 * live in simulated memory. Each script function is registered as a
 * machine function under v8::jsfunc::<name>, entered through an indirect
 * call whose target is loaded (traced) from the engine's function table —
 * so JS work categorizes as JavaScript and dispatch chains carry real
 * dependences.
 *
 * The engine eagerly parses and compiles every function in a script when
 * the script arrives (Chromium-v58-like); functions that never run leave
 * their parse+compile work outside the pixel slice, which is precisely
 * the unused-JS waste of the paper's Table I / Figure 5. A lazy-compile
 * mode exists as the paper's "defer until needed" what-if.
 *
 * Dialect (what the workload generators emit):
 *   function name(a,b){ var x = 1; x = x + a; if(x < b){..}else{..}
 *                       while(x < 9){..} return x; other(x);
 *                       dom.set(ID,PROP,expr); dom.text(ID,expr);
 *                       dom.show(ID); dom.hide(ID);
 *                       dom.listen(ID,EVT,handler); dom.create(ID,TAG);
 *                       timer(MS,handler); }
 *   ...top-level statements after the declarations...
 *   (IDs/props/events are integers — precomputed hashes and enum values.)
 */

#ifndef WEBSLICE_BROWSER_JS_HH
#define WEBSLICE_BROWSER_JS_HH

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "browser/common.hh"
#include "browser/debugging.hh"
#include "browser/dom.hh"
#include "browser/lib.hh"
#include "browser/net.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Event types for dom.listen / fireEvent. */
enum class JsEvent : uint32_t
{
    Click = 0,
    Key = 1,
    Scroll = 2,
    Timer = 3,
};

/** Engine tuning knobs. */
struct JsEngineConfig
{
    /** Calls after which a function gets "optimized" (JIT simulation). */
    int jitThreshold = 3;

    /**
     * Calls after which an optimized function deoptimizes once (the
     * wrong-type-assumption bailouts the paper cites as a browser design
     * pitfall). 0 disables deoptimization.
     */
    int deoptAfter = 16;

    /** Function calls between scavenge GC passes (0 disables GC). */
    int gcEveryCalls = 64;

    /** Virtual cycles per millisecond for timer scheduling. */
    uint64_t cyclesPerMs = 1000;

    /**
     * Compile functions lazily on first call instead of eagerly at
     * script load (the paper's deferred-processing what-if).
     */
    bool lazyCompile = false;

    /** Operand-stack and locals slots per frame. */
    int frameSlots = 32;
};

/** Callbacks into the embedder (the Tab) for DOM mutations. */
struct JsHooks
{
    /** A style field of the element changed (repaint needed). */
    std::function<void(sim::Ctx &, Element *)> onStyleMutation;

    /** The tree changed under this element (layout needed). */
    std::function<void(sim::Ctx &, Element *)> onStructuralMutation;
};

/** One compiled script function. */
struct JsFunction
{
    std::string name;
    int index = -1;
    uint32_t srcStart = 0;  ///< Source byte range, for coverage.
    uint32_t srcLength = 0;
    int paramCount = 0;
    int localCount = 0;

    /** Bytecode: (op, operand) u32 pairs; native mirror + sim copy. */
    std::vector<std::pair<uint32_t, uint32_t>> code;
    uint64_t codeAddr = 0;

    trace::FuncId machineFunc = trace::kNoFunc;

    bool compiled = false;
    bool executed = false;
    int callCount = 0;
    bool optimized = false;
    uint64_t optimizedAddr = 0;

    /** Pending compile closure for lazy mode. */
    std::function<void(sim::Ctx &)> pendingCompile;
};

/** The engine: one instance per tab, shared across its scripts. */
class JsEngine
{
  public:
    JsEngine(sim::Machine &machine, TraceLog &trace_log,
             JsEngineConfig config = {});

    /** Bind the document the dom.* runtime operates on. */
    void setDocument(Document *doc) { document_ = doc; }

    /** Route frame allocations through a traced heap (optional). */
    void setHeap(TracedHeap *heap) { heap_ = heap; }

    /** Install mutation callbacks. */
    void setHooks(JsHooks hooks) { hooks_ = std::move(hooks); }

    /**
     * Parse + compile a script resource and execute its top-level code.
     * Must run on the main thread.
     */
    void runScript(sim::Ctx &ctx, const Resource &script);

    /**
     * Dispatch an event to listeners registered for (id hash, event).
     * @retval true if at least one handler ran.
     */
    bool fireEvent(sim::Ctx &ctx, uint32_t id_hash, JsEvent event);

    /** Call a function by name (used by tests and the Tab). */
    bool callByName(sim::Ctx &ctx, const std::string &name);

    // ---- coverage (Table I) ------------------------------------------------

    /** Total script bytes seen. */
    uint64_t totalBytes() const { return totalBytes_; }

    /** Bytes of functions that executed, plus top-level code bytes. */
    uint64_t usedBytes() const;

    /** Number of functions compiled / executed (diagnostics). */
    size_t functionCount() const { return functions_.size(); }
    size_t executedFunctionCount() const;

    uint64_t bytecodeOpsExecuted() const { return opsExecuted_; }
    uint64_t optimizations() const { return optimizations_; }
    uint64_t deoptimizations() const { return deoptimizations_; }
    uint64_t gcPasses() const { return gcPasses_; }

  private:
    class Lexer;
    class Compiler;
    friend class Compiler;

    /** Execute function `index`, passing already-traced argument values. */
    sim::Value runFunction(sim::Ctx &ctx, int index,
                           std::vector<sim::Value> args);

    /** Index for a (possibly forward-referenced) function name. */
    int functionIndexFor(const std::string &name);

    /** Global-variable slot for a name, creating it on first use. */
    int globalSlotFor(const std::string &name);

    /** Write a function's dispatch-table entry (traced). */
    void publishFunction(sim::Ctx &ctx, JsFunction &fn);

    void maybeOptimize(sim::Ctx &ctx, JsFunction &fn);
    void maybeDeoptimize(sim::Ctx &ctx, JsFunction &fn);
    void maybeCollectGarbage(sim::Ctx &ctx);
    void ensureCompiled(sim::Ctx &ctx, JsFunction &fn);

    Element *elementForId(sim::Ctx &ctx, const sim::Value &id_hash);

    /** Write one field of an element's inline style (and through to the
     *  computed style). */
    void writeInlineStyle(sim::Ctx &ctx, Element *el,
                          const sim::Value &prop, uint64_t field,
                          const sim::Value &value);

    // dom.* runtime (each pops its operands as traced values).
    void domSet(sim::Ctx &ctx, sim::Value id, sim::Value prop,
                sim::Value value);
    void domText(sim::Ctx &ctx, sim::Value id, sim::Value value);
    void domShowHide(sim::Ctx &ctx, sim::Value id, bool show);
    void domListen(sim::Ctx &ctx, sim::Value id, sim::Value event,
                   sim::Value fn_index);
    sim::Value domGet(sim::Ctx &ctx, sim::Value id, sim::Value prop);
    void domCreate(sim::Ctx &ctx, sim::Value parent_id, sim::Value tag,
                   sim::Value cls);
    void startTimer(sim::Ctx &ctx, sim::Value ms, sim::Value fn_index);

    sim::Machine &machine_;
    TraceLog &traceLog_;
    JsEngineConfig config_;
    Document *document_ = nullptr;
    TracedHeap *heap_ = nullptr;
    JsHooks hooks_;

    std::vector<std::unique_ptr<JsFunction>> functions_;
    std::unordered_map<std::string, int> functionsByName_;

    /** Function table in sim memory: 16 bytes per entry
     *  (entry pc u64, code addr u64); dispatch loads from it. */
    uint64_t funcTableAddr_ = 0;
    static constexpr size_t kMaxFunctions = 8192;

    /** Globals: name -> slot, values in sim memory (8 bytes each). */
    std::unordered_map<std::string, int> globalSlots_;
    uint64_t globalsAddr_ = 0;
    static constexpr size_t kMaxGlobals = 128;

    /** Listener table: 16-byte sim records (idHash, event, fnIndex). */
    struct Listener
    {
        uint32_t idHash;
        uint32_t event;
        int fnIndex;
        uint64_t addr;
    };
    std::vector<Listener> listeners_;

    uint64_t timerRecordAddr_ = 0;

    // Registered machine functions (v8:: namespace).
    trace::FuncId fnParseScript_;
    trace::FuncId fnParseFunction_;
    trace::FuncId fnEmitBytecode_;
    trace::FuncId fnDispatchEvent_;
    trace::FuncId fnOptimize_;
    trace::FuncId fnDeopt_;
    trace::FuncId fnGc_;
    trace::FuncId fnRuntimeDom_;
    trace::FuncId fnTimerFire_;

    /** Mark bitmap the scavenger writes (read by nothing — GC overhead
     *  is invisible to the pixels, as in the paper's traces). */
    uint64_t gcMarksAddr_ = 0;

    uint64_t totalBytes_ = 0;
    uint64_t topLevelBytes_ = 0;
    uint64_t opsExecuted_ = 0;
    uint64_t optimizations_ = 0;
    uint64_t deoptimizations_ = 0;
    uint64_t gcPasses_ = 0;
    uint64_t callsSinceGc_ = 0;
    int frameDepth_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_JS_HH
