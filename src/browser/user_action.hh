/**
 * @file
 * The one scripted-interaction representation shared by the scenario
 * DSL, the hard-coded benchmark specs (workloads::SiteSpec), and the
 * Tab's scheduling entry points.
 *
 * An action is declarative: times are session-relative milliseconds,
 * targets are element ids, and generated payloads (lazy scripts, SPA
 * fragments) are carried as resolved strings filled in by the scenario
 * engine just before scheduling — the Tab never generates content, it
 * only schedules what it is handed. The parameter fields (byte budgets,
 * section counts) are what the DSL serializes; the payload fields are
 * derived from them deterministically.
 */

#ifndef WEBSLICE_BROWSER_USER_ACTION_HH
#define WEBSLICE_BROWSER_USER_ACTION_HH

#include <cstdint>
#include <string>

namespace webslice {
namespace browser {

/** A scripted user/session action within a recorded session. */
struct UserAction
{
    enum class Kind
    {
        Scroll,      ///< Compositor-thread scroll by scrollDy px.
        Click,       ///< Click on targetId (forwarded to the main thread).
        Key,         ///< Keystroke into targetId.
        Type,        ///< Burst of `count` keystrokes, intervalMs apart.
        ScriptFetch, ///< Fetch + run an additional script mid-session.
        PartialNav,  ///< SPA-style subtree swap under targetId.
        RafLoop,     ///< requestAnimationFrame loop calling fnName.
        WorkerTask,  ///< Traced compute burst on a dedicated worker.
    };

    UserAction() = default;

    /** The legacy three-verb shape: {kind, at, dy, target-id}. */
    UserAction(Kind kind_, uint64_t at_ms, int scroll_dy,
               std::string target_id)
        : kind(kind_), atMs(at_ms), scrollDy(scroll_dy),
          targetId(std::move(target_id))
    {}

    Kind kind = Kind::Click;
    uint64_t atMs = 0;
    int scrollDy = 0;
    std::string targetId; ///< Click/Key/Type target; PartialNav host.

    /** Owning tab for multi-tab scenarios (0 = the primary tab). */
    int tab = 0;

    // ---- Type -------------------------------------------------------------
    int count = 0;           ///< Keystrokes in the burst.
    uint64_t intervalMs = 0; ///< Gap between keystrokes.

    // ---- PartialNav parameters (fragment is generated from these) --------
    int fragSections = 0; ///< Sections in the swapped-in fragment.
    int fragItems = 0;    ///< Cards per fragment section.

    // ---- ScriptFetch / PartialNav script ----------------------------------
    uint64_t bytes = 0;         ///< Script byte budget.
    double loadFraction = 0.95; ///< Share of those bytes executed.

    // ---- RafLoop ----------------------------------------------------------
    uint64_t durationMs = 0; ///< How long the loop keeps ticking.
    std::string fnName;      ///< JS function invoked per tick.

    // ---- WorkerTask -------------------------------------------------------
    int workerIndex = 0; ///< Which dedicated worker runs the burst.
    uint64_t units = 0;  ///< Traced compute units.

    // ---- resolved payloads (filled by the engine, never serialized) -------
    std::string url;           ///< ScriptFetch resource url.
    std::string payload;       ///< ScriptFetch source / PartialNav HTML.
    std::string scriptPayload; ///< PartialNav companion script source.
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_USER_ACTION_HH
