#include "browser/common.hh"

#include "support/strings.hh"

namespace webslice {
namespace browser {

BrowserThreads
makeBrowserThreads(sim::Machine &machine, const BrowserConfig &config)
{
    BrowserThreads threads;
    threads.main = machine.addThread("CrRendererMain");
    threads.names.push_back("CrRendererMain");
    threads.compositor = machine.addThread("Compositor");
    threads.names.push_back("Compositor");
    for (int i = 0; i < config.rasterThreads; ++i) {
        const std::string name = format("CompositorTileWorker%d", i + 1);
        threads.raster.push_back(machine.addThread(name));
        threads.names.push_back(name);
    }
    threads.io = machine.addThread("Chrome_ChildIOThread");
    threads.names.push_back("Chrome_ChildIOThread");
    return threads;
}

} // namespace browser
} // namespace webslice
