/**
 * @file
 * Layout (css:: namespace — the paper's "CSS" category covers "style and
 * layout calculation in the rendering pipeline").
 *
 * A simplified block-flow layout: block boxes stack vertically inside
 * their parent, inline/text boxes take a line of height font-size + 4,
 * images take their styled dimensions, and position:fixed elements pin to
 * the viewport. Every geometric input is loaded (traced) from the
 * computed-style records and every box is stored (traced) into the
 * element's layout record, so paint and raster inherit full dependence on
 * styles, attributes, and ultimately the resource bytes.
 *
 * display:none subtrees are skipped behind a traced branch — their style
 * resolution ran (that is the paper's "imperceptible computation" waste),
 * but no boxes are produced.
 */

#ifndef WEBSLICE_BROWSER_LAYOUT_HH
#define WEBSLICE_BROWSER_LAYOUT_HH

#include "browser/debugging.hh"
#include "browser/dom.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Block-flow layout engine. */
class LayoutEngine
{
  public:
    LayoutEngine(sim::Machine &machine, TraceLog &trace_log);

    /**
     * Lay out the whole document for a viewport; returns the document
     * height in px (concrete mirror of the traced computation).
     */
    uint32_t layoutDocument(sim::Ctx &ctx, Document &doc,
                            int viewport_width, int viewport_height);

    /** Re-lay out one subtree after a JS mutation. */
    void layoutSubtree(sim::Ctx &ctx, Element *element,
                       int viewport_width);

    uint64_t boxesLaidOut() const { return boxes_; }

  private:
    /**
     * Lay out `element` at flow cursor (x, y) inside a parent whose
     * content box starts at parent_top (for absolutely positioned
     * children), with the given available width. `record` is the traced
     * pointer to the element's simulated record. Returns the element's
     * flow-height contribution as a traced value.
     */
    sim::Value layoutElement(sim::Ctx &ctx, Element &element,
                             const sim::Value &record,
                             const sim::Value &x, const sim::Value &y,
                             const sim::Value &parent_top,
                             const sim::Value &width);

    sim::Machine &machine_;
    TraceLog &traceLog_;
    trace::FuncId fnLayout_;
    trace::FuncId fnLayoutBox_;
    trace::FuncId fnLayoutText_;
    uint64_t boxes_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_LAYOUT_HH
