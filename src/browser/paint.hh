/**
 * @file
 * Paint (gfx:: namespace — the paper's "Graphics" category corresponds to
 * the Paint stage of the rendering pipeline).
 *
 * Paint walks the laid-out render tree and produces per-layer display
 * lists in simulated memory: background rects, text runs (whose payload
 * points at the original resource bytes), and images (whose payload
 * points at the decoded bitmap). Layerization mirrors Chromium's direct
 * compositing reasons: position:fixed, animated, or explicitly z-indexed
 * elements get their own layers; everything else paints into the nearest
 * ancestor layer.
 */

#ifndef WEBSLICE_BROWSER_PAINT_HH
#define WEBSLICE_BROWSER_PAINT_HH

#include <memory>
#include <vector>

#include "browser/debugging.hh"
#include "browser/dom.hh"
#include "browser/image.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** One display item (native mirror of the 48-byte sim record). */
struct DisplayItem
{
    enum Type : uint32_t
    {
        Rect = 1,
        Text = 2,
        Image = 3,
    };

    uint32_t type = Rect;
    int32_t x = 0; ///< Layer-local px.
    int32_t y = 0;
    int32_t w = 0;
    int32_t h = 0;
    uint32_t color = 0;
    uint64_t payloadAddr = 0; ///< Text bytes or bitmap cells.
    uint32_t payloadLen = 0;  ///< Text length or bitmap width in cells.
    bool opaque = false;      ///< Opaque media overwrite; others blend.
};

/** Display-item record layout in simulated memory. */
struct ItemFields
{
    static constexpr uint64_t kType = 0;
    static constexpr uint64_t kX = 4;
    static constexpr uint64_t kY = 8;
    static constexpr uint64_t kW = 12;
    static constexpr uint64_t kH = 16;
    static constexpr uint64_t kColor = 20;
    static constexpr uint64_t kPayloadAddr = 24; ///< u64
    static constexpr uint64_t kPayloadLen = 32;
    static constexpr uint64_t kRecordBytes = 48;
};

/** A composited layer: painted content plus compositor-side state. */
struct Layer
{
    int id = 0;
    Element *owner = nullptr; ///< nullptr for the root layer.
    bool fixed = false;
    bool animated = false;
    /** Frames between animation invalidations (1 = every vsync; a slow
     *  carousel rotation may be 32). Comes from the anim CSS value. */
    int animCadence = 1;
    int z = 0;

    /** Layer rect in document coordinates (px). */
    int x = 0, y = 0, w = 0, h = 0;

    std::vector<DisplayItem> items;
    uint64_t itemsAddr = 0;
    size_t itemsCapacity = 0;

    /** Simulated layer record (geometry + item list pointer). */
    uint64_t recordAddr = 0;

    // ---- compositor-owned state (see compositor.hh) ----
    uint64_t backingAddr = 0;
    uint64_t dirtyMapAddr = 0; ///< Traced per-tile dirty bytes.
    int tilesX = 0, tilesY = 0;
    std::vector<uint8_t> tileDirty; ///< Native mirror of the dirty map.
    int dirtyCount = 0;             ///< Fast-path skip for clean layers.
    bool fullyOccluded = false;
    int animPhase = 0;
    uint64_t paintGeneration = 0;
    uint64_t lastFingerprint = 0; ///< Damage-tracking fingerprint.
};

/** Layer record layout in simulated memory (the commit payload). */
struct LayerFields
{
    static constexpr uint64_t kX = 0;
    static constexpr uint64_t kY = 4;
    static constexpr uint64_t kW = 8;
    static constexpr uint64_t kH = 12;
    static constexpr uint64_t kZ = 16;
    static constexpr uint64_t kFlags = 20; ///< bit0 fixed, bit1 animated
    static constexpr uint64_t kItemCount = 24;
    static constexpr uint64_t kItemsAddr = 32; ///< u64
    static constexpr uint64_t kRecordBytes = 48;
};

/** The paint output handed to the compositor. */
struct LayerTree
{
    std::vector<std::unique_ptr<Layer>> layers;
    uint32_t documentHeight = 0;
    uint64_t generation = 0;

    Layer *rootLayer() const
    {
        return layers.empty() ? nullptr : layers.front().get();
    }

    /** Layer that owns element's content (nearest layered ancestor). */
    Layer *layerFor(Element *element) const;
};

/** Builds display lists from the laid-out document. */
class PaintController
{
  public:
    PaintController(sim::Machine &machine, TraceLog &trace_log,
                    ImageStore &images);

    /**
     * (Re)build the layer tree and all display lists. Reuses existing
     * Layer objects (and their backing stores) across paints when the
     * layer structure is unchanged, marking repainted layers dirty.
     */
    void paintDocument(sim::Ctx &ctx, Document &doc, LayerTree &tree,
                       int viewport_width, int viewport_height,
                       uint32_t document_height);

    uint64_t itemsEmitted() const { return itemsEmitted_; }

  private:
    Layer *ensureLayer(LayerTree &tree, Element *owner, int z,
                       bool fixed, bool animated);
    void paintElement(sim::Ctx &ctx, Element &element, LayerTree &tree,
                      Layer *current);
    void emitItem(sim::Ctx &ctx, Layer &layer, DisplayItem item,
                  const sim::Value &x, const sim::Value &y,
                  const sim::Value &w, const sim::Value &h,
                  const sim::Value &color);
    void finishLayer(sim::Ctx &ctx, Layer &layer);
    static uint64_t itemsFingerprint(const Layer &layer);

    sim::Machine &machine_;
    TraceLog &traceLog_;
    ImageStore &images_;
    trace::FuncId fnPaint_;
    trace::FuncId fnPaintElement_;
    trace::FuncId fnEmitItem_;
    uint64_t itemsEmitted_ = 0;
    int nextLayerId_ = 1;
    size_t capacityHint_ = 64;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_PAINT_HH
