/**
 * @file
 * Built-in debug tracing (debug:: namespace).
 *
 * Chromium ships with always-on lightweight tracing/metrics machinery even
 * in release builds; the paper's "Debugging" category is exactly this kind
 * of work, detected as unnecessary because nothing it writes ever reaches
 * the pixels. We model it as a ring buffer of trace events that is written
 * on every interesting browser step and never read.
 */

#ifndef WEBSLICE_BROWSER_DEBUGGING_HH
#define WEBSLICE_BROWSER_DEBUGGING_HH

#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Release-build trace-event log: written everywhere, read nowhere. */
class TraceLog
{
  public:
    TraceLog(sim::Machine &machine, uint32_t capacity = 4096);

    /**
     * Record one trace event: a sequence number, a category id, and a
     * timestamp-ish payload are stored into the ring (all traced).
     * @param weight extra payload words, to model more expensive probes.
     */
    void addEvent(sim::Ctx &ctx, uint32_t category, int weight = 0);

    /** Events recorded so far (host-side counter, diagnostics only). */
    uint64_t eventCount() const { return events_; }

  private:
    trace::FuncId fnAdd_;
    uint64_t ringAddr_;
    uint64_t cursorAddr_;
    uint32_t capacity_;
    uint64_t events_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_DEBUGGING_HH
