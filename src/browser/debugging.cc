#include "browser/debugging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

namespace {
constexpr uint32_t kEventBytes = 16;
}

TraceLog::TraceLog(sim::Machine &machine, uint32_t capacity)
    : fnAdd_(machine.registerFunction("debug::TraceLog::addEvent")),
      ringAddr_(machine.alloc(uint64_t{capacity} * kEventBytes,
                              "debug-ring")),
      cursorAddr_(machine.alloc(8, "debug-cursor")),
      capacity_(capacity)
{
}

void
TraceLog::addEvent(Ctx &ctx, uint32_t category, int weight)
{
    TracedScope scope(ctx, fnAdd_);
    ++events_;

    // Advance the ring cursor (read-modify-write, traced).
    Value cursor = ctx.load(cursorAddr_, 8);
    Value slot = ctx.umod(cursor, ctx.imm(capacity_));
    Value offset = ctx.muli(slot, kEventBytes);
    Value entry = ctx.add(ctx.imm(ringAddr_), offset);
    Value next = ctx.addi(cursor, 1);
    ctx.store(cursorAddr_, 8, next);

    // Fill the event record.
    Value cat = ctx.imm(category);
    ctx.storeVia(entry, 0, 4, cat);
    ctx.storeVia(entry, 4, 8, cursor);
    Value stamp = ctx.imm(ctx.machine().now());
    ctx.storeVia(entry, 12, 4, stamp);

    // Heavier probes serialize extra payload words into the same slot.
    for (int i = 0; i < weight; ++i) {
        Value payload = ctx.bxor(stamp, cat);
        ctx.storeVia(entry, 12, 4, payload);
        stamp = ctx.addi(payload, 1);
    }
}

} // namespace browser
} // namespace webslice
