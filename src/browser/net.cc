#include "browser/net.hh"

#include "sim/syscalls.hh"
#include "support/logging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

ResourceLoader::ResourceLoader(sim::Machine &machine,
                               const BrowserConfig &config,
                               const BrowserThreads &threads,
                               TraceLog &trace_log, IpcChannel &ipc)
    : machine_(machine), config_(config), traceLog_(trace_log), ipc_(ipc),
      fnFetch_(machine.registerFunction("net::ResourceLoader::fetch")),
      fnReceive_(machine.registerFunction("net::URLRequest::onResponse")),
      fnParseHeaders_(
          machine.registerFunction("net::HttpParser::parseHeaders")),
      requestAddr_(machine.alloc(64, "net-request")),
      toIo_(std::make_unique<TaskChannel>(machine, threads.io, "net-io")),
      toMain_(std::make_unique<TaskChannel>(machine, threads.main,
                                            "net-main"))
{
}

void
ResourceLoader::fetch(Ctx &ctx, Resource &resource, Callback callback)
{
    TracedScope scope(ctx, fnFetch_);
    ++requests_;
    traceLog_.addEvent(ctx, /*category=*/1);

    // Build the request line (url hash + type) and hand it to the kernel.
    uint64_t url_hash = 1469598103934665603ull;
    for (const char c : resource.url)
        url_hash = (url_hash ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    Value hash = ctx.imm(url_hash);
    ctx.store(requestAddr_, 8, hash);
    Value type = ctx.imm(static_cast<uint64_t>(resource.type));
    ctx.store(requestAddr_ + 8, 4, type);
    Value rc = sim::sysSendto(ctx, requestAddr_, 12);
    (void)rc;

    // The response arrives on the IO thread after latency plus transfer
    // time, then hops to the main thread for the consumer callback.
    const uint64_t transfer_ms =
        resource.content.size() / std::max<uint64_t>(
            1, config_.networkBytesPerMs);
    const uint64_t delay =
        config_.msToCycles(config_.networkLatencyMs + transfer_ms);

    Resource *res = &resource;
    toIo_->postDelayed(
        ctx, requestAddr_, delay,
        [this, res, cb = std::move(callback)](Ctx &io_ctx, Value) {
            receiveOnIoThread(io_ctx, *res);
            toMain_->post(io_ctx, res->addr,
                          [res, cb](Ctx &main_ctx, Value) {
                              cb(main_ctx, *res);
                          });
        });
}

void
ResourceLoader::receiveOnIoThread(Ctx &ctx, Resource &resource)
{
    TracedScope scope(ctx, fnReceive_);
    traceLog_.addEvent(ctx, /*category=*/2);

    // Allocate the payload buffer (8-byte padded so chunked traced reads
    // of the tail are in-bounds) and let the "kernel" fill it.
    const uint64_t padded = (resource.content.size() + 15) & ~7ull;
    resource.addr = machine_.alloc(padded, "resource");
    resource.size = resource.content.size();
    machine_.mem().writeBytes(resource.addr, resource.content.data(),
                              resource.content.size());
    Value rc = sim::sysRecvfrom(ctx, resource.addr, resource.size);
    (void)rc;
    resource.loaded = true;
    bytesFetched_ += resource.size;

    // Parse the "headers": traced reads over the first bytes, the way a
    // real HTTP parser touches every response.
    {
        TracedScope headers(ctx, fnParseHeaders_);
        Value sum = ctx.imm(0);
        const uint64_t header_span = std::min<uint64_t>(resource.size, 64);
        for (uint64_t off = 0; off + 8 <= header_span; off += 8) {
            Value word = ctx.load(resource.addr + off, 8);
            sum = ctx.add(sum, word);
        }
        Value ok = ctx.isZero(ctx.isZero(sum));
        ctx.branchIf(ok);
    }

    // Resource-timing / netlog metrics to the browser process: payload
    // size tracks the resource size, like real devtools instrumentation.
    const uint64_t words = std::clamp<uint64_t>(resource.size / 256, 8, 48);
    std::vector<uint64_t> payload(words);
    for (uint64_t w = 0; w < words; ++w)
        payload[w] = resource.size + w;
    ipc_.send(ctx, IpcMessage::ResourceLoadMetrics, payload);
}

} // namespace browser
} // namespace webslice
