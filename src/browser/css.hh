/**
 * @file
 * The CSS engine (css:: namespace): parser, CSSOM, and style resolution —
 * the second stage of the paper's Figure 1 pipeline.
 *
 * All stylesheet bytes are parsed with traced reads into rule records in
 * simulated memory (so parsing unused rules is real, attributable work —
 * the paper's Table I measures exactly this waste). Style resolution
 * matches each element against its candidate rules with traced compares
 * and writes the computed style record the layout stage consumes. Rules
 * that never match any element leave their parse work outside the pixel
 * slice.
 *
 * Dialect (what the workload generators emit):
 *   selector{prop:value;prop:value}
 *   selector := tag | .class | #id | tag.class      (values are integers)
 *   props    := color bg display font width height margin padding
 *               position z anim opacity
 */

#ifndef WEBSLICE_BROWSER_CSS_HH
#define WEBSLICE_BROWSER_CSS_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "browser/debugging.hh"
#include "browser/dom.hh"
#include "browser/net.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Property ids understood by the resolver. */
enum class CssProperty : uint32_t
{
    None = 0,
    Color,
    Background,
    Display,
    FontSize,
    Width,
    Height,
    Margin,
    Padding,
    Position,
    ZIndex,
    Anim,
    Opacity,
};

/** Map a property name to its id (None when unknown). */
CssProperty cssPropertyFromName(std::string_view name);

/** One declaration. */
struct CssDeclaration
{
    CssProperty property = CssProperty::None;
    uint32_t value = 0;
};

/** One parsed rule (native mirror + simulated record). */
struct CssRule
{
    Tag tag = Tag::None;       ///< Tag::None = match any tag.
    uint32_t classHash = 0;    ///< 0 = no class constraint.
    uint32_t idHash = 0;       ///< 0 = no id constraint.
    std::vector<CssDeclaration> declarations;

    uint64_t addr = 0;         ///< Simulated rule record.
    uint64_t declsAddr = 0;    ///< Simulated declaration array.
    uint32_t byteStart = 0;    ///< Source range, for coverage.
    uint32_t byteLength = 0;
    bool matched = false;      ///< Set by the resolver (coverage).
};

/** Rule record layout in simulated memory. */
struct RuleFields
{
    static constexpr uint64_t kTag = 0;
    static constexpr uint64_t kClassHash = 4;
    static constexpr uint64_t kIdHash = 8;
    static constexpr uint64_t kDeclCount = 12;
    static constexpr uint64_t kDeclArray = 16; ///< u64
    static constexpr uint64_t kUsedFlag = 24;
    static constexpr uint64_t kRecordBytes = 32;
    /** Each declaration is {propId u32, value u32}. */
    static constexpr uint64_t kDeclBytes = 8;
};

/** A parsed stylesheet with native match indices and coverage counters. */
class StyleSheet
{
  public:
    std::vector<CssRule> rules;

    /** Candidate rule indices for one element (native prefilter; the
     *  traced compare still runs per candidate, as real bucketed
     *  selector matching does). */
    std::vector<size_t> candidatesFor(const Element &element) const;

    /** Build the tag/class/id buckets; call once after parsing. */
    void buildIndex();

    uint64_t totalBytes = 0;

    /** Bytes of rules that matched at least one element so far. */
    uint64_t usedBytes() const;

  private:
    std::unordered_map<uint32_t, std::vector<size_t>> byTag_;
    std::unordered_map<uint32_t, std::vector<size_t>> byClass_;
    std::unordered_map<uint32_t, std::vector<size_t>> byId_;
    std::vector<size_t> universal_;
};

/** Parses CSS resources into StyleSheets. */
class CssParser
{
  public:
    CssParser(sim::Machine &machine, TraceLog &trace_log);

    std::unique_ptr<StyleSheet> parse(sim::Ctx &ctx, const Resource &css);

  private:
    sim::Machine &machine_;
    TraceLog &traceLog_;
    trace::FuncId fnParse_;
    trace::FuncId fnParseRule_;
};

/** Resolves computed styles for a document against its stylesheets. */
class StyleResolver
{
  public:
    StyleResolver(sim::Machine &machine, TraceLog &trace_log);

    /**
     * Resolve every element: write default style records, match candidate
     * rules (traced), apply matched declarations, honour the hidden
     * attribute, and propagate inherited fields into text nodes.
     */
    void resolveAll(sim::Ctx &ctx, Document &doc,
                    const std::vector<StyleSheet *> &sheets);

    /** Re-resolve one element subtree (used by JS style mutations). */
    void resolveSubtree(sim::Ctx &ctx, Element *element,
                        const std::vector<StyleSheet *> &sheets);

    uint64_t elementsResolved() const { return resolved_; }

  private:
    void applyDefaults(sim::Ctx &ctx, Element &element);
    void matchAndApply(sim::Ctx &ctx, Element &element, StyleSheet &sheet);
    void applyInline(sim::Ctx &ctx, Element &element);
    void inheritText(sim::Ctx &ctx, Element &text);

    sim::Machine &machine_;
    TraceLog &traceLog_;
    trace::FuncId fnResolve_;
    trace::FuncId fnMatch_;
    trace::FuncId fnApply_;
    trace::FuncId fnApplyInline_;
    trace::FuncId fnInherit_;
    uint64_t resolved_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_CSS_HH
