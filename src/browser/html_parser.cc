#include "browser/html_parser.hh"

#include <cctype>

#include "support/logging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

namespace {

bool
isNameChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_' || c == '.';
}

} // namespace

/**
 * Parse position: a native index plus the traced cursor register whose
 * concrete value is always resource.addr + index.
 */
struct HtmlParser::Cursor
{
    const std::string *text = nullptr;
    uint64_t base = 0;
    size_t index = 0;
    Value reg; ///< Traced address cursor.

    bool done() const { return index >= text->size(); }
    char peek(size_t ahead = 0) const
    {
        const size_t at = index + ahead;
        return at < text->size() ? (*text)[at] : '\0';
    }

    /** Load the current byte (traced) without consuming it. */
    Value
    loadByte(Ctx &ctx)
    {
        return ctx.loadVia(reg, 0, 1);
    }

    /** Consume n bytes, advancing both the native and traced cursors. */
    void
    advance(Ctx &ctx, size_t n = 1)
    {
        index += n;
        reg = ctx.addi(reg, static_cast<int64_t>(n));
    }
};

HtmlParser::HtmlParser(sim::Machine &machine, TraceLog &trace_log)
    : machine_(machine), traceLog_(trace_log),
      fnParse_(machine.registerFunction("html::Parser::parse")),
      fnParseTag_(machine.registerFunction("html::Parser::parseTag")),
      fnParseText_(machine.registerFunction("html::Parser::parseText")),
      fnLinkTree_(machine.registerFunction("html::TreeBuilder::link"))
{
}

std::unique_ptr<Document>
HtmlParser::parse(Ctx &ctx, const Resource &html)
{
    panic_if(!html.loaded, "parsing an unloaded resource");
    TracedScope scope(ctx, fnParse_);
    traceLog_.addEvent(ctx, /*category=*/10);

    auto doc = std::make_unique<Document>();
    Element *root = doc->createElement(Tag::Body);
    root->addr = machine_.alloc(ElementFields::kRecordBytes, "element");
    root->styleAddr = machine_.alloc(StyleFields::kRecordBytes, "style");
    root->layoutAddr = machine_.alloc(LayoutFields::kRecordBytes, "layout");
    {
        Value tag = ctx.imm(static_cast<uint64_t>(Tag::Body));
        ctx.store(root->addr + ElementFields::kTag, 4, tag);
    }
    doc->setRoot(root);

    std::vector<Element *> stack{root};

    Cursor cur;
    cur.text = &html.content;
    cur.base = html.addr;
    cur.reg = ctx.imm(html.addr);

    while (true) {
        // Traced loop condition: cursor < end.
        Value end = ctx.imm(html.addr + html.content.size());
        Value more = ctx.ltu(cur.reg, end);
        if (!ctx.branchIf(more))
            break;
        if (cur.peek() == '<') {
            parseTag(ctx, cur, *doc, stack);
        } else {
            parseText(ctx, cur, *doc, stack);
        }
    }

    linkTree(ctx, *doc);
    return doc;
}

void
HtmlParser::parseFragment(Ctx &ctx, const Resource &fragment, Document &doc,
                          Element *root)
{
    panic_if(!fragment.loaded, "parsing an unloaded fragment");
    TracedScope scope(ctx, fnParse_);
    traceLog_.addEvent(ctx, /*category=*/10);

    const size_t first_new = doc.elements().size();
    std::vector<Element *> stack{root};

    Cursor cur;
    cur.text = &fragment.content;
    cur.base = fragment.addr;
    cur.reg = ctx.imm(fragment.addr);

    while (true) {
        Value end = ctx.imm(fragment.addr + fragment.content.size());
        Value more = ctx.ltu(cur.reg, end);
        if (!ctx.branchIf(more))
            break;
        if (cur.peek() == '<') {
            parseTag(ctx, cur, doc, stack);
        } else {
            parseText(ctx, cur, doc, stack);
        }
    }

    // Re-link only what changed: the host element (new child array) and
    // the elements the fragment introduced.
    TracedScope link_scope(ctx, fnLinkTree_);
    linkElement(ctx, root);
    for (size_t i = first_new; i < doc.elements().size(); ++i)
        linkElement(ctx, doc.elements()[i].get());
}

void
HtmlParser::parseText(Ctx &ctx, Cursor &cur, Document &doc,
                      std::vector<Element *> &stack)
{
    TracedScope scope(ctx, fnParseText_);

    const size_t start = cur.index;
    const uint64_t start_addr = cur.base + cur.index;
    Value hash = ctx.imm(2166136261u);

    // Scan in up-to-8-byte chunks: one traced load + mix per chunk, with
    // a traced continue/stop branch.
    while (true) {
        const size_t remaining = cur.text->size() - cur.index;
        if (remaining == 0)
            break;
        size_t span = 0;
        while (span < 8 && span < remaining && cur.peek(span) != '<')
            ++span;
        if (span == 0)
            break;
        Value chunk = ctx.loadVia(cur.reg, 0, static_cast<unsigned>(span));
        hash = ctx.bxor(hash, chunk);
        hash = ctx.muli(hash, 16777619u);
        cur.advance(ctx, span);
        Value continue_scan =
            ctx.imm(!cur.done() && cur.peek() != '<' ? 1 : 0);
        if (!ctx.branchIf(continue_scan))
            break;
    }

    const size_t length = cur.index - start;
    if (length == 0)
        return;

    Element *node = doc.createElement(Tag::Text);
    node->addr = machine_.alloc(ElementFields::kRecordBytes, "text");
    node->styleAddr = machine_.alloc(StyleFields::kRecordBytes, "style");
    node->layoutAddr = machine_.alloc(LayoutFields::kRecordBytes, "layout");
    node->text = cur.text->substr(start, length);
    node->textAddr = start_addr;
    node->textLen = static_cast<uint32_t>(length);
    node->parent = stack.back();
    stack.back()->children.push_back(node);

    Value tag = ctx.imm(static_cast<uint64_t>(Tag::Text));
    ctx.store(node->addr + ElementFields::kTag, 4, tag);
    Value text_addr = ctx.imm(start_addr);
    ctx.store(node->addr + ElementFields::kTextAddr, 8, text_addr);
    // The recorded length derives from the traced cursor positions.
    Value start_reg = ctx.imm(start_addr);
    Value len = ctx.sub(cur.reg, start_reg);
    ctx.store(node->addr + ElementFields::kTextLen, 4, len);
    // Text content hash doubles as the initial "glyph shaping" product.
    ctx.store(node->addr + ElementFields::kClassHash, 4, hash);
}

void
HtmlParser::parseTag(Ctx &ctx, Cursor &cur, Document &doc,
                     std::vector<Element *> &stack)
{
    TracedScope scope(ctx, fnParseTag_);

    cur.advance(ctx); // consume '<'

    const bool closing = cur.peek() == '/';
    if (closing)
        cur.advance(ctx);

    // Tag name: per-byte traced load + hash mix.
    std::string name;
    Value name_hash = ctx.imm(2166136261u);
    while (!cur.done() && isNameChar(cur.peek())) {
        Value ch = cur.loadByte(ctx);
        name_hash = ctx.bxor(name_hash, ch);
        name_hash = ctx.muli(name_hash, 16777619u);
        name.push_back(cur.peek());
        cur.advance(ctx);
    }

    if (closing) {
        // Scan to '>' and pop, with a traced check that the closing tag
        // matches the open element.
        while (!cur.done() && cur.peek() != '>')
            cur.advance(ctx);
        if (!cur.done())
            cur.advance(ctx); // consume '>'
        if (stack.size() > 1) {
            Element *top = stack.back();
            Value open_tag =
                ctx.load(top->addr + ElementFields::kTag, 4);
            Value expect =
                ctx.imm(static_cast<uint64_t>(tagFromName(name)));
            Value match = ctx.eq(open_tag, expect);
            ctx.branchIf(match);
            stack.pop_back();
        }
        return;
    }

    const Tag tag = tagFromName(name);
    const bool is_link = name == "link";
    const bool is_script = name == "script";
    const bool is_void = tag == Tag::Img || tag == Tag::Input || is_link ||
                         is_script;

    // Attribute accumulation (traced values).
    Value id_hash = ctx.imm(0);
    Value class_hash = ctx.imm(0);
    Value hidden = ctx.imm(0);
    Value attr_w = ctx.imm(0);
    Value attr_h = ctx.imm(0);
    std::string id_attr, class_attr, src_attr;

    while (!cur.done() && cur.peek() == ' ') {
        cur.advance(ctx); // consume the space

        std::string attr_name;
        while (!cur.done() && isNameChar(cur.peek())) {
            Value ch = cur.loadByte(ctx);
            (void)ch;
            attr_name.push_back(cur.peek());
            cur.advance(ctx);
        }

        if (cur.peek() != '=') {
            // Valueless attribute (e.g. "hidden").
            if (attr_name == "hidden")
                hidden = ctx.imm(1);
            continue;
        }
        cur.advance(ctx); // consume '='

        // Value: either a number (digits) or a token (hash-mixed).
        std::string attr_value;
        Value hash = ctx.imm(2166136261u);
        Value number = ctx.imm(0);
        bool numeric = std::isdigit(
            static_cast<unsigned char>(cur.peek()));
        while (!cur.done() && cur.peek() != ' ' && cur.peek() != '>') {
            Value ch = cur.loadByte(ctx);
            if (numeric) {
                Value digit = ctx.addi(ch, -'0');
                number = ctx.add(ctx.muli(number, 10), digit);
            } else {
                hash = ctx.bxor(hash, ch);
                hash = ctx.muli(hash, 16777619u);
            }
            attr_value.push_back(cur.peek());
            cur.advance(ctx);
        }

        if (attr_name == "id") {
            id_hash = std::move(hash);
            id_attr = attr_value;
        } else if (attr_name == "class") {
            class_hash = std::move(hash);
            class_attr = attr_value;
        } else if (attr_name == "w") {
            attr_w = std::move(number);
        } else if (attr_name == "h") {
            attr_h = std::move(number);
        } else if (attr_name == "src" || attr_name == "href") {
            src_attr = attr_value;
        }
    }
    if (!cur.done())
        cur.advance(ctx); // consume '>'

    // Subresource references produce no DOM node.
    if (is_link) {
        doc.cssUrls.push_back(src_attr);
        return;
    }
    if (is_script) {
        doc.jsUrls.push_back(src_attr);
        return;
    }

    Element *element = doc.createElement(tag);
    element->addr = machine_.alloc(ElementFields::kRecordBytes, "element");
    element->styleAddr =
        machine_.alloc(StyleFields::kRecordBytes, "style");
    element->layoutAddr =
        machine_.alloc(LayoutFields::kRecordBytes, "layout");
    element->idAttr = id_attr;
    element->className = class_attr;
    element->idHash = hashString(id_attr);
    element->classHash = hashString(class_attr);
    element->hidden = hidden.get() != 0;
    element->attrWidth = static_cast<uint32_t>(attr_w.get());
    element->attrHeight = static_cast<uint32_t>(attr_h.get());
    element->src = src_attr;
    element->parent = stack.back();
    stack.back()->children.push_back(element);
    if (tag == Tag::Img && !src_attr.empty())
        doc.imageUrls.push_back(src_attr);
    doc.indexById(element);

    // Write the record from the *traced* accumulators so the fields are
    // data-dependent on the HTML bytes.
    Value tag_field = ctx.alu1(name_hash, static_cast<uint64_t>(tag));
    ctx.store(element->addr + ElementFields::kTag, 4, tag_field);
    ctx.store(element->addr + ElementFields::kIdHash, 4, id_hash);
    ctx.store(element->addr + ElementFields::kClassHash, 4, class_hash);
    ctx.store(element->addr + ElementFields::kFlags, 4, hidden);
    ctx.store(element->addr + ElementFields::kAttrWidth, 4, attr_w);
    ctx.store(element->addr + ElementFields::kAttrHeight, 4, attr_h);

    if (!is_void)
        stack.push_back(element);
}

void
HtmlParser::linkTree(Ctx &ctx, Document &doc)
{
    TracedScope scope(ctx, fnLinkTree_);
    for (const auto &element : doc.elements())
        linkElement(ctx, element.get());
}

void
HtmlParser::linkElement(Ctx &ctx, Element *el)
{
    const size_t n = el->children.size();
    Value count = ctx.imm(n);
    ctx.store(el->addr + ElementFields::kChildCount, 4, count);
    Value style = ctx.imm(el->styleAddr);
    ctx.store(el->addr + ElementFields::kStyle, 8, style);
    Value layout = ctx.imm(el->layoutAddr);
    ctx.store(el->addr + ElementFields::kLayout, 8, layout);
    if (n == 0)
        return;
    el->childArrayAddr = machine_.alloc(n * 8, "children");
    Value array = ctx.imm(el->childArrayAddr);
    ctx.store(el->addr + ElementFields::kChildArray, 8, array);
    for (size_t i = 0; i < n; ++i) {
        Value child = ctx.imm(el->children[i]->addr);
        ctx.store(el->childArrayAddr + i * 8, 8, child);
    }
}

} // namespace browser
} // namespace webslice
