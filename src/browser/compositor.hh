/**
 * @file
 * The compositor thread (cc:: namespace) — the last stage of the paper's
 * Figure 1 pipeline and the paper's "Compositing" category.
 *
 * Responsibilities mirror Chromium's cc: accept commits from the main
 * thread, maintain per-layer impl records and property trees, compute
 * occlusion, manage per-layer backing stores ("each layer has its own
 * backing store/cache … expensive, and the computations related to layers
 * that are only rendered once are wasted" — the paper's design-pitfall
 * example), schedule raster tasks onto the tile-worker threads, handle
 * scroll input without involving the main thread, forward clicks to the
 * main thread, drive vsync-paced animation ticks, and submit frames
 * (sendto over the frame metadata and drawn tile bytes — the GPU-process
 * handoff, which is what makes the paper's syscall-based criteria a
 * superset of the pixel-based ones).
 */

#ifndef WEBSLICE_BROWSER_COMPOSITOR_HH
#define WEBSLICE_BROWSER_COMPOSITOR_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "browser/common.hh"
#include "browser/debugging.hh"
#include "browser/ipc.hh"
#include "browser/paint.hh"
#include "browser/raster.hh"
#include "browser/threading.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** The tab's compositor. */
class Compositor
{
  public:
    Compositor(sim::Machine &machine, const BrowserConfig &config,
               const BrowserThreads &threads, TraceLog &trace_log,
               IpcChannel &ipc);

    /** Bind the layer tree produced by paint (shared with the Tab). */
    void setLayerTree(LayerTree *tree) { tree_ = tree; }

    /** Forwarder for clicks/keys that need main-thread handling. */
    using InputForwarder =
        std::function<void(sim::Ctx &, uint32_t id_hash, uint32_t kind)>;
    void setInputForwarder(InputForwarder fwd)
    {
        forwardInput_ = std::move(fwd);
    }

    /** Invoked (on the compositor thread) after each frame submission. */
    using FrameHook = std::function<void(sim::Ctx &)>;
    void setFrameHook(FrameHook hook) { frameHook_ = std::move(hook); }

    /** Called on the main thread: hand the new paint to the compositor. */
    void commit(sim::Ctx &main_ctx);

    /**
     * Compositor-thread input: scroll by dy px. Handled entirely on the
     * compositor thread (schedules newly exposed tiles + a frame).
     */
    void postScroll(sim::Ctx &ctx, int dy);

    /** Input that needs the main thread (click/key on an element). */
    void postInput(sim::Ctx &ctx, uint32_t id_hash, uint32_t kind);

    /**
     * Start vsync-paced BeginFrame ticks for duration_ms. Each tick
     * advances animations, invalidates animated layers, and schedules
     * raster work; ticks with nothing to do still pay the property-tree
     * walk (the compositor's intrinsic overhead the paper measures).
     */
    void startVsync(uint64_t duration_ms);

    uint64_t framesSubmitted() const { return frames_; }
    uint64_t tilesScheduled() const { return tilesScheduled_; }
    uint64_t commitsReceived() const { return commits_; }
    uint64_t vsyncTicks() const { return ticks_; }
    const Rasterizer &rasterizer() const { return raster_; }

    /** Current scroll offset in px (host view). */
    int scrollOffset() const { return scrollY_; }

  private:
    void onCommit(sim::Ctx &ctx);
    void updatePropertyTrees(sim::Ctx &ctx);
    void computeOcclusion(sim::Ctx &ctx);
    void computeDrawProperties(sim::Ctx &ctx);
    void scheduleTiles(sim::Ctx &ctx, bool prepaint);
    void dispatchRasterTask(sim::Ctx &ctx, Layer &layer, int tx, int ty,
                            const sim::Value &tx_cursor,
                            const sim::Value &ty_cursor);
    void onRasterDone(sim::Ctx &ctx);
    void submitFrame(sim::Ctx &ctx);
    void onVsync(sim::Ctx &ctx);
    void ensureBacking(sim::Ctx &ctx, Layer &layer);
    void invalidateTiles(sim::Ctx &ctx, Layer &layer,
                         const sim::Value *damage = nullptr);
    void drawFrame(sim::Ctx &ctx);
    uint64_t implRecordFor(Layer &layer);

    sim::Machine &machine_;
    const BrowserConfig &config_;
    const BrowserThreads &threads_;
    TraceLog &traceLog_;
    IpcChannel &ipc_;
    Rasterizer raster_;

    LayerTree *tree_ = nullptr;
    InputForwarder forwardInput_;
    FrameHook frameHook_;

    trace::FuncId fnCommit_;
    trace::FuncId fnPropertyTrees_;
    trace::FuncId fnOcclusion_;
    trace::FuncId fnTileManager_;
    trace::FuncId fnSubmit_;
    trace::FuncId fnScroll_;
    trace::FuncId fnInput_;
    trace::FuncId fnBeginFrame_;
    trace::FuncId fnAnimate_;
    trace::FuncId fnDrawProps_;
    trace::FuncId fnDraw_;

    std::unique_ptr<TaskChannel> toCompositor_;
    std::vector<std::unique_ptr<TaskChannel>> toRaster_;
    std::unique_ptr<TaskChannel> rasterDone_;

    /** Per-layer impl records (screen rect, occlusion flag). */
    std::unordered_map<int, uint64_t> implRecords_;
    std::unordered_map<int, uint64_t> committedGeneration_;

    uint64_t scrollAddr_ = 0;
    int scrollY_ = 0;
    uint64_t commitRecordAddr_ = 0;
    uint64_t frameRecordAddr_ = 0;
    uint64_t budgetAddr_ = 0;
    uint64_t framebufferAddr_ = 0;

    size_t pendingRasters_ = 0;
    bool frameRequested_ = false;
    size_t nextRasterThread_ = 0;

    uint64_t frames_ = 0;
    uint64_t tilesScheduled_ = 0;
    uint64_t commits_ = 0;
    uint64_t ticks_ = 0;
    uint64_t vsyncDeadline_ = 0;
    bool vsyncActive_ = false;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_COMPOSITOR_HH
