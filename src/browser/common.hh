/**
 * @file
 * Shared browser-substrate configuration and conventions.
 *
 * The browser is a miniature Chromium-like rendering engine written
 * against the traced machine (sim::Machine). Its structure mirrors the
 * tab-process architecture the paper instruments: a main thread
 * (HTML/CSS/JS and paint), a compositor thread (layers, tiling, input),
 * N rasterizer worker threads, and a child-IO thread (IPC and network
 * dispatch) — all serialized into one trace stream, as the paper's
 * affinity-pinned setup does.
 *
 * Function names registered with the machine use Chromium-flavoured
 * namespaces (v8::, cc::, css::, gfx::, ipc::, debug::,
 * base::threading::, scheduler::, net::, html::, lib::), which is what
 * the analysis layer's namespace categorization keys on.
 */

#ifndef WEBSLICE_BROWSER_COMMON_HH
#define WEBSLICE_BROWSER_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Geometry and pacing parameters of one browser instance. */
struct BrowserConfig
{
    /** CSS viewport size in px (the mobile emulation uses 360x640). */
    int viewportWidth = 1280;
    int viewportHeight = 720;

    /** Emulated-mobile mode (affects layout and tiling volume). */
    bool mobile = false;

    /** Number of rasterizer worker threads Chromium-style. */
    int rasterThreads = 2;

    /** Virtual cycles per simulated millisecond (calibration knob). */
    uint64_t cyclesPerMs = 1000;

    /** One-way network latency for resource fetches. */
    uint64_t networkLatencyMs = 40;

    /** Network bandwidth in bytes per simulated millisecond. */
    uint64_t networkBytesPerMs = 4000;

    /** Tile edge in px (Chromium uses 256x256 tiles). */
    int tilePx = 256;

    /**
     * Raster cell granularity in px: pixel values are tracked per
     * cell (a cell is one u32 in simulated memory) to keep trace volume
     * proportional to, not equal to, the pixel count.
     */
    int cellPx = 16;

    /** Vsync/animation tick interval. */
    uint64_t vsyncMs = 16;

    uint64_t
    msToCycles(uint64_t ms) const
    {
        return ms * cyclesPerMs;
    }

    int cellsPerTile() const { return tilePx / cellPx; }
};

/** Thread handles of one browser instance. */
struct BrowserThreads
{
    trace::ThreadId main = 0;
    trace::ThreadId compositor = 0;
    trace::ThreadId io = 0;
    std::vector<trace::ThreadId> raster;

    /** Names in tid order, for analysis/report layers. */
    std::vector<std::string> names;
};

/** Create the Chromium-style thread set on a machine. */
BrowserThreads makeBrowserThreads(sim::Machine &machine,
                                  const BrowserConfig &config);

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_COMMON_HH
