/**
 * @file
 * The Document Object Model (html:: namespace).
 *
 * Every element owns a record in simulated memory; all fields that can
 * influence pixels (tag, id/class hashes, attribute dimensions, text
 * payload location, child links, computed style, layout box) live there
 * and are written/read with traced operations, so the slicer can follow
 * pixel values back through layout, style, and parsing to the original
 * resource bytes. A native C++ mirror (pointers, vectors, strings) exists
 * purely for the convenience of the substrate code.
 */

#ifndef WEBSLICE_BROWSER_DOM_HH
#define WEBSLICE_BROWSER_DOM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** HTML tag ids (stored in the element's sim record). */
enum class Tag : uint32_t
{
    None = 0,
    Body,
    Div,
    Span,
    P,
    H1,
    Img,
    A,
    Button,
    Input,
    Ul,
    Li,
    Header,
    Footer,
    Nav,
    Section,
    Canvas,
    Text, ///< Synthetic node for a raw text run.
};

/** Map a tag name to its id; Tag::None when unknown. */
Tag tagFromName(std::string_view name);

/** FNV-1a of a string — matches the traced byte-mixing the parser emits. */
uint32_t hashString(std::string_view text);

/**
 * Field offsets within an element's 64-byte simulated record.
 * All scalar fields are u32 unless noted.
 */
struct ElementFields
{
    static constexpr uint64_t kTag = 0;
    static constexpr uint64_t kIdHash = 4;
    static constexpr uint64_t kClassHash = 8;
    static constexpr uint64_t kFlags = 12;     ///< bit0: hidden attribute
    static constexpr uint64_t kTextLen = 16;
    static constexpr uint64_t kAttrWidth = 20;
    static constexpr uint64_t kAttrHeight = 24;
    static constexpr uint64_t kChildCount = 28;
    static constexpr uint64_t kChildArray = 32; ///< u64: child record addrs
    static constexpr uint64_t kStyle = 40;      ///< u64: style record
    static constexpr uint64_t kLayout = 48;     ///< u64: layout record
    static constexpr uint64_t kTextAddr = 56;   ///< u64: text bytes
    static constexpr uint64_t kRecordBytes = 64;
};

/**
 * Computed-style record offsets (48 bytes, written by the CSS resolver).
 */
struct StyleFields
{
    static constexpr uint64_t kColor = 0;
    static constexpr uint64_t kBackground = 4;
    static constexpr uint64_t kDisplay = 8;   ///< 0 none, 1 block, 2 inline
    static constexpr uint64_t kFontSize = 12;
    static constexpr uint64_t kWidth = 16;    ///< 0 = auto
    static constexpr uint64_t kHeight = 20;   ///< 0 = auto
    static constexpr uint64_t kMargin = 24;
    static constexpr uint64_t kPadding = 28;
    static constexpr uint64_t kPosition = 32; ///< 0 static, 1 fixed, 2 abs
    static constexpr uint64_t kZIndex = 36;
    static constexpr uint64_t kAnimated = 40;
    static constexpr uint64_t kOpacity = 44;
    static constexpr uint64_t kRecordBytes = 48;
};

/**
 * Inline-style record: same field offsets as StyleFields plus a set-bit
 * mask. JS style mutations write here (and through to the computed
 * style); the resolver overlays these after rule application, which is
 * what lets script-set styles win the cascade.
 */
struct InlineStyleFields
{
    static constexpr uint64_t kMask = 48; ///< bit f = field f*4 is set
    static constexpr uint64_t kRecordBytes = 56;
    static constexpr int kFieldCount = 12;
};

/** Layout-box record offsets (16 bytes, written by layout). */
struct LayoutFields
{
    static constexpr uint64_t kX = 0;
    static constexpr uint64_t kY = 4;
    static constexpr uint64_t kWidth = 8;
    static constexpr uint64_t kHeight = 12;
    static constexpr uint64_t kRecordBytes = 16;
};

/** Display values stored in StyleFields::kDisplay. */
enum : uint32_t
{
    kDisplayNone = 0,
    kDisplayBlock = 1,
    kDisplayInline = 2,
};

/** Position values stored in StyleFields::kPosition. */
enum : uint32_t
{
    kPositionStatic = 0,
    kPositionFixed = 1,
    kPositionAbsolute = 2,
};

/** Native mirror of one DOM element. */
struct Element
{
    uint64_t addr = 0; ///< Simulated record base.
    Tag tag = Tag::None;
    uint32_t idHash = 0;
    uint32_t classHash = 0;
    std::string idAttr;
    std::string className;
    bool hidden = false;
    uint32_t attrWidth = 0;
    uint32_t attrHeight = 0;
    std::string text;      ///< For Tag::Text runs.
    uint64_t textAddr = 0; ///< Location of the text bytes (resource).
    uint32_t textLen = 0;
    std::string src;       ///< For Tag::Img.

    Element *parent = nullptr;
    std::vector<Element *> children;
    uint64_t childArrayAddr = 0;
    uint64_t styleAddr = 0;
    uint64_t layoutAddr = 0;
    uint64_t inlineStyleAddr = 0; ///< Allocated on first JS style write.

    bool isText() const { return tag == Tag::Text; }
};

/** The parsed document: element ownership plus lookup indices. */
class Document
{
  public:
    Element *root() const { return root_; }
    void setRoot(Element *root) { root_ = root; }

    /** Create an element owned by this document. */
    Element *createElement(Tag tag);

    /** Register an element's id for getElementById-style lookup. */
    void indexById(Element *element);

    /** Element with the given id hash, or nullptr. */
    Element *byIdHash(uint32_t hash) const;

    const std::vector<std::unique_ptr<Element>> &elements() const
    {
        return elements_;
    }

    size_t elementCount() const { return elements_.size(); }

    /** Subresource URLs discovered while parsing. */
    std::vector<std::string> cssUrls;
    std::vector<std::string> jsUrls;
    std::vector<std::string> imageUrls;

  private:
    Element *root_ = nullptr;
    std::vector<std::unique_ptr<Element>> elements_;
    std::unordered_map<uint32_t, Element *> byIdHash_;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_DOM_HH
