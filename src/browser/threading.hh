/**
 * @file
 * Thread-communication primitives (base::threading:: and scheduler::
 * namespaces).
 *
 * The paper's "Multi-threading" category is dominated by pthread-style
 * lock traffic, and its "Other" category by event-queue management ("all
 * threads in Chromium are event-driven in nature"). We model both
 * honestly: cross-thread task posting writes a task record into a
 * simulated-memory ring protected by a traced mutex, and the receiving
 * thread's message loop reads it back before running the handler — so
 * cross-thread work is data-dependent on its producer exactly as shared
 * memory makes it in the real browser.
 */

#ifndef WEBSLICE_BROWSER_THREADING_HH
#define WEBSLICE_BROWSER_THREADING_HH

#include <functional>
#include <string>

#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Uncontended futex-backed mutex (base::threading::Mutex). */
class Mutex
{
  public:
    Mutex(sim::Machine &machine, const char *tag);

    /** Acquire: traced load/test/store of the lock word. */
    void lock(sim::Ctx &ctx);

    /** Release: traced store, with a periodic futex wake syscall. */
    void unlock(sim::Ctx &ctx);

  private:
    trace::FuncId fnLock_;
    trace::FuncId fnUnlock_;
    uint64_t wordAddr_;
    uint32_t unlockCount_ = 0;
};

/**
 * A cross-thread task pipe: sender writes a payload pointer into a ring
 * slot, receiver's message loop pops it and invokes the handler with the
 * (traced) payload pointer value.
 */
class TaskChannel
{
  public:
    /** Handler receives the traced payload pointer it was posted. */
    using Handler = std::function<void(sim::Ctx &, sim::Value payload)>;

    TaskChannel(sim::Machine &machine, trace::ThreadId target,
                const char *tag);

    /**
     * Post payload_addr to the target thread. The sender-side queue write
     * and the receiver-side queue read are both traced, so the handler's
     * work is data- and control-dependent on the sender.
     */
    void post(sim::Ctx &sender, uint64_t payload_addr, Handler handler);

    /** Same, but the task only becomes runnable after delay_ms. */
    void postDelayed(sim::Ctx &sender, uint64_t payload_addr,
                     uint64_t delay_cycles, Handler handler);

    /** Tasks delivered so far. */
    uint64_t deliveredCount() const { return delivered_; }

  private:
    void enqueue(sim::Ctx &sender, uint64_t payload_addr);
    void runReceiverSide(sim::Ctx &ctx, const Handler &handler);

    sim::Machine &machine_;
    trace::ThreadId target_;
    trace::FuncId fnPost_;
    trace::FuncId fnRun_;
    Mutex mutex_;
    uint64_t ringAddr_;
    uint64_t headAddr_;
    uint64_t tailAddr_;
    uint64_t delivered_ = 0;

    static constexpr uint32_t kRingSlots = 256;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_THREADING_HH
