/**
 * @file
 * Image decoding (gfx:: namespace).
 *
 * Images download as opaque byte payloads and are decoded lazily at first
 * paint (as Chromium defers decode to raster need): the decoder reads the
 * source bytes (traced) and writes a bitmap of 16px cells into simulated
 * memory, which raster then samples. Images that are fetched but never
 * painted (below the fold, hidden) are never decoded — their fetch cost
 * is the waste.
 */

#ifndef WEBSLICE_BROWSER_IMAGE_HH
#define WEBSLICE_BROWSER_IMAGE_HH

#include <string>
#include <unordered_map>

#include "browser/debugging.hh"
#include "browser/net.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** A decoded (or pending) image. */
struct ImageEntry
{
    Resource *resource = nullptr;
    bool decoded = false;
    uint64_t bitmapAddr = 0;
    uint32_t widthCells = 0;
    uint32_t heightCells = 0;
};

/** Registry of image resources keyed by src url. */
class ImageStore
{
  public:
    ImageStore(sim::Machine &machine, TraceLog &trace_log, int cell_px);

    /** Register a fetched image resource under its url. */
    void addResource(const std::string &url, Resource *resource,
                     uint32_t width_px, uint32_t height_px);

    /**
     * Bitmap for a url, decoding on first use (traced). Returns nullptr
     * when the url is unknown or the resource has not arrived yet.
     */
    ImageEntry *decodedBitmap(sim::Ctx &ctx, const std::string &url);

    size_t decodeCount() const { return decodes_; }
    size_t imageCount() const { return images_.size(); }

  private:
    sim::Machine &machine_;
    TraceLog &traceLog_;
    trace::FuncId fnDecode_;
    int cellPx_;
    std::unordered_map<std::string, ImageEntry> images_;
    size_t decodes_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_IMAGE_HH
