#include "browser/css.hh"

#include <cctype>

#include "support/logging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

CssProperty
cssPropertyFromName(std::string_view name)
{
    if (name == "color") return CssProperty::Color;
    if (name == "bg") return CssProperty::Background;
    if (name == "display") return CssProperty::Display;
    if (name == "font") return CssProperty::FontSize;
    if (name == "width") return CssProperty::Width;
    if (name == "height") return CssProperty::Height;
    if (name == "margin") return CssProperty::Margin;
    if (name == "padding") return CssProperty::Padding;
    if (name == "position") return CssProperty::Position;
    if (name == "z") return CssProperty::ZIndex;
    if (name == "anim") return CssProperty::Anim;
    if (name == "opacity") return CssProperty::Opacity;
    return CssProperty::None;
}

// ---- StyleSheet ------------------------------------------------------------

void
StyleSheet::buildIndex()
{
    byTag_.clear();
    byClass_.clear();
    byId_.clear();
    universal_.clear();
    for (size_t i = 0; i < rules.size(); ++i) {
        const CssRule &rule = rules[i];
        if (rule.idHash != 0) {
            byId_[rule.idHash].push_back(i);
        } else if (rule.classHash != 0) {
            byClass_[rule.classHash].push_back(i);
        } else if (rule.tag != Tag::None) {
            byTag_[static_cast<uint32_t>(rule.tag)].push_back(i);
        } else {
            universal_.push_back(i);
        }
    }
}

std::vector<size_t>
StyleSheet::candidatesFor(const Element &element) const
{
    std::vector<size_t> out = universal_;
    auto appendFrom = [&](const auto &map, uint32_t key) {
        if (key == 0)
            return;
        auto it = map.find(key);
        if (it != map.end())
            out.insert(out.end(), it->second.begin(), it->second.end());
    };
    appendFrom(byTag_, static_cast<uint32_t>(element.tag));
    appendFrom(byClass_, element.classHash);
    appendFrom(byId_, element.idHash);
    return out;
}

uint64_t
StyleSheet::usedBytes() const
{
    uint64_t used = 0;
    for (const auto &rule : rules) {
        if (rule.matched)
            used += rule.byteLength;
    }
    return used;
}

// ---- CssParser -------------------------------------------------------------

CssParser::CssParser(sim::Machine &machine, TraceLog &trace_log)
    : machine_(machine), traceLog_(trace_log),
      // Parsing lives in the engine core (Blink's CSSParser is not part
      // of the paper's "CSS" category, which covers style and layout
      // *calculation*); like many engine-core symbols it carries no
      // categorizable namespace.
      fnParse_(machine.registerFunction("CSSParser_parseSheet")),
      fnParseRule_(machine.registerFunction("CSSParser_parseRule"))
{
}

std::unique_ptr<StyleSheet>
CssParser::parse(Ctx &ctx, const Resource &css)
{
    panic_if(!css.loaded, "parsing an unloaded stylesheet");
    TracedScope scope(ctx, fnParse_);
    traceLog_.addEvent(ctx, /*category=*/11);

    auto sheet = std::make_unique<StyleSheet>();
    sheet->totalBytes = css.size;

    const std::string &text = css.content;
    size_t i = 0;
    Value cursor = ctx.imm(css.addr);

    auto advance = [&](size_t n = 1) {
        i += n;
        cursor = ctx.addi(cursor, static_cast<int64_t>(n));
    };
    auto loadByte = [&]() { return ctx.loadVia(cursor, 0, 1); };

    while (i < text.size()) {
        // Traced outer loop condition.
        Value end = ctx.imm(css.addr + text.size());
        Value more = ctx.ltu(cursor, end);
        if (!ctx.branchIf(more))
            break;

        // Skip whitespace/newlines between rules.
        if (std::isspace(static_cast<unsigned char>(text[i]))) {
            advance();
            continue;
        }

        TracedScope rule_scope(ctx, fnParseRule_);
        CssRule rule;
        rule.byteStart = static_cast<uint32_t>(i);

        // ---- selector: [tag][.class][#id] -------------------------------
        Value tag_hash = ctx.imm(2166136261u);
        Value class_hash = ctx.imm(0);
        Value id_hash = ctx.imm(0);
        std::string token;
        enum { InTag, InClass, InId } state = InTag;
        auto finishToken = [&]() {
            if (token.empty())
                return;
            switch (state) {
              case InTag:
                rule.tag = tagFromName(token);
                break;
              case InClass:
                rule.classHash = hashString(token);
                break;
              case InId:
                rule.idHash = hashString(token);
                break;
            }
            token.clear();
        };
        while (i < text.size() && text[i] != '{') {
            Value ch = loadByte();
            if (text[i] == '.') {
                finishToken();
                state = InClass;
                class_hash = ctx.imm(2166136261u);
            } else if (text[i] == '#') {
                finishToken();
                state = InId;
                id_hash = ctx.imm(2166136261u);
            } else {
                token.push_back(text[i]);
                Value *acc = state == InTag ? &tag_hash
                             : state == InClass ? &class_hash
                                                : &id_hash;
                *acc = ctx.bxor(*acc, ch);
                *acc = ctx.muli(*acc, 16777619u);
            }
            advance();
        }
        finishToken();
        if (i >= text.size())
            break;
        advance(); // consume '{'

        // ---- declarations: prop:value;... --------------------------------
        std::vector<Value> decl_values;
        while (i < text.size() && text[i] != '}') {
            // Property name.
            std::string prop_name;
            Value prop_hash = ctx.imm(2166136261u);
            while (i < text.size() && text[i] != ':') {
                Value ch = loadByte();
                prop_hash = ctx.bxor(prop_hash, ch);
                prop_hash = ctx.muli(prop_hash, 16777619u);
                prop_name.push_back(text[i]);
                advance();
            }
            if (i >= text.size())
                break;
            advance(); // consume ':'

            // Integer value.
            Value number = ctx.imm(0);
            uint32_t concrete = 0;
            while (i < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[i]))) {
                Value ch = loadByte();
                Value digit = ctx.addi(ch, -'0');
                number = ctx.add(ctx.muli(number, 10), digit);
                concrete = concrete * 10 + (text[i] - '0');
                advance();
            }
            if (i < text.size() && text[i] == ';')
                advance();

            CssDeclaration decl;
            decl.property = cssPropertyFromName(prop_name);
            decl.value = concrete;
            rule.declarations.push_back(decl);
            decl_values.push_back(std::move(number));
        }
        if (i < text.size())
            advance(); // consume '}'
        rule.byteLength = static_cast<uint32_t>(i - rule.byteStart);

        // ---- write the rule record (traced) -------------------------------
        rule.addr = machine_.alloc(RuleFields::kRecordBytes, "css-rule");
        rule.declsAddr = machine_.alloc(
            std::max<size_t>(1, rule.declarations.size()) *
                RuleFields::kDeclBytes,
            "css-decls");
        Value tag_field =
            ctx.alu1(tag_hash, static_cast<uint64_t>(rule.tag));
        ctx.store(rule.addr + RuleFields::kTag, 4, tag_field);
        Value class_field = ctx.alu1(class_hash, rule.classHash);
        ctx.store(rule.addr + RuleFields::kClassHash, 4, class_field);
        Value id_field = ctx.alu1(id_hash, rule.idHash);
        ctx.store(rule.addr + RuleFields::kIdHash, 4, id_field);
        Value count = ctx.imm(rule.declarations.size());
        ctx.store(rule.addr + RuleFields::kDeclCount, 4, count);
        Value array = ctx.imm(rule.declsAddr);
        ctx.store(rule.addr + RuleFields::kDeclArray, 8, array);
        for (size_t d = 0; d < rule.declarations.size(); ++d) {
            Value prop = ctx.imm(
                static_cast<uint64_t>(rule.declarations[d].property));
            ctx.store(rule.declsAddr + d * RuleFields::kDeclBytes, 4,
                      prop);
            ctx.store(rule.declsAddr + d * RuleFields::kDeclBytes + 4, 4,
                      decl_values[d]);
        }

        sheet->rules.push_back(std::move(rule));
    }

    sheet->buildIndex();
    return sheet;
}

// ---- StyleResolver ---------------------------------------------------------

StyleResolver::StyleResolver(sim::Machine &machine, TraceLog &trace_log)
    : machine_(machine), traceLog_(trace_log),
      fnResolve_(machine.registerFunction("css::StyleResolver::resolve")),
      fnMatch_(machine.registerFunction("css::SelectorMatcher::match")),
      fnApply_(machine.registerFunction("css::Cascade::apply")),
      fnApplyInline_(
          machine.registerFunction("css::Cascade::applyInline")),
      fnInherit_(machine.registerFunction("css::StyleResolver::inherit"))
{
}

void
StyleResolver::applyDefaults(Ctx &ctx, Element &element)
{
    const uint64_t style = element.styleAddr;
    Value color = ctx.imm(0x202020);
    ctx.store(style + StyleFields::kColor, 4, color);
    Value bg = ctx.imm(0);
    ctx.store(style + StyleFields::kBackground, 4, bg);
    const bool inline_default =
        element.tag == Tag::Span || element.tag == Tag::A ||
        element.tag == Tag::Text;
    Value display = ctx.imm(inline_default ? kDisplayInline
                                           : kDisplayBlock);
    ctx.store(style + StyleFields::kDisplay, 4, display);
    Value font = ctx.imm(14);
    ctx.store(style + StyleFields::kFontSize, 4, font);
    // Attribute dimensions (img/canvas) feed the default width/height.
    Value el_w = ctx.load(element.addr + ElementFields::kAttrWidth, 4);
    ctx.store(style + StyleFields::kWidth, 4, el_w);
    Value el_h = ctx.load(element.addr + ElementFields::kAttrHeight, 4);
    ctx.store(style + StyleFields::kHeight, 4, el_h);
    Value margin = ctx.imm(0);
    ctx.store(style + StyleFields::kMargin, 4, margin);
    Value padding = ctx.imm(0);
    ctx.store(style + StyleFields::kPadding, 4, padding);
    Value position = ctx.imm(kPositionStatic);
    ctx.store(style + StyleFields::kPosition, 4, position);
    Value z = ctx.imm(0);
    ctx.store(style + StyleFields::kZIndex, 4, z);
    Value anim = ctx.imm(0);
    ctx.store(style + StyleFields::kAnimated, 4, anim);
    Value opacity = ctx.imm(100);
    ctx.store(style + StyleFields::kOpacity, 4, opacity);
}

void
StyleResolver::matchAndApply(Ctx &ctx, Element &element, StyleSheet &sheet)
{
    const auto candidates = sheet.candidatesFor(element);
    if (candidates.empty())
        return;

    // Element keys, loaded once per element (traced).
    Value el_tag = ctx.load(element.addr + ElementFields::kTag, 4);
    Value el_class = ctx.load(element.addr + ElementFields::kClassHash, 4);
    Value el_id = ctx.load(element.addr + ElementFields::kIdHash, 4);

    for (const size_t index : candidates) {
        CssRule &rule = sheet.rules[index];
        TracedScope match_scope(ctx, fnMatch_);

        Value rule_tag = ctx.load(rule.addr + RuleFields::kTag, 4);
        Value rule_class = ctx.load(rule.addr + RuleFields::kClassHash, 4);
        Value rule_id = ctx.load(rule.addr + RuleFields::kIdHash, 4);

        // any(ruleKey == 0) || ruleKey == elementKey, per constraint.
        Value tag_any = ctx.eqi(rule_tag, 0);
        Value tag_eq = ctx.eq(rule_tag, el_tag);
        Value tag_ok = ctx.bor(tag_any, tag_eq);
        Value class_any = ctx.eqi(rule_class, 0);
        Value class_eq = ctx.eq(rule_class, el_class);
        Value class_ok = ctx.bor(class_any, class_eq);
        Value id_any = ctx.eqi(rule_id, 0);
        Value id_eq = ctx.eq(rule_id, el_id);
        Value id_ok = ctx.bor(id_any, id_eq);
        Value match = ctx.band(ctx.band(tag_ok, class_ok), id_ok);

        if (!ctx.branchIf(match))
            continue;

        rule.matched = true;
        TracedScope apply_scope(ctx, fnApply_);
        Value used = ctx.imm(1);
        ctx.store(rule.addr + RuleFields::kUsedFlag, 4, used);

        for (size_t d = 0; d < rule.declarations.size(); ++d) {
            const uint64_t decl_addr =
                rule.declsAddr + d * RuleFields::kDeclBytes;
            Value value = ctx.load(decl_addr + 4, 4);
            uint64_t field = 0;
            switch (rule.declarations[d].property) {
              case CssProperty::Color:
                field = StyleFields::kColor; break;
              case CssProperty::Background:
                field = StyleFields::kBackground; break;
              case CssProperty::Display:
                field = StyleFields::kDisplay; break;
              case CssProperty::FontSize:
                field = StyleFields::kFontSize; break;
              case CssProperty::Width:
                field = StyleFields::kWidth; break;
              case CssProperty::Height:
                field = StyleFields::kHeight; break;
              case CssProperty::Margin:
                field = StyleFields::kMargin; break;
              case CssProperty::Padding:
                field = StyleFields::kPadding; break;
              case CssProperty::Position:
                field = StyleFields::kPosition; break;
              case CssProperty::ZIndex:
                field = StyleFields::kZIndex; break;
              case CssProperty::Anim:
                field = StyleFields::kAnimated; break;
              case CssProperty::Opacity:
                field = StyleFields::kOpacity; break;
              case CssProperty::None:
                continue;
            }
            ctx.store(element.styleAddr + field, 4, value);
        }
    }
}

void
StyleResolver::applyInline(Ctx &ctx, Element &element)
{
    if (!element.inlineStyleAddr)
        return;
    // Script-set styles win the cascade: overlay every set inline field
    // onto the computed style (traced selects keyed by the set-bit mask).
    TracedScope scope(ctx, fnApplyInline_);
    Value mask =
        ctx.load(element.inlineStyleAddr + InlineStyleFields::kMask, 4);
    for (int f = 0; f < InlineStyleFields::kFieldCount; ++f) {
        const uint64_t offset = static_cast<uint64_t>(f) * 4;
        Value bit = ctx.andi(mask, 1ull << f);
        Value has = ctx.ne(bit, ctx.imm(0));
        Value inline_v =
            ctx.load(element.inlineStyleAddr + offset, 4);
        Value computed = ctx.load(element.styleAddr + offset, 4);
        Value final_v = ctx.select(has, inline_v, computed);
        ctx.store(element.styleAddr + offset, 4, final_v);
    }
}

void
StyleResolver::inheritText(Ctx &ctx, Element &text)
{
    if (!text.parent)
        return;
    TracedScope scope(ctx, fnInherit_);
    const uint64_t parent_style = text.parent->styleAddr;
    Value color = ctx.load(parent_style + StyleFields::kColor, 4);
    ctx.store(text.styleAddr + StyleFields::kColor, 4, color);
    Value font = ctx.load(parent_style + StyleFields::kFontSize, 4);
    ctx.store(text.styleAddr + StyleFields::kFontSize, 4, font);
    // Text inside a display:none subtree vanishes too.
    Value parent_display =
        ctx.load(parent_style + StyleFields::kDisplay, 4);
    Value own_display = ctx.load(text.styleAddr + StyleFields::kDisplay, 4);
    Value parent_hidden = ctx.eqi(parent_display, kDisplayNone);
    Value none = ctx.imm(kDisplayNone);
    Value display = ctx.select(parent_hidden, none, own_display);
    ctx.store(text.styleAddr + StyleFields::kDisplay, 4, display);
}

void
StyleResolver::resolveAll(Ctx &ctx, Document &doc,
                          const std::vector<StyleSheet *> &sheets)
{
    TracedScope scope(ctx, fnResolve_);
    traceLog_.addEvent(ctx, /*category=*/12);

    for (const auto &element : doc.elements()) {
        Element &el = *element;
        applyDefaults(ctx, el);
        if (el.isText())
            continue;
        traceLog_.addEvent(ctx, /*category=*/13, /*weight=*/1);
        for (StyleSheet *sheet : sheets)
            matchAndApply(ctx, el, *sheet);

        // The hidden attribute forces display:none (traced select).
        Value flags = ctx.load(el.addr + ElementFields::kFlags, 4);
        Value hidden = ctx.ne(flags, ctx.imm(0));
        Value display =
            ctx.load(el.styleAddr + StyleFields::kDisplay, 4);
        Value none = ctx.imm(kDisplayNone);
        Value final_display = ctx.select(hidden, none, display);
        ctx.store(el.styleAddr + StyleFields::kDisplay, 4, final_display);
        applyInline(ctx, el);
        ++resolved_;
    }

    // Inheritance pass for text runs (parents are resolved by now).
    for (const auto &element : doc.elements()) {
        if (element->isText())
            inheritText(ctx, *element);
    }
}

void
StyleResolver::resolveSubtree(Ctx &ctx, Element *element,
                              const std::vector<StyleSheet *> &sheets)
{
    TracedScope scope(ctx, fnResolve_);
    applyDefaults(ctx, *element);
    if (!element->isText()) {
        for (StyleSheet *sheet : sheets)
            matchAndApply(ctx, *element, *sheet);
        Value flags = ctx.load(element->addr + ElementFields::kFlags, 4);
        Value hidden = ctx.ne(flags, ctx.imm(0));
        Value display =
            ctx.load(element->styleAddr + StyleFields::kDisplay, 4);
        Value none = ctx.imm(kDisplayNone);
        Value final_display = ctx.select(hidden, none, display);
        ctx.store(element->styleAddr + StyleFields::kDisplay, 4,
                  final_display);
        applyInline(ctx, *element);
    } else {
        inheritText(ctx, *element);
    }
    ++resolved_;
    for (Element *child : element->children)
        resolveSubtree(ctx, child, sheets);
}

} // namespace browser
} // namespace webslice
