#include "browser/layout.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

LayoutEngine::LayoutEngine(sim::Machine &machine, TraceLog &trace_log)
    : machine_(machine), traceLog_(trace_log),
      fnLayout_(machine.registerFunction("css::LayoutEngine::layout")),
      fnLayoutBox_(machine.registerFunction("css::LayoutEngine::layoutBox")),
      fnLayoutText_(
          machine.registerFunction("css::LayoutEngine::layoutText"))
{
}

uint32_t
LayoutEngine::layoutDocument(Ctx &ctx, Document &doc, int viewport_width,
                             int viewport_height)
{
    (void)viewport_height;
    TracedScope scope(ctx, fnLayout_);
    traceLog_.addEvent(ctx, /*category=*/30);
    Value record = ctx.imm(doc.root()->addr);
    Value x = ctx.imm(0);
    Value y = ctx.imm(0);
    Value top = ctx.imm(0);
    Value width = ctx.imm(static_cast<uint64_t>(viewport_width));
    Value height =
        layoutElement(ctx, *doc.root(), record, x, y, top, width);
    return static_cast<uint32_t>(height.get());
}

void
LayoutEngine::layoutSubtree(Ctx &ctx, Element *element, int viewport_width)
{
    TracedScope scope(ctx, fnLayout_);
    // Re-flow the subtree in place: reuse the element's current origin.
    Value record = ctx.imm(element->addr);
    Value x = ctx.load(element->layoutAddr + LayoutFields::kX, 4);
    Value y = ctx.load(element->layoutAddr + LayoutFields::kY, 4);
    Value top = ctx.copy(y);
    Value width = element->parent
        ? ctx.load(element->parent->layoutAddr + LayoutFields::kWidth, 4)
        : ctx.imm(static_cast<uint64_t>(viewport_width));
    Value height = layoutElement(ctx, *element, record, x, y, top, width);
    (void)height;
}

Value
LayoutEngine::layoutElement(Ctx &ctx, Element &element,
                            const Value &record, const Value &x,
                            const Value &y, const Value &parent_top,
                            const Value &width)
{
    TracedScope scope(ctx, fnLayoutBox_);
    ++boxes_;

    // Follow the element's record pointers (traced): the tree links laid
    // down by the parser are real dependencies of the geometry.
    Value style_ptr = ctx.loadVia(record, ElementFields::kStyle, 8);
    Value box_ptr = ctx.loadVia(record, ElementFields::kLayout, 8);

    // Hidden subtrees produce no boxes: traced branch on display.
    Value display = ctx.loadVia(style_ptr, StyleFields::kDisplay, 4);
    Value visible = ctx.ne(display, ctx.imm(kDisplayNone));
    if (!ctx.branchIf(visible)) {
        Value zero = ctx.imm(0);
        ctx.storeVia(box_ptr, LayoutFields::kWidth, 4, zero);
        ctx.storeVia(box_ptr, LayoutFields::kHeight, 4, zero);
        return ctx.imm(0);
    }

    Value margin = ctx.loadVia(style_ptr, StyleFields::kMargin, 4);
    Value padding = ctx.loadVia(style_ptr, StyleFields::kPadding, 4);

    // Box origin: fixed elements pin to the viewport origin; absolute
    // elements pin to their parent's origin (so stacked "photo roll"
    // children overlap); everything else flows at the cursor.
    Value position = ctx.loadVia(style_ptr, StyleFields::kPosition, 4);
    Value is_fixed = ctx.eq(position, ctx.imm(kPositionFixed));
    Value is_abs = ctx.eq(position, ctx.imm(kPositionAbsolute));
    Value flow_x = ctx.add(x, margin);
    Value flow_y = ctx.add(y, margin);
    Value fixed_xy = ctx.copy(margin);
    Value abs_y = ctx.add(parent_top, margin);
    Value box_x = ctx.select(is_fixed, fixed_xy, flow_x);
    Value box_y = ctx.select(is_fixed, fixed_xy,
                             ctx.select(is_abs, abs_y, flow_y));
    ctx.storeVia(box_ptr, LayoutFields::kX, 4, box_x);
    ctx.storeVia(box_ptr, LayoutFields::kY, 4, box_y);

    // Width: styled width if nonzero, else fill the available width
    // minus margins.
    Value style_width = ctx.loadVia(style_ptr, StyleFields::kWidth, 4);
    Value has_width = ctx.ne(style_width, ctx.imm(0));
    Value fill = ctx.sub(width, ctx.muli(margin, 2));
    Value box_width = ctx.select(has_width, style_width, fill);
    ctx.storeVia(box_ptr, LayoutFields::kWidth, 4, box_width);

    Value height = ctx.imm(0);

    if (element.isText()) {
        TracedScope text_scope(ctx, fnLayoutText_);
        // Line-wrapped text: lines = ceil(textLen * (font/2) / width).
        Value font = ctx.loadVia(style_ptr, StyleFields::kFontSize, 4);
        Value len = ctx.loadVia(record, ElementFields::kTextLen, 4);
        Value glyph_w = ctx.shri(font, 1);
        Value run = ctx.mul(len, glyph_w);
        Value denom = ctx.bor(box_width, ctx.imm(1)); // avoid /0
        Value lines = ctx.addi(ctx.udiv(run, denom), 1);
        Value line_h = ctx.addi(font, 4);
        height = ctx.mul(lines, line_h);
    } else {
        // Children flow vertically inside the content box.
        Value content_x = ctx.add(box_x, padding);
        Value content_top = ctx.add(box_y, padding);
        Value cursor_y = ctx.copy(content_top);
        Value content_w = ctx.sub(box_width, ctx.muli(padding, 2));

        // Traced loop over the child array: each child's record pointer
        // is loaded from simulated memory and used as the base for all
        // of the child's own accesses.
        const size_t n = element.children.size();
        Value count = ctx.loadVia(record, ElementFields::kChildCount, 4);
        Value array = ctx.loadVia(record, ElementFields::kChildArray, 8);
        for (size_t i = 0; i < n; ++i) {
            Value more = ctx.ltu(ctx.imm(i), count);
            if (!ctx.branchIf(more))
                break;
            Value child_ptr = ctx.loadVia(
                array, static_cast<int64_t>(i * 8), 8);
            Element &child = *element.children[i];
            Value child_h =
                layoutElement(ctx, child, child_ptr, content_x,
                              cursor_y, content_top, content_w);
            // Fixed/absolute children do not advance the flow cursor.
            Value child_pos =
                ctx.load(child.styleAddr + StyleFields::kPosition, 4);
            Value child_out_of_flow = ctx.bor(
                ctx.eq(child_pos, ctx.imm(kPositionFixed)),
                ctx.eq(child_pos, ctx.imm(kPositionAbsolute)));
            Value zero = ctx.imm(0);
            Value advance = ctx.select(child_out_of_flow, zero, child_h);
            cursor_y = ctx.add(cursor_y, advance);
        }
        height = ctx.sub(cursor_y, box_y);
        height = ctx.add(height, padding);
    }

    // Styled height wins when present.
    Value style_height = ctx.loadVia(style_ptr, StyleFields::kHeight, 4);
    Value has_height = ctx.ne(style_height, ctx.imm(0));
    Value final_height = ctx.select(has_height, style_height, height);
    ctx.storeVia(box_ptr, LayoutFields::kHeight, 4, final_height);

    // Flow contribution includes the bottom margin.
    return ctx.add(final_height, ctx.muli(margin, 2));
}

} // namespace browser
} // namespace webslice
