/**
 * @file
 * Tile rasterization (gfx:: namespace, executed on the CompositorTileWorker
 * threads).
 *
 * This is the reproduction's RasterBufferProvider::PlaybackToMemory: a
 * raster task plays a layer's display list back into one 256x256-px tile
 * of the layer's backing store (tracked at 16-px cell granularity, one u32
 * per cell), then plants the criteria marker over the tile's final bytes —
 * exactly where the paper plants its "xchg %r13w,%r13w" and records the
 * buffer address/size into the external criteria file.
 *
 * Waste mechanisms are intrinsic: display items clipped outside the tile
 * still cost their per-item loads and compares; overdrawn cells kill the
 * dependence on whatever wrote them earlier; low-resolution (mobile)
 * targets make most playback work produce no surviving pixel.
 */

#ifndef WEBSLICE_BROWSER_RASTER_HH
#define WEBSLICE_BROWSER_RASTER_HH

#include "browser/common.hh"
#include "browser/debugging.hh"
#include "browser/paint.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Raster task record layout (the compositor writes, the worker reads). */
struct RasterTaskFields
{
    static constexpr uint64_t kLayerRecord = 0;  ///< u64
    static constexpr uint64_t kTileX = 8;
    static constexpr uint64_t kTileY = 12;
    static constexpr uint64_t kBackingTile = 16; ///< u64
    static constexpr uint64_t kPhase = 24;       ///< animation phase
    static constexpr uint64_t kRecordBytes = 32;
};

/** Plays display lists back into tile backing stores. */
class Rasterizer
{
  public:
    Rasterizer(sim::Machine &machine, TraceLog &trace_log,
               const BrowserConfig &config);

    /**
     * Rasterize one tile. Must run on a raster-worker thread context.
     *
     * @param layer        native mirror of the layer being rastered
     * @param task_record  traced pointer to the RasterTaskFields record
     */
    void rasterizeTile(sim::Ctx &ctx, const Layer &layer,
                       const sim::Value &task_record);

    uint64_t tilesRastered() const { return tiles_; }
    uint64_t cellsWritten() const { return cells_; }
    uint64_t itemsClipped() const { return clipped_; }

  private:
    sim::Machine &machine_;
    TraceLog &traceLog_;
    const BrowserConfig &config_;
    trace::FuncId fnPlayback_;
    trace::FuncId fnDrawItem_;
    uint64_t tiles_ = 0;
    uint64_t cells_ = 0;
    uint64_t clipped_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_RASTER_HH
