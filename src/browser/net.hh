/**
 * @file
 * Simulated resource loading (net:: namespace).
 *
 * Stands in for the network stack: a fetch issues a request through
 * sendto, and after a bandwidth/latency-dependent delay the child IO
 * thread "receives" the payload — the bytes appear in simulated memory
 * via a recvfrom syscall's kernel-side write, exactly how Pin sees real
 * downloads (kernel writes are effect records, not traced instructions).
 * Response headers are then parsed with traced reads, and delivery to the
 * main thread goes through a traced cross-thread task channel.
 */

#ifndef WEBSLICE_BROWSER_NET_HH
#define WEBSLICE_BROWSER_NET_HH

#include <functional>
#include <memory>
#include <string>

#include "browser/common.hh"
#include "browser/debugging.hh"
#include "browser/ipc.hh"
#include "browser/threading.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Resource kinds the loader understands. */
enum class ResourceType
{
    Html,
    Css,
    Js,
    Image,
};

/** One fetchable resource: its content and, once loaded, its location. */
struct Resource
{
    std::string url;
    ResourceType type = ResourceType::Html;
    std::string content;

    /** Simulated address/size of the payload once received. */
    uint64_t addr = 0;
    uint64_t size = 0;
    bool loaded = false;
};

/** The tab's resource loader. */
class ResourceLoader
{
  public:
    using Callback = std::function<void(sim::Ctx &, Resource &)>;

    ResourceLoader(sim::Machine &machine, const BrowserConfig &config,
                   const BrowserThreads &threads, TraceLog &trace_log,
                   IpcChannel &ipc);

    /**
     * Start fetching a resource; the callback runs on the main thread
     * after the simulated network round trip. Must be called from a
     * main-thread context.
     */
    void fetch(sim::Ctx &ctx, Resource &resource, Callback callback);

    uint64_t requestCount() const { return requests_; }
    uint64_t bytesFetched() const { return bytesFetched_; }

  private:
    void receiveOnIoThread(sim::Ctx &ctx, Resource &resource);

    sim::Machine &machine_;
    const BrowserConfig &config_;
    TraceLog &traceLog_;
    IpcChannel &ipc_;
    trace::FuncId fnFetch_;
    trace::FuncId fnReceive_;
    trace::FuncId fnParseHeaders_;
    uint64_t requestAddr_;
    std::unique_ptr<TaskChannel> toIo_;
    std::unique_ptr<TaskChannel> toMain_;
    uint64_t requests_ = 0;
    uint64_t bytesFetched_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_NET_HH
